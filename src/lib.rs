//! # ucfg-repro — workspace façade
//!
//! Re-exports the four library crates of the reproduction of
//! *“A Lower Bound on Unambiguous Context Free Grammars via Communication
//! Complexity”* (Mengel & Vinall-Smeeth, PODS 2025), and hosts the
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`).
//!
//! Start with `examples/quickstart.rs`, then `examples/separation.rs` for
//! the headline Theorem 1 table.

pub use ucfg_automata as automata;
pub use ucfg_core as core;
pub use ucfg_factorized as factorized;
pub use ucfg_grammar as grammar;
