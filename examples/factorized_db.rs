//! Factorised databases: the d-representation ↔ CFG isomorphism and the
//! exponential savings of factorised join results over materialisation —
//! the database context the paper's introduction builds on.
//!
//! Run with `cargo run --release --example factorized_db`.

use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_factorized::convert::{circuit_to_grammar, grammar_to_circuit};
use ucfg_factorized::join::{
    complete_chain, factorized_path_join, materialized_path_join, path_join_count, BinaryRelation,
};

fn main() {
    // --- A concrete factorised join. ---
    // People→City, City→Country as binary relations over a small domain.
    let lives_in = BinaryRelation::from_pairs([(0, 5), (1, 5), (2, 6), (3, 6), (4, 6)]);
    let located_in = BinaryRelation::from_pairs([(5, 9), (6, 9)]);
    let rels = vec![lives_in, located_in];
    let materialised = materialized_path_join(&rels);
    let circuit = factorized_path_join(&rels);
    println!("join Person ⋈ City ⋈ Country:");
    println!("  materialised tuples: {:?}", materialised);
    println!(
        "  factorised circuit: size {}, deterministic: {}, count: {}",
        circuit.size(),
        circuit.is_unambiguous(),
        circuit.count_derivations()
    );
    assert_eq!(circuit.language(), materialised);

    // --- The exponential gap. ---
    println!("\ncomplete chains (domain d, k joins): factorised vs materialised");
    println!(
        "{:>3} {:>3} {:>18} {:>16}",
        "d", "k", "#tuples", "circuit size"
    );
    for (d, k) in [(2u32, 8usize), (4, 8), (8, 8), (8, 16)] {
        let rels = complete_chain(d, k);
        let count = path_join_count(&rels);
        let circ = factorized_path_join(&rels);
        println!(
            "{:>3} {:>3} {:>18} {:>16}",
            d,
            k,
            count.to_string(),
            circ.size()
        );
    }

    // --- The KMN isomorphism: grammars ⇌ circuits. ---
    let n = 4;
    let cfg = appendix_a_grammar(n);
    let circ = grammar_to_circuit(&cfg).expect("finite language");
    println!(
        "\nAppendix A CFG for L_{n}: |G| = {} ⇌ d-representation size {} \
         (deterministic: {})",
        cfg.size(),
        circ.size(),
        circ.is_unambiguous()
    );
    let ucfg = example4_ucfg(n);
    let dcirc = grammar_to_circuit(&ucfg).expect("finite language");
    println!(
        "Example 4 uCFG for L_{n}: |G| = {} ⇌ deterministic d-rep size {} \
         (deterministic: {})",
        ucfg.size(),
        dcirc.size(),
        dcirc.is_unambiguous()
    );
    let back = circuit_to_grammar(&dcirc, &['a', 'b']);
    println!("round-trip grammar size: {}", back.size());
    println!(
        "\nunambiguous CFG ⇔ deterministic d-representation: the paper's lower\n\
         bound says determinism can cost a double exponential in size."
    );
}
