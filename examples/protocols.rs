//! The communication-complexity view: `L_n` is the complement of set
//! disjointness, nondeterministic certificates are rectangle covers, and
//! the price of unambiguity is the paper's whole story.
//!
//! Run with `cargo run --release --example protocols`.

use ucfg_core::comm::{canonical_fooling_set, fooling_bound, is_fooling_set, NondetProtocol};
use ucfg_core::cover::example8_cover;
use ucfg_core::greedy_cover::{
    certified_exact_middle_cut_cover_number, greedy_disjoint_cover,
    greedy_disjoint_cover_middle_cut,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::rank_for_partition;
use ucfg_core::words;

fn main() {
    let n = 4;
    println!("Set intersection as communication: Alice holds X ⊆ [{n}], Bob holds Y ⊆ [{n}].");
    println!(
        "L_{n} = {{(X, Y) : X ∩ Y ≠ ∅}}, |L_{n}| = {}\n",
        words::ln_size(n)
    );

    // Nondeterministic: guess the common element — Example 8's cover.
    let nondet = NondetProtocol::from_cover(example8_cover(n));
    assert!(nondet.computes_ln(n));
    println!(
        "nondeterministic protocol (Example 8): {} rectangles = {} bits",
        nondet.rectangles.len(),
        nondet.cost_bits()
    );
    let all_a = (1u64 << (2 * n)) - 1;
    println!(
        "  ambiguous: input (full, full) has {} certificates\n",
        nondet.certificate_count(all_a)
    );

    // Unambiguous: a disjoint cover — exponentially more rectangles.
    let mid = greedy_disjoint_cover_middle_cut(n);
    let unamb = NondetProtocol::from_cover(mid.rectangles);
    assert!(unamb.computes_ln(n) && unamb.is_unambiguous(n));
    println!(
        "unambiguous protocol ([1,n] cut): {} rectangles = {} bits",
        unamb.rectangles.len(),
        unamb.cost_bits()
    );
    let part = OrderedPartition::new(n, 1, n);
    println!("  rank lower bound: {}", rank_for_partition(n, part));
    if let Some(exact) = certified_exact_middle_cut_cover_number(n) {
        println!("  certified exact unambiguous cover number: {exact} (= 2^{n} − 1)");
    }
    let multi = greedy_disjoint_cover(n);
    println!(
        "  multi-partition unambiguous cover (greedy): {} rectangles\n",
        multi.len()
    );

    // Fooling sets.
    let fs = canonical_fooling_set(n);
    assert!(is_fooling_set(n, part, &fs));
    println!(
        "canonical fooling set {{({{i}}, {{i}})}}: size {} → nondet cover ≥ log₂ {}",
        fs.len(),
        fs.len()
    );
    println!("greedy fooling set: size {}", fooling_bound(n, part));
    println!(
        "\nThe same trade-off drives Theorem 1: an ambiguous CFG can name a\n\
         witness cheaply (log n bits / O(log n) grammar size); an unambiguous\n\
         one must partition the witnesses — and partitioning non-disjoint\n\
         unions costs 2^Ω(n)."
    );
}
