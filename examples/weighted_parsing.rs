//! Semiring-weighted parsing: one dynamic program, many aggregates —
//! and why they are only *word*-correct on unambiguous grammars.
//!
//! Run with `cargo run --release --example weighted_parsing`.

use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::weighted::{
    inside_at, Bool, Count, MinPlus, Poly, TableWeights, UnitWeights, Viterbi,
};

fn main() {
    let n = 4;
    let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
    let ambiguous = CnfGrammar::from_grammar(&appendix_a_grammar(n));
    println!("L_{n}: |L_{n}| = {}\n", words::ln_size(n));

    // Boolean semiring: recognition per length.
    let nonempty: Bool = inside_at(&ucfg, &UnitWeights, 2 * n);
    println!("Boolean inside at length {}: {}", 2 * n, nonempty.0);

    // Counting: on the uCFG this counts WORDS; on the ambiguous CFG it
    // counts DERIVATIONS.
    let Count(on_ucfg) = inside_at(&ucfg, &UnitWeights, 2 * n);
    let Count(on_cfg) = inside_at(&ambiguous, &UnitWeights, 2 * n);
    println!("count on uCFG:      {on_ucfg}  (= |L_{n}| ✓)");
    println!("count on ambiguous: {on_cfg}  (over-counts derivations)");

    // Tropical: cheapest word when a costs 1 and b costs 0 — every word of
    // L_n needs its two witnessing a's.
    let trop = TableWeights(vec![MinPlus(Some(1)), MinPlus(Some(0))]);
    let min_a: MinPlus = inside_at(&ucfg, &trop, 2 * n);
    println!(
        "\ntropical min #a over L_{n}: {:?} (the two witnesses)",
        min_a.0
    );

    // Viterbi: most likely word under P(a) = 0.3, P(b) = 0.7.
    let vit = TableWeights(vec![Viterbi(0.3), Viterbi(0.7)]);
    let best: Viterbi = inside_at(&ucfg, &vit, 2 * n);
    println!("Viterbi best-word probability (P(a)=0.3): {:.6}", best.0);

    // Provenance polynomial in x (for a) and y (for b): the generating
    // function of L_n by letter counts.
    let prov = TableWeights(vec![Poly::var(0, 2), Poly::var(1, 2)]);
    let p: Poly = inside_at(&ucfg, &prov, 2 * n);
    println!(
        "\nprovenance polynomial: {} monomials; eval at (1,1) = {} = |L_{n}| ✓",
        p.monomials(),
        p.eval(&[1, 1])
    );
    // Setting y = 0 keeps only the all-a word.
    println!(
        "eval at (1,0) = {} (only a^{} survives)",
        p.eval(&[1, 0]),
        2 * n
    );
}
