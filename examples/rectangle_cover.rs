//! The lower-bound pipeline end-to-end: run the Proposition 7 extraction
//! on a real uCFG for `L_n`, verify the disjoint balanced-rectangle cover,
//! and certify the Proposition 16 discrepancy accounting.
//!
//! Run with `cargo run --release --example rectangle_cover`.

use ucfg_core::cover::{
    discrepancy_accounting, example8_cover, extraction_to_set_rectangles, implied_size_bound,
    verify_cover,
};
use ucfg_core::discrepancy::{cover_lower_bound_log2, gap};
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::example4_ucfg;
use ucfg_grammar::normal_form::CnfGrammar;

fn main() {
    let n = 4; // divisible by 4 so the Section 4.2 block structure applies
    let m = (n / 4) as u64;

    // --- Example 8: the cheap, NON-disjoint cover. ---
    let amb = example8_cover(n);
    let rep = verify_cover(n, &amb);
    println!(
        "Example 8 cover of L_{n}: {} balanced rectangles, covers: {}, disjoint: {} (max overlap {})",
        rep.size, rep.covers_exactly, rep.disjoint, rep.max_overlap
    );

    // --- Proposition 7 on the Example 4 uCFG. ---
    let ucfg = example4_ucfg(n);
    println!("\nExample 4 uCFG for L_{n}: size {}", ucfg.size());
    let cnf = CnfGrammar::from_grammar(&ucfg);
    let res = extract_cover(&cnf, 2 * n).expect("fixed-length grammar");
    println!(
        "Proposition 7 extraction: {} rectangles (bound n·|G| = {})",
        res.rectangles.len(),
        res.bound
    );
    for r in res.rectangles.iter().take(5) {
        println!(
            "  from {:<12} span [{}, {}]  |middles|={} |contexts|={}",
            r.nt_name,
            r.position,
            r.position + r.span_len - 1,
            r.rectangle.middles.len(),
            r.rectangle.contexts.len()
        );
    }
    if res.rectangles.len() > 5 {
        println!("  … {} more", res.rectangles.len() - 5);
    }

    let rects = extraction_to_set_rectangles(n, &res);
    let rep = verify_cover(n, &rects);
    println!(
        "verified: covers L_{n} exactly: {}, disjoint: {}, all balanced: {}",
        rep.covers_exactly, rep.disjoint, rep.all_balanced
    );
    assert!(rep.covers_exactly && rep.disjoint && rep.all_balanced);

    // --- Proposition 16 accounting. ---
    let (discs, ok) = discrepancy_accounting(n, &rects);
    println!(
        "\nΣ_i (|A∩R_i| − |B∩R_i|) = {} = 12^{m} − 8^{m} = {} : {}",
        discs.iter().sum::<i64>(),
        gap(m),
        if ok { "✓" } else { "✗" }
    );
    println!(
        "per-rectangle discrepancies: {:?}…",
        &discs[..discs.len().min(10)]
    );
    let bound = implied_size_bound(n, &rects);
    println!("implied cover size ≥ {bound}; actual ℓ = {} ✓", rects.len());
    println!(
        "\nasymptotics: log₂ ℓ ≥ log₂(12^m − 8^m) − 10m/3, e.g. m = 64 (n = 256):\n\
         every disjoint balanced cover — hence every uCFG via Prop. 7 — needs\n\
         ≥ 2^{:.1} rectangles.",
        cover_lower_bound_log2(64)
    );
}
