//! The introduction's information-extraction scenario: extracting pairs of
//! CSV lines that agree on at least one column of a set S — small as an
//! ambiguous CFG, exponential as any unambiguous representation.
//!
//! Run with `cargo run --release --example csv_extraction`.

use ucfg_automata::convert::dfa_to_grammar;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_core::words;
use ucfg_factorized::csv_scenario::{
    agreement_grammar, agreement_language, agrees, encode_ln_word,
};
use ucfg_grammar::count::decide_unambiguous;

fn main() {
    let alphabet = ['a', 'b'];
    println!("Agree(c, S, Σ): two c-column lines agreeing on some column in S\n");
    println!(
        "{:>3} {:>10} {:>12} {:>18}",
        "c", "|Agree|", "|CFG| (amb)", "|uCFG| (via DAWG)"
    );
    for c in 1..=8usize {
        let s_cols: Vec<usize> = (1..=c).collect();
        let g = agreement_grammar(c, &s_cols, &alphabet);
        let mut lang = agreement_language(c, &s_cols, &alphabet);
        lang.sort();
        let mut b = DawgBuilder::new(&alphabet);
        for w in &lang {
            b.add(w);
        }
        let ucfg = dfa_to_grammar(&b.finish()).expect("no ε");
        println!(
            "{:>3} {:>10} {:>12} {:>18}",
            c,
            lang.len(),
            g.size(),
            ucfg.size()
        );
    }

    // The ambiguous CFG really is ambiguous, and the DAWG route really is
    // unambiguous (checked exactly for a small instance).
    let c = 3;
    let s_cols = vec![1usize, 2, 3];
    let g = agreement_grammar(c, &s_cols, &alphabet);
    println!(
        "\nc = {c}: CFG unambiguous? {} (a pair agreeing on two columns has two derivations)",
        decide_unambiguous(&g).is_unambiguous()
    );

    // The reduction from L_n that forces the exponential uCFG size.
    let n = 3;
    println!(
        "\nReduction L_{n} → Agree({n}, [{n}], {{a,c,d}}): rename b ↦ c on line 1, b ↦ d on line 2."
    );
    for w in [0b101010u64, 0b001001, 0b111000] {
        let original = words::to_string(n, w);
        let encoded = encode_ln_word(n, w);
        println!(
            "  {original} ∈ L_{n}: {:5}  ↦  {encoded} agrees: {}",
            words::ln_contains(n, w),
            agrees(n, &[1, 2, 3], &encoded)
        );
    }
    println!(
        "\nSince columns agree iff both original letters were 'a', any uCFG for\n\
         Agree restricted to the encoded domain yields one for L_n — so by\n\
         Theorem 12 every uCFG for the extraction task is exponential in |S|."
    );
}
