//! The headline Theorem 1 separation table: CFG vs NFA vs uCFG sizes for
//! `L_n`, with the discrepancy lower bound every uCFG must obey.
//!
//! Run with `cargo run --release --example separation`.

use ucfg_core::separation::separation_row;

fn main() {
    println!("Theorem 1: representation sizes for L_n (words of length 2n)\n");
    println!(
        "{:>6} {:>14} {:>8} {:>10} {:>10} {:>10} {:>16} {:>12}",
        "n", "|L_n|", "CFG", "NFA(Θn)", "NFA exact", "DAWG-uCFG", "Ex.4 uCFG", "uCFG ≥"
    );
    for n in [
        2usize, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024,
    ] {
        let row = separation_row(n, 24, 8);
        let lang = if row.language_size.bits() <= 40 {
            row.language_size.to_string()
        } else {
            format!("≈2^{:.0}", row.language_size.log2_approx())
        };
        let ex4 = if row.ucfg_example4_size.bits() <= 40 {
            row.ucfg_example4_size.to_string()
        } else {
            format!("≈2^{:.0}", row.ucfg_example4_size.log2_approx())
        };
        println!(
            "{:>6} {:>14} {:>8} {:>10} {:>10} {:>10} {:>16} {:>12}",
            n,
            lang,
            row.cfg_size,
            row.nfa_pattern_transitions,
            row.nfa_exact_transitions
                .map_or("-".into(), |v| v.to_string()),
            row.ucfg_dawg_size.map_or("-".into(), |v| v.to_string()),
            ex4,
            row.ucfg_lower_bound_log2
                .map_or("-".into(), |v| format!("2^{v:.1}")),
        );
    }
    println!(
        "\nShape: the CFG column grows like log n while every uCFG is forced to\n\
         2^Ω(n) (last column; Theorem 12) — so the CFG is doubly-exponentially\n\
         smaller, proving the Kimelfeld–Martens–Niewerth conjecture.\n\
         The Θ(n) NFA column is the guess-and-verify automaton under the\n\
         length-2n promise; enforcing the length costs Θ(n²) (\"NFA exact\")."
    );
}
