//! Quickstart: build the paper's grammars for `L_n`, parse, count, and
//! decide unambiguity.
//!
//! Run with `cargo run --release --example quickstart`.

use ucfg_core::ln_grammars::{appendix_a_grammar, example3_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_grammar::count::{decide_unambiguous, UnambiguityVerdict};
use ucfg_grammar::earley::Earley;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::parse_tree::FixedLenParser;

fn main() {
    let n = 4;
    println!(
        "L_{n}: words of length {} with two a's at distance {n}",
        2 * n
    );
    println!("|L_{n}| = 4^{n} − 3^{n} = {}\n", words::ln_size(n));

    // --- The O(log n) CFG of Appendix A (Theorem 1(1)). ---
    let cfg = appendix_a_grammar(n);
    println!("Appendix A CFG (size {} = O(log n)):\n{}", cfg.size(), cfg);

    // Membership via Earley (no normal form needed).
    let earley = Earley::new(&cfg);
    for w in ["abbbabbb", "abbbbabb", "aaaaaaaa", "bbbbbbbb"] {
        println!("  {w} ∈ L_{n}?  {}", earley.recognize_str(w));
    }

    // The grammar is ambiguous — words with several witnessing pairs have
    // several parse trees.
    let parser = FixedLenParser::new(&cfg).expect("fixed-length language");
    let all_a = cfg.encode(&"a".repeat(2 * n)).unwrap();
    println!(
        "\n  #parse trees of a^{}: {}",
        2 * n,
        parser.count_trees(&all_a)
    );
    match decide_unambiguous(&cfg) {
        UnambiguityVerdict::Ambiguous { witness, degree } => {
            println!("  ambiguous: {witness} has {degree} parse trees")
        }
        v => println!("  verdict: {v:?}"),
    }

    // --- The exponential-size uCFG of Example 4 (Theorem 1(3)). ---
    let ucfg = example4_ucfg(n);
    println!(
        "\nExample 4 uCFG: size {} (vs CFG size {}), unambiguous: {}",
        ucfg.size(),
        cfg.size(),
        decide_unambiguous(&ucfg).is_unambiguous()
    );
    assert_eq!(finite_language(&ucfg), finite_language(&cfg));
    println!("same language as the CFG ✓");

    // --- Example 3's G_n for L_{2^n + 1}. ---
    let g1 = example3_grammar(1);
    println!("\nExample 3 G_1 (accepts L_3, size {}):\n{}", g1.size(), g1);
    let p = FixedLenParser::new(&g1).unwrap();
    let aaaaaa = g1.encode("aaaaaa").unwrap();
    println!(
        "Figure 1: aaaaaa has {} parse trees; the first two:",
        p.count_trees(&aaaaaa)
    );
    for t in p.trees(&aaaaaa, 2) {
        println!("{}", t.render(&g1));
    }
}
