//! Cross-crate consistency: the same language through every representation
//! (grammar, CNF, annotated grammar, NFA, DFA, DAWG, d-representation) and
//! the same counts through every counting routine.

use std::collections::BTreeSet;
use ucfg_automata::ambiguity::is_unambiguous;
use ucfg_automata::convert::{dfa_to_grammar, dfa_to_nfa, nfa_to_grammar};
use ucfg_automata::dawg::dawg_of_words;
use ucfg_automata::dfa::Dfa;
use ucfg_automata::ln_nfa::exact_nfa;
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_factorized::convert::{circuit_to_grammar, grammar_to_circuit};
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::{derivation_counts_by_length, TreeCounter};
use ucfg_grammar::cyk::ambiguity_of;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::parse_tree::FixedLenParser;

#[test]
fn five_counting_routes_agree() {
    for n in 2..=4usize {
        let expect = words::ln_size(n);

        // 1. closed form (above) vs 2. uCFG derivation DP.
        let ucfg_cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        assert_eq!(
            derivation_counts_by_length(&ucfg_cnf, 2 * n).pop().unwrap(),
            expect,
            "uCFG DP, n={n}"
        );

        // 3. deterministic circuit.
        let circ = grammar_to_circuit(&example4_ucfg(n)).unwrap();
        assert_eq!(circ.count_derivations(), expect, "circuit, n={n}");

        // 4. automaton path counting (via subset determinisation).
        assert_eq!(
            exact_nfa(n).accepted_word_counts(2 * n).pop().unwrap(),
            expect,
            "NFA, n={n}"
        );

        // 5. brute-force enumeration.
        assert_eq!(
            BigUint::from_u64(words::enumerate_ln(n).len() as u64),
            expect,
            "enumeration, n={n}"
        );
    }
}

#[test]
fn per_word_ambiguity_degrees_agree_across_parsers() {
    let n = 3;
    let g = appendix_a_grammar(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let fixed = FixedLenParser::new(&g).unwrap();
    let counter = TreeCounter::new(&g).unwrap();
    for w in 0..(1u64 << (2 * n)) {
        let s = words::to_string(n, w);
        let word = g.encode(&s).unwrap();
        let via_fixed = fixed.count_trees(&word);
        let via_counter = counter.count_str(&s);
        let via_cyk = ambiguity_of(&cnf, &cnf.encode(&s).unwrap());
        assert_eq!(via_fixed, via_counter, "{s}");
        assert_eq!(via_fixed, via_cyk, "{s} (CNF preserves tree counts here)");
        assert_eq!(!via_fixed.is_zero(), words::ln_contains(n, w), "{s}");
    }
}

#[test]
fn automaton_grammar_circuit_roundtrips() {
    let n = 3;
    let expect: BTreeSet<String> = words::enumerate_ln(n)
        .into_iter()
        .map(|w| words::to_string(n, w))
        .collect();

    // NFA → grammar → circuit → grammar.
    let nfa = exact_nfa(n);
    let g1 = nfa_to_grammar(&nfa).unwrap();
    assert_eq!(finite_language(&g1).unwrap(), expect);
    let c1 = grammar_to_circuit(&g1).unwrap();
    assert_eq!(c1.language(), expect);
    let g2 = circuit_to_grammar(&c1, &['a', 'b']);
    assert_eq!(finite_language(&g2).unwrap(), expect);

    // DAWG → DFA → NFA → grammar.
    let mut sorted: Vec<String> = expect.iter().cloned().collect();
    sorted.sort();
    let dawg = dawg_of_words(&['a', 'b'], sorted.iter().map(|s| s.as_str()));
    let back = dfa_to_nfa(&dawg);
    assert!(is_unambiguous(&back), "a DFA is a UFA");
    let g3 = dfa_to_grammar(&dawg).unwrap();
    assert_eq!(finite_language(&g3).unwrap(), expect);
}

#[test]
fn determinisation_and_minimisation_preserve_ln() {
    for n in 2..=4usize {
        let nfa = exact_nfa(n);
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimized();
        assert!(min.equivalent(&dfa), "n={n}");
        for w in 0..(1u64 << (2 * n)) {
            let s = words::to_string(n, w);
            assert_eq!(min.accepts(&s), words::ln_contains(n, w), "n={n} {s}");
        }
        assert!(min.state_count() <= dfa.state_count());
    }
}

#[test]
fn nfa_run_counts_equal_grammar_derivation_counts() {
    // The right-linear conversion preserves ambiguity degrees exactly.
    let n = 3;
    let nfa = exact_nfa(n);
    let g = nfa_to_grammar(&nfa).unwrap();
    let counter = TreeCounter::new(&g).unwrap();
    for w in 0..(1u64 << (2 * n)) {
        let s = words::to_string(n, w);
        assert_eq!(counter.count_str(&s), nfa.run_count(&s), "{s}");
    }
}

#[test]
fn unambiguity_equals_determinism_through_the_isomorphism() {
    let amb = appendix_a_grammar(3);
    let una = example4_ucfg(3);
    assert!(!grammar_to_circuit(&amb).unwrap().is_unambiguous());
    assert!(grammar_to_circuit(&una).unwrap().is_unambiguous());
}
