//! Property-based tests of the core invariants: big-integer arithmetic
//! against native oracles, CNF language preservation on random grammars,
//! DAWG exactness and minimality on random word sets, Lemma 15 rectangle
//! round-trips, discrepancy bounds on random rectangles, and the Lemma 21
//! decomposition. Runs on the in-tree `ucfg_support::prop` harness.

use std::collections::BTreeSet;
use ucfg_automata::dawg::dawg_of_words;
use ucfg_core::discrepancy;
use ucfg_core::neat::neat_decomposition;
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rectangle::{SetRectangle, WordRectangle};
use ucfg_core::words;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::decide_unambiguous;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::{Grammar, GrammarBuilder};
use ucfg_support::prop::Gen;
use ucfg_support::rng::{SeedableRng, StdRng};
use ucfg_support::{prop_assert, prop_assert_eq, property};

// ---------- BigUint vs u128 oracle ----------

property! {
    fn biguint_add_mul_match_u128(
        a in |g: &mut Gen| g.int_in(0u128..=u128::MAX / 2),
        b in |g: &mut Gen| g.int_in(0u128..=u128::MAX / 2),
    ) {
        let (ba, bb) = (BigUint::from_u128(a), BigUint::from_u128(b));
        prop_assert_eq!((&ba + &bb).to_u128(), Some(a + b));
        if let Some(m) = a.checked_mul(b) {
            prop_assert_eq!((&ba * &bb).to_u128(), Some(m));
        }
        prop_assert_eq!(ba.abs_diff(&bb).to_u128(), Some(a.abs_diff(b)));
    }

    fn biguint_divrem_matches_u128(
        a in |g: &mut Gen| g.any_u128(),
        b in |g: &mut Gen| g.int_in(1u128..=u128::MAX),
    ) {
        let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    fn biguint_decimal_roundtrip(a in |g: &mut Gen| g.any_u128()) {
        let s = BigUint::from_u128(a).to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap().to_u128(), Some(a));
        prop_assert_eq!(s, a.to_string());
    }

    fn biguint_shift_is_pow2_mul(
        a in |g: &mut Gen| g.any_u64(),
        k in |g: &mut Gen| g.int_in(0u64..60),
    ) {
        let v = BigUint::from_u64(a);
        prop_assert_eq!(v.shl_bits(k), &v * &BigUint::pow2(k));
    }
}

// ---------- Random flat grammars: CNF preserves the language ----------

/// A random finite-language grammar: a couple of layers of alternatives.
fn arb_flat_grammar(g: &mut Gen) -> Grammar {
    let mut word = |g: &mut Gen| g.string_of(&['a', 'b'], 1..=3);
    let w1 = g.vec_of(1..4, &mut word);
    let w2 = g.vec_of(1..4, &mut word);
    let combos = g.vec_of(1..4, |g| g.bool());
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let s = b.nonterminal("S");
    let x = b.nonterminal("X");
    let y = b.nonterminal("Y");
    for w in &w1 {
        b.rule(x, |r| r.ts(w));
    }
    for w in &w2 {
        b.rule(y, |r| r.ts(w));
    }
    for (i, c) in combos.iter().enumerate() {
        match (c, i % 3) {
            (true, 0) => b.rule(s, |r| r.n(x).n(y)),
            (true, _) => b.rule(s, |r| r.n(y).t('a').n(x)),
            (false, 1) => b.rule(s, |r| r.n(x)),
            (false, _) => b.rule(s, |r| r.n(y).n(y)),
        }
    }
    b.build(s)
}

property! {
    cases = 64;
    fn cnf_preserves_language(g in arb_flat_grammar) {
        let lang = finite_language(&g).expect("finite by construction");
        let cnf = CnfGrammar::from_grammar(&g);
        let lang2 = finite_language(&cnf.to_grammar()).expect("finite");
        // The ε flag is handled separately from the grammar view.
        let lang_no_eps: BTreeSet<String> =
            lang.iter().filter(|w| !w.is_empty()).cloned().collect();
        prop_assert_eq!(lang_no_eps, lang2);
        prop_assert!(cnf.size() <= g.size() * g.size().max(1) + 8);
    }

    cases = 64;
    fn unambiguity_decision_is_stable_under_cnf(g in arb_flat_grammar) {
        // If the original grammar is unambiguous, its CNF must be too
        // (the converse can fail because CNF merges duplicate rules).
        if decide_unambiguous(&g).is_unambiguous() {
            let cnf = CnfGrammar::from_grammar(&g);
            prop_assert!(
                ucfg_grammar::count::is_unambiguous_cnf(&cnf, 8),
                "CNF of a uCFG stayed ambiguous"
            );
        }
    }
}

// ---------- DAWG: exactness and minimality on random word sets ----------

property! {
    cases = 64;
    fn dawg_is_exact_and_minimal(
        set in |g: &mut Gen| g.btree_set_of(1..12, |g| g.string_of(&['a', 'b'], 1..=6)),
    ) {
        let sorted: Vec<&str> = set.iter().map(|s| s.as_str()).collect();
        let dawg = dawg_of_words(&['a', 'b'], sorted.iter().copied());
        // Exactness on all words up to length 6.
        for len in 0..=6usize {
            for mask in 0..(1u32 << len) {
                let w: String = (0..len)
                    .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                    .collect();
                prop_assert_eq!(dawg.accepts(&w), set.contains(&w));
            }
        }
        // Minimality against Moore.
        prop_assert_eq!(dawg.state_count(), dawg.minimized().state_count());
    }
}

// ---------- Rectangles: Lemma 15 round-trip on random rectangles ----------

fn arb_partition(n: usize) -> impl FnMut(&mut Gen) -> OrderedPartition {
    move |g: &mut Gen| {
        let i = g.int_in(1..=2 * n);
        let j = g.int_in(i..=2 * n);
        OrderedPartition::new(n, i, j)
    }
}

property! {
    cases = 64;
    fn lemma15_roundtrip_on_random_rectangles(
        part in arb_partition(3),
        s_pick in |g: &mut Gen| g.btree_set_of(0..6, |g| g.int_in(0u64..64)),
        t_pick in |g: &mut Gen| g.btree_set_of(0..6, |g| g.int_in(0u64..64)),
    ) {
        let n = 3;
        let ins = part.inside();
        let outs = part.outside();
        let s: BTreeSet<u64> = s_pick.iter().map(|&x| x & ins).collect();
        let t: BTreeSet<u64> = t_pick.iter().map(|&x| x & outs).collect();
        let r = SetRectangle::new(part, s, t);
        let wr = WordRectangle::from_set_rectangle(&r);
        let back = wr.to_set_rectangle(n);
        // Same member set.
        let members: BTreeSet<u64> = r.members().collect();
        let members2: BTreeSet<u64> = back.members().collect();
        prop_assert_eq!(&members, &members2);
        prop_assert_eq!(wr.len(), r.len());
        // Membership agrees on every word.
        for w in 0..(1u64 << (2 * n)) {
            prop_assert_eq!(r.contains(w), members.contains(&w));
        }
    }
}

// ---------- Discrepancy bounds on random rectangles ----------

property! {
    cases = 32;
    fn lemma19_and_23_hold_on_random_rectangles(seed in |g: &mut Gen| g.any_u64()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 8;
        let m = 2u64;
        // Middle cut: Lemma 19.
        let mid = OrderedPartition::new(n, 1, n);
        let r = discrepancy::random_family_rectangle(n, mid, &mut rng);
        let d = discrepancy::discrepancy(n, &r);
        prop_assert!(BigUint::from_u64(d.unsigned_abs()) <= discrepancy::lemma19_bound(m));
        // Random balanced partition: Lemma 23.
        let all = OrderedPartition::all_balanced(n);
        let part = all[(seed % all.len() as u64) as usize];
        let r = discrepancy::random_family_rectangle(n, part, &mut rng);
        let d = discrepancy::discrepancy(n, &r);
        prop_assert!(discrepancy::within_lemma23_bound(m, d));
    }

    cases = 32;
    fn neat_decomposition_partitions_random_rectangles(seed in |g: &mut Gen| g.any_u64()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 8;
        let all = OrderedPartition::all_balanced(n);
        let part = all[(seed % all.len() as u64) as usize];
        let r = discrepancy::random_family_rectangle(n, part, &mut rng);
        if let Some(dec) = neat_decomposition(&r) {
            prop_assert!(dec.pieces.len() <= 256);
            prop_assert!(dec.partition.is_neat());
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            for p in &dec.pieces {
                for u in p.members() {
                    prop_assert!(seen.insert(u), "pieces overlap");
                }
            }
            let all_members: BTreeSet<u64> = r.members().collect();
            prop_assert_eq!(seen, all_members);
        }
    }
}

// ---------- L_n structure ----------

property! {
    fn ln_membership_bit_trick(
        n in |g: &mut Gen| g.int_in(1usize..=10),
        w in |g: &mut Gen| g.any_u64(),
    ) {
        let w = w & words::low_mask(2 * n);
        let naive = (0..n).any(|i| w >> i & 1 == 1 && w >> (i + n) & 1 == 1);
        prop_assert_eq!(words::ln_contains(n, w), naive);
        prop_assert_eq!(words::witness_count(n, w) > 0, naive);
        // String round-trip.
        let s = words::to_string(n, w);
        prop_assert_eq!(words::from_string(n, &s), Some(w));
    }
}
