//! End-to-end Theorem 1: every representation of `L_n` built by the
//! workspace accepts exactly `L_n`, the claimed size shapes hold, and the
//! unambiguity claims are machine-checked.

use std::collections::BTreeSet;
use ucfg_automata::convert::dfa_to_grammar;
use ucfg_automata::dawg::dawg_of_words;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::ln_grammars::{
    appendix_a_grammar, example3_grammar, example4_size, example4_ucfg, naive_grammar,
};
use ucfg_core::words;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::decide_unambiguous;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::language::finite_language;

fn ln_strings(n: usize) -> BTreeSet<String> {
    words::enumerate_ln(n)
        .into_iter()
        .map(|w| words::to_string(n, w))
        .collect()
}

#[test]
fn all_representations_accept_exactly_ln() {
    for n in 1..=5usize {
        let expect = ln_strings(n);

        // (1) the O(log n) CFG
        let cfg = appendix_a_grammar(n);
        assert_eq!(finite_language(&cfg).unwrap(), expect, "appendix A, n={n}");

        // (3) the exponential uCFG
        let ucfg = example4_ucfg(n);
        assert_eq!(finite_language(&ucfg).unwrap(), expect, "example 4, n={n}");

        // the naive baseline
        assert_eq!(
            finite_language(&naive_grammar(n)).unwrap(),
            expect,
            "naive, n={n}"
        );

        // (2) the exact NFA
        let nfa = exact_nfa(n);
        assert_eq!(
            nfa.accepted_words(2 * n)
                .into_iter()
                .collect::<BTreeSet<_>>(),
            expect,
            "exact NFA, n={n}"
        );
        // the pattern NFA under the promise
        let pat = pattern_nfa(n);
        for w in 0..(1u64 << (2 * n)) {
            let s = words::to_string(n, w);
            assert_eq!(
                pat.accepts(&s),
                words::ln_contains(n, w),
                "pattern NFA, n={n}"
            );
        }

        // the DAWG route
        let mut sorted: Vec<String> = expect.iter().cloned().collect();
        sorted.sort();
        let dawg = dawg_of_words(&['a', 'b'], sorted.iter().map(|s| s.as_str()));
        let dawg_g = dfa_to_grammar(&dawg).unwrap();
        assert_eq!(
            finite_language(&dawg_g).unwrap(),
            expect,
            "DAWG grammar, n={n}"
        );
    }
}

#[test]
fn unambiguity_claims_are_machine_checked() {
    for n in 1..=4usize {
        assert!(
            decide_unambiguous(&example4_ucfg(n)).is_unambiguous(),
            "Example 4 is a uCFG, n={n}"
        );
        assert!(
            decide_unambiguous(&naive_grammar(n)).is_unambiguous(),
            "naive grammar is a uCFG, n={n}"
        );
        let mut sorted: Vec<String> = ln_strings(n).into_iter().collect();
        sorted.sort();
        let dawg = dawg_of_words(&['a', 'b'], sorted.iter().map(|s| s.as_str()));
        assert!(
            decide_unambiguous(&dfa_to_grammar(&dawg).unwrap()).is_unambiguous(),
            "DAWG grammar is a uCFG, n={n}"
        );
        if n >= 2 {
            assert!(
                !decide_unambiguous(&appendix_a_grammar(n)).is_unambiguous(),
                "Appendix A grammar is ambiguous, n={n}"
            );
        }
    }
}

#[test]
fn size_shapes_of_theorem1() {
    // (1) CFG ~ Θ(log n): constant increments under doubling.
    let sizes: Vec<usize> = (4..=14)
        .map(|k| appendix_a_grammar(1usize << k).size())
        .collect();
    for w in sizes.windows(2) {
        let d = w[1] as i64 - w[0] as i64;
        assert!(d.abs() < 60, "not logarithmic: {sizes:?}");
    }

    // (2) pattern NFA ~ Θ(n).
    for n in [16usize, 32, 64, 128] {
        let t = pattern_nfa(n).transition_count();
        assert!(t >= 2 * n && t <= 2 * n + 8, "n={n}: {t}");
    }

    // (3) the Example 4 uCFG grows like 3^n: log₂ roughly doubles with n.
    for n in [8u64, 16, 32] {
        let l1 = example4_size(n).log2_approx();
        let l2 = example4_size(2 * n).log2_approx();
        assert!(l2 > 1.7 * l1, "n={n}: {l1} vs {l2}");
        assert!(
            example4_size(n) >= BigUint::pow2(n - 1),
            "2^Ω(n) floor, n={n}"
        );
    }
}

#[test]
fn example3_matches_its_target_language() {
    for n in 0..=2usize {
        let g = example3_grammar(n);
        let target = (1usize << n) + 1;
        assert_eq!(
            finite_language(&g).unwrap(),
            ln_strings(target),
            "G_{n} ↦ L_{target}"
        );
        assert_eq!(g.size(), 6 * n + 10);
    }
}

#[test]
fn earley_and_materialisation_agree() {
    let n = 4;
    let g = appendix_a_grammar(n);
    let earley = Earley::new(&g);
    for w in 0..(1u64 << (2 * n)) {
        let s = words::to_string(n, w);
        assert_eq!(earley.recognize_str(&s), words::ln_contains(n, w), "{s}");
    }
}

#[test]
fn language_count_closed_form() {
    for n in 1..=6usize {
        assert_eq!(
            words::ln_size(n).to_u64().unwrap() as usize,
            ln_strings(n).len(),
            "4^n − 3^n, n={n}"
        );
    }
}
