//! The full Proposition 7 → Proposition 16 certification chain on real
//! grammars, plus the rank-bound cross-check — the paper's Section 3 and
//! Section 4 working together.

use ucfg_core::cover::{
    discrepancy_accounting, example8_cover, extraction_to_set_rectangles, implied_size_bound,
    verify_cover,
};
use ucfg_core::discrepancy;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg, naive_grammar};
use ucfg_core::rank;
use ucfg_grammar::normal_form::CnfGrammar;

#[test]
fn ucfg_to_certified_disjoint_cover() {
    // The pipeline of Theorem 12: uCFG → annotated CNF → disjoint balanced
    // rectangle cover → discrepancy accounting.
    let n = 4;
    let m = 1u64;
    for (name, g) in [("example4", example4_ucfg(n)), ("naive", naive_grammar(n))] {
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 2 * n).expect("fixed length");
        let rects = extraction_to_set_rectangles(n, &res);
        let rep = verify_cover(n, &rects);
        assert!(rep.covers_exactly, "{name}");
        assert!(rep.disjoint, "{name}: uCFG extraction must be disjoint");
        assert!(rep.all_balanced, "{name}");
        assert!(rects.len() <= res.bound, "{name}: ℓ ≤ n|G|");

        let (discs, ok) = discrepancy_accounting(n, &rects);
        assert!(ok, "{name}: Σ disc = 12^m − 8^m");
        // Every individual rectangle obeys the Lemma 23 regime (they are
        // balanced; neatness only matters for the proof's constants).
        for &d in &discs {
            assert!(
                discrepancy::within_lemma23_bound(m, d) || d.unsigned_abs() <= 16,
                "{name}: |disc| = {d}"
            );
        }
        assert!(rects.len() >= implied_size_bound(n, &rects), "{name}");
    }
}

#[test]
fn ambiguous_extraction_covers_but_need_not_be_disjoint() {
    let n = 4;
    let g = appendix_a_grammar(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let res = extract_cover(&cnf, 2 * n).expect("fixed length");
    let rects = extraction_to_set_rectangles(n, &res);
    let rep = verify_cover(n, &rects);
    assert!(rep.covers_exactly);
    assert!(rep.all_balanced);
    // (Disjointness is not guaranteed — and the paper's whole point is
    // that ambiguous covers can be much smaller.)
}

#[test]
fn example8_is_the_cheap_ambiguous_cover() {
    for n in [4usize, 5, 6] {
        let rects = example8_cover(n);
        let rep = verify_cover(n, &rects);
        assert_eq!(rep.size, n);
        assert!(
            rep.covers_exactly && rep.all_balanced && !rep.disjoint,
            "n={n}"
        );
    }
}

#[test]
fn rank_bound_dwarfs_the_ambiguous_cover() {
    // The Theorem 17 regime: a disjoint cover by [1,n]-rectangles needs
    // 2^n − 1 rectangles, while the ambiguous cover has n.
    for n in [4usize, 6, 8] {
        let r = rank::rank_gf2(n);
        assert_eq!(r, (1 << n) - 1);
        assert!(r > n, "n={n}");
        if n >= 6 {
            assert!(r > 10 * n, "n={n}: exponential vs linear");
        }
    }
}

#[test]
fn discrepancy_bound_consistency_across_n() {
    // Lemma 18 identities at scale (closed forms), and the Prop 16 bound's
    // exponential growth.
    for m in [4u64, 8, 16, 32, 64] {
        assert!(discrepancy::lemma18_inequality_holds(m), "m={m}");
        // log₂ ℓ ≈ (log₂ 12 − 10/3)·m ≈ 0.2516·m, up to the −8^m term.
        let lb = discrepancy::cover_lower_bound_log2(m);
        assert!(lb > 0.25 * m as f64 - 2.0, "m={m}: {lb}");
        assert!(lb < 0.26 * m as f64 + 1.0, "m={m}: {lb}");
    }
}

#[test]
fn neat_refinement_preserves_the_accounting() {
    // Prop. 16's final step: refine every rectangle of a disjoint cover
    // into neat pieces (Lemma 21); the refined family is still a disjoint
    // cover and its discrepancies still sum to the gap.
    let n = 4;
    let g = example4_ucfg(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let res = extract_cover(&cnf, 2 * n).unwrap();
    let rects = extraction_to_set_rectangles(n, &res);
    let mut refined = Vec::new();
    for r in &rects {
        match ucfg_core::neat::neat_decomposition(&r.clone()) {
            Some(dec) => {
                assert!(dec.partition.is_neat());
                refined.extend(dec.pieces);
            }
            None => refined.push(r.clone()),
        }
    }
    let rep = verify_cover(n, &refined);
    assert!(rep.covers_exactly, "refinement stays a cover");
    assert!(rep.disjoint, "refinement stays disjoint");
    let (_d, ok) = discrepancy_accounting(n, &refined);
    assert!(ok, "Σ disc over the neat refinement = 12^m − 8^m");
    assert!(refined.len() >= rects.len());
    assert!(refined.len() <= 256 * rects.len(), "Lemma 21's factor");
}

#[test]
fn extraction_bound_is_meaningful() {
    // ℓ ≤ n·|G| is not vacuous: on these inputs extraction uses far fewer
    // rectangles than the bound, but more than the ambiguous minimum.
    let n = 3;
    let g = example4_ucfg(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let res = extract_cover(&cnf, 2 * n).unwrap();
    assert!(res.rectangles.len() > 1);
    assert!(res.rectangles.len() < res.bound);
}
