//! Edge-case battery: boundary parameters and degenerate inputs across
//! all crates. Each test pins a distinct behaviour a downstream user
//! could trip over.

use std::collections::BTreeSet;
use ucfg_automata::dawg::dawg_of_words;
use ucfg_automata::dfa::Dfa;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa, word_in_ln};
use ucfg_automata::nfa::Nfa;
use ucfg_core::discrepancy;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_size, example4_ucfg, naive_grammar};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rectangle::{SetRectangle, WordRectangle};
use ucfg_core::words;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::decide_unambiguous;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::GrammarBuilder;

// ---------- n = 1: the smallest L_n ----------

#[test]
fn n_equals_one_everywhere() {
    assert_eq!(words::ln_size(1).to_u64(), Some(1));
    assert_eq!(words::enumerate_ln(1), vec![0b11]);
    assert_eq!(words::to_string(1, 0b11), "aa");

    let cfg = appendix_a_grammar(1);
    assert_eq!(
        finite_language(&cfg).unwrap(),
        BTreeSet::from(["aa".to_string()])
    );
    let ucfg = example4_ucfg(1);
    assert!(decide_unambiguous(&ucfg).is_unambiguous());
    assert_eq!(example4_size(1).to_u64(), Some(ucfg.size() as u64));
    assert!(exact_nfa(1).accepts("aa"));
    assert!(!exact_nfa(1).accepts("ab"));
    assert!(pattern_nfa(1).accepts("aa"));
    assert!(word_in_ln(1, "aa"));

    // Extraction at the smallest size.
    let res = extract_cover(&CnfGrammar::from_grammar(&ucfg), 2).unwrap();
    assert!(res.is_disjoint());
    assert_eq!(res.covered_words(), BTreeSet::from(["aa".to_string()]));
}

// ---------- single-word and single-letter grammars ----------

#[test]
fn single_letter_grammar() {
    let mut b = GrammarBuilder::new(&['a']);
    let s = b.nonterminal("S");
    b.rule(s, |r| r.t('a'));
    let g = b.build(s);
    let cnf = CnfGrammar::from_grammar(&g);
    assert_eq!(cnf.size(), 1);
    assert!(ucfg_grammar::cyk::recognize(
        &cnf,
        &cnf.encode("a").unwrap()
    ));
    assert!(!ucfg_grammar::cyk::recognize(
        &cnf,
        &cnf.encode("aa").unwrap()
    ));
    assert!(decide_unambiguous(&g).is_unambiguous());
    // Annotation of a length-1 language.
    let ann = ucfg_grammar::annotated::annotate(&cnf, 1).unwrap();
    assert_eq!(ann.cnf.size(), 1);
}

#[test]
fn grammar_with_duplicate_alternatives_is_ambiguous() {
    // Two identical rules = two parse trees per word.
    let mut b = GrammarBuilder::new(&['a']);
    let s = b.nonterminal("S");
    b.rule(s, |r| r.t('a'));
    b.rule(s, |r| r.t('a'));
    match decide_unambiguous(&b.build(s)) {
        ucfg_grammar::count::UnambiguityVerdict::Ambiguous { degree, .. } => {
            assert_eq!(degree.to_u64(), Some(2));
        }
        v => panic!("duplicate rules must be ambiguous, got {v:?}"),
    }
}

// ---------- empty-language corners ----------

#[test]
fn empty_language_pipelines() {
    let mut b = GrammarBuilder::new(&['a']);
    let s = b.nonterminal("S");
    b.rule(s, |r| r.n(s).t('a')); // no base case
    let g = b.build(s);
    assert_eq!(finite_language(&g), Some(BTreeSet::new()));
    assert!(
        decide_unambiguous(&g).is_unambiguous(),
        "vacuously unambiguous"
    );
    let cnf = CnfGrammar::from_grammar(&g);
    assert_eq!(cnf.rule_count(), 0);

    // Empty NFA.
    let empty = Nfa::new(&['a'], 0);
    assert!(!empty.accepts(""));
    assert!(!empty.accepts("a"));
    let d = Dfa::from_nfa(&empty);
    assert!(!d.accepts(""));
    assert_eq!(d.minimized().state_count(), 1);
}

// ---------- rectangles at extreme partitions ----------

#[test]
fn full_width_interval_partition() {
    // [1, 2n] puts everything inside; the outside is empty.
    let n = 3;
    let part = OrderedPartition::new(n, 1, 2 * n);
    assert_eq!(part.outside(), 0);
    assert!(!part.is_balanced());
    // A rectangle there is just a word set × {∅}.
    let members: BTreeSet<u64> = words::enumerate_ln(n).into_iter().collect();
    let r = SetRectangle::from_exact_set(part, &members).expect("everything is inside");
    assert_eq!(r.len(), members.len());
}

#[test]
fn singleton_word_rectangle() {
    // Any single word is a balanced rectangle (the paper's remark).
    let n = 3;
    let w = words::from_string(n, "ababab").unwrap();
    let part = OrderedPartition::new(n, 2, n + 1); // balanced: |Π₀| = n
    assert!(part.is_balanced());
    let r = SetRectangle::from_exact_set(part, &BTreeSet::from([w])).unwrap();
    assert_eq!(r.len(), 1);
    let wr = WordRectangle::from_set_rectangle(&r);
    assert!(wr.is_balanced());
    assert_eq!(wr.words(), BTreeSet::from(["ababab".to_string()]));
}

// ---------- discrepancy corners ----------

#[test]
fn discrepancy_of_empty_and_full_rectangles() {
    let n = 4;
    let m = 1u64;
    let part = OrderedPartition::new(n, 1, n);
    let empty = SetRectangle::new(part, BTreeSet::new(), BTreeSet::new());
    assert_eq!(discrepancy::discrepancy(n, &empty), 0);

    // The full rectangle over 𝓛's projections has discrepancy |A| − |B|
    // = −2^{3m}.
    let fam = discrepancy::enumerate_family(n);
    let s: BTreeSet<u64> = fam.iter().map(|&w| w & part.inside()).collect();
    let t: BTreeSet<u64> = fam.iter().map(|&w| w & part.outside()).collect();
    let full = SetRectangle::new(part, s, t);
    assert_eq!(discrepancy::discrepancy(n, &full), -(1i64 << (3 * m)));
}

#[test]
fn supports_blocks_boundaries() {
    assert!(!discrepancy::supports_blocks(0));
    assert!(!discrepancy::supports_blocks(2));
    assert!(discrepancy::supports_blocks(4));
    assert!(!discrepancy::supports_blocks(6));
    assert!(discrepancy::supports_blocks(32));
    assert!(!discrepancy::supports_blocks(36)); // 2n > 64
}

// ---------- automata corners ----------

#[test]
fn dawg_of_single_word_is_a_chain() {
    let d = dawg_of_words(&['a', 'b'], ["abab"]);
    assert_eq!(d.state_count(), 5);
    assert!(d.accepts("abab"));
    assert!(!d.accepts("aba"));
    let words: Vec<String> = d.words_lex(10).collect();
    assert_eq!(words, vec!["abab"]);
}

#[test]
fn nfa_with_unreachable_accepting_state() {
    let mut n = Nfa::new(&['a'], 3);
    n.set_initial(0);
    n.add_transition(0, 'a', 1);
    n.set_accepting(2); // unreachable
    assert!(!n.accepts("a"));
    assert_eq!(n.trimmed().state_count(), 0, "nothing useful remains");
    assert!(ucfg_automata::ambiguity::is_unambiguous(&n));
}

#[test]
fn pattern_nfa_rejects_shorter_contexts() {
    // Σ* a Σ^{n-1} a Σ*: the minimum accepted length is n + 1.
    for n in 1..=5usize {
        let a = pattern_nfa(n);
        let shortest = format!("a{}a", "b".repeat(n - 1));
        assert!(a.accepts(&shortest), "n={n}");
        assert!(!a.accepts(&shortest[..shortest.len() - 1]), "n={n}");
    }
}

// ---------- BigUint corners ----------

#[test]
fn biguint_boundary_arithmetic() {
    let max64 = BigUint::from_u64(u64::MAX);
    let one = BigUint::one();
    let sum = &max64 + &one;
    assert_eq!(sum.to_u128(), Some(1u128 << 64));
    assert_eq!(sum.checked_sub(&one).unwrap(), max64);
    assert!(max64.checked_sub(&sum).is_none());
    // Division of equal values.
    let (q, r) = sum.div_rem(&sum);
    assert!(q.is_one() && r.is_zero());
    // pow2 at limb boundaries.
    for k in [31u64, 32, 63, 64, 65] {
        assert_eq!(BigUint::pow2(k).bits(), k + 1);
    }
}

// ---------- naive grammar = the materialisation bound ----------

#[test]
fn naive_grammar_is_exactly_materialisation_size() {
    for n in 1..=4usize {
        let g = naive_grammar(n);
        let expect = 2 * n as u64 * words::ln_size(n).to_u64().unwrap();
        assert_eq!(g.size() as u64, expect, "n={n}");
        // The DAWG beats the naive grammar once there is sharing to
        // exploit (n ≥ 2; at n = 1 the single word makes the right-linear
        // overhead visible: 4 vs 2).
        let mut sorted: Vec<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        sorted.sort();
        let dawg = dawg_of_words(&['a', 'b'], sorted.iter().map(|s| s.as_str()));
        let dawg_g = ucfg_automata::convert::dfa_to_grammar(&dawg).unwrap();
        if n >= 2 {
            assert!(dawg_g.size() as u64 <= expect, "n={n}");
        } else {
            assert_eq!(dawg_g.size(), 4);
        }
    }
}
