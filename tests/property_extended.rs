//! Property tests for the extension modules: regexes vs the Glushkov
//! construction, grammar combinators, semiring counting, rank/unrank,
//! SLP random access, and the grammar text format.

use proptest::prelude::*;
use std::collections::BTreeSet;
use ucfg_automata::regex::Regex;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::TreeCounter;
use ucfg_grammar::enumerate::Unranker;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::ops;
use ucfg_grammar::slp::Slp;
use ucfg_grammar::text::{parse_grammar, print_grammar};
use ucfg_grammar::weighted::{inside_at, Count, UnitWeights};
use ucfg_grammar::GrammarBuilder;

// ---------- Random regexes vs the Glushkov automaton ----------

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Letter('a')),
        Just(Regex::Letter('b')),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Regex::Alt(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Regex::Star(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn glushkov_matches_backtracking_oracle(r in arb_regex()) {
        let nfa = r.glushkov();
        for len in 0..=5usize {
            for mask in 0..(1u32 << len) {
                let w: String = (0..len)
                    .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                    .collect();
                prop_assert_eq!(nfa.accepts(&w), r.matches(&w), "{:?} on {}", r, w);
            }
        }
    }
}

// ---------- Grammar combinators ----------

fn arb_words() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set("[ab]{1,4}", 1..5)
        .prop_map(|s| s.into_iter().collect())
}

fn literal_grammar(words: &[String]) -> ucfg_grammar::Grammar {
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let s = b.nonterminal("S");
    for w in words {
        b.rule(s, |r| r.ts(w));
    }
    b.build(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn union_concat_reverse_semantics(w1 in arb_words(), w2 in arb_words()) {
        let g1 = literal_grammar(&w1);
        let g2 = literal_grammar(&w2);
        let s1: BTreeSet<String> = w1.iter().cloned().collect();
        let s2: BTreeSet<String> = w2.iter().cloned().collect();

        let u = finite_language(&ops::union(&g1, &g2)).unwrap();
        let expect: BTreeSet<String> = s1.union(&s2).cloned().collect();
        prop_assert_eq!(u, expect);

        let c = finite_language(&ops::concat(&g1, &g2)).unwrap();
        let expect: BTreeSet<String> =
            s1.iter().flat_map(|a| s2.iter().map(move |b| format!("{a}{b}"))).collect();
        prop_assert_eq!(c, expect);

        let r = finite_language(&ops::reverse(&g1)).unwrap();
        let expect: BTreeSet<String> =
            s1.iter().map(|w| w.chars().rev().collect()).collect();
        prop_assert_eq!(r, expect);
    }

    #[test]
    fn semiring_count_equals_tree_counts(w1 in arb_words()) {
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let counter = TreeCounter::new(&g).unwrap();
        // Sum over every length: Σ_w #trees(w) via both routes.
        for len in 1..=4usize {
            let Count(via_semiring) = inside_at(&cnf, &UnitWeights, len);
            let via_counter: BigUint = w1
                .iter()
                .filter(|w| w.chars().count() == len)
                .map(|w| counter.count_str(w))
                .sum();
            prop_assert_eq!(via_semiring, via_counter, "len {}", len);
        }
    }

    #[test]
    fn unrank_rank_roundtrip_random_grammars(w1 in arb_words()) {
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let u = Unranker::new(&cnf, 4);
        for len in 1..=4usize {
            let total = u.total(len).to_u64().unwrap();
            let mut seen = BTreeSet::new();
            for i in 0..total {
                let idx = BigUint::from_u64(i);
                let t = u.unrank(len, &idx).unwrap();
                prop_assert_eq!(u.rank(&t), Some(idx));
                seen.insert(t.yield_terminals());
            }
            // Literal grammars are unambiguous → trees biject with words.
            let expect = w1.iter().filter(|w| w.chars().count() == len).count();
            prop_assert_eq!(seen.len(), expect, "len {}", len);
        }
    }

    #[test]
    fn text_format_roundtrip(w1 in arb_words()) {
        let g = literal_grammar(&w1);
        let printed = print_grammar(&g);
        let back = parse_grammar(&printed).unwrap();
        prop_assert_eq!(finite_language(&back), finite_language(&g));
    }
}

// ---------- Parser agreement on random grammars ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn earley_cyk_and_membership_agree(w1 in arb_words(), probe in "[ab]{0,5}") {
        use ucfg_grammar::cyk;
        use ucfg_grammar::earley::Earley;
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let earley = Earley::new(&g);
        let in_set = w1.iter().any(|w| w == &probe);
        prop_assert_eq!(earley.recognize_str(&probe), in_set);
        if let Some(encoded) = cnf.encode(&probe) {
            prop_assert_eq!(cyk::recognize(&cnf, &encoded), in_set);
        }
    }

    #[test]
    fn lint_clean_iff_trim_stable_on_literals(w1 in arb_words()) {
        use ucfg_grammar::lint::{has_warnings, lint};
        // Literal grammars from distinct words are always lint-clean.
        let g = literal_grammar(&w1);
        let findings = lint(&g);
        prop_assert!(!has_warnings(&findings), "{:?}", findings);
    }
}

// ---------- SLP random access ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slp_char_at_matches_expansion(w in "[ab]{1,12}") {
        let slp = Slp::literal(&['a', 'b'], &w);
        let expanded: Vec<char> = slp.expand().chars().collect();
        prop_assert_eq!(&expanded, &w.chars().collect::<Vec<_>>());
        for (i, &c) in expanded.iter().enumerate() {
            prop_assert_eq!(slp.char_at(i as u64), Some(c));
        }
        prop_assert_eq!(slp.char_at(expanded.len() as u64), None);
    }

    #[test]
    fn slp_unary_length(m in 1u64..2000) {
        let slp = Slp::unary('a', m);
        prop_assert_eq!(slp.word_length().to_u64(), Some(m));
        prop_assert_eq!(slp.char_at(m - 1), Some('a'));
        prop_assert_eq!(slp.char_at(m), None);
        // Logarithmic size.
        prop_assert!(slp.size() <= 3 * 12 + 4);
    }
}

// ---------- Proposition 7 on random unambiguous grammars ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn extraction_on_random_fixed_length_word_sets(
        set in proptest::collection::btree_set("[ab]{4}", 1..14)
    ) {
        use ucfg_core::extract::extract_cover;
        let words: Vec<String> = set.iter().cloned().collect();
        let g = literal_grammar(&words);
        // Distinct literal alternatives → unambiguous.
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 4).unwrap();
        prop_assert_eq!(res.covered_words(), set.clone());
        prop_assert!(res.is_disjoint(), "uCFG extraction must be disjoint");
        prop_assert!(res.all_balanced());
        prop_assert!(res.rectangles.len() <= res.bound);
    }

    #[test]
    fn selection_on_random_join_circuits(seed in 0u64..1000) {
        use ucfg_factorized::join::{factorized_path_join, BinaryRelation};
        use ucfg_factorized::select::{project_out, select_position};
        // Deterministic pseudo-random 2-layer chain.
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let pairs1: Vec<(u32, u32)> =
            (0..6).map(|_| ((next() % 3) as u32, (next() % 3) as u32)).collect();
        let pairs2: Vec<(u32, u32)> =
            (0..6).map(|_| ((next() % 3) as u32, (next() % 3) as u32)).collect();
        let rels = vec![
            BinaryRelation::from_pairs(pairs1),
            BinaryRelation::from_pairs(pairs2),
        ];
        let circ = factorized_path_join(&rels);
        let lang = circ.language();
        if lang.is_empty() {
            return Ok(());
        }
        for pos in 0..3usize {
            // Selection agrees with the materialised filter.
            let sel = select_position(&circ, pos, '1').unwrap();
            let expect: BTreeSet<String> =
                lang.iter().filter(|w| w.as_bytes()[pos] == b'1').cloned().collect();
            prop_assert_eq!(sel.language(), expect);
            // Projection agrees with materialised deletion.
            let proj = project_out(&circ, pos).unwrap();
            let expect: BTreeSet<String> = lang
                .iter()
                .map(|w| {
                    w.chars().enumerate().filter(|&(i, _)| i != pos).map(|(_, c)| c).collect()
                })
                .collect();
            prop_assert_eq!(proj.language(), expect);
        }
    }
}

// ---------- The L_n protocol view ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn example8_protocol_certificates_count_witnesses(n in 3usize..=5) {
        use ucfg_core::comm::NondetProtocol;
        use ucfg_core::cover::example8_cover;
        use ucfg_core::words;
        let p = NondetProtocol::from_cover(example8_cover(n));
        // Certificates of w = witnessing pairs of w.
        for w in 0..(1u64 << (2 * n)) {
            prop_assert_eq!(
                p.certificate_count(w) as u32,
                words::witness_count(n, w)
            );
        }
    }
}
