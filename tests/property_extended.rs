//! Property tests for the extension modules: regexes vs the Glushkov
//! construction, grammar combinators, semiring counting, rank/unrank,
//! SLP random access, and the grammar text format. Runs on the in-tree
//! `ucfg_support::prop` harness.

use std::collections::BTreeSet;
use ucfg_automata::regex::Regex;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::count::TreeCounter;
use ucfg_grammar::enumerate::Unranker;
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::ops;
use ucfg_grammar::slp::Slp;
use ucfg_grammar::text::{parse_grammar, print_grammar};
use ucfg_grammar::weighted::{inside_at, Count, UnitWeights};
use ucfg_grammar::GrammarBuilder;
use ucfg_support::prop::{CaseError, Gen};
use ucfg_support::{prop_assert, prop_assert_eq, property};

// ---------- Random regexes vs the Glushkov automaton ----------

fn arb_regex_depth(g: &mut Gen, depth: usize) -> Regex {
    let leaf_only = depth == 0;
    let pick = if leaf_only {
        g.int_in(0usize..3)
    } else {
        g.int_in(0usize..6)
    };
    match pick {
        0 => Regex::Epsilon,
        1 => Regex::Letter('a'),
        2 => Regex::Letter('b'),
        3 => Regex::Concat(
            Box::new(arb_regex_depth(g, depth - 1)),
            Box::new(arb_regex_depth(g, depth - 1)),
        ),
        4 => Regex::Alt(
            Box::new(arb_regex_depth(g, depth - 1)),
            Box::new(arb_regex_depth(g, depth - 1)),
        ),
        _ => Regex::Star(Box::new(arb_regex_depth(g, depth - 1))),
    }
}

fn arb_regex(g: &mut Gen) -> Regex {
    // Size scales the recursion depth, mirroring proptest's `prop_recursive`.
    let depth = (3.0 * g.size()).ceil() as usize;
    arb_regex_depth(g, depth)
}

property! {
    cases = 48;
    fn glushkov_matches_backtracking_oracle(r in arb_regex) {
        let nfa = r.glushkov();
        for len in 0..=5usize {
            for mask in 0..(1u32 << len) {
                let w: String = (0..len)
                    .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                    .collect();
                prop_assert_eq!(nfa.accepts(&w), r.matches(&w), "{:?} on {}", r, w);
            }
        }
    }
}

// ---------- Grammar combinators ----------

fn arb_words(g: &mut Gen) -> Vec<String> {
    g.btree_set_of(1..5, |g| g.string_of(&['a', 'b'], 1..=4))
        .into_iter()
        .collect()
}

fn literal_grammar(words: &[String]) -> ucfg_grammar::Grammar {
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let s = b.nonterminal("S");
    for w in words {
        b.rule(s, |r| r.ts(w));
    }
    b.build(s)
}

property! {
    cases = 48;
    fn union_concat_reverse_semantics(w1 in arb_words, w2 in arb_words) {
        let g1 = literal_grammar(&w1);
        let g2 = literal_grammar(&w2);
        let s1: BTreeSet<String> = w1.iter().cloned().collect();
        let s2: BTreeSet<String> = w2.iter().cloned().collect();

        let u = finite_language(&ops::union(&g1, &g2)).unwrap();
        let expect: BTreeSet<String> = s1.union(&s2).cloned().collect();
        prop_assert_eq!(u, expect);

        let c = finite_language(&ops::concat(&g1, &g2)).unwrap();
        let expect: BTreeSet<String> =
            s1.iter().flat_map(|a| s2.iter().map(move |b| format!("{a}{b}"))).collect();
        prop_assert_eq!(c, expect);

        let r = finite_language(&ops::reverse(&g1)).unwrap();
        let expect: BTreeSet<String> =
            s1.iter().map(|w| w.chars().rev().collect()).collect();
        prop_assert_eq!(r, expect);
    }

    cases = 48;
    fn semiring_count_equals_tree_counts(w1 in arb_words) {
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let counter = TreeCounter::new(&g).unwrap();
        // Sum over every length: Σ_w #trees(w) via both routes.
        for len in 1..=4usize {
            let Count(via_semiring) = inside_at(&cnf, &UnitWeights, len);
            let via_counter: BigUint = w1
                .iter()
                .filter(|w| w.chars().count() == len)
                .map(|w| counter.count_str(w))
                .sum();
            prop_assert_eq!(via_semiring, via_counter, "len {}", len);
        }
    }

    cases = 48;
    fn unrank_rank_roundtrip_random_grammars(w1 in arb_words) {
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let u = Unranker::new(&cnf, 4);
        for len in 1..=4usize {
            let total = u.total(len).to_u64().unwrap();
            let mut seen = BTreeSet::new();
            for i in 0..total {
                let idx = BigUint::from_u64(i);
                let t = u.unrank(len, &idx).unwrap();
                prop_assert_eq!(u.rank(&t), Some(idx));
                seen.insert(t.yield_terminals());
            }
            // Literal grammars are unambiguous → trees biject with words.
            let expect = w1.iter().filter(|w| w.chars().count() == len).count();
            prop_assert_eq!(seen.len(), expect, "len {}", len);
        }
    }

    cases = 48;
    fn text_format_roundtrip(w1 in arb_words) {
        let g = literal_grammar(&w1);
        let printed = print_grammar(&g);
        let back = parse_grammar(&printed).unwrap();
        prop_assert_eq!(finite_language(&back), finite_language(&g));
    }
}

// ---------- Parser agreement on random grammars ----------

property! {
    cases = 48;
    fn earley_cyk_and_membership_agree(
        w1 in arb_words,
        probe in |g: &mut Gen| g.string_of(&['a', 'b'], 0..=5),
    ) {
        use ucfg_grammar::cyk;
        use ucfg_grammar::earley::Earley;
        let g = literal_grammar(&w1);
        let cnf = CnfGrammar::from_grammar(&g);
        let earley = Earley::new(&g);
        let in_set = w1.iter().any(|w| w == &probe);
        prop_assert_eq!(earley.recognize_str(&probe), in_set);
        if let Some(encoded) = cnf.encode(&probe) {
            prop_assert_eq!(cyk::recognize(&cnf, &encoded), in_set);
        }
    }

    cases = 48;
    fn lint_clean_iff_trim_stable_on_literals(w1 in arb_words) {
        use ucfg_grammar::lint::{has_warnings, lint};
        // Literal grammars from distinct words are always lint-clean.
        let g = literal_grammar(&w1);
        let findings = lint(&g);
        prop_assert!(!has_warnings(&findings), "{:?}", findings);
    }
}

// ---------- SLP random access ----------

property! {
    cases = 48;
    fn slp_char_at_matches_expansion(
        w in |g: &mut Gen| g.string_of(&['a', 'b'], 1..=12),
    ) {
        let slp = Slp::literal(&['a', 'b'], &w);
        let expanded: Vec<char> = slp.expand().chars().collect();
        prop_assert_eq!(&expanded, &w.chars().collect::<Vec<_>>());
        for (i, &c) in expanded.iter().enumerate() {
            prop_assert_eq!(slp.char_at(i as u64), Some(c));
        }
        prop_assert_eq!(slp.char_at(expanded.len() as u64), None);
    }

    cases = 48;
    fn slp_unary_length(m in |g: &mut Gen| g.int_in(1u64..2000)) {
        let slp = Slp::unary('a', m);
        prop_assert_eq!(slp.word_length().to_u64(), Some(m));
        prop_assert_eq!(slp.char_at(m - 1), Some('a'));
        prop_assert_eq!(slp.char_at(m), None);
        // Logarithmic size.
        prop_assert!(slp.size() <= 3 * 12 + 4);
    }
}

// ---------- Proposition 7 on random unambiguous grammars ----------

property! {
    cases = 32;
    fn extraction_on_random_fixed_length_word_sets(
        set in |g: &mut Gen| g.btree_set_of(1..14, |g| g.string_of(&['a', 'b'], 4..=4)),
    ) {
        use ucfg_core::extract::extract_cover;
        let words: Vec<String> = set.iter().cloned().collect();
        let g = literal_grammar(&words);
        // Distinct literal alternatives → unambiguous.
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 4).unwrap();
        prop_assert_eq!(res.covered_words(), set.clone());
        prop_assert!(res.is_disjoint(), "uCFG extraction must be disjoint");
        prop_assert!(res.all_balanced());
        prop_assert!(res.rectangles.len() <= res.bound);
    }

    cases = 32;
    fn selection_on_random_join_circuits(seed in |g: &mut Gen| g.int_in(0u64..1000)) {
        return check_selection_on_join_circuits(seed);
    }
}

/// The body of `selection_on_random_join_circuits`, factored out so the
/// historical regression seed can be pinned as an explicit test below.
fn check_selection_on_join_circuits(seed: u64) -> Result<(), CaseError> {
    use ucfg_factorized::join::{factorized_path_join, BinaryRelation};
    use ucfg_factorized::select::{project_out, select_position};
    // Deterministic pseudo-random 2-layer chain.
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let pairs1: Vec<(u32, u32)> = (0..6)
        .map(|_| ((next() % 3) as u32, (next() % 3) as u32))
        .collect();
    let pairs2: Vec<(u32, u32)> = (0..6)
        .map(|_| ((next() % 3) as u32, (next() % 3) as u32))
        .collect();
    let rels = vec![
        BinaryRelation::from_pairs(pairs1),
        BinaryRelation::from_pairs(pairs2),
    ];
    let circ = factorized_path_join(&rels);
    let lang = circ.language();
    if lang.is_empty() {
        return Ok(());
    }
    for pos in 0..3usize {
        // Selection agrees with the materialised filter.
        let sel = select_position(&circ, pos, '1').unwrap();
        let expect: BTreeSet<String> = lang
            .iter()
            .filter(|w| w.as_bytes()[pos] == b'1')
            .cloned()
            .collect();
        prop_assert_eq!(sel.language(), expect);
        // Projection agrees with materialised deletion.
        let proj = project_out(&circ, pos).unwrap();
        let expect: BTreeSet<String> = lang
            .iter()
            .map(|w| {
                w.chars()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, c)| c)
                    .collect()
            })
            .collect();
        prop_assert_eq!(proj.language(), expect);
    }
    Ok(())
}

/// Historical shrink from the proptest era (`property_extended.proptest-regressions`
/// recorded "shrinks to seed = 159"): keep it pinned forever.
#[test]
fn selection_on_join_circuits_regression_seed_159() {
    if let Err(e) = check_selection_on_join_circuits(159) {
        panic!("regression seed 159 failed: {e}");
    }
}

// ---------- The L_n protocol view ----------

property! {
    cases = 16;
    fn example8_protocol_certificates_count_witnesses(
        n in |g: &mut Gen| g.int_in(3usize..=5),
    ) {
        use ucfg_core::comm::NondetProtocol;
        use ucfg_core::cover::example8_cover;
        use ucfg_core::words;
        let p = NondetProtocol::from_cover(example8_cover(n));
        // Certificates of w = witnessing pairs of w.
        for w in 0..(1u64 << (2 * n)) {
            prop_assert_eq!(
                p.certificate_count(w) as u32,
                words::witness_count(n, w)
            );
        }
    }
}
