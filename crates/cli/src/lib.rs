//! # ucfg-cli — command implementations
//!
//! The logic behind the `ucfg` binary, kept in a library so every command
//! is unit-testable. Commands operate on the paper's language `L_n`, on
//! grammars in the text format of `ucfg_grammar::text`, and on the
//! lower-bound machinery of `ucfg-core`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::{appendix_a_grammar, example3_grammar, example4_ucfg};
use ucfg_core::separation::separation_row;
use ucfg_core::words;
use ucfg_grammar::count::{decide_unambiguous, UnambiguityVerdict};
use ucfg_grammar::language::finite_language;
use ucfg_grammar::lint;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::text::{parse_grammar, print_grammar};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

fn parse_n(s: &str) -> Result<usize, CliError> {
    let n: usize = s.parse().map_err(|_| err(format!("not a number: {s}")))?;
    if n == 0 || n > 32 {
        return Err(err("n must be in 1..=32"));
    }
    Ok(n)
}

/// `ucfg member <n> <word>` — is the word in `L_n`?
pub fn cmd_member(n: &str, word: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let w = words::from_string(n, word)
        .ok_or_else(|| err(format!("word must be over {{a,b}} with length {}", 2 * n)))?;
    Ok(format!(
        "{word} ∈ L_{n}: {} (witnessing pairs: {})\n",
        words::ln_contains(n, w),
        words::witness_count(n, w)
    ))
}

/// `ucfg count <n>` — |L_n| by closed form.
pub fn cmd_count(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    Ok(format!("|L_{n}| = 4^{n} − 3^{n} = {}\n", words::ln_size(n)))
}

/// `ucfg grammar <which> <n>` — print one of the paper's grammars.
pub fn cmd_grammar(which: &str, n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let g = match which {
        "appendix-a" | "cfg" => appendix_a_grammar(n),
        "example3" => example3_grammar(n),
        "example4" | "ucfg" => {
            if n > 10 {
                return Err(err("example4 is exponential; n ≤ 10"));
            }
            example4_ucfg(n)
        }
        other => {
            return Err(err(format!(
                "unknown grammar {other:?} (use appendix-a | example3 | example4)"
            )))
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "# {which} grammar, n = {n}, size {}", g.size());
    out.push_str(&print_grammar(&g));
    Ok(out)
}

/// `ucfg sizes <n>` — the Theorem 1 size row.
pub fn cmd_sizes(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let row = separation_row(n, 16, 8);
    let mut out = String::new();
    let _ = writeln!(out, "n = {n}  (|L_n| = {})", row.language_size);
    let _ = writeln!(out, "  CFG (Appendix A):        {}", row.cfg_size);
    let _ = writeln!(
        out,
        "  NFA (Θ(n), promise):     {}",
        row.nfa_pattern_transitions
    );
    if let Some(t) = row.nfa_exact_transitions {
        let _ = writeln!(out, "  NFA (exact, Θ(n²)):      {t}");
    }
    let _ = writeln!(out, "  uCFG (Example 4):        {}", row.ucfg_example4_size);
    if let Some(d) = row.ucfg_dawg_size {
        let _ = writeln!(out, "  uCFG (DAWG):             {d}");
    }
    if let Some(lb) = row.ucfg_lower_bound_log2 {
        let _ = writeln!(out, "  every uCFG ≥             2^{lb:.2}");
    }
    Ok(out)
}

/// `ucfg check < grammar.txt` — parse a grammar and analyse it.
pub fn cmd_check(src: &str) -> Result<String, CliError> {
    let g = parse_grammar(src).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parsed: {} non-terminals, {} rules, size {}",
        g.nonterminal_count(),
        g.rule_count(),
        g.size()
    );
    match finite_language(&g) {
        Some(lang) => {
            let _ = writeln!(out, "finite language: {} words", lang.len());
            let show: Vec<&str> = lang.iter().take(8).map(|s| s.as_str()).collect();
            let _ = writeln!(
                out,
                "  {}{}",
                show.join(" "),
                if lang.len() > 8 { " …" } else { "" }
            );
            match decide_unambiguous(&g) {
                UnambiguityVerdict::Unambiguous => {
                    let _ = writeln!(out, "unambiguous ✓");
                }
                UnambiguityVerdict::Ambiguous { witness, degree } => {
                    let _ = writeln!(out, "AMBIGUOUS: {witness:?} has {degree} parse trees");
                }
                v => {
                    let _ = writeln!(out, "verdict: {v:?}");
                }
            }
        }
        None => {
            let _ = writeln!(out, "infinite language (size analyses skipped)");
        }
    }
    // Structural lints.
    let findings = lint::lint(&g);
    for f in &findings {
        let _ = writeln!(out, "{f}");
    }
    if findings.is_empty() {
        let _ = writeln!(out, "no lints ✓");
    }
    Ok(out)
}

/// `ucfg extract <n>` — run the Proposition 7 extraction on the Example 4
/// uCFG for `L_n`.
pub fn cmd_extract(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if n > 5 {
        return Err(err("extraction demo is exponential; n ≤ 5"));
    }
    let g = example4_ucfg(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let res = extract_cover(&cnf, 2 * n).map_err(|e| err(format!("{e:?}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Proposition 7 on the Example 4 uCFG (n = {n}, |G| = {}):",
        g.size()
    );
    let _ = writeln!(
        out,
        "  {} balanced rectangles (bound n·|G| = {}), disjoint: {}",
        res.rectangles.len(),
        res.bound,
        res.is_disjoint()
    );
    for r in res.rectangles.iter().take(10) {
        let _ = writeln!(
            out,
            "  [{}..{}] |middles| = {:>3} |contexts| = {:>3}   (from {})",
            r.position,
            r.position + r.span_len - 1,
            r.rectangle.middles.len(),
            r.rectangle.contexts.len(),
            r.nt_name
        );
    }
    if res.rectangles.len() > 10 {
        let _ = writeln!(out, "  … {} more", res.rectangles.len() - 10);
    }
    Ok(out)
}

/// `ucfg rank <n>` — the Theorem 17 rank certificates for the `L_n`
/// communication matrix under the `[1, n]` partition. Runs on the
/// parallel kernels (worker count from `$UCFG_THREADS`, else all cores);
/// the result is bit-identical for every thread count.
pub fn cmd_rank(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if n > 10 {
        return Err(err("rank matrices are 2^n × 2^n; n ≤ 10"));
    }
    let threads = ucfg_support::par::thread_count();
    let gf2 = ucfg_core::rank::rank_gf2(n);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Theorem 17 rank certificates for M_{{L_{n}}} ({threads} thread{}):",
        if threads == 1 { "" } else { "s" }
    );
    let _ = writeln!(out, "  rank over GF(2):           {gf2}");
    if n <= 9 {
        let gfp = ucfg_core::rank::rank_mod_p(n);
        let _ = writeln!(out, "  rank over GF(2^61 − 1):    {gfp}");
    }
    let _ = writeln!(
        out,
        "  ⇒ any disjoint [1,n]-rectangle cover of L_{n} needs ≥ {} rectangles",
        (1u64 << n) - 1
    );
    Ok(out)
}

/// `ucfg determinize < grammar.txt` — the KMN CFG → uCFG conversion with
/// accounting.
pub fn cmd_determinize(src: &str) -> Result<String, CliError> {
    let g = parse_grammar(src).map_err(|e| err(e.to_string()))?;
    let d = ucfg_core::kmn::determinize_grammar(&g).map_err(|e| err(format!("{e:?}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# determinized: |G| = {} → |G'| = {}  (|L| = {}, max len {})",
        d.input_size, d.output_size, d.language_size, d.max_word_len
    );
    debug_assert!(decide_unambiguous(&d.ucfg).is_unambiguous());
    out.push_str(&print_grammar(&d.ucfg));
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "ucfg — the uCFG lower-bound toolkit (PODS 2025 reproduction)\n\
     \n\
     usage:\n\
       ucfg member  <n> <word>       is <word> ∈ L_n?\n\
       ucfg count   <n>              |L_n|\n\
       ucfg sizes   <n>              Theorem 1 size row for L_n\n\
       ucfg grammar <which> <n>      print a grammar (appendix-a | example3 | example4)\n\
       ucfg check                    parse a grammar from stdin and analyse it\n\
       ucfg determinize              CFG → uCFG (the [20] route), grammar on stdin\n\
       ucfg extract <n>              Proposition 7 extraction demo\n\
       ucfg rank    <n>              Theorem 17 rank certificates (parallel;\n\
                                     set UCFG_THREADS to pin the worker count)\n\
     \n\
     global flags:\n\
       --threads N | --threads=N | -j N | -jN\n\
                                     override UCFG_THREADS for this invocation\n\
       --trace                       kernel metrics (or UCFG_TRACE=1): summary\n\
                                     to stderr + out/METRICS_ucfg.json\n"
        .to_string()
}

/// Dispatch a full argument vector (without the program name).
///
/// A thread-override flag anywhere in the arguments — any of the four
/// spellings `--threads N`, `--threads=N`, `-j N`, `-jN` — overrides
/// `UCFG_THREADS` for this invocation via
/// [`ucfg_support::par::set_thread_count`] before the command runs; every
/// parallel kernel downstream picks the count up from
/// [`ucfg_support::par::thread_count`]. A `--trace` flag switches the
/// [`ucfg_support::obs`] metrics layer on (the binary then writes
/// `out/METRICS_ucfg.json` and a summary at exit).
pub fn dispatch(args: &[String], stdin: &str) -> Result<String, CliError> {
    let (args, trace) = ucfg_support::obs::strip_trace_flag(args);
    if trace {
        ucfg_support::obs::set_enabled(true);
    }
    let rest = ucfg_support::par::strip_thread_flags(&args).map_err(err)?;
    match &rest[..] {
        [cmd, n, word] if cmd == "member" => cmd_member(n, word),
        [cmd, n] if cmd == "count" => cmd_count(n),
        [cmd, n] if cmd == "sizes" => cmd_sizes(n),
        [cmd, which, n] if cmd == "grammar" => cmd_grammar(which, n),
        [cmd] if cmd == "check" => cmd_check(stdin),
        [cmd] if cmd == "determinize" => cmd_determinize(stdin),
        [cmd, n] if cmd == "extract" => cmd_extract(n),
        [cmd, n] if cmd == "rank" => cmd_rank(n),
        [] => Ok(usage()),
        _ => Err(err(format!(
            "unrecognised arguments: {rest:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_command() {
        let out = cmd_member("2", "abab").unwrap();
        assert!(out.contains("true"));
        let out = cmd_member("2", "abba").unwrap();
        assert!(out.contains("false"));
        assert!(cmd_member("2", "ab").is_err());
        assert!(cmd_member("0", "").is_err());
        assert!(cmd_member("x", "").is_err());
    }

    #[test]
    fn count_command() {
        assert!(cmd_count("3").unwrap().contains("37"));
    }

    #[test]
    fn grammar_command() {
        let out = cmd_grammar("appendix-a", "4").unwrap();
        assert!(out.contains("size"));
        assert!(cmd_grammar("example4", "11").is_err());
        assert!(cmd_grammar("nope", "3").is_err());
        // Printed grammars re-parse.
        let body: String = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(ucfg_grammar::text::parse_grammar(&body).is_ok());
    }

    #[test]
    fn sizes_command() {
        let out = cmd_sizes("8").unwrap();
        assert!(out.contains("CFG"));
        assert!(out.contains("uCFG"));
    }

    #[test]
    fn check_command() {
        let out = cmd_check("S -> A A\nA -> a | b\n").unwrap();
        assert!(out.contains("unambiguous ✓"), "{out}");
        assert!(out.contains("no lints"), "{out}");
        let out = cmd_check("S -> A B | B A\nA -> a\nB -> a\n").unwrap();
        assert!(out.contains("AMBIGUOUS"), "{out}");
        assert!(cmd_check("garbage").is_err());
        // Lints fire on sloppy grammars.
        let out = cmd_check("S -> a | a\nDead -> Dead a\n").unwrap();
        assert!(out.contains("warning:"), "{out}");
    }

    #[test]
    fn determinize_command() {
        // An ambiguous grammar becomes unambiguous with the same language.
        let src = "S -> A B | B A\nA -> a\nB -> a\n";
        let out = cmd_determinize(src).unwrap();
        assert!(out.contains("determinized"), "{out}");
        let body: String = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let g = ucfg_grammar::text::parse_grammar(&body).unwrap();
        assert!(decide_unambiguous(&g).is_unambiguous());
        assert_eq!(finite_language(&g).unwrap().len(), 1); // {aa}
                                                           // Infinite language rejected.
        assert!(cmd_determinize("S -> a S | a").is_err());
    }

    #[test]
    fn extract_command() {
        let out = cmd_extract("2").unwrap();
        assert!(out.contains("disjoint: true"), "{out}");
        assert!(cmd_extract("9").is_err());
    }

    #[test]
    fn rank_command() {
        let out = cmd_rank("4").unwrap();
        assert!(out.contains("GF(2):           15"), "{out}");
        assert!(out.contains("GF(2^61 − 1):    15"), "{out}");
        assert!(out.contains("≥ 15 rectangles"), "{out}");
        assert!(cmd_rank("11").is_err());
        // n = 10 skips the O(2^{3n}) prime-field elimination.
        assert!(cmd_rank("0").is_err());
    }

    #[test]
    fn threads_flag_round_trips_to_the_par_layer() {
        // `--threads N` must land in ucfg_support::par::thread_count for
        // every kernel the command runs.
        let out = dispatch(
            &["--threads".into(), "3".into(), "count".into(), "2".into()],
            "",
        )
        .unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 3);
        // The short form, with no command → usage.
        assert!(dispatch(&["-j".into(), "2".into()], "")
            .unwrap()
            .contains("usage"));
        assert_eq!(ucfg_support::par::thread_count(), 2);
        // The attached spellings must work too — they used to be passed
        // through to the command router and rejected as bogus arguments.
        let out = dispatch(&["--threads=5".into(), "count".into(), "2".into()], "").unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 5);
        let out = dispatch(&["-j4".into(), "count".into(), "2".into()], "").unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 4);
        // Malformed values are rejected, in every spelling.
        assert!(dispatch(&["--threads".into()], "").is_err());
        assert!(dispatch(&["--threads".into(), "0".into()], "").is_err());
        assert!(dispatch(&["--threads".into(), "x".into()], "").is_err());
        assert!(dispatch(&["--threads=0".into()], "").is_err());
        assert!(dispatch(&["--threads=x".into()], "").is_err());
        assert!(dispatch(&["-j0".into()], "").is_err());
        assert!(dispatch(&["-jx".into()], "").is_err());
    }

    #[test]
    fn dispatch_routes() {
        let ok = dispatch(&["count".into(), "2".into()], "").unwrap();
        assert!(ok.contains("7"));
        assert!(dispatch(&[], "").unwrap().contains("usage"));
        assert!(dispatch(&["bogus".into()], "").is_err());
        let checked = dispatch(&["check".into()], "S -> a\n").unwrap();
        assert!(checked.contains("1 words"));
    }
}
