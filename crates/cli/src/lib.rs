//! # ucfg-cli — command implementations
//!
//! The logic behind the `ucfg` binary, kept in a library so every command
//! is unit-testable. Commands operate on the paper's language `L_n`, on
//! grammars in the text format of `ucfg_grammar::text`, and on the
//! lower-bound machinery of `ucfg-core`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::{appendix_a_grammar, example3_grammar, example4_ucfg};
use ucfg_core::separation::separation_row;
use ucfg_core::words;
use ucfg_grammar::count::{decide_unambiguous, UnambiguityVerdict};
use ucfg_grammar::language::finite_language;
use ucfg_grammar::lint;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::text::{parse_grammar, print_grammar};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

fn parse_n(s: &str) -> Result<usize, CliError> {
    let n: usize = s.parse().map_err(|_| err(format!("not a number: {s}")))?;
    if n == 0 || n > 32 {
        return Err(err("n must be in 1..=32"));
    }
    Ok(n)
}

/// `ucfg member <n> <word>` — is the word in `L_n`?
pub fn cmd_member(n: &str, word: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let w = words::from_string(n, word)
        .ok_or_else(|| err(format!("word must be over {{a,b}} with length {}", 2 * n)))?;
    Ok(format!(
        "{word} ∈ L_{n}: {} (witnessing pairs: {})\n",
        words::ln_contains(n, w),
        words::witness_count(n, w)
    ))
}

/// `ucfg count <n>` — |L_n| by closed form.
pub fn cmd_count(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    Ok(format!("|L_{n}| = 4^{n} − 3^{n} = {}\n", words::ln_size(n)))
}

/// `ucfg grammar <which> <n>` — print one of the paper's grammars.
pub fn cmd_grammar(which: &str, n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let g = match which {
        "appendix-a" | "cfg" => appendix_a_grammar(n),
        "example3" => example3_grammar(n),
        "example4" | "ucfg" => {
            if n > 10 {
                return Err(err("example4 is exponential; n ≤ 10"));
            }
            example4_ucfg(n)
        }
        other => {
            return Err(err(format!(
                "unknown grammar {other:?} (use appendix-a | example3 | example4)"
            )))
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "# {which} grammar, n = {n}, size {}", g.size());
    out.push_str(&print_grammar(&g));
    Ok(out)
}

/// `ucfg sizes <n>` — the Theorem 1 size row.
pub fn cmd_sizes(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    let row = separation_row(n, 16, 8);
    let mut out = String::new();
    let _ = writeln!(out, "n = {n}  (|L_n| = {})", row.language_size);
    let _ = writeln!(out, "  CFG (Appendix A):        {}", row.cfg_size);
    let _ = writeln!(
        out,
        "  NFA (Θ(n), promise):     {}",
        row.nfa_pattern_transitions
    );
    if let Some(t) = row.nfa_exact_transitions {
        let _ = writeln!(out, "  NFA (exact, Θ(n²)):      {t}");
    }
    let _ = writeln!(out, "  uCFG (Example 4):        {}", row.ucfg_example4_size);
    if let Some(d) = row.ucfg_dawg_size {
        let _ = writeln!(out, "  uCFG (DAWG):             {d}");
    }
    if let Some(lb) = row.ucfg_lower_bound_log2 {
        let _ = writeln!(out, "  every uCFG ≥             2^{lb:.2}");
    }
    Ok(out)
}

/// `ucfg check < grammar.txt` — parse a grammar and analyse it.
pub fn cmd_check(src: &str) -> Result<String, CliError> {
    let g = parse_grammar(src).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parsed: {} non-terminals, {} rules, size {}",
        g.nonterminal_count(),
        g.rule_count(),
        g.size()
    );
    match finite_language(&g) {
        Some(lang) => {
            let _ = writeln!(out, "finite language: {} words", lang.len());
            let show: Vec<&str> = lang.iter().take(8).map(|s| s.as_str()).collect();
            let _ = writeln!(
                out,
                "  {}{}",
                show.join(" "),
                if lang.len() > 8 { " …" } else { "" }
            );
            match decide_unambiguous(&g) {
                UnambiguityVerdict::Unambiguous => {
                    let _ = writeln!(out, "unambiguous ✓");
                }
                UnambiguityVerdict::Ambiguous { witness, degree } => {
                    let _ = writeln!(out, "AMBIGUOUS: {witness:?} has {degree} parse trees");
                }
                v => {
                    let _ = writeln!(out, "verdict: {v:?}");
                }
            }
        }
        None => {
            let _ = writeln!(out, "infinite language (size analyses skipped)");
        }
    }
    // Structural lints.
    let findings = lint::lint(&g);
    for f in &findings {
        let _ = writeln!(out, "{f}");
    }
    if findings.is_empty() {
        let _ = writeln!(out, "no lints ✓");
    }
    Ok(out)
}

/// `ucfg extract <n>` — run the Proposition 7 extraction on the Example 4
/// uCFG for `L_n`.
pub fn cmd_extract(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if n > 5 {
        return Err(err("extraction demo is exponential; n ≤ 5"));
    }
    let g = example4_ucfg(n);
    let cnf = CnfGrammar::from_grammar(&g);
    let res = extract_cover(&cnf, 2 * n).map_err(|e| err(format!("{e:?}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Proposition 7 on the Example 4 uCFG (n = {n}, |G| = {}):",
        g.size()
    );
    let _ = writeln!(
        out,
        "  {} balanced rectangles (bound n·|G| = {}), disjoint: {}",
        res.rectangles.len(),
        res.bound,
        res.is_disjoint()
    );
    for r in res.rectangles.iter().take(10) {
        let _ = writeln!(
            out,
            "  [{}..{}] |middles| = {:>3} |contexts| = {:>3}   (from {})",
            r.position,
            r.position + r.span_len - 1,
            r.rectangle.middles.len(),
            r.rectangle.contexts.len(),
            r.nt_name
        );
    }
    if res.rectangles.len() > 10 {
        let _ = writeln!(out, "  … {} more", res.rectangles.len() - 10);
    }
    Ok(out)
}

/// `ucfg rank <n>` — the Theorem 17 rank certificates for the `L_n`
/// communication matrix under the `[1, n]` partition. Runs on the
/// parallel kernels (worker count from `$UCFG_THREADS`, else all cores);
/// the result is bit-identical for every thread count. Past `n = 10` the
/// Gaussian elimination is infeasible, but the matrix census (ones count
/// and digest) streams through `WordSetSource` up to `n = 18` — in
/// chunks past the materialisation cap at `n ≥ 16`.
pub fn cmd_rank(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if n > 18 {
        return Err(err("the rank matrix census streams 4^n bits; n ≤ 18"));
    }
    let threads = ucfg_support::par::thread_count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Theorem 17 rank certificates for M_{{L_{n}}} ({threads} thread{}):",
        if threads == 1 { "" } else { "s" }
    );
    if n <= 10 {
        let gf2 = ucfg_core::rank::rank_gf2(n);
        let _ = writeln!(out, "  rank over GF(2):           {gf2}");
    } else {
        let source = ucfg_core::wordset::chunked::WordSetSource::for_word_domain(n);
        let _ = writeln!(
            out,
            "  rank over GF(2):           (elimination needs n ≤ 10; census {})",
            source.describe()
        );
    }
    if n <= 9 {
        let gfp = ucfg_core::rank::rank_mod_p(n);
        let _ = writeln!(out, "  rank over GF(2^61 − 1):    {gfp}");
    }
    let scan = ucfg_core::rank::rank_matrix_scan(n);
    let _ = writeln!(
        out,
        "  matrix ones (4^n − 3^n):   {} (digest {:016x})",
        scan.ones, scan.digest
    );
    let _ = writeln!(
        out,
        "  ⇒ any disjoint [1,n]-rectangle cover of L_{n} needs ≥ {} rectangles",
        (1u64 << n) - 1
    );
    Ok(out)
}

/// `ucfg cover <n>` — verify the Example 8 cover of `L_n` through the
/// [`ucfg_core::wordset::chunked::WordSetSource`] routing: in-memory
/// below the materialisation cap, chunked above it or whenever
/// `--chunk-bits` / `UCFG_WORDSET_CHUNK` forces streaming. The scan line
/// names the source, so logs show which path ran; everything below it is
/// byte-identical across thread counts, chunk sizes, and the
/// in-memory/chunked split — the CI determinism job byte-compares these
/// lines.
pub fn cmd_cover(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if n > 18 {
        return Err(err("the cover scan streams 4^n bits; n ≤ 18"));
    }
    let threads = ucfg_support::par::thread_count();
    let source = ucfg_core::wordset::chunked::WordSetSource::for_word_domain(n);
    let rects = ucfg_core::cover::example8_cover(n);
    let scan = ucfg_core::cover::cover_scan_threads(n, &rects, threads);
    let mut out = String::new();
    let _ = writeln!(out, "Example 8 cover of L_{n}, {}:", source.describe());
    let _ = writeln!(out, "  rectangles:     {}", scan.size);
    let _ = writeln!(out, "  covers exactly: {}", scan.covers_exactly);
    let _ = writeln!(out, "  all balanced:   {}", scan.all_balanced);
    let _ = writeln!(out, "  max overlap:    {}", scan.max_overlap);
    let _ = writeln!(
        out,
        "  union:          count {} digest {:016x}",
        scan.union_count, scan.union_digest
    );
    let _ = writeln!(
        out,
        "  L_{n}:            count {} digest {:016x}",
        scan.ln_count, scan.ln_digest
    );
    Ok(out)
}

/// `ucfg discrepancy <n>` — the signed discrepancy `|R∩A| − |R∩B|` of
/// the full-family rectangle `R = 𝓛` at the `[1, n]` cut, streamed over
/// the family-rank domain through the [`WordSetSource`] routing (chunked
/// past the cap or under `--chunk-bits`), and cross-checked against the
/// exact closed-form ledger value `−2^{3m}` — the Lemma 19 bound met
/// with equality.
///
/// [`WordSetSource`]: ucfg_core::wordset::chunked::WordSetSource
pub fn cmd_discrepancy(n: &str) -> Result<String, CliError> {
    let n = parse_n(n)?;
    if !ucfg_core::discrepancy::supports_blocks(n) {
        return Err(err("the family 𝓛 needs n ≡ 0 mod 4"));
    }
    if n > 32 {
        return Err(err("the streamed scan probes 2^n family ranks; n ≤ 32"));
    }
    let threads = ucfg_support::par::thread_count();
    let source = ucfg_core::wordset::chunked::WordSetSource::for_family_domain(n);
    let rect = ucfg_core::discrepancy::full_family_rectangle(n);
    let d = ucfg_core::discrepancy::discrepancy_threads(n, &rect, threads);
    let acc = ucfg_core::discrepancy::family_accounting((n / 4) as u64);
    let exact = &acc.full_family_discrepancy;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Full-family discrepancy at n = {n}, {}:",
        source.describe()
    );
    let _ = writeln!(out, "  disc(𝓛) = |𝓛∩A| − |𝓛∩B|:   {d}");
    let _ = writeln!(out, "  exact ledger −2^{{3m}}:       {exact}");
    let _ = writeln!(
        out,
        "  streamed = exact:           {}",
        if exact.to_i128() == Some(i128::from(d)) {
            "true"
        } else {
            "FALSE"
        }
    );
    Ok(out)
}

/// `ucfg accounting <m>` — the exact Lemma 18/19 ledger for the family
/// `𝓛` at `n = 4m`, in closed form over the big-integer layer. Valid at
/// any `m`, in particular `n ≥ 32` where enumeration and bitmaps are
/// impossible and the signed quantities overflow `i64`; cross-checked
/// against enumeration and the streamed kernels at every feasible `n`
/// by the differential suite.
pub fn cmd_accounting(m: &str) -> Result<String, CliError> {
    let m: u64 = m.parse().map_err(|_| err(format!("not a number: {m}")))?;
    if m == 0 || m > 1024 {
        return Err(err("m must be in 1..=1024"));
    }
    let acc = ucfg_core::discrepancy::family_accounting(m);
    let mut out = String::new();
    let _ = writeln!(out, "Lemma 18/19 ledger for 𝓛 at m = {m} (n = {}):", 4 * m);
    let _ = writeln!(out, "  |𝓛| = 16^m:                 {}", acc.family_size);
    let _ = writeln!(out, "  |A| = (16^m − 8^m)/2:       {}", acc.a_size);
    let _ = writeln!(out, "  |B| = (16^m + 8^m)/2:       {}", acc.b_size);
    let _ = writeln!(out, "  |B ∖ L_n| = 12^m:           {}", acc.b_outside_ln);
    let _ = writeln!(out, "  |A ∩ L_n| = |A|:            {}", acc.a_in_ln);
    let _ = writeln!(out, "  |B ∩ L_n| = |B| − 12^m:     {}", acc.b_in_ln);
    let _ = writeln!(out, "  gap = 12^m − 8^m:           {}", acc.gap);
    let _ = writeln!(
        out,
        "  disc(𝓛) = |A| − |B|:        {}",
        acc.full_family_discrepancy
    );
    let _ = writeln!(out, "  Lemma 19 bound 2^{{3m}}:      {}", acc.lemma19_bound);
    let _ = writeln!(
        out,
        "  Lemma 18 (gap > 2^{{7m/2}}):   {}",
        if acc.lemma18_holds { "holds" } else { "fails" }
    );
    Ok(out)
}

/// `ucfg determinize < grammar.txt` — the KMN CFG → uCFG conversion with
/// accounting.
pub fn cmd_determinize(src: &str) -> Result<String, CliError> {
    let g = parse_grammar(src).map_err(|e| err(e.to_string()))?;
    let d = ucfg_core::kmn::determinize_grammar(&g).map_err(|e| err(format!("{e:?}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# determinized: |G| = {} → |G'| = {}  (|L| = {}, max len {})",
        d.input_size, d.output_size, d.language_size, d.max_word_len
    );
    debug_assert!(decide_unambiguous(&d.ucfg).is_unambiguous());
    out.push_str(&print_grammar(&d.ucfg));
    Ok(out)
}

/// Parsed flags for `ucfg serve`. Thread flags are stripped by
/// [`dispatch`] before these are parsed, so `--threads`/-j` compose with
/// every option here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Interface to bind (default loopback).
    pub host: String,
    /// TCP port (default 7878; `0` asks the OS for an ephemeral port).
    pub port: u16,
    /// Bounded batch-queue depth.
    pub queue_depth: usize,
    /// Per-request queue deadline in milliseconds.
    pub deadline_ms: u64,
    /// Artifact-cache capacity in entries (total across shards).
    pub cache_capacity: usize,
    /// Maximum concurrent connections (accept backpressure beyond).
    pub max_connections: usize,
    /// Worker shards (per-shard cache + batch queue).
    pub shards: usize,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Per-request header+body deadline in milliseconds.
    pub request_timeout_ms: u64,
    /// Close connections with no forward progress for this long (ms).
    pub idle_timeout_ms: u64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let d = ucfg_serve::ServeConfig::default();
        ServeArgs {
            host: d.host,
            port: d.port,
            queue_depth: d.queue_depth,
            deadline_ms: d.deadline_ms,
            cache_capacity: d.cache_capacity,
            max_connections: d.max_connections,
            shards: d.shards,
            max_body_bytes: d.max_body_bytes,
            request_timeout_ms: d.request_timeout_ms,
            idle_timeout_ms: d.idle_timeout_ms,
        }
    }
}

/// Pop the value for a `--flag VALUE` / `--flag=VALUE` pair. Returns
/// `Ok(None)` when `args[*i]` is not this flag; advances `*i` past the
/// consumed tokens otherwise.
fn flag_value(args: &[String], i: &mut usize, name: &str) -> Result<Option<String>, CliError> {
    let arg = &args[*i];
    if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
        *i += 1;
        return Ok(Some(v.to_string()));
    }
    if arg == name {
        let v = args
            .get(*i + 1)
            .ok_or_else(|| err(format!("{name} needs a value")))?;
        *i += 2;
        return Ok(Some(v.clone()));
    }
    Ok(None)
}

fn parse_port(s: &str) -> Result<u16, CliError> {
    s.parse()
        .map_err(|_| err(format!("not a valid port: {s:?} (expected 0..=65535)")))
}

fn parse_positive<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| err(format!("not a valid {what}: {s:?}")))
}

/// Parse the flags of `ucfg serve`.
pub fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = flag_value(args, &mut i, "--port")? {
            out.port = parse_port(&v)?;
        } else if let Some(v) = flag_value(args, &mut i, "--host")? {
            out.host = v;
        } else if let Some(v) = flag_value(args, &mut i, "--queue-depth")? {
            out.queue_depth = parse_positive(&v, "queue depth")?;
        } else if let Some(v) = flag_value(args, &mut i, "--deadline-ms")? {
            out.deadline_ms = parse_positive(&v, "deadline")?;
        } else if let Some(v) = flag_value(args, &mut i, "--cache-capacity")? {
            out.cache_capacity = parse_positive(&v, "cache capacity")?;
        } else if let Some(v) = flag_value(args, &mut i, "--max-connections")? {
            out.max_connections = parse_positive(&v, "connection bound")?;
        } else if let Some(v) = flag_value(args, &mut i, "--shards")? {
            out.shards = parse_positive(&v, "shard count")?;
        } else if let Some(v) = flag_value(args, &mut i, "--max-body-bytes")? {
            out.max_body_bytes = parse_positive(&v, "body bound")?;
        } else if let Some(v) = flag_value(args, &mut i, "--request-timeout-ms")? {
            out.request_timeout_ms = parse_positive(&v, "request timeout")?;
        } else if let Some(v) = flag_value(args, &mut i, "--idle-timeout-ms")? {
            out.idle_timeout_ms = parse_positive(&v, "idle timeout")?;
        } else {
            return Err(err(format!("unrecognised serve flag: {}", args[i])));
        }
    }
    Ok(out)
}

/// `ucfg serve [--port N] [--host H] [...]` — run the query daemon.
///
/// Blocks until SIGTERM / ctrl-c / `POST /shutdown`, then drains
/// in-flight batches and returns a one-line summary. The metrics layer
/// is always on for the daemon; `out/METRICS_serve.json` (honouring
/// `$UCFG_OUT_DIR`) is written after the graceful drain. The listening
/// address goes to stderr *before* the accept loop starts so scripts
/// can synchronise on it.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let sa = parse_serve_args(args)?;
    ucfg_support::obs::set_enabled(true);
    ucfg_serve::Server::install_signal_handlers();
    let server = ucfg_serve::Server::bind(ucfg_serve::ServeConfig {
        host: sa.host,
        port: sa.port,
        queue_depth: sa.queue_depth,
        deadline_ms: sa.deadline_ms,
        cache_capacity: sa.cache_capacity,
        max_connections: sa.max_connections,
        shards: sa.shards,
        max_body_bytes: sa.max_body_bytes,
        request_timeout_ms: sa.request_timeout_ms,
        idle_timeout_ms: sa.idle_timeout_ms,
    })
    .map_err(|e| err(format!("bind failed: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| err(format!("no local address: {e}")))?;
    let threads = ucfg_support::par::thread_count();
    eprintln!(
        "ucfg-serve listening on {addr} ({threads} thread{}, {} shard{})",
        if threads == 1 { "" } else { "s" },
        sa.shards,
        if sa.shards == 1 { "" } else { "s" }
    );
    let summary = server
        .run()
        .map_err(|e| err(format!("server error: {e}")))?;
    let metrics = ucfg_support::obs::write_metrics("serve")
        .map_err(|e| err(format!("could not write metrics: {e}")))?;
    Ok(format!(
        "served {} requests; metrics written to {}\n",
        summary.requests,
        metrics.display()
    ))
}

/// Parsed flags for `ucfg query`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryArgs {
    /// Daemon host (default loopback).
    pub host: String,
    /// Daemon port — required; there is no default so a stray `query`
    /// can't silently talk to an unrelated local service.
    pub port: u16,
    /// Script file (JSON lines); `None` means the script came on stdin.
    pub file: Option<String>,
    /// Send `POST /shutdown` after the script.
    pub shutdown: bool,
    /// Per-response read timeout in milliseconds; `None` uses the
    /// client default ([`ucfg_serve::client::DEFAULT_READ_TIMEOUT`]).
    pub timeout_ms: Option<u64>,
}

/// Parse the flags of `ucfg query`.
pub fn parse_query_args(args: &[String]) -> Result<QueryArgs, CliError> {
    let mut host = "127.0.0.1".to_string();
    let mut port: Option<u16> = None;
    let mut file = None;
    let mut shutdown = false;
    let mut timeout_ms = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = flag_value(args, &mut i, "--port")? {
            port = Some(parse_port(&v)?);
        } else if let Some(v) = flag_value(args, &mut i, "--host")? {
            host = v;
        } else if let Some(v) = flag_value(args, &mut i, "--file")? {
            file = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--timeout-ms")? {
            let ms: u64 = parse_positive(&v, "timeout")?;
            if ms == 0 {
                return Err(err("--timeout-ms must be ≥ 1"));
            }
            timeout_ms = Some(ms);
        } else if args[i] == "--shutdown" {
            shutdown = true;
            i += 1;
        } else {
            return Err(err(format!("unrecognised query flag: {}", args[i])));
        }
    }
    let port = port.ok_or_else(|| err("query needs --port N"))?;
    Ok(QueryArgs {
        host,
        port,
        file,
        shutdown,
        timeout_ms,
    })
}

/// `ucfg query --port N [--file script.jsonl] [--shutdown]
/// [--timeout-ms N]` — drive a running daemon with a script of JSON
/// lines. `--timeout-ms` bounds each response read (default 30 s) so a
/// wedged daemon fails the script fast.
///
/// Each non-empty, non-`#` line is a JSON object whose `"path"` key
/// routes the request; an optional `"method"` overrides the verb and
/// every *other* key becomes the request body. Lines with no body keys
/// default to `GET`, lines with body keys to `POST` — so
/// `{"path": "/healthz"}` probes and
/// `{"path": "/parse", "grammar": "S -> a", "word": "a"}` parses.
/// The output is one `<status> <body>` line per request, in script
/// order, suitable for byte-comparison across daemon configurations.
pub fn cmd_query(args: &[String], stdin: &str) -> Result<String, CliError> {
    let qa = parse_query_args(args)?;
    let script = match &qa.file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| err(format!("could not read {path}: {e}")))?
        }
        None => stdin.to_string(),
    };
    let addr = format!("{}:{}", qa.host, qa.port);
    let read_timeout = qa
        .timeout_ms
        .map(std::time::Duration::from_millis)
        .unwrap_or(ucfg_serve::client::DEFAULT_READ_TIMEOUT);
    let mut client = ucfg_serve::Client::connect_retry_with(
        &addr,
        std::time::Duration::from_secs(10),
        Some(read_timeout),
    )
    .map_err(|e| err(format!("could not connect to {addr}: {e}")))?;
    let mut out = String::new();
    for (lineno, line) in script.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = ucfg_serve::Json::parse(line)
            .map_err(|e| err(format!("script line {}: {e}", lineno + 1)))?;
        let entries = match v {
            ucfg_serve::Json::Obj(entries) => entries,
            _ => return Err(err(format!("script line {}: not an object", lineno + 1))),
        };
        let mut path = None;
        let mut method = None;
        let mut body_entries = Vec::new();
        for (k, val) in entries {
            match (k.as_str(), &val) {
                ("path", ucfg_serve::Json::Str(s)) => path = Some(s.clone()),
                ("method", ucfg_serve::Json::Str(s)) => method = Some(s.clone()),
                ("path" | "method", _) => {
                    return Err(err(format!(
                        "script line {}: {k:?} must be a string",
                        lineno + 1
                    )))
                }
                _ => body_entries.push((k, val)),
            }
        }
        let path =
            path.ok_or_else(|| err(format!("script line {}: missing \"path\"", lineno + 1)))?;
        let body = if body_entries.is_empty() {
            None
        } else {
            Some(ucfg_serve::Json::Obj(body_entries).render())
        };
        let method =
            method.unwrap_or_else(|| if body.is_none() { "GET" } else { "POST" }.to_string());
        let r = client
            .request(&method, &path, body.as_deref())
            .map_err(|e| err(format!("script line {}: request failed: {e}", lineno + 1)))?;
        let _ = writeln!(out, "{} {}", r.status, r.body.trim_end_matches('\n'));
    }
    if qa.shutdown {
        let r = client
            .request("POST", "/shutdown", None)
            .map_err(|e| err(format!("shutdown request failed: {e}")))?;
        let _ = writeln!(out, "{} {}", r.status, r.body.trim_end_matches('\n'));
    }
    Ok(out)
}

/// Parsed flags for `ucfg stream`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamArgs {
    /// Daemon host (default loopback).
    pub host: String,
    /// Daemon port — required, like `ucfg query`.
    pub port: u16,
    /// Inline grammar text (mutually exclusive with `builtin`).
    pub grammar: Option<String>,
    /// Builtin family name (needs `n`).
    pub builtin: Option<String>,
    /// Builtin parameter.
    pub n: Option<u64>,
    /// Sliding-window capacity.
    pub window: usize,
    /// Optional product regex.
    pub regex: Option<String>,
    /// Session tag (defaults to empty).
    pub name: String,
    /// Token file; `None` means `--text` supplies the stream.
    pub file: Option<String>,
    /// Inline token text.
    pub text: Option<String>,
    /// Feed chunk size in characters.
    pub chunk: usize,
    /// Per-response read timeout override.
    pub timeout_ms: Option<u64>,
    /// Send `POST /shutdown` after closing the session.
    pub shutdown: bool,
}

/// Parse the flags of `ucfg stream`.
pub fn parse_stream_args(args: &[String]) -> Result<StreamArgs, CliError> {
    let mut sa = StreamArgs {
        host: "127.0.0.1".into(),
        port: 0,
        grammar: None,
        builtin: None,
        n: None,
        window: 64,
        regex: None,
        name: String::new(),
        file: None,
        text: None,
        chunk: 16,
        timeout_ms: None,
        shutdown: false,
    };
    let mut port: Option<u16> = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = flag_value(args, &mut i, "--port")? {
            port = Some(parse_port(&v)?);
        } else if let Some(v) = flag_value(args, &mut i, "--host")? {
            sa.host = v;
        } else if let Some(v) = flag_value(args, &mut i, "--grammar")? {
            sa.grammar = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--builtin")? {
            sa.builtin = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--n")? {
            sa.n = Some(parse_positive(&v, "n")?);
        } else if let Some(v) = flag_value(args, &mut i, "--window")? {
            sa.window = parse_positive::<usize>(&v, "window")?;
            if sa.window == 0 {
                return Err(err("--window must be ≥ 1"));
            }
        } else if let Some(v) = flag_value(args, &mut i, "--regex")? {
            sa.regex = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--name")? {
            sa.name = v;
        } else if let Some(v) = flag_value(args, &mut i, "--file")? {
            sa.file = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--text")? {
            sa.text = Some(v);
        } else if let Some(v) = flag_value(args, &mut i, "--chunk")? {
            sa.chunk = parse_positive::<usize>(&v, "chunk")?;
            if sa.chunk == 0 {
                return Err(err("--chunk must be ≥ 1"));
            }
        } else if let Some(v) = flag_value(args, &mut i, "--timeout-ms")? {
            let ms: u64 = parse_positive(&v, "timeout")?;
            if ms == 0 {
                return Err(err("--timeout-ms must be ≥ 1"));
            }
            sa.timeout_ms = Some(ms);
        } else if args[i] == "--shutdown" {
            sa.shutdown = true;
            i += 1;
        } else {
            return Err(err(format!("unrecognised stream flag: {}", args[i])));
        }
    }
    sa.port = port.ok_or_else(|| err("stream needs --port N"))?;
    match (&sa.grammar, &sa.builtin) {
        (Some(_), Some(_)) => return Err(err("give --grammar or --builtin, not both")),
        (None, None) => return Err(err("stream needs --grammar SRC or --builtin NAME --n N")),
        (None, Some(_)) if sa.n.is_none() => return Err(err("--builtin needs --n N")),
        _ => {}
    }
    if sa.file.is_some() && sa.text.is_some() {
        return Err(err("give --file or --text, not both"));
    }
    if sa.file.is_none() && sa.text.is_none() {
        return Err(err("stream needs --file tokens.txt or --text CHARS"));
    }
    Ok(sa)
}

/// `ucfg stream --port N (--grammar SRC | --builtin NAME --n N)
/// (--file tokens.txt | --text CHARS) [--window W] [--regex R]
/// [--name S] [--chunk N] [--timeout-ms N] [--shutdown]` — drive a
/// running daemon's streaming endpoints: open a session, feed the
/// token stream in `--chunk`-character slices, query the final window,
/// and close. Whitespace in the token source is ignored, so files can
/// be line-wrapped.
///
/// The output is one `<status> <body>` line per request, in order
/// (open, each feed, query, close), suitable for byte-comparison
/// across daemon thread counts and shard layouts.
pub fn cmd_stream(args: &[String]) -> Result<String, CliError> {
    let sa = parse_stream_args(args)?;
    let tokens: String = match &sa.file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| err(format!("could not read {path}: {e}")))?
        }
        None => sa.text.clone().unwrap_or_default(),
    }
    .chars()
    .filter(|c| !c.is_whitespace())
    .collect();
    let addr = format!("{}:{}", sa.host, sa.port);
    let read_timeout = sa
        .timeout_ms
        .map(std::time::Duration::from_millis)
        .unwrap_or(ucfg_serve::client::DEFAULT_READ_TIMEOUT);
    let mut client = ucfg_serve::Client::connect_retry_with(
        &addr,
        std::time::Duration::from_secs(10),
        Some(read_timeout),
    )
    .map_err(|e| err(format!("could not connect to {addr}: {e}")))?;

    use ucfg_serve::Json;
    let mut open = Vec::new();
    match (&sa.grammar, &sa.builtin) {
        (Some(g), None) => open.push(("grammar".to_string(), Json::Str(g.clone()))),
        (None, Some(b)) => {
            open.push(("builtin".to_string(), Json::Str(b.clone())));
            open.push(("n".to_string(), Json::Int(sa.n.unwrap_or(0) as i64)));
        }
        _ => unreachable!("parse_stream_args enforces exactly one"),
    }
    open.push(("window".to_string(), Json::Int(sa.window as i64)));
    if let Some(r) = &sa.regex {
        open.push(("regex".to_string(), Json::Str(r.clone())));
    }
    open.push(("name".to_string(), Json::Str(sa.name.clone())));

    let mut out = String::new();
    let send = |client: &mut ucfg_serve::Client,
                out: &mut String,
                path: &str,
                body: String|
     -> Result<(u16, String), CliError> {
        let r = client
            .request("POST", path, Some(&body))
            .map_err(|e| err(format!("{path} request failed: {e}")))?;
        let line = r.body.trim_end_matches('\n').to_string();
        let _ = writeln!(out, "{} {}", r.status, line);
        Ok((r.status, line))
    };

    let (status, body) = send(
        &mut client,
        &mut out,
        "/stream/open",
        Json::Obj(open).render(),
    )?;
    if status != 200 {
        return Err(err(format!("open failed: {status} {body}")));
    }
    let session = Json::parse(&body)
        .ok()
        .and_then(|v| v.get("session").and_then(Json::as_str).map(str::to_string))
        .ok_or_else(|| err(format!("open response has no session id: {body}")))?;

    let chars: Vec<char> = tokens.chars().collect();
    for slice in chars.chunks(sa.chunk) {
        let chunk: String = slice.iter().collect();
        let body = Json::Obj(vec![
            ("session".to_string(), Json::Str(session.clone())),
            ("tokens".to_string(), Json::Str(chunk)),
        ])
        .render();
        let (status, body) = send(&mut client, &mut out, "/stream/feed", body)?;
        if status != 200 {
            return Err(err(format!("feed failed: {status} {body}")));
        }
    }

    let sess_body = Json::Obj(vec![("session".to_string(), Json::Str(session.clone()))]).render();
    send(&mut client, &mut out, "/stream/query", sess_body.clone())?;
    send(&mut client, &mut out, "/stream/close", sess_body)?;
    if sa.shutdown {
        let r = client
            .request("POST", "/shutdown", None)
            .map_err(|e| err(format!("shutdown request failed: {e}")))?;
        let _ = writeln!(out, "{} {}", r.status, r.body.trim_end_matches('\n'));
    }
    Ok(out)
}

/// Parse the flags of `ucfg orchestrate`.
pub fn parse_orchestrate_args(
    args: &[String],
) -> Result<ucfg_bench::orchestrate::Config, CliError> {
    let mut cfg = ucfg_bench::orchestrate::Config::default();
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = flag_value(args, &mut i, "--baseline")? {
            cfg.baseline_path = Some(v.into());
        } else if let Some(v) = flag_value(args, &mut i, "--out-dir")? {
            cfg.out_dir = Some(v.into());
        } else if let Some(v) = flag_value(args, &mut i, "--cache-dir")? {
            cfg.cache_dir = Some(v.into());
        } else if let Some(v) = flag_value(args, &mut i, "--tolerance")? {
            let r: f64 = v
                .parse()
                .map_err(|_| err(format!("not a valid tolerance ratio: {v:?}")))?;
            if r.is_nan() || r < 1.0 {
                return Err(err(format!("--tolerance must be ≥ 1.0, got {v}")));
            }
            cfg.max_ratio = Some(r);
        } else if let Some(v) = flag_value(args, &mut i, "--floor-ns")? {
            let f: f64 = v
                .parse()
                .map_err(|_| err(format!("not a valid noise floor: {v:?}")))?;
            if f.is_nan() || f < 0.0 {
                return Err(err(format!("--floor-ns must be ≥ 0, got {v}")));
            }
            cfg.floor_ns = Some(f);
        } else if let Some(v) = flag_value(args, &mut i, "--filter")? {
            cfg.filter = Some(v);
        } else if args[i] == "--smoke" {
            cfg.smoke = true;
            i += 1;
        } else if args[i] == "--check" {
            cfg.check = true;
            i += 1;
        } else if args[i] == "--write-baseline" {
            cfg.write_baseline = true;
            i += 1;
        } else if args[i] == "--refresh" {
            cfg.refresh = true;
            i += 1;
        } else if args[i] == "--list" {
            cfg.list = true;
            i += 1;
        } else if !args[i].starts_with('-') && cfg.filter.is_none() {
            cfg.filter = Some(args[i].clone());
            i += 1;
        } else {
            return Err(err(format!("unrecognised orchestrate flag: {}", args[i])));
        }
    }
    Ok(cfg)
}

/// `ucfg orchestrate [--smoke] [--check] [--write-baseline] …` — run the
/// experiment matrix as a cached job graph; see
/// [`ucfg_bench::orchestrate`].
///
/// Exits nonzero (via `Err`) when a job fails or — under `--check` — a
/// baseline comparison regresses.
pub fn cmd_orchestrate(args: &[String]) -> Result<String, CliError> {
    let cfg = parse_orchestrate_args(args)?;
    let outcome = ucfg_bench::orchestrate::run(&cfg).map_err(err)?;
    if outcome.is_failure() {
        return Err(err(format!(
            "{}orchestrate failed: {} regression(s), {} failed job(s)",
            outcome.summary, outcome.regressions, outcome.failed_jobs
        )));
    }
    Ok(outcome.summary)
}

/// Usage text.
pub fn usage() -> String {
    "ucfg — the uCFG lower-bound toolkit (PODS 2025 reproduction)\n\
     \n\
     usage:\n\
       ucfg member  <n> <word>       is <word> ∈ L_n?\n\
       ucfg count   <n>              |L_n|\n\
       ucfg sizes   <n>              Theorem 1 size row for L_n\n\
       ucfg grammar <which> <n>      print a grammar (appendix-a | example3 | example4)\n\
       ucfg check                    parse a grammar from stdin and analyse it\n\
       ucfg determinize              CFG → uCFG (the [20] route), grammar on stdin\n\
       ucfg extract <n>              Proposition 7 extraction demo\n\
       ucfg rank    <n>              Theorem 17 rank certificates (parallel;\n\
                                     set UCFG_THREADS to pin the worker count)\n\
       ucfg cover   <n>              verify the Example 8 cover of L_n (streams\n\
                                     past the 2^30 cap; see --chunk-bits)\n\
       ucfg discrepancy <n>          streamed full-family discrepancy at the\n\
                                     [1,n] cut vs the exact −2^{3m} ledger\n\
       ucfg accounting <m>           exact Lemma 18/19 ledger for 𝓛 at n = 4m\n\
                                     (big-integer; any m, way past enumeration)\n\
       ucfg serve [--port N] [--host H] [--queue-depth N]\n\
                  [--deadline-ms N] [--cache-capacity N] [--max-connections N]\n\
                  [--shards N] [--max-body-bytes N] [--request-timeout-ms N]\n\
                  [--idle-timeout-ms N]\n\
                                     run the resident query daemon: epoll event\n\
                                     loop, N worker shards (default port 7878;\n\
                                     metrics → out/METRICS_serve.json)\n\
       ucfg query --port N [--host H] [--file script.jsonl] [--shutdown]\n\
                  [--timeout-ms N]   drive a daemon with JSON-lines requests\n\
                                     (script from --file, else stdin)\n\
       ucfg stream --port N (--grammar SRC | --builtin NAME --n N)\n\
                  (--file tokens.txt | --text CHARS) [--window W] [--regex R]\n\
                  [--name S] [--chunk N] [--timeout-ms N] [--shutdown]\n\
                                     drive a daemon's streaming endpoints:\n\
                                     open a session, feed in chunks, query\n\
                                     the window, close\n\
       ucfg orchestrate [--smoke] [--check] [--write-baseline] [--list]\n\
                  [--filter S] [--baseline PATH] [--out-dir DIR]\n\
                  [--cache-dir DIR] [--refresh] [--tolerance R] [--floor-ns N]\n\
                                     run the experiment matrix as a cached job\n\
                                     graph; --check gates on baselines/<profile>.json\n\
     \n\
     global flags:\n\
       --threads N | --threads=N | -j N | -jN\n\
                                     override UCFG_THREADS for this invocation\n\
       --trace                       kernel metrics (or UCFG_TRACE=1): summary\n\
                                     to stderr + out/METRICS_ucfg.json\n\
       --chunk-bits N | --chunk-bits=N\n\
                                     override UCFG_WORDSET_CHUNK: stream wordset\n\
                                     kernels in N-bit chunks (power of two ≥ 64)\n\
                                     and force the chunked path below the cap\n"
        .to_string()
}

/// Dispatch a full argument vector (without the program name).
///
/// A thread-override flag anywhere in the arguments — any of the four
/// spellings `--threads N`, `--threads=N`, `-j N`, `-jN` — overrides
/// `UCFG_THREADS` for this invocation via
/// [`ucfg_support::par::set_thread_count`] before the command runs; every
/// parallel kernel downstream picks the count up from
/// [`ucfg_support::par::thread_count`]. A `--trace` flag switches the
/// [`ucfg_support::obs`] metrics layer on (the binary then writes
/// `out/METRICS_ucfg.json` and a summary at exit). A `--chunk-bits N` /
/// `--chunk-bits=N` flag anywhere sets `UCFG_WORDSET_CHUNK` for this
/// invocation via [`ucfg_core::wordset::chunked::set_chunk_bits`] — the
/// wordset kernels then stream in `N`-bit chunks even below the
/// materialisation cap.
pub fn dispatch(args: &[String], stdin: &str) -> Result<String, CliError> {
    let (args, trace) = ucfg_support::obs::strip_trace_flag(args);
    if trace {
        ucfg_support::obs::set_enabled(true);
    }
    let rest = ucfg_support::par::strip_thread_flags(&args).map_err(err)?;
    let rest = ucfg_core::wordset::chunked::strip_chunk_flags(&rest).map_err(err)?;
    match &rest[..] {
        [cmd, n, word] if cmd == "member" => cmd_member(n, word),
        [cmd, n] if cmd == "count" => cmd_count(n),
        [cmd, n] if cmd == "sizes" => cmd_sizes(n),
        [cmd, which, n] if cmd == "grammar" => cmd_grammar(which, n),
        [cmd] if cmd == "check" => cmd_check(stdin),
        [cmd] if cmd == "determinize" => cmd_determinize(stdin),
        [cmd, n] if cmd == "extract" => cmd_extract(n),
        [cmd, n] if cmd == "rank" => cmd_rank(n),
        [cmd, n] if cmd == "cover" => cmd_cover(n),
        [cmd, n] if cmd == "discrepancy" => cmd_discrepancy(n),
        [cmd, m] if cmd == "accounting" => cmd_accounting(m),
        [cmd, flags @ ..] if cmd == "serve" => cmd_serve(flags),
        [cmd, flags @ ..] if cmd == "query" => cmd_query(flags, stdin),
        [cmd, flags @ ..] if cmd == "stream" => cmd_stream(flags),
        [cmd, flags @ ..] if cmd == "orchestrate" => cmd_orchestrate(flags),
        [] => Ok(usage()),
        _ => Err(err(format!(
            "unrecognised arguments: {rest:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_command() {
        let out = cmd_member("2", "abab").unwrap();
        assert!(out.contains("true"));
        let out = cmd_member("2", "abba").unwrap();
        assert!(out.contains("false"));
        assert!(cmd_member("2", "ab").is_err());
        assert!(cmd_member("0", "").is_err());
        assert!(cmd_member("x", "").is_err());
    }

    #[test]
    fn count_command() {
        assert!(cmd_count("3").unwrap().contains("37"));
    }

    #[test]
    fn grammar_command() {
        let out = cmd_grammar("appendix-a", "4").unwrap();
        assert!(out.contains("size"));
        assert!(cmd_grammar("example4", "11").is_err());
        assert!(cmd_grammar("nope", "3").is_err());
        // Printed grammars re-parse.
        let body: String = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(ucfg_grammar::text::parse_grammar(&body).is_ok());
    }

    #[test]
    fn sizes_command() {
        let out = cmd_sizes("8").unwrap();
        assert!(out.contains("CFG"));
        assert!(out.contains("uCFG"));
    }

    #[test]
    fn check_command() {
        let out = cmd_check("S -> A A\nA -> a | b\n").unwrap();
        assert!(out.contains("unambiguous ✓"), "{out}");
        assert!(out.contains("no lints"), "{out}");
        let out = cmd_check("S -> A B | B A\nA -> a\nB -> a\n").unwrap();
        assert!(out.contains("AMBIGUOUS"), "{out}");
        assert!(cmd_check("garbage").is_err());
        // Lints fire on sloppy grammars.
        let out = cmd_check("S -> a | a\nDead -> Dead a\n").unwrap();
        assert!(out.contains("warning:"), "{out}");
    }

    #[test]
    fn determinize_command() {
        // An ambiguous grammar becomes unambiguous with the same language.
        let src = "S -> A B | B A\nA -> a\nB -> a\n";
        let out = cmd_determinize(src).unwrap();
        assert!(out.contains("determinized"), "{out}");
        let body: String = out
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        let g = ucfg_grammar::text::parse_grammar(&body).unwrap();
        assert!(decide_unambiguous(&g).is_unambiguous());
        assert_eq!(finite_language(&g).unwrap().len(), 1); // {aa}
                                                           // Infinite language rejected.
        assert!(cmd_determinize("S -> a S | a").is_err());
    }

    #[test]
    fn extract_command() {
        let out = cmd_extract("2").unwrap();
        assert!(out.contains("disjoint: true"), "{out}");
        assert!(cmd_extract("9").is_err());
    }

    #[test]
    fn rank_command() {
        let out = cmd_rank("4").unwrap();
        assert!(out.contains("GF(2):           15"), "{out}");
        assert!(out.contains("GF(2^61 − 1):    15"), "{out}");
        assert!(out.contains("≥ 15 rectangles"), "{out}");
        // Past the elimination ceiling only the streamed census runs:
        // ones = 4^11 − 3^11 with the census source named in the banner.
        let out = cmd_rank("11").unwrap();
        assert!(out.contains("elimination needs n ≤ 10"), "{out}");
        assert!(out.contains("matrix ones (4^n − 3^n):   4017157"), "{out}");
        assert!(cmd_rank("19").is_err());
        assert!(cmd_rank("0").is_err());
    }

    #[test]
    fn cover_command() {
        let out = cmd_cover("4").unwrap();
        assert!(out.contains("rectangles:     4"), "{out}");
        assert!(out.contains("covers exactly: true"), "{out}");
        assert!(out.contains("all balanced:   true"), "{out}");
        assert!(out.contains("max overlap:    4"), "{out}");
        // |L_4| = 4^4 − 3^4 = 175, and the union equals it.
        assert_eq!(out.matches("count 175").count(), 2, "{out}");
        assert!(cmd_cover("19").is_err());
        assert!(cmd_cover("0").is_err());
    }

    #[test]
    fn discrepancy_command() {
        // n = 8 (m = 2): disc(𝓛) = −2^6 = −64, streamed = ledger.
        let out = cmd_discrepancy("8").unwrap();
        assert!(out.contains("disc(𝓛) = |𝓛∩A| − |𝓛∩B|:   -64"), "{out}");
        assert!(out.contains("exact ledger −2^{3m}:       -64"), "{out}");
        assert!(out.contains("streamed = exact:           true"), "{out}");
        assert!(cmd_discrepancy("6").is_err(), "n ≢ 0 mod 4");
        assert!(cmd_discrepancy("36").is_err(), "past the scan ceiling");
    }

    #[test]
    fn accounting_command() {
        // m = 2 (n = 8): enumeration-checkable numbers.
        let out = cmd_accounting("2").unwrap();
        assert!(out.contains("|𝓛| = 16^m:                 256"), "{out}");
        assert!(out.contains("gap = 12^m − 8^m:           80"), "{out}");
        assert!(out.contains("disc(𝓛) = |A| − |B|:        -64"), "{out}");
        // m = 8 (n = 32): past every enumeration/materialisation cap.
        let out = cmd_accounting("8").unwrap();
        assert!(out.contains("4294967296"), "16^8: {out}"); // |𝓛| = 2^32
        assert!(out.contains("-16777216"), "−2^24: {out}");
        assert!(out.contains("holds"), "{out}");
        assert!(cmd_accounting("0").is_err());
        assert!(cmd_accounting("1025").is_err());
        assert!(cmd_accounting("x").is_err());
    }

    #[test]
    fn chunk_flag_round_trips_to_the_wordset_layer() {
        // --chunk-bits must force the chunked path below the cap, and
        // every line after the source banner must be byte-identical to
        // the in-memory pass — the invariant CI's determinism job pins.
        let chunked = dispatch(
            &["--chunk-bits=1024".into(), "cover".into(), "4".into()],
            "",
        )
        .unwrap();
        assert!(chunked.contains("chunked"), "{chunked}");
        std::env::remove_var(ucfg_core::wordset::chunked::CHUNK_ENV);
        let inmem = dispatch(&["cover".into(), "4".into()], "").unwrap();
        assert!(inmem.contains("in-memory"), "{inmem}");
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&chunked), tail(&inmem));
        // Malformed sizes are hard errors in both spellings, and must
        // not leave an override behind.
        assert!(dispatch(&["--chunk-bits".into()], "").is_err());
        assert!(dispatch(&["--chunk-bits".into(), "banana".into()], "").is_err());
        assert!(dispatch(&["--chunk-bits=63".into(), "count".into(), "2".into()], "").is_err());
        assert!(dispatch(&["--chunk-bits=0".into()], "").is_err());
        assert!(std::env::var(ucfg_core::wordset::chunked::CHUNK_ENV).is_err());
    }

    #[test]
    fn threads_flag_round_trips_to_the_par_layer() {
        // `--threads N` must land in ucfg_support::par::thread_count for
        // every kernel the command runs.
        let out = dispatch(
            &["--threads".into(), "3".into(), "count".into(), "2".into()],
            "",
        )
        .unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 3);
        // The short form, with no command → usage.
        assert!(dispatch(&["-j".into(), "2".into()], "")
            .unwrap()
            .contains("usage"));
        assert_eq!(ucfg_support::par::thread_count(), 2);
        // The attached spellings must work too — they used to be passed
        // through to the command router and rejected as bogus arguments.
        let out = dispatch(&["--threads=5".into(), "count".into(), "2".into()], "").unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 5);
        let out = dispatch(&["-j4".into(), "count".into(), "2".into()], "").unwrap();
        assert!(out.contains("7"));
        assert_eq!(ucfg_support::par::thread_count(), 4);
        // Malformed values are rejected, in every spelling.
        assert!(dispatch(&["--threads".into()], "").is_err());
        assert!(dispatch(&["--threads".into(), "0".into()], "").is_err());
        assert!(dispatch(&["--threads".into(), "x".into()], "").is_err());
        assert!(dispatch(&["--threads=0".into()], "").is_err());
        assert!(dispatch(&["--threads=x".into()], "").is_err());
        assert!(dispatch(&["-j0".into()], "").is_err());
        assert!(dispatch(&["-jx".into()], "").is_err());
    }

    #[test]
    fn serve_args_parse_and_reject() {
        let d = parse_serve_args(&[]).unwrap();
        assert_eq!(d.port, 7878);
        assert_eq!(d.host, "127.0.0.1");
        assert_eq!(d.shards, 1);
        assert_eq!(d.max_body_bytes, 4 << 20);
        assert_eq!(d.request_timeout_ms, 10_000);
        assert_eq!(d.idle_timeout_ms, 60_000);
        let a = parse_serve_args(&[
            "--port".into(),
            "9000".into(),
            "--host=0.0.0.0".into(),
            "--queue-depth".into(),
            "8".into(),
            "--deadline-ms=250".into(),
            "--cache-capacity".into(),
            "4".into(),
            "--max-connections=2".into(),
            "--shards=4".into(),
            "--max-body-bytes".into(),
            "1024".into(),
            "--request-timeout-ms=500".into(),
            "--idle-timeout-ms=2000".into(),
        ])
        .unwrap();
        assert_eq!(
            a,
            ServeArgs {
                host: "0.0.0.0".into(),
                port: 9000,
                queue_depth: 8,
                deadline_ms: 250,
                cache_capacity: 4,
                max_connections: 2,
                shards: 4,
                max_body_bytes: 1024,
                request_timeout_ms: 500,
                idle_timeout_ms: 2000,
            }
        );
        // Malformed ports are hard errors, in both flag spellings.
        for bad in ["x", "-1", "65536", "70000", "1.5", ""] {
            assert!(
                parse_serve_args(&["--port".into(), bad.into()]).is_err(),
                "--port {bad} must be rejected"
            );
            assert!(
                parse_serve_args(&[format!("--port={bad}")]).is_err(),
                "--port={bad} must be rejected"
            );
        }
        assert!(parse_serve_args(&["--port".into()]).is_err());
        assert!(parse_serve_args(&["--bogus".into()]).is_err());
        assert!(parse_serve_args(&["--queue-depth".into(), "x".into()]).is_err());
        assert!(parse_serve_args(&["--shards".into(), "x".into()]).is_err());
        assert!(parse_serve_args(&["--max-body-bytes=huge".into()]).is_err());
        assert!(parse_serve_args(&["--request-timeout-ms".into()]).is_err());
        assert!(parse_serve_args(&["--idle-timeout-ms=x".into()]).is_err());
    }

    #[test]
    fn query_args_parse_and_reject() {
        let q = parse_query_args(&["--port".into(), "7878".into()]).unwrap();
        assert_eq!(
            q,
            QueryArgs {
                host: "127.0.0.1".into(),
                port: 7878,
                file: None,
                shutdown: false,
                timeout_ms: None,
            }
        );
        let q = parse_query_args(&[
            "--port=1234".into(),
            "--host".into(),
            "::1".into(),
            "--file".into(),
            "s.jsonl".into(),
            "--shutdown".into(),
            "--timeout-ms=2500".into(),
        ])
        .unwrap();
        assert_eq!(q.port, 1234);
        assert_eq!(q.file.as_deref(), Some("s.jsonl"));
        assert!(q.shutdown);
        assert_eq!(q.timeout_ms, Some(2500));
        // Port is mandatory and malformed ports are hard errors.
        assert!(parse_query_args(&[]).is_err());
        assert!(parse_query_args(&["--port".into(), "no".into()]).is_err());
        assert!(parse_query_args(&["--port=99999".into()]).is_err());
        assert!(parse_query_args(&["--wat".into()]).is_err());
        assert!(parse_query_args(&["--port=1".into(), "--timeout-ms=0".into()]).is_err());
        assert!(parse_query_args(&["--port=1".into(), "--timeout-ms=x".into()]).is_err());
    }

    #[test]
    fn query_drives_a_live_daemon() {
        // A real daemon on an ephemeral loopback port, driven through
        // the same code path as `ucfg query` with a stdin script.
        let server = ucfg_serve::Server::bind(ucfg_serve::ServeConfig {
            port: 0,
            ..ucfg_serve::ServeConfig::default()
        })
        .expect("bind");
        let port = server.local_addr().expect("addr").port();
        let join = std::thread::spawn(move || server.run().expect("run"));

        // Script errors are reported with line numbers.
        let bad = cmd_query(&["--port".into(), port.to_string()], "not json\n").unwrap_err();
        assert!(bad.to_string().contains("line 1"), "{bad}");
        let bad = cmd_query(
            &["--port".into(), port.to_string()],
            "{\"method\": \"GET\"}\n",
        )
        .unwrap_err();
        assert!(bad.to_string().contains("missing \"path\""), "{bad}");

        let script = "# probe, parse twice (second hits the cache), then stop\n\
                      {\"path\": \"/healthz\"}\n\
                      {\"path\": \"/parse\", \"grammar\": \"S -> a S b S | ()\", \"word\": \"ab\"}\n\
                      {\"path\": \"/parse\", \"grammar\": \"S -> a S b S | ()\", \"word\": \"ab\"}\n";
        let out = cmd_query(
            &["--port".into(), port.to_string(), "--shutdown".into()],
            script,
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].starts_with("200 "), "{out}");
        assert!(lines[1].contains("\"member\":true"), "{out}");
        assert!(lines[1].contains("\"cache\":\"miss\""), "{out}");
        assert_eq!(
            lines[2],
            lines[1].replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
            "warm repeat identical apart from the cache tag"
        );
        assert!(lines[3].contains("draining"), "{out}");
        join.join().expect("clean join");
    }

    #[test]
    fn stream_args_parse_and_reject() {
        let sa = parse_stream_args(&[
            "--port=1234".into(),
            "--grammar".into(),
            "S -> a".into(),
            "--text".into(),
            "aaa".into(),
            "--window=8".into(),
            "--regex".into(),
            "a*".into(),
            "--chunk=2".into(),
        ])
        .unwrap();
        assert_eq!(sa.port, 1234);
        assert_eq!(sa.window, 8);
        assert_eq!(sa.chunk, 2);
        assert_eq!(sa.regex.as_deref(), Some("a*"));
        // Port, grammar source, and token source are all mandatory;
        // conflicting sources are hard errors.
        assert!(parse_stream_args(&[]).is_err());
        assert!(parse_stream_args(&["--port=1".into(), "--text=a".into()]).is_err());
        assert!(parse_stream_args(&["--port=1".into(), "--grammar=S -> a".into()]).is_err());
        assert!(parse_stream_args(&[
            "--port=1".into(),
            "--grammar=S -> a".into(),
            "--builtin=example3".into(),
            "--n=2".into(),
            "--text=a".into(),
        ])
        .is_err());
        assert!(parse_stream_args(&[
            "--port=1".into(),
            "--builtin=example3".into(),
            "--text=a".into(),
        ])
        .is_err());
        assert!(parse_stream_args(&[
            "--port=1".into(),
            "--grammar=S -> a".into(),
            "--text=a".into(),
            "--file=f".into(),
        ])
        .is_err());
        assert!(parse_stream_args(&[
            "--port=1".into(),
            "--grammar=S -> a".into(),
            "--text=a".into(),
            "--window=0".into(),
        ])
        .is_err());
    }

    #[test]
    fn stream_drives_a_live_daemon() {
        let server = ucfg_serve::Server::bind(ucfg_serve::ServeConfig {
            port: 0,
            shards: 2,
            ..ucfg_serve::ServeConfig::default()
        })
        .expect("bind");
        let port = server.local_addr().expect("addr").port();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let out = cmd_stream(&[
            "--port".into(),
            port.to_string(),
            "--grammar".into(),
            "S -> a S b | a b".into(),
            "--window=8".into(),
            "--regex".into(),
            "a(a|b)*b".into(),
            "--text".into(),
            "aaaa bbbb".into(),
            "--chunk=3".into(),
            "--shutdown".into(),
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // open + 3 feed chunks (8 chars / 3) + query + close + shutdown.
        assert_eq!(lines.len(), 7, "{out}");
        assert!(lines[0].starts_with("200 "), "{out}");
        assert!(lines[0].contains("\"session\""), "{out}");
        assert!(lines[3].contains("\"member\":true"), "{out}");
        assert!(lines[4].contains("\"window\":\"aaaabbbb\""), "{out}");
        assert!(lines[4].contains("\"count\":\"1\""), "{out}");
        assert!(lines[5].contains("\"closed\":true"), "{out}");
        assert!(lines[6].contains("draining"), "{out}");
        join.join().expect("clean join");
    }

    #[test]
    fn dispatch_routes() {
        let ok = dispatch(&["count".into(), "2".into()], "").unwrap();
        assert!(ok.contains("7"));
        assert!(dispatch(&[], "").unwrap().contains("usage"));
        assert!(dispatch(&["bogus".into()], "").is_err());
        let checked = dispatch(&["check".into()], "S -> a\n").unwrap();
        assert!(checked.contains("1 words"));
    }
}
