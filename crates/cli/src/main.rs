//! The `ucfg` command-line tool. See `ucfg_cli::usage`.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Only the stdin-reading commands consume stdin; don't block
    // otherwise. `query` reads its script from stdin unless --file
    // supplies it.
    let wants_stdin = match args.first().map(String::as_str) {
        Some("check") | Some("determinize") => true,
        Some("query") => !args
            .iter()
            .any(|a| a == "--file" || a.starts_with("--file=")),
        _ => false,
    };
    let stdin = if wants_stdin {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: could not read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        String::new()
    };
    let code = match ucfg_cli::dispatch(&args, &stdin) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    // `dispatch` enables the metrics layer when `--trace` (or UCFG_TRACE=1)
    // is present; export after the command has run.
    if ucfg_support::obs::enabled() {
        match ucfg_support::obs::write_metrics("ucfg") {
            Ok(p) => eprintln!("metrics written to {}", p.display()),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
        eprintln!("{}", ucfg_support::obs::summary());
    }
    code
}
