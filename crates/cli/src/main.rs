//! The `ucfg` command-line tool. See `ucfg_cli::usage`.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Only the grammar-reading commands consume stdin; don't block otherwise.
    let stdin = if matches!(
        args.first().map(String::as_str),
        Some("check") | Some("determinize")
    ) {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: could not read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        String::new()
    };
    match ucfg_cli::dispatch(&args, &stdin) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
