//! Differential suite for the chunked wordset algebra: every streamed
//! kernel must agree **exactly** — counts, digests, verdicts, signed sums
//! — with its in-memory counterpart, across chunk sizes and worker
//! counts, on exhaustive small-`n` domains and random rectangle families.
//! The in-memory kernels are themselves pinned to their `*_scalar`
//! references by `wordset_kernels.rs`, so equality here chains all the
//! way down.
//!
//! Chunk plans are passed explicitly ([`ChunkPlan::with_chunk_bits`]), so
//! nothing here touches the `UCFG_WORDSET_CHUNK` environment variable and
//! the suite is safe under the parallel test runner.

use std::collections::BTreeSet;

use ucfg_core::cover::{cover_scan_threads, example8_cover, overlap_histogram_threads};
use ucfg_core::discrepancy::{
    discrepancy_threads, family_accounting, family_size, full_family_rectangle,
    random_family_rectangle, supports_blocks,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rectangle::SetRectangle;
use ucfg_core::wordset::chunked::{
    cover_scan_chunked_threads, discrepancy_chunked_threads, family_rectangle_scan_chunked_threads,
    logical_family_domain, logical_word_domain, overlap_histogram_chunked_threads, set_digest,
    ChunkPlan,
};
use ucfg_core::wordset::family_rectangle_bitmap_threads;
use ucfg_support::prop::Gen;
use ucfg_support::rng::{Rng, SeedableRng, StdRng};
use ucfg_support::{prop_assert_eq, property};

/// Worker counts every chunked kernel is pinned across.
const THREADS: [usize; 3] = [1, 2, 8];

/// Chunk sizes (bits) for the word-domain matrix: deliberately tiny so
/// even `n = 4` (256-bit domain) splits into many chunks.
const WORD_CHUNKS: [u64; 3] = [1 << 10, 1 << 16, 1 << 20];

fn random_partition(n: usize, rng: &mut StdRng) -> OrderedPartition {
    let i = rng.random_range(1..=n);
    let j = rng.random_range(i..=2 * n - 1);
    OrderedPartition::new(n, i, j)
}

fn random_rect_family(n: usize, rng: &mut StdRng) -> Vec<SetRectangle> {
    let mut rects = Vec::new();
    if rng.random_range(0..2u8) == 0 {
        rects.extend(example8_cover(n));
    }
    if supports_blocks(n) {
        for _ in 0..rng.random_range(0..3usize) {
            let part = random_partition(n, rng);
            rects.push(random_family_rectangle(n, part, rng));
        }
    }
    rects
}

/// Compare chunked and in-memory cover kernels for one `(n, rects)`
/// input across the given chunk sizes and all of [`THREADS`].
fn assert_cover_kernels_agree(n: usize, rects: &[SetRectangle], chunks: &[u64]) {
    let reference = cover_scan_threads(n, rects, 1);
    let hist_reference = overlap_histogram_threads(n, rects, 1);
    for &chunk in chunks {
        let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), chunk);
        for t in THREADS {
            assert_eq!(
                reference,
                cover_scan_chunked_threads(n, rects, t, &plan),
                "cover scan: n={n} chunk={chunk} threads={t}"
            );
            assert_eq!(
                hist_reference,
                overlap_histogram_chunked_threads(n, rects, t, &plan),
                "histogram: n={n} chunk={chunk} threads={t}"
            );
        }
    }
}

#[test]
fn cover_kernels_exhaustive_small_n() {
    for n in [2usize, 4, 6, 8] {
        assert_cover_kernels_agree(n, &example8_cover(n), &WORD_CHUNKS);
        // The empty family must also stream cleanly (union empty,
        // covers_exactly false, histogram all-in-bucket-0).
        assert_cover_kernels_agree(n, &[], &WORD_CHUNKS);
    }
}

#[test]
fn cover_kernels_at_larger_n() {
    // 4^10 = 2^20 and 4^12 = 2^24 logical bits: many chunks at 2^16 /
    // 2^20, still a single-digit-second debug run.
    assert_cover_kernels_agree(10, &example8_cover(10), &[1 << 16]);
    let n = 12;
    let reference = cover_scan_threads(n, &example8_cover(n), 8);
    let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), 1 << 20);
    for t in [1usize, 8] {
        assert_eq!(
            reference,
            cover_scan_chunked_threads(n, &example8_cover(n), t, &plan),
            "n={n} threads={t}"
        );
    }
}

#[test]
fn family_kernels_chunked_equals_in_memory() {
    for n in [4usize, 8, 12] {
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ n as u64);
        let mut rects = vec![
            full_family_rectangle(n),
            SetRectangle::new(
                OrderedPartition::new(n, 1, n),
                BTreeSet::new(),
                BTreeSet::new(),
            ),
        ];
        for _ in 0..4 {
            let part = random_partition(n, &mut rng);
            rects.push(random_family_rectangle(n, part, &mut rng));
        }
        for r in &rects {
            let d_ref = discrepancy_threads(n, r, 1);
            let bitmap = family_rectangle_bitmap_threads(n, r, 1);
            let (count_ref, digest_ref) = (bitmap.count(), set_digest(&bitmap));
            for chunk in [64u64, 256, 1 << 10] {
                let plan = ChunkPlan::with_chunk_bits(logical_family_domain(n), chunk);
                for t in THREADS {
                    assert_eq!(
                        d_ref,
                        discrepancy_chunked_threads(n, r, t, &plan),
                        "discrepancy: n={n} chunk={chunk} threads={t}"
                    );
                    assert_eq!(
                        (count_ref, digest_ref),
                        family_rectangle_scan_chunked_threads(n, r, t, &plan),
                        "rect scan: n={n} chunk={chunk} threads={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn bignum_accounting_matches_the_kernels() {
    // The closed-form BigInt ledger must agree with what the streamed
    // kernels measure wherever both can run.
    for n in [4usize, 8, 12] {
        let m = (n / 4) as u64;
        let acc = family_accounting(m);
        let full = full_family_rectangle(n);
        let plan = ChunkPlan::with_chunk_bits(logical_family_domain(n), 64);
        assert_eq!(
            Some(i128::from(discrepancy_chunked_threads(n, &full, 8, &plan))),
            acc.full_family_discrepancy.to_i128(),
            "n={n}: full-family discrepancy is −2^{{3m}} exactly"
        );
        let (count, _) = family_rectangle_scan_chunked_threads(n, &full, 8, &plan);
        assert_eq!(Some(count), acc.family_size.to_u64(), "n={n}");
        assert_eq!(acc.family_size, family_size(m));
    }
    // Past every enumeration/materialisation cap the ledger still knows
    // the answer: the full-family discrepancy at n = 32 (m = 8) and far
    // beyond, exact where i64 kernels could never go.
    for m in [8u64, 16, 40] {
        let acc = family_accounting(m);
        assert!(acc.full_family_discrepancy.is_negative());
        assert_eq!(acc.full_family_discrepancy.magnitude(), &acc.lemma19_bound);
        assert!(acc.lemma18_holds, "m={m}");
    }
}

property! {
    cases = 16;
    fn chunked_cover_scan_matches_in_memory_on_random_families(
        n in |g: &mut Gen| g.int_in(3usize..=8),
        chunk in |g: &mut Gen| *g.choice(&WORD_CHUNKS),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects = random_rect_family(n, &mut rng);
        let reference = cover_scan_threads(n, &rects, 1);
        let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), chunk);
        for t in THREADS {
            prop_assert_eq!(reference, cover_scan_chunked_threads(n, &rects, t, &plan));
        }
    }

    cases = 16;
    fn chunked_family_kernels_match_in_memory_on_random_rectangles(
        k in |g: &mut Gen| g.int_in(1usize..=2),
        chunk in |g: &mut Gen| *g.choice(&[64u64, 256, 1 << 10]),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let n = 4 * k;
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, &mut rng);
        let r = random_family_rectangle(n, part, &mut rng);
        let plan = ChunkPlan::with_chunk_bits(logical_family_domain(n), chunk);
        let d_ref = discrepancy_threads(n, &r, 1);
        let bitmap = family_rectangle_bitmap_threads(n, &r, 1);
        for t in THREADS {
            prop_assert_eq!(d_ref, discrepancy_chunked_threads(n, &r, t, &plan));
            prop_assert_eq!(
                (bitmap.count(), set_digest(&bitmap)),
                family_rectangle_scan_chunked_threads(n, &r, t, &plan)
            );
        }
    }
}

/// The acceptance matrix: every `n ≤ 15` word domain, chunked vs
/// in-memory, equal counts and digests. `2^30` logical bits at the top —
/// run in release (`cargo test --release -- --ignored full_matrix`).
#[test]
#[ignore = "minutes in debug; run with --release -- --ignored"]
fn full_matrix_to_n15_chunked_equals_in_memory() {
    for n in 2usize..=12 {
        assert_cover_kernels_agree(n, &example8_cover(n), &WORD_CHUNKS);
    }
    for n in [13usize, 14, 15] {
        let rects = example8_cover(n);
        let reference = cover_scan_threads(n, &rects, 8);
        assert!(reference.covers_exactly, "Example 8 covers L_{n}");
        assert_eq!(reference.max_overlap, n, "central words hit all n spans");
        for chunk in [1 << 20, 1 << 26] {
            let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), chunk);
            for t in [1usize, 8] {
                assert_eq!(
                    reference,
                    cover_scan_chunked_threads(n, &rects, t, &plan),
                    "n={n} chunk={chunk} threads={t}"
                );
            }
        }
    }
}
