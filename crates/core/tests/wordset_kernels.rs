//! Property tests for the popcount bitmap kernels: every kernel rewritten
//! onto [`ucfg_core::wordset`] must agree **exactly** with its retained
//! `*_scalar` reference on randomly drawn inputs — random rectangle
//! families, random partitions, random `n ≤ 8` — including the empty
//! rectangle and the full-family rectangle, and must stay bit-identical
//! across worker counts (1/2/8 is the contract the CI determinism job
//! re-checks end to end).

use std::collections::BTreeSet;

use ucfg_core::cover::{
    discrepancy_accounting_scalar, discrepancy_accounting_threads, example8_cover,
    overlap_histogram_scalar, overlap_histogram_threads, verify_cover_scalar_threads,
    verify_cover_threads,
};
use ucfg_core::discrepancy::{
    self, discrepancy_scalar, discrepancy_threads, exact_max_discrepancy_scalar_threads,
    exact_max_discrepancy_threads, family_side_patterns, random_family_rectangle,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2_scalar_threads, rank_gf2_threads};
use ucfg_core::rectangle::SetRectangle;
use ucfg_support::prop::Gen;
use ucfg_support::rng::{Rng, SeedableRng, StdRng};
use ucfg_support::{prop_assert, prop_assert_eq, property};

/// Worker counts the bitmap kernels are pinned across (satellite: the
/// `*_threads` variants must be bit-identical at 1, 2, and 8 workers).
const THREADS: [usize; 3] = [1, 2, 8];

/// A random balanced-ish partition of `Z[1, 2n]` for rectangle draws.
fn random_partition(n: usize, rng: &mut StdRng) -> OrderedPartition {
    let i = rng.random_range(1..=n);
    let j = rng.random_range(i..=2 * n - 1);
    OrderedPartition::new(n, i, j)
}

/// A random rectangle family over a fresh partition each: the raw input
/// shape of `verify_cover` / `overlap_histogram` / the accounting kernel.
fn random_rect_family(n: usize, rng: &mut StdRng) -> Vec<SetRectangle> {
    let mut rects = Vec::new();
    if rng.random_range(0..2u8) == 0 {
        rects.extend(example8_cover(n));
    }
    if discrepancy::supports_blocks(n) {
        for _ in 0..rng.random_range(0..3usize) {
            let part = random_partition(n, rng);
            rects.push(random_family_rectangle(n, part, rng));
        }
    }
    rects
}

/// The empty rectangle (both sides empty) over some partition of `Z[1, 2n]`.
fn empty_rectangle(n: usize) -> SetRectangle {
    SetRectangle::new(
        OrderedPartition::new(n, 1, n),
        BTreeSet::new(),
        BTreeSet::new(),
    )
}

/// The full-family rectangle at the `[1, n]` cut: block boundaries align
/// with the cut, so `S × T` over all side patterns is exactly `𝓛`.
fn full_family_rectangle(n: usize) -> SetRectangle {
    let part = OrderedPartition::new(n, 1, n);
    let (s_all, t_all) = family_side_patterns(n, part);
    SetRectangle::new(
        part,
        s_all.into_iter().collect(),
        t_all.into_iter().collect(),
    )
}

property! {
    cases = 24;
    fn bitmap_verify_cover_matches_scalar(
        n in |g: &mut Gen| g.int_in(3usize..=8),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects = random_rect_family(n, &mut rng);
        let reference = verify_cover_scalar_threads(n, &rects, 1);
        for t in THREADS {
            prop_assert_eq!(reference.clone(), verify_cover_threads(n, &rects, t));
        }
    }

    cases = 24;
    fn bitmap_discrepancy_matches_scalar(
        // The family 𝓛 needs n ≡ 0 mod 4: draw n from {4, 8}.
        k in |g: &mut Gen| g.int_in(1usize..=2),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let n = 4 * k;
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, &mut rng);
        let r = random_family_rectangle(n, part, &mut rng);
        let reference = discrepancy_scalar(n, &r);
        for t in THREADS {
            prop_assert_eq!(reference, discrepancy_threads(n, &r, t));
        }
    }

    cases = 16;
    fn bitmap_histogram_and_accounting_match_scalar(
        k in |g: &mut Gen| g.int_in(1usize..=2),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let n = 4 * k;
        let mut rng = StdRng::seed_from_u64(seed);
        let rects = random_rect_family(n, &mut rng);
        let hist_ref = overlap_histogram_scalar(n, &rects);
        let acct_ref = discrepancy_accounting_scalar(n, &rects);
        for t in THREADS {
            prop_assert_eq!(hist_ref.clone(), overlap_histogram_threads(n, &rects, t));
            prop_assert_eq!(acct_ref.clone(), discrepancy_accounting_threads(n, &rects, t));
        }
    }

    cases = 16;
    fn gray_walk_matches_scalar_rescan(
        i in |g: &mut Gen| g.int_in(1usize..=4),
        j in |g: &mut Gen| g.int_in(4usize..=7),
    ) {
        let n = 4usize;
        let part = OrderedPartition::new(n, i, j.max(i));
        let reference = exact_max_discrepancy_scalar_threads(n, part, 1);
        prop_assert!(reference.is_some(), "n = 4 is within every cap");
        for t in THREADS {
            prop_assert_eq!(reference, exact_max_discrepancy_threads(n, part, t));
            prop_assert_eq!(reference, exact_max_discrepancy_scalar_threads(n, part, t));
        }
    }

    cases = 12;
    fn subset_enumeration_rank_matches_scalar(
        n in |g: &mut Gen| g.int_in(1usize..=8),
    ) {
        let reference = rank_gf2_scalar_threads(n, 1);
        for t in THREADS {
            prop_assert_eq!(reference, rank_gf2_threads(n, t));
        }
    }

    cases = 16;
    fn rectangle_bitmap_matches_membership(
        k in |g: &mut Gen| g.int_in(1usize..=2),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let n = 4 * k;
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, &mut rng);
        let r = random_family_rectangle(n, part, &mut rng);
        let bitmap = r.to_wordset(n);
        prop_assert_eq!(bitmap.count() as usize, r.s.len() * r.t.len());
        // Spot-check membership agreement on random words of the domain.
        for _ in 0..64 {
            let w = rng.random_range(0..1u64 << (2 * n));
            prop_assert_eq!(bitmap.contains(w), r.contains(w));
        }
    }
}

/// The degenerate inputs every bitmap kernel must handle exactly like its
/// scalar reference: the empty rectangle, the empty family, and the
/// full-family rectangle whose product is `𝓛` itself.
#[test]
fn edge_case_rectangles_agree_with_scalar() {
    for n in [4usize, 8] {
        let empty = empty_rectangle(n);
        assert_eq!(discrepancy_scalar(n, &empty), 0);
        assert_eq!(discrepancy_threads(n, &empty, 1), 0);
        assert!(empty.to_wordset(n).is_empty());

        let full = full_family_rectangle(n);
        let m = (n / 4) as u64;
        // |A| − |B| over all of 𝓛 is −2^{3m} (Lemma 18's gap, exact).
        assert_eq!(discrepancy_threads(n, &full, 2), -(1i64 << (3 * m)));
        assert_eq!(
            discrepancy_scalar(n, &full),
            discrepancy_threads(n, &full, 2)
        );

        // Empty family: scalar and bitmap verdicts coincide field by field.
        let none: Vec<SetRectangle> = Vec::new();
        assert_eq!(
            verify_cover_scalar_threads(n, &none, 1),
            verify_cover_threads(n, &none, 8)
        );
        assert_eq!(
            overlap_histogram_scalar(n, &none),
            overlap_histogram_threads(n, &none, 8)
        );
        assert_eq!(
            discrepancy_accounting_scalar(n, &none),
            discrepancy_accounting_threads(n, &none, 8)
        );

        // A family of one empty rectangle covers nothing.
        let singleton = vec![empty_rectangle(n)];
        let report = verify_cover_threads(n, &singleton, 2);
        assert!(!report.covers_exactly);
        assert_eq!(report, verify_cover_scalar_threads(n, &singleton, 1));
    }
}
