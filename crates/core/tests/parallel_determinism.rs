//! Property tests for the deterministic parallel kernels: for every kernel
//! migrated onto [`ucfg_support::par`], the parallel result must be
//! bit-identical to the serial reference (`threads = 1`) on randomly drawn
//! inputs, for every worker count. Chunk boundaries depend only on input
//! length, so this holds exactly — not just statistically.

use ucfg_core::cover::{example8_cover, verify_cover_threads};
use ucfg_core::discrepancy::{
    discrepancy_threads, exact_max_discrepancy_threads, random_family_rectangle,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2_threads, rank_mod_p_threads};
use ucfg_core::words::enumerate_ln_threads;
use ucfg_support::prop::Gen;
use ucfg_support::rng::{Rng, SeedableRng, StdRng};
use ucfg_support::{prop_assert_eq, property};

/// Worker counts exercised against the serial reference. 2 and 3 split the
/// 64-chunk schedule unevenly; 8 oversubscribes the queue.
const THREADS: [usize; 3] = [2, 3, 8];

/// A random balanced-ish partition of `Z[1, 2n]` for rectangle draws.
fn random_partition(n: usize, rng: &mut StdRng) -> OrderedPartition {
    let i = rng.random_range(1..=n);
    let j = rng.random_range(i..=2 * n - 1);
    OrderedPartition::new(n, i, j)
}

property! {
    cases = 24;
    fn parallel_verify_cover_matches_serial(
        n in |g: &mut Gen| g.int_in(3usize..=6),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        // A mix of the canonical cover and (where the block structure
        // exists, i.e. n ≡ 0 mod 4) random rectangle families, so both the
        // covering and the non-covering verdicts are exercised.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rects = example8_cover(n);
        if ucfg_core::discrepancy::supports_blocks(n) {
            for _ in 0..rng.random_range(1..3usize) {
                let part = random_partition(n, &mut rng);
                rects.push(random_family_rectangle(n, part, &mut rng));
            }
        }
        let serial = verify_cover_threads(n, &rects, 1);
        for t in THREADS {
            prop_assert_eq!(serial.clone(), verify_cover_threads(n, &rects, t));
        }
    }

    cases = 32;
    fn parallel_discrepancy_matches_serial(
        // The family 𝓛 needs n ≡ 0 mod 4: draw n from {4, 8, 12}.
        k in |g: &mut Gen| g.int_in(1usize..=3),
        seed in |g: &mut Gen| g.int_in(0u64..1 << 48),
    ) {
        let n = 4 * k;
        let mut rng = StdRng::seed_from_u64(seed);
        let part = random_partition(n, &mut rng);
        let r = random_family_rectangle(n, part, &mut rng);
        let serial = discrepancy_threads(n, &r, 1);
        for t in THREADS {
            prop_assert_eq!(serial, discrepancy_threads(n, &r, t));
        }
    }

    cases = 8;
    fn parallel_exact_max_discrepancy_matches_serial(
        i in |g: &mut Gen| g.int_in(1usize..=4),
        j in |g: &mut Gen| g.int_in(4usize..=7),
    ) {
        let n = 4usize;
        let part = OrderedPartition::new(n, i, j.max(i));
        let serial = exact_max_discrepancy_threads(n, part, 1);
        for t in THREADS {
            prop_assert_eq!(serial, exact_max_discrepancy_threads(n, part, t));
        }
    }

    cases = 12;
    fn parallel_gf2_rank_matches_serial(
        n in |g: &mut Gen| g.int_in(2usize..=8),
    ) {
        let serial = rank_gf2_threads(n, 1);
        for t in THREADS {
            prop_assert_eq!(serial, rank_gf2_threads(n, t));
        }
    }

    cases = 8;
    fn parallel_gfp_rank_matches_serial(
        n in |g: &mut Gen| g.int_in(2usize..=6),
    ) {
        let serial = rank_mod_p_threads(n, 1);
        for t in THREADS {
            prop_assert_eq!(serial, rank_mod_p_threads(n, t));
        }
    }

    cases = 12;
    fn parallel_enumeration_matches_serial(
        n in |g: &mut Gen| g.int_in(2usize..=8),
    ) {
        let serial = enumerate_ln_threads(n, 1);
        for t in THREADS {
            prop_assert_eq!(serial, enumerate_ln_threads(n, t));
        }
    }
}
