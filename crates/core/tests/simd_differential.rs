//! Tail-boundary SIMD differential suite (PR 8).
//!
//! The word-set algebra dispatches through [`ucfg_support::simd`] — AVX2
//! kernels that step 4–8 words at a time with a scalar remainder loop.
//! These tests pin the boundary behaviour: domains that end mid-word and
//! mid-256-bit-lane, fused counts against their materialised equivalents,
//! and the public scalar twins against the dispatched entry points on the
//! exact same inputs. The CI determinism job runs this file twice — once
//! with the runtime dispatch and once under `UCFG_NO_SIMD=1` — and
//! byte-compares the kernels' deterministic metrics between the modes.

use std::collections::BTreeSet;
use ucfg_core::cover::{cover_scan_threads, example8_cover};
use ucfg_core::discrepancy::{discrepancy_scalar_threads, discrepancy_threads};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rectangle::SetRectangle;
use ucfg_core::wordset::WordSet;
use ucfg_support::simd;

/// Domains straddling every boundary the kernels care about: sub-word,
/// word-aligned, ragged tails just around the 256-bit lane width, and a
/// few wide enough to hit the unrolled inner loops.
const DOMAINS: &[u64] = &[
    1, 2, 63, 64, 65, 127, 128, 129, 191, 255, 256, 257, 300, 319, 320, 511, 512, 513, 1000, 1025,
];

/// Deterministic pseudo-random set over `domain` (split-mix style walk —
/// no RNG dependency, identical bytes on every run and platform).
fn scatter(domain: u64, seed: u64) -> (WordSet, BTreeSet<u64>) {
    let mut ws = WordSet::empty(domain);
    let mut model = BTreeSet::new();
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..domain.div_ceil(2) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % domain;
        ws.insert(k);
        model.insert(k);
    }
    (ws, model)
}

#[test]
fn fused_counts_match_materialised_algebra_on_ragged_domains() {
    for &domain in DOMAINS {
        let (a, ma) = scatter(domain, domain + 1);
        let (b, mb) = scatter(domain, 3 * domain + 7);
        assert_eq!(a.count(), ma.len() as u64, "domain {domain}");
        assert_eq!(
            a.and_count(&b),
            ma.intersection(&mb).count() as u64,
            "and domain {domain}"
        );
        assert_eq!(
            a.or_count(&b),
            ma.union(&mb).count() as u64,
            "or domain {domain}"
        );
        assert_eq!(
            a.andnot_count(&b),
            ma.difference(&mb).count() as u64,
            "andnot domain {domain}"
        );
        // Fused == materialise-then-count, in both argument orders.
        assert_eq!(a.and_count(&b), a.and(&b).count(), "domain {domain}");
        assert_eq!(a.or_count(&b), b.or(&a).count(), "domain {domain}");
        assert_eq!(a.andnot_count(&b), a.andnot(&b).count(), "domain {domain}");
        assert_eq!(b.andnot_count(&a), b.andnot(&a).count(), "domain {domain}");
        // The full set keeps the tail clear: the complement count closes.
        let full = WordSet::full(domain);
        assert_eq!(full.count(), domain, "domain {domain}");
        assert_eq!(full.andnot_count(&a), domain - a.count(), "domain {domain}");
    }
}

#[test]
fn dispatched_kernels_match_scalar_twins_on_every_tail_shape() {
    // Raw-slice twins: whatever backend the dispatch picked (AVX2 here,
    // scalar under UCFG_NO_SIMD=1), the answers must be byte-identical to
    // the always-scalar reference on lengths around every lane boundary.
    for words in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 11, 16, 17, 33] {
        let a: Vec<u64> = (0..words as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5)
            .collect();
        let b: Vec<u64> = (0..words as u64)
            .map(|i| (i ^ 0x33).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .collect();
        assert_eq!(simd::count(&a), simd::count_scalar(&a), "len {words}");
        assert_eq!(
            simd::and_count(&a, &b),
            simd::and_count_scalar(&a, &b),
            "len {words}"
        );
        assert_eq!(
            simd::or_count(&a, &b),
            simd::or_count_scalar(&a, &b),
            "len {words}"
        );
        assert_eq!(
            simd::andnot_count(&a, &b),
            simd::andnot_count_scalar(&a, &b),
            "len {words}"
        );
        let mut out_simd = vec![0u64; words];
        let mut out_scalar = vec![0u64; words];
        simd::and_into(&mut out_simd, &a, &b);
        simd::and_into_scalar(&mut out_scalar, &a, &b);
        assert_eq!(out_simd, out_scalar, "and_into len {words}");
        out_simd.copy_from_slice(&a);
        out_scalar.copy_from_slice(&a);
        simd::or_assign(&mut out_simd, &b);
        simd::or_assign_scalar(&mut out_scalar, &b);
        assert_eq!(out_simd, out_scalar, "or_assign len {words}");
    }
}

#[test]
fn cover_scan_is_identical_across_threads_on_boundary_word_lengths() {
    // n = 2 is the one word domain with a sub-word bitmap (16 bits); the
    // odd n exercise domains that are whole words but partial 256-bit
    // lanes. The scan struct carries counts and digests, so equality here
    // is byte-equality of everything CI compares.
    for n in [2usize, 3, 5] {
        let rects = example8_cover(n);
        let serial = cover_scan_threads(n, &rects, 1);
        assert!(serial.covers_exactly, "n={n}");
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                cover_scan_threads(n, &rects, threads),
                "n={n} threads={threads}"
            );
        }
    }
}

#[test]
fn discrepancy_is_identical_across_threads_on_the_ragged_family_domain() {
    // n = 4 has a 16-bit family domain — the bitmap is a single ragged
    // word, the worst case for tail masking; n = 8 is a whole-word,
    // partial-lane domain. Exercise sparse, full and non-aligned cuts.
    for n in [4usize, 8] {
        let mut parts = vec![OrderedPartition::new(n, 1, n)];
        parts.extend(OrderedPartition::all_balanced(n));
        for part in parts {
            let (s_all, t_all) = ucfg_core::discrepancy::family_side_patterns(n, part);
            let r = SetRectangle::new(
                part,
                s_all.iter().copied().step_by(2).collect(),
                t_all.iter().copied().collect(),
            );
            let serial = discrepancy_threads(n, &r, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    serial,
                    discrepancy_threads(n, &r, threads),
                    "{part:?} threads={threads}"
                );
            }
            assert_eq!(
                serial,
                discrepancy_scalar_threads(n, &r, 1),
                "{part:?} scalar"
            );
        }
    }
}
