//! Contention test for the process-wide canonical-bitmap cache
//! (`ucfg_core::wordset`): 8 threads hammer `ln_bitmap(n)` and the
//! `obs` counters must show **exactly one build per `n`** — the
//! per-key once-cell discipline, not the old racy-duplicate-build one —
//! plus a clear/len round trip.
//!
//! This lives in its own integration-test binary (own process) because
//! it flips the global `obs` switch and clears the global cache, which
//! would interleave with the unit tests under the parallel runner.
//! Everything is one `#[test]` for the same reason.

use std::sync::Arc;
use ucfg_core::wordset::{self, WordSet};
use ucfg_support::obs;

const THREADS: usize = 8;
const ITERS: usize = 100;
const NS: [usize; 6] = [1, 2, 3, 4, 5, 6];

#[test]
fn canonical_cache_builds_each_n_exactly_once_under_contention() {
    obs::set_enabled(true);
    let hits0 = obs::counter("wordset.cache.hits").value();
    let misses0 = obs::counter("wordset.cache.misses").value();

    let per_thread: Vec<Vec<Arc<WordSet>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let mut last = Vec::new();
                    for _ in 0..ITERS {
                        last = NS.iter().map(|&n| wordset::ln_bitmap(n)).collect();
                    }
                    last
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cache hammer thread panicked"))
            .collect()
    });

    // Every thread ends up holding the same allocation per n.
    for (t, thread_refs) in per_thread.iter().enumerate().skip(1) {
        for (a, b) in per_thread[0].iter().zip(thread_refs) {
            assert!(Arc::ptr_eq(a, b), "thread {t} saw a duplicate build");
        }
    }
    for (&n, bm) in NS.iter().zip(&per_thread[0]) {
        assert_eq!(bm.domain(), 1u64 << (2 * n), "n = {n}");
    }

    let calls = (THREADS * ITERS * NS.len()) as u64;
    let misses = obs::counter("wordset.cache.misses").value() - misses0;
    let hits = obs::counter("wordset.cache.hits").value() - hits0;
    assert_eq!(misses, NS.len() as u64, "exactly one build per n");
    assert_eq!(hits, calls - NS.len() as u64, "hits = calls − distinct n");
    assert_eq!(obs::gauge("wordset.cache.len").value(), NS.len() as i64);
    assert!(obs::gauge("wordset.cache.bytes").value() > 0);
    assert_eq!(wordset::canonical_cache_len(), NS.len());

    // Clear / len round trip: the cache empties, the gauges reset, and
    // the next request is a rebuild (a fresh miss, a fresh allocation).
    assert_eq!(wordset::clear_canonical_cache(), NS.len());
    assert_eq!(wordset::canonical_cache_len(), 0);
    assert_eq!(obs::counter("wordset.cache.clears").value(), 1);
    assert_eq!(obs::gauge("wordset.cache.len").value(), 0);
    assert_eq!(obs::gauge("wordset.cache.bytes").value(), 0);

    let rebuilt = wordset::ln_bitmap(NS[2]);
    assert!(
        !Arc::ptr_eq(&per_thread[0][2], &rebuilt),
        "post-clear request rebuilds instead of resurrecting"
    );
    assert_eq!(rebuilt.count(), per_thread[0][2].count());
    assert_eq!(
        obs::counter("wordset.cache.misses").value() - misses0,
        NS.len() as u64 + 1
    );
}
