//! Rectangles: the word form (Definition 5) and the set form
//! (Definition 14), with the Lemma 15 conversions.
//!
//! A set rectangle over an ordered partition `(Π₀, Π₁)` is `R = S × T` where
//! `S ⊆ 𝒫(Π₀)`, `T ⊆ 𝒫(Π₁)` and `×` is the union-of-disjoint-sets product
//! of the paper's preliminaries. Members are `u64` masks over `Z` (the same
//! packing as [`crate::words`]).

use crate::partition::OrderedPartition;
use crate::words::{self, Word};
use std::collections::BTreeSet;

/// A set rectangle `S × T` over an ordered partition.
#[derive(Debug, Clone)]
pub struct SetRectangle {
    /// The partition (Π₀ = inside of the interval).
    pub partition: OrderedPartition,
    /// Subsets of Π₀ (masks confined to `partition.inside()`).
    pub s: BTreeSet<u64>,
    /// Subsets of Π₁ (masks confined to `partition.outside()`).
    pub t: BTreeSet<u64>,
}

impl SetRectangle {
    /// Build, checking side confinement.
    pub fn new(partition: OrderedPartition, s: BTreeSet<u64>, t: BTreeSet<u64>) -> Self {
        let (ins, outs) = (partition.inside(), partition.outside());
        debug_assert!(s.iter().all(|&m| m & !ins == 0), "S must be confined to Π₀");
        debug_assert!(
            t.iter().all(|&m| m & !outs == 0),
            "T must be confined to Π₁"
        );
        SetRectangle { partition, s, t }
    }

    /// Membership: `u ∈ S × T`.
    pub fn contains(&self, u: Word) -> bool {
        self.s.contains(&(u & self.partition.inside()))
            && self.t.contains(&(u & self.partition.outside()))
    }

    /// `|R| = |S| · |T|`.
    pub fn len(&self) -> usize {
        self.s.len() * self.t.len()
    }

    /// Is the rectangle empty?
    pub fn is_empty(&self) -> bool {
        self.s.is_empty() || self.t.is_empty()
    }

    /// Is the underlying partition balanced (Definition 13)?
    pub fn is_balanced(&self) -> bool {
        self.partition.is_balanced()
    }

    /// Enumerate all members.
    pub fn members(&self) -> impl Iterator<Item = Word> + '_ {
        self.s
            .iter()
            .flat_map(move |&a| self.t.iter().map(move |&b| a | b))
    }

    /// The rectangle's bitmap over the word domain `{a,b}^{2n}`, built in
    /// `O(|S|·|T|)` — via the grouped product kernel
    /// [`crate::wordset::pair_or_bitmap`], which collapses pairs sharing a
    /// backing word into single register ORs — instead of scanning all
    /// `2^{2n}` words with [`SetRectangle::contains`]. The sides are
    /// over disjoint position sets, so distinct pairs give distinct words
    /// and the bitmap has exactly [`SetRectangle::len`] bits set.
    pub fn to_wordset(&self, n: usize) -> crate::wordset::WordSet {
        assert_eq!(n, self.partition.n, "rectangle is over words of length 2n");
        let s: Vec<u64> = self.s.iter().copied().collect();
        let t: Vec<u64> = self.t.iter().copied().collect();
        crate::wordset::pair_or_bitmap(crate::wordset::word_domain(n), &s, &t)
    }

    /// The smallest rectangle over `partition` containing all of `set`
    /// (project to both sides and take the product).
    pub fn closure(partition: OrderedPartition, set: &BTreeSet<Word>) -> SetRectangle {
        let ins = partition.inside();
        let outs = partition.outside();
        let s = set.iter().map(|&u| u & ins).collect();
        let t = set.iter().map(|&u| u & outs).collect();
        SetRectangle::new(partition, s, t)
    }

    /// Is `set` exactly a rectangle over `partition`? If so return it.
    pub fn from_exact_set(
        partition: OrderedPartition,
        set: &BTreeSet<Word>,
    ) -> Option<SetRectangle> {
        let r = Self::closure(partition, set);
        if r.len() == set.len() && set.iter().all(|&u| r.contains(u)) {
            Some(r)
        } else {
            None
        }
    }
}

/// A rectangle in the word form of Definition 5, with parameters
/// `(L₁, L₂, n₁, n₂, n₃)`: the words `w₁ w₂ w₃` with `|w₁| = n₁`,
/// `w₂ ∈ L₂ ⊆ Σ^{n₂}`, `|w₃| = n₃`, and `w₁ w₃ ∈ L₁`.
#[derive(Debug, Clone)]
pub struct WordRectangle {
    /// Context pairs `(w₁, w₃)` — the elements of `L₁`, split.
    pub contexts: BTreeSet<(String, String)>,
    /// The middle language `L₂`.
    pub middles: BTreeSet<String>,
    /// Prefix length `n₁`.
    pub n1: usize,
    /// Middle length `n₂`.
    pub n2: usize,
    /// Suffix length `n₃`.
    pub n3: usize,
}

impl WordRectangle {
    /// All words of the rectangle.
    pub fn words(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (w1, w3) in &self.contexts {
            for w2 in &self.middles {
                out.insert(format!("{w1}{w2}{w3}"));
            }
        }
        out
    }

    /// `|R| = |L₁| · |L₂|`.
    pub fn len(&self) -> usize {
        self.contexts.len() * self.middles.len()
    }

    /// Is the rectangle empty?
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty() || self.middles.is_empty()
    }

    /// Definition 5's balance: `N/3 ≤ n₂ ≤ 2N/3` where `N = n₁+n₂+n₃`
    /// (checked without rounding).
    pub fn is_balanced(&self) -> bool {
        let total = self.n1 + self.n2 + self.n3;
        3 * self.n2 >= total && 3 * self.n2 <= 2 * total
    }

    /// Lemma 15 (forward): view a word rectangle over `{a,b}^{2n}` as an
    /// `[n₁+1, n₁+n₂]`-set rectangle.
    pub fn to_set_rectangle(&self, n: usize) -> SetRectangle {
        assert_eq!(
            self.n1 + self.n2 + self.n3,
            2 * n,
            "words must have length 2n"
        );
        let part = OrderedPartition::new(n, self.n1 + 1, self.n1 + self.n2);
        let mut s = BTreeSet::new();
        for w2 in &self.middles {
            // Middle letters occupy z-positions n1+1 .. n1+n2.
            let mut mask = 0u64;
            for (off, c) in w2.chars().enumerate() {
                if c == 'a' {
                    mask |= 1u64 << (self.n1 + off);
                }
            }
            s.insert(mask);
        }
        let mut t = BTreeSet::new();
        for (w1, w3) in &self.contexts {
            let mut mask = 0u64;
            for (off, c) in w1.chars().enumerate() {
                if c == 'a' {
                    mask |= 1u64 << off;
                }
            }
            for (off, c) in w3.chars().enumerate() {
                if c == 'a' {
                    mask |= 1u64 << (self.n1 + self.n2 + off);
                }
            }
            t.insert(mask);
        }
        // Note: Definition 14 names the sides (S over Π₀, T over Π₁); the
        // interval side here is the middle `L₂`.
        SetRectangle::new(part, s, t)
    }

    /// Lemma 15 (converse): recover the word form from a set rectangle
    /// (over the interval `[i, j]`, giving `n₁ = i−1`, `n₂ = j−i+1`,
    /// `n₃ = 2n − j`).
    pub fn from_set_rectangle(r: &SetRectangle) -> WordRectangle {
        let n = r.partition.n;
        let (i, j) = (r.partition.i, r.partition.j);
        let (n1, n2) = (i - 1, j - i + 1);
        let n3 = 2 * n - j;
        let middles =
            r.s.iter()
                .map(|&mask| {
                    (0..n2)
                        .map(|off| {
                            if mask >> (n1 + off) & 1 == 1 {
                                'a'
                            } else {
                                'b'
                            }
                        })
                        .collect()
                })
                .collect();
        let contexts =
            r.t.iter()
                .map(|&mask| {
                    let w1: String = (0..n1)
                        .map(|off| if mask >> off & 1 == 1 { 'a' } else { 'b' })
                        .collect();
                    let w3: String = (0..n3)
                        .map(|off| {
                            if mask >> (n1 + n2 + off) & 1 == 1 {
                                'a'
                            } else {
                                'b'
                            }
                        })
                        .collect();
                    (w1, w3)
                })
                .collect();
        WordRectangle {
            contexts,
            middles,
            n1,
            n2,
            n3,
        }
    }
}

/// Example 6: `L*_n = a^{n/2} (a+b)^n a^{n/2}` as a balanced rectangle.
pub fn example6_rectangle(n: usize) -> WordRectangle {
    assert!(n.is_multiple_of(2), "Example 6 needs n even");
    let half = "a".repeat(n / 2);
    let mut middles = BTreeSet::new();
    for mask in 0..(1u64 << n) {
        middles.insert(
            (0..n)
                .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                .collect::<String>(),
        );
    }
    WordRectangle {
        contexts: BTreeSet::from([(half.clone(), half)]),
        middles,
        n1: n / 2,
        n2: n,
        n3: n / 2,
    }
}

/// Example 8: `L_n^k = (a+b)^k a (a+b)^{n-1} a (a+b)^{n-1-k}` as a balanced
/// word rectangle (`n₂ = n+1`, middle = `a (a+b)^{n-1} a`).
pub fn example8_rectangle(n: usize, k: usize) -> WordRectangle {
    assert!(k < n);
    let mut middles = BTreeSet::new();
    for mask in 0..(1u64 << (n - 1)) {
        let inner: String = (0..n - 1)
            .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
            .collect();
        middles.insert(format!("a{inner}a"));
    }
    let mut contexts = BTreeSet::new();
    // w1 w3 ranges over all of Σ^{n-1}, split as |w1| = k, |w3| = n-1-k.
    for mask in 0..(1u64 << (n - 1)) {
        let all: String = (0..n - 1)
            .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
            .collect();
        let (w1, w3) = all.split_at(k);
        contexts.insert((w1.to_string(), w3.to_string()));
    }
    WordRectangle {
        contexts,
        middles,
        n1: k,
        n2: n + 1,
        n3: n - 1 - k,
    }
}

/// Membership of a packed word in a `WordRectangle` (over `{a,b}^{2n}`).
pub fn word_rectangle_contains(r: &WordRectangle, n: usize, w: Word) -> bool {
    let s = words::to_string(n, w);
    let w1 = &s[..r.n1];
    let w2 = &s[r.n1..r.n1 + r.n2];
    let w3 = &s[r.n1 + r.n2..];
    r.middles.contains(w2) && r.contexts.contains(&(w1.to_string(), w3.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{enumerate_ln, ln_contains};

    #[test]
    fn example6_is_balanced_rectangle() {
        let r = example6_rectangle(4);
        assert!(r.is_balanced());
        assert_eq!(r.len(), 16);
        let words = r.words();
        assert!(words.contains("aabbbbaa"));
        assert!(words.contains("aaaaaaaa"));
        assert!(!words.contains("babbbbaa"));
    }

    #[test]
    fn lemma15_roundtrip() {
        let n = 4;
        let r = example6_rectangle(n);
        let sr = r.to_set_rectangle(n);
        assert!(sr.is_balanced());
        assert_eq!(sr.len(), r.len());
        let back = WordRectangle::from_set_rectangle(&sr);
        assert_eq!(back.words(), r.words());
        assert_eq!((back.n1, back.n2, back.n3), (r.n1, r.n2, r.n3));
    }

    #[test]
    fn set_rectangle_membership_matches_words() {
        let n = 4;
        let r = example8_rectangle(n, 1);
        let sr = r.to_set_rectangle(n);
        for w in 0..(1u64 << (2 * n)) {
            assert_eq!(
                sr.contains(w),
                word_rectangle_contains(&r, n, w),
                "w={w:08b}"
            );
        }
    }

    #[test]
    fn to_wordset_matches_contains() {
        let n = 4;
        for k in 0..n {
            let sr = example8_rectangle(n, k).to_set_rectangle(n);
            let bm = sr.to_wordset(n);
            assert_eq!(bm.count() as usize, sr.len(), "k={k}");
            for w in 0..(1u64 << (2 * n)) {
                assert_eq!(bm.contains(w), sr.contains(w), "k={k} w={w:b}");
            }
        }
        // The empty rectangle yields the empty bitmap.
        let part = OrderedPartition::new(n, 1, n);
        let empty = SetRectangle::new(part, BTreeSet::new(), BTreeSet::from([0]));
        assert!(empty.to_wordset(n).is_empty());
    }

    #[test]
    fn example8_covers_ln() {
        // ⋃_k L_n^k = L_n (Example 8), but the union is NOT disjoint.
        for n in [3usize, 4, 5] {
            let rects: Vec<SetRectangle> = (0..n)
                .map(|k| example8_rectangle(n, k).to_set_rectangle(n))
                .collect();
            for r in &rects {
                assert!(r.is_balanced(), "n={n}");
            }
            for w in 0..(1u64 << (2 * n)) {
                let covered = rects.iter().any(|r| r.contains(w));
                assert_eq!(covered, ln_contains(n, w), "n={n} w={w:b}");
            }
            // Overlap witness: the all-a word is in every L_n^k.
            let all_a = (1u64 << (2 * n)) - 1;
            let hits = rects.iter().filter(|r| r.contains(all_a)).count();
            assert_eq!(hits, n, "all-a word lies in every rectangle");
        }
    }

    #[test]
    fn closure_and_exactness() {
        let n = 2;
        let part = OrderedPartition::new(n, 1, 2);
        // {ab?? : ...}: take the two words abab, abbb → projections:
        // inside {z1,z2}: "ab" → mask 0b01; outside: {z3,z4}: "ab"→bit2, "bb"→0.
        let set: BTreeSet<u64> = BTreeSet::from([
            crate::words::from_string(2, "abab").unwrap(),
            crate::words::from_string(2, "abbb").unwrap(),
        ]);
        let r = SetRectangle::from_exact_set(part, &set).expect("is a rectangle");
        assert_eq!(r.len(), 2);
        assert_eq!(r.members().collect::<BTreeSet<_>>(), set);

        // Adding a word that breaks the product structure.
        let mut bad = set.clone();
        bad.insert(crate::words::from_string(2, "bbab").unwrap());
        assert!(SetRectangle::from_exact_set(part, &bad).is_none());
        // Its closure strictly contains it.
        let c = SetRectangle::closure(part, &bad);
        assert!(c.len() > bad.len());
        for &w in &bad {
            assert!(c.contains(w));
        }
    }

    #[test]
    fn ln_is_not_a_rectangle() {
        // L_n itself is not a single rectangle under the middle cut.
        for n in [2usize, 3] {
            let part = OrderedPartition::new(n, 1, n);
            let set: BTreeSet<u64> = enumerate_ln(n).into_iter().collect();
            assert!(SetRectangle::from_exact_set(part, &set).is_none(), "n={n}");
        }
    }

    #[test]
    fn empty_rectangle() {
        let part = OrderedPartition::new(2, 1, 2);
        let r = SetRectangle::new(part, BTreeSet::new(), BTreeSet::from([0]));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(0));
    }
}
