//! The Proposition 7 algorithm: from a CNF grammar of a fixed-length
//! language to a cover by balanced rectangles.
//!
//! Pipeline, exactly as in the paper's Section 3:
//! 1. position-annotate the grammar (Lemma 10, `ucfg_grammar::annotated`);
//! 2. while the language is non-empty: take any parse tree, descend towards
//!    the heavier child until the subtree generates between `L/3` and
//!    `2L/3` letters (the standard ⅓–⅔ trick), emit the rectangle of the
//!    found non-terminal `A_i` (Observation 11: middles = `L(A_i)`,
//!    contexts = the outside pairs), then delete `A_i` and trim;
//! 3. at most `n·|G|` iterations occur, and if the input grammar is
//!    unambiguous the emitted rectangles are pairwise disjoint.
//!
//! ```
//! use ucfg_core::extract::extract_cover;
//! use ucfg_core::ln_grammars::example4_ucfg;
//! use ucfg_grammar::normal_form::CnfGrammar;
//!
//! let n = 2;
//! let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
//! let cover = extract_cover(&cnf, 2 * n).unwrap();
//! assert!(cover.is_disjoint());          // uCFG ⇒ disjoint (Prop. 7)
//! assert!(cover.all_balanced());
//! assert!(cover.rectangles.len() <= cover.bound);
//! ```

use crate::rectangle::WordRectangle;
use std::collections::{BTreeSet, HashMap};
use ucfg_grammar::annotated::{annotate, AnnotateError};
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::symbol::NonTerminal;

/// One extracted rectangle with provenance.
#[derive(Debug, Clone)]
pub struct ExtractedRectangle {
    /// The rectangle (word form, Definition 5).
    pub rectangle: WordRectangle,
    /// Display name of the annotated non-terminal it came from.
    pub nt_name: String,
    /// 1-based start position of the spanned interval.
    pub position: usize,
    /// Length of the spanned interval.
    pub span_len: usize,
}

/// Result of the extraction.
#[derive(Debug)]
pub struct ExtractionResult {
    /// The cover, in extraction order.
    pub rectangles: Vec<ExtractedRectangle>,
    /// The Proposition 7 bound `n·|G|` for the input (untrimmed annotated
    /// size; the number of rectangles is at most the number of annotated
    /// non-terminals, which is at most this).
    pub bound: usize,
}

/// Errors from [`extract_cover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The grammar is not a fixed-length language grammar of the stated
    /// length.
    Annotate(AnnotateError),
}

impl From<AnnotateError> for ExtractError {
    fn from(e: AnnotateError) -> Self {
        ExtractError::Annotate(e)
    }
}

/// Mutable working copy of the annotated grammar, with stable ids.
struct Working {
    letters: Vec<char>,
    names: Vec<String>,
    start: u32,
    term: Vec<(u32, u16)>,
    bins: Vec<(u32, u32, u32)>,
    alive: Vec<bool>,
    pos: Vec<usize>,
    len: Vec<usize>,
}

impl Working {
    /// Recompute aliveness: a non-terminal stays alive iff it is productive
    /// and reachable through alive rules (i.e. appears in some parse tree).
    fn trim(&mut self) {
        let n = self.names.len();
        let mut productive = vec![false; n];
        loop {
            let mut changed = false;
            for &(a, _) in &self.term {
                if self.alive[a as usize] && !productive[a as usize] {
                    productive[a as usize] = true;
                    changed = true;
                }
            }
            for &(a, b, c) in &self.bins {
                if self.alive[a as usize]
                    && self.alive[b as usize]
                    && self.alive[c as usize]
                    && !productive[a as usize]
                    && productive[b as usize]
                    && productive[c as usize]
                {
                    productive[a as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut reach = vec![false; n];
        if self.alive[self.start as usize] && productive[self.start as usize] {
            reach[self.start as usize] = true;
            loop {
                let mut changed = false;
                for &(a, b, c) in &self.bins {
                    if reach[a as usize]
                        && self.alive[a as usize]
                        && self.alive[b as usize]
                        && self.alive[c as usize]
                        && productive[b as usize]
                        && productive[c as usize]
                    {
                        for x in [b, c] {
                            if !reach[x as usize] {
                                reach[x as usize] = true;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        for i in 0..n {
            self.alive[i] = self.alive[i] && productive[i] && reach[i];
        }
    }

    fn rule_alive_bin(&self, r: (u32, u32, u32)) -> bool {
        self.alive[r.0 as usize] && self.alive[r.1 as usize] && self.alive[r.2 as usize]
    }

    fn is_empty(&self) -> bool {
        if !self.alive[self.start as usize] {
            return true;
        }
        let s = self.start;
        !(self.term.iter().any(|&(a, _)| a == s)
            || self
                .bins
                .iter()
                .any(|&r| r.0 == s && self.rule_alive_bin(r)))
    }

    /// Any parse tree, as a sequence of heavy-descent steps: returns the
    /// non-terminal found by descending towards the heavier child until the
    /// subtree length is ≤ 2L/3 (then ≥ L/3 by the standard argument).
    fn heavy_descend(&self, total: usize) -> u32 {
        let mut cur = self.start;
        loop {
            if 3 * self.len[cur as usize] <= 2 * total {
                return cur;
            }
            // Pick any alive binary rule of cur and descend to the heavier
            // child. (A node longer than 2L/3 ≥ 2·... ≥ 2 letters cannot be
            // a terminal rule when total ≥ 2.)
            let Some(&(_, b, c)) = self
                .bins
                .iter()
                .find(|&&r| r.0 == cur && self.rule_alive_bin(r))
            else {
                // Degenerate (total < 2): stop here.
                return cur;
            };
            cur = if self.len[b as usize] >= self.len[c as usize] {
                b
            } else {
                c
            };
        }
    }

    /// The words generated by a non-terminal (memoised per call).
    fn language_of(&self, a: u32, memo: &mut HashMap<u32, BTreeSet<String>>) -> BTreeSet<String> {
        if let Some(s) = memo.get(&a) {
            return s.clone();
        }
        let mut out = BTreeSet::new();
        if self.alive[a as usize] {
            for &(lhs, t) in &self.term {
                if lhs == a {
                    out.insert(self.letters[t as usize].to_string());
                }
            }
            for &(lhs, b, c) in &self.bins {
                if lhs == a && self.rule_alive_bin((lhs, b, c)) {
                    let lb = self.language_of(b, memo);
                    let rc = self.language_of(c, memo);
                    for x in &lb {
                        for y in &rc {
                            out.insert(format!("{x}{y}"));
                        }
                    }
                }
            }
        }
        memo.insert(a, out.clone());
        out
    }

    /// Outside pairs `(prefix, suffix)` with `S ⇒* prefix · A · suffix`,
    /// for every alive non-terminal.
    fn outsides(&self) -> HashMap<u32, BTreeSet<(String, String)>> {
        // Topological order: by generated length, descending (children are
        // strictly shorter in CNF).
        let mut order: Vec<u32> = (0..self.names.len() as u32)
            .filter(|&a| self.alive[a as usize])
            .collect();
        order.sort_by_key(|&a| std::cmp::Reverse(self.len[a as usize]));
        let mut outside: HashMap<u32, BTreeSet<(String, String)>> = HashMap::new();
        if self.alive[self.start as usize] {
            outside
                .entry(self.start)
                .or_default()
                .insert((String::new(), String::new()));
        }
        let mut lang_memo = HashMap::new();
        for &a in &order {
            let Some(outs) = outside.get(&a).cloned() else {
                continue;
            };
            if outs.is_empty() {
                continue;
            }
            for &(lhs, b, c) in &self.bins {
                if lhs != a || !self.rule_alive_bin((lhs, b, c)) {
                    continue;
                }
                let lb = self.language_of(b, &mut lang_memo);
                let lc = self.language_of(c, &mut lang_memo);
                for (p, s) in &outs {
                    for w in &lc {
                        outside
                            .entry(b)
                            .or_default()
                            .insert((p.clone(), format!("{w}{s}")));
                    }
                    for w in &lb {
                        outside
                            .entry(c)
                            .or_default()
                            .insert((format!("{p}{w}"), s.clone()));
                    }
                }
            }
        }
        outside
    }

    fn kill(&mut self, a: u32) {
        self.alive[a as usize] = false;
        self.trim();
    }
}

/// Run the Proposition 7 extraction on a CNF grammar whose words all have
/// length `total_len`.
pub fn extract_cover(g: &CnfGrammar, total_len: usize) -> Result<ExtractionResult, ExtractError> {
    let ann = annotate(g, total_len)?;
    let cnf = &ann.cnf;
    let nts = cnf.nonterminal_count();
    let mut w = Working {
        letters: cnf.alphabet().to_vec(),
        names: (0..nts)
            .map(|i| cnf.name(NonTerminal(i as u32)).to_string())
            .collect(),
        start: cnf.start().0,
        term: cnf.term_rules().iter().map(|&(a, t)| (a.0, t.0)).collect(),
        bins: cnf
            .bin_rules()
            .iter()
            .map(|&(a, b, c)| (a.0, b.0, c.0))
            .collect(),
        alive: vec![true; nts],
        pos: (0..nts)
            .map(|i| ann.position_of(NonTerminal(i as u32)))
            .collect(),
        len: (0..nts)
            .map(|i| ann.generated_length(NonTerminal(i as u32)))
            .collect(),
    };
    w.trim();

    let mut rectangles = Vec::new();
    let safety_cap = total_len * g.size() + nts + 1;
    while !w.is_empty() {
        assert!(
            rectangles.len() <= safety_cap,
            "extraction exceeded the Proposition 7 bound"
        );
        let a = w.heavy_descend(total_len);
        let mut memo = HashMap::new();
        let middles = w.language_of(a, &mut memo);
        let contexts = w.outsides().remove(&a).unwrap_or_default();
        let (n1, n2) = (w.pos[a as usize] - 1, w.len[a as usize]);
        let n3 = total_len - n1 - n2;
        rectangles.push(ExtractedRectangle {
            rectangle: WordRectangle {
                contexts,
                middles,
                n1,
                n2,
                n3,
            },
            nt_name: w.names[a as usize].clone(),
            position: w.pos[a as usize],
            span_len: w.len[a as usize],
        });
        w.kill(a);
    }
    Ok(ExtractionResult {
        rectangles,
        bound: total_len * g.size(),
    })
}

impl ExtractionResult {
    /// Union of all rectangles' words.
    pub fn covered_words(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for r in &self.rectangles {
            out.extend(r.rectangle.words());
        }
        out
    }

    /// Are the rectangles pairwise disjoint (Proposition 7's guarantee for
    /// unambiguous inputs)?
    pub fn is_disjoint(&self) -> bool {
        let mut seen = BTreeSet::new();
        for r in &self.rectangles {
            for w in r.rectangle.words() {
                if !seen.insert(w) {
                    return false;
                }
            }
        }
        true
    }

    /// Are all rectangles balanced in the sense of Definition 5?
    pub fn all_balanced(&self) -> bool {
        self.rectangles.iter().all(|r| r.rectangle.is_balanced())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ln_grammars::{example4_ucfg, naive_grammar};
    use crate::words::{enumerate_ln, to_string};
    use ucfg_grammar::builder::GrammarBuilder;
    use ucfg_grammar::language::finite_language;

    fn ln_strings(n: usize) -> BTreeSet<String> {
        enumerate_ln(n)
            .into_iter()
            .map(|w| to_string(n, w))
            .collect()
    }

    #[test]
    fn covers_simple_fixed_length_language() {
        // All words of length 4.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let p = b.nonterminal("P");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(p).n(p));
        b.rule(p, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        let g = b.build(s);
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 4).unwrap();
        assert_eq!(res.covered_words(), finite_language(&g).unwrap());
        assert!(res.all_balanced());
        assert!(res.rectangles.len() <= res.bound);
        // This grammar is unambiguous → disjoint.
        assert!(res.is_disjoint());
    }

    #[test]
    fn ucfg_extraction_is_disjoint_on_ln() {
        for n in 2..=4 {
            let g = example4_ucfg(n);
            let cnf = CnfGrammar::from_grammar(&g);
            let res = extract_cover(&cnf, 2 * n).unwrap();
            assert_eq!(res.covered_words(), ln_strings(n), "n={n}");
            assert!(res.is_disjoint(), "uCFG must give a disjoint cover (n={n})");
            assert!(res.all_balanced(), "n={n}");
            assert!(res.rectangles.len() <= res.bound, "n={n}");
        }
    }

    #[test]
    fn naive_grammar_extraction() {
        for n in 2..=3 {
            let g = naive_grammar(n);
            let cnf = CnfGrammar::from_grammar(&g);
            let res = extract_cover(&cnf, 2 * n).unwrap();
            assert_eq!(res.covered_words(), ln_strings(n), "n={n}");
            assert!(res.is_disjoint(), "n={n}");
        }
    }

    #[test]
    fn ambiguous_grammar_covers_but_may_overlap() {
        // Appendix A grammar is ambiguous; extraction still covers L_n.
        let n = 3;
        let g = crate::ln_grammars::appendix_a_grammar(n);
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 2 * n).unwrap();
        assert_eq!(res.covered_words(), ln_strings(n));
        assert!(res.all_balanced());
    }

    #[test]
    fn spans_are_one_third_balanced() {
        let n = 3;
        let g = example4_ucfg(n);
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 2 * n).unwrap();
        let total = 2 * n;
        for r in &res.rectangles {
            assert!(3 * r.span_len >= total, "span too short: {r:?}");
            assert!(3 * r.span_len <= 2 * total, "span too long: {r:?}");
        }
    }

    #[test]
    fn rejects_mixed_length_grammar() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.ts("aa"));
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        assert!(extract_cover(&cnf, 2).is_err());
    }
}
