//! Lemma 21: decomposing a balanced ordered rectangle into at most 256
//! disjoint rectangles over a *neat* partition.
//!
//! At most two 4-blocks straddle the interval boundary; re-assigning their
//! (≤ 8) elements to the smaller side keeps the partition ordered, and
//! slicing the rectangle by the trace `α ⊆ I_i ∪ I_j` of its members on
//! those elements yields `≤ 2⁸ = 256` disjoint pieces, each of which is a
//! rectangle over the neat partition.

use crate::partition::OrderedPartition;
use crate::rectangle::SetRectangle;
use std::collections::BTreeSet;

/// Result of the Lemma 21 decomposition.
#[derive(Debug)]
pub struct NeatDecomposition {
    /// The neat ordered partition `(Γ₀, Γ₁)`.
    pub partition: OrderedPartition,
    /// The disjoint pieces (each a rectangle over `partition`); at most 256.
    pub pieces: Vec<SetRectangle>,
    /// Mask of the boundary elements that were re-assigned.
    pub moved_mask: u64,
}

/// Compute the neat ordered partition obtained by aligning the interval of
/// `p` to 4-block boundaries, on the side that grows the *smaller* part.
/// Returns `None` in the degenerate case where shrinking empties the
/// interval (impossible for balanced partitions with `n ≥ 8`).
pub fn neat_partition_of(p: &OrderedPartition) -> Option<OrderedPartition> {
    assert!(p.n.is_multiple_of(4), "neatness is relative to 4-blocks");
    let inside_smaller = p.inside_len() <= 2 * p.n - p.inside_len();
    let block_start = |pos: usize| pos - (pos - 1) % 4; // 1-based
    let block_end = |pos: usize| block_start(pos) + 3;
    if inside_smaller {
        // Grow the interval to block boundaries.
        Some(OrderedPartition::new(p.n, block_start(p.i), block_end(p.j)))
    } else {
        // Shrink the interval to interior block boundaries (the moved
        // elements join the outside = smaller side).
        let i2 = if (p.i - 1).is_multiple_of(4) {
            p.i
        } else {
            block_end(p.i) + 1
        };
        let j2 = if p.j.is_multiple_of(4) {
            p.j
        } else {
            block_start(p.j).checked_sub(1)?
        };
        if i2 > j2 {
            return None;
        }
        Some(OrderedPartition::new(p.n, i2, j2))
    }
}

/// Lemma 21: decompose `r` into disjoint rectangles over a neat ordered
/// partition. Panics if a piece fails to be a rectangle (it cannot, by the
/// lemma — the construction is self-checking). Returns `None` only in the
/// degenerate small-`n` case where no neat partition exists.
pub fn neat_decomposition(r: &SetRectangle) -> Option<NeatDecomposition> {
    let p = r.partition;
    let neat = neat_partition_of(&p)?;
    // Elements whose side changed.
    let moved = p.inside() ^ neat.inside();
    debug_assert!(moved.count_ones() <= 8, "at most two 4-blocks move");
    // Slice members by their trace on `moved`, then re-read each slice as a
    // rectangle over the neat partition.
    let members: Vec<u64> = r.members().collect();
    let mut by_trace: std::collections::HashMap<u64, BTreeSet<u64>> =
        std::collections::HashMap::new();
    for &u in &members {
        by_trace.entry(u & moved).or_default().insert(u);
    }
    let mut pieces = Vec::with_capacity(by_trace.len());
    for (_alpha, set) in by_trace {
        let piece = SetRectangle::from_exact_set(neat, &set)
            .expect("Lemma 21: each trace-slice is a rectangle over the neat partition");
        pieces.push(piece);
    }
    Some(NeatDecomposition {
        partition: neat,
        pieces,
        moved_mask: moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::random_family_rectangle;
    use std::collections::BTreeSet;
    use ucfg_support::rng::{SeedableRng, StdRng};

    #[test]
    fn neat_partition_alignment() {
        // n = 8 → 2n = 16, blocks [1-4][5-8][9-12][13-16].
        let p = OrderedPartition::new(8, 3, 10); // len 8 = smaller/equal side
        let neat = neat_partition_of(&p).unwrap();
        assert_eq!((neat.i, neat.j), (1, 12));
        assert!(neat.is_neat());

        // Larger inside → shrink instead.
        let p = OrderedPartition::new(8, 2, 13); // len 12 > 4
        let neat = neat_partition_of(&p).unwrap();
        assert_eq!((neat.i, neat.j), (5, 12));
        assert!(neat.is_neat());

        // Already neat → unchanged.
        let p = OrderedPartition::new(8, 5, 12);
        assert_eq!(neat_partition_of(&p).unwrap(), p);
    }

    #[test]
    fn decomposition_is_disjoint_cover_of_r() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(5);
        for part in [
            OrderedPartition::new(n, 3, 10),
            OrderedPartition::new(n, 2, 11),
            OrderedPartition::new(n, 6, 11),
        ] {
            assert!(part.is_balanced(), "{part:?}");
            let r = random_family_rectangle(n, part, &mut rng);
            let dec = neat_decomposition(&r).unwrap();
            assert!(dec.partition.is_neat());
            assert!(dec.pieces.len() <= 256);
            // Pieces are disjoint and union to R.
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            for piece in &dec.pieces {
                for u in piece.members() {
                    assert!(seen.insert(u), "overlap at {u:b}");
                }
            }
            let all: BTreeSet<u64> = r.members().collect();
            assert_eq!(seen, all, "{part:?}");
        }
    }

    #[test]
    fn piece_count_bounded_by_trace_space() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(11);
        let part = OrderedPartition::new(n, 3, 10);
        let r = random_family_rectangle(n, part, &mut rng);
        let dec = neat_decomposition(&r).unwrap();
        let moved_bits = dec.moved_mask.count_ones();
        assert!(dec.pieces.len() <= 1usize << moved_bits);
    }

    #[test]
    fn neat_input_passes_through() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(3);
        let part = OrderedPartition::new(n, 5, 12);
        let r = random_family_rectangle(n, part, &mut rng);
        let dec = neat_decomposition(&r).unwrap();
        assert_eq!(dec.moved_mask, 0);
        // A single piece containing everything (if nonempty).
        let total: usize = dec.pieces.iter().map(|p| p.len()).sum();
        assert_eq!(total, r.len());
        assert!(dec.pieces.len() <= 1);
    }
}
