//! The paper's grammars for `L_n`.
//!
//! * [`example3_grammar`] — the Θ(n)-size CFG `G_n` of Example 3, accepting
//!   `L_{2^n + 1}`;
//! * [`appendix_a_grammar`] — the O(log n)-size CFG for `L_n`, every `n`
//!   (Appendix A; Theorem 1(1));
//! * [`example4_ucfg`] — the exponential-size *unambiguous* CFG of
//!   Example 4 (the upper bound side of Theorem 1(3));
//! * [`naive_grammar`] — the trivial `S → w` baseline (also unambiguous).
//!
//! One deviation from the paper's text: Appendix A states the insertion
//! chain as `A_i → B_{i-1} A_{i-1}` only. With a single orientation the
//! insertion point can only reach the right end of each block, which loses
//! words; we use both orientations `A_i → B_{i-1} A_{i-1} | A_{i-1} B_{i-1}`
//! exactly as in Example 3 (clearly the intent — the tests verify
//! `L(G) = L_n` exhaustively for small `n`).

use crate::words;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::{Grammar, GrammarBuilder, NonTerminal};

/// Example 3: the grammar `G_n` of size Θ(n) accepting `L_{2^n + 1}`.
pub fn example3_grammar(n: usize) -> Grammar {
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let a_nt: Vec<NonTerminal> = (0..=n).map(|i| b.nonterminal(&format!("A{i}"))).collect();
    let b_nt: Vec<NonTerminal> = (0..=n).map(|i| b.nonterminal(&format!("B{i}"))).collect();
    for i in 1..=n {
        b.rule(a_nt[i], |r| r.n(b_nt[i - 1]).n(a_nt[i - 1]));
        b.rule(a_nt[i], |r| r.n(a_nt[i - 1]).n(b_nt[i - 1]));
    }
    b.rule(a_nt[0], |r| r.n(b_nt[0]).t('a').n(b_nt[n]).t('a'));
    b.rule(a_nt[0], |r| r.t('a').n(b_nt[n]).t('a').n(b_nt[0]));
    for i in 1..=n {
        b.rule(b_nt[i], |r| r.n(b_nt[i - 1]).n(b_nt[i - 1]));
    }
    b.rule(b_nt[0], |r| r.t('a'));
    b.rule(b_nt[0], |r| r.t('b'));
    b.build(a_nt[n])
}

/// Appendix A: a CFG of size O(log n) accepting `L_n`, for every `n ≥ 1`.
pub fn appendix_a_grammar(n: usize) -> Grammar {
    assert!(n >= 1);
    let mut b = GrammarBuilder::new(&['a', 'b']);
    if n == 1 {
        // L_1 = {aa}.
        let s = b.nonterminal("Start");
        b.rule(s, |r| r.ts("aa"));
        return b.build(s);
    }
    // Powers of two present in n-1 (the block lengths of the free word w).
    let m = n - 1;
    let bits: Vec<usize> = (0..64).filter(|i| m >> i & 1 == 1).collect();
    let max_bit = *bits.last().expect("n ≥ 2 so m ≥ 1");

    // B_i generates all words of length 2^i (doubling).
    let b_nt: Vec<NonTerminal> = (0..=max_bit)
        .map(|i| b.nonterminal(&format!("B{i}")))
        .collect();
    b.rule(b_nt[0], |r| r.t('a'));
    b.rule(b_nt[0], |r| r.t('b'));
    for i in 1..=max_bit {
        b.rule(b_nt[i], |r| r.n(b_nt[i - 1]).n(b_nt[i - 1]));
    }

    // S generates the inner free word w' of length n-1 (block by block).
    let s = b.nonterminal("S");
    {
        let blocks: Vec<NonTerminal> = bits.iter().map(|&i| b_nt[i]).collect();
        b.raw_rule(s, blocks.iter().map(|&x| x.into()).collect());
    }

    // A_i: a block of length 2^i with "a w' a" inserted at one of its gaps.
    let a_nt: Vec<NonTerminal> = (0..=max_bit)
        .map(|i| b.nonterminal(&format!("A{i}")))
        .collect();
    b.rule(a_nt[0], |r| r.n(b_nt[0]).t('a').n(s).t('a'));
    b.rule(a_nt[0], |r| r.t('a').n(s).t('a').n(b_nt[0]));
    for i in 1..=max_bit {
        b.rule(a_nt[i], |r| r.n(b_nt[i - 1]).n(a_nt[i - 1]));
        b.rule(a_nt[i], |r| r.n(a_nt[i - 1]).n(b_nt[i - 1]));
    }

    // Balanced binary tree over the blocks: C_v = insertion below v,
    // D_v = no insertion below v.
    // Leaves are the elements of `bits`, in order.
    struct TreeCtx<'a> {
        b: &'a mut GrammarBuilder,
        a_nt: &'a [NonTerminal],
        b_nt: &'a [NonTerminal],
        next_id: usize,
    }
    fn build_tree(ctx: &mut TreeCtx<'_>, leaves: &[usize]) -> (NonTerminal, NonTerminal) {
        if leaves.len() == 1 {
            let i = leaves[0];
            let id = ctx.next_id;
            ctx.next_id += 1;
            let c = ctx.b.nonterminal(&format!("C{id}"));
            let d = ctx.b.nonterminal(&format!("D{id}"));
            let (ai, bi) = (ctx.a_nt[i], ctx.b_nt[i]);
            ctx.b.rule(c, |r| r.n(ai));
            ctx.b.rule(d, |r| r.n(bi));
            return (c, d);
        }
        let mid = leaves.len() / 2;
        let (cl, dl) = build_tree(ctx, &leaves[..mid]);
        let (cr, dr) = build_tree(ctx, &leaves[mid..]);
        let id = ctx.next_id;
        ctx.next_id += 1;
        let c = ctx.b.nonterminal(&format!("C{id}"));
        let d = ctx.b.nonterminal(&format!("D{id}"));
        ctx.b.rule(c, |r| r.n(cl).n(dr));
        ctx.b.rule(c, |r| r.n(dl).n(cr));
        ctx.b.rule(d, |r| r.n(dl).n(dr));
        (c, d)
    }
    let (root_c, _root_d) = build_tree(
        &mut TreeCtx {
            b: &mut b,
            a_nt: &a_nt,
            b_nt: &b_nt,
            next_id: 0,
        },
        &bits,
    );

    ucfg_grammar::analysis::trim(&b.build(root_c))
}

/// Appendix A **as literally stated in the paper**: the insertion chain
/// has only the orientation `A_i → B_{i-1} A_{i-1}` (plus `A_0`'s two
/// sides).
///
/// **Erratum (found by executing the construction):** with a single
/// orientation the insertion point can only reach the right end of each
/// block, so gaps in the left parts of blocks are unreachable and words
/// are lost — e.g. for `n = 5` the blocks of `n−1 = 4` give only insertion
/// gaps `{3, 4}`, missing every word of `L_5` whose first `a` of the
/// witnessing pair sits at positions 1–3. The corrected
/// [`appendix_a_grammar`] uses both orientations, as Example 3 does.
/// [`literal_appendix_a_is_incomplete`](#) (test) and experiment F2
/// exhibit concrete missing words.
pub fn appendix_a_grammar_literal(n: usize) -> Grammar {
    assert!(n >= 1);
    let mut b = GrammarBuilder::new(&['a', 'b']);
    if n == 1 {
        let s = b.nonterminal("Start");
        b.rule(s, |r| r.ts("aa"));
        return b.build(s);
    }
    let m = n - 1;
    let bits: Vec<usize> = (0..64).filter(|i| m >> i & 1 == 1).collect();
    let max_bit = *bits.last().expect("n ≥ 2 so m ≥ 1");
    let b_nt: Vec<NonTerminal> = (0..=max_bit)
        .map(|i| b.nonterminal(&format!("B{i}")))
        .collect();
    b.rule(b_nt[0], |r| r.t('a'));
    b.rule(b_nt[0], |r| r.t('b'));
    for i in 1..=max_bit {
        b.rule(b_nt[i], |r| r.n(b_nt[i - 1]).n(b_nt[i - 1]));
    }
    let s = b.nonterminal("S");
    {
        let blocks: Vec<NonTerminal> = bits.iter().map(|&i| b_nt[i]).collect();
        b.raw_rule(s, blocks.iter().map(|&x| x.into()).collect());
    }
    let a_nt: Vec<NonTerminal> = (0..=max_bit)
        .map(|i| b.nonterminal(&format!("A{i}")))
        .collect();
    b.rule(a_nt[0], |r| r.n(b_nt[0]).t('a').n(s).t('a'));
    b.rule(a_nt[0], |r| r.t('a').n(s).t('a').n(b_nt[0]));
    for i in 1..=max_bit {
        // The paper's text: only B_{i-1} A_{i-1}.
        b.rule(a_nt[i], |r| r.n(b_nt[i - 1]).n(a_nt[i - 1]));
    }
    let mut c_nodes: Vec<(NonTerminal, NonTerminal)> = Vec::new();
    for (idx, &i) in bits.iter().enumerate() {
        let c = b.nonterminal(&format!("C{idx}"));
        let d = b.nonterminal(&format!("D{idx}"));
        b.rule(c, |r| r.n(a_nt[i]));
        b.rule(d, |r| r.n(b_nt[i]));
        c_nodes.push((c, d));
    }
    // Fold the leaves into a (left-leaning) tree.
    let mut id = bits.len();
    while c_nodes.len() > 1 {
        let (cr, dr) = c_nodes.pop().unwrap();
        let (cl, dl) = c_nodes.pop().unwrap();
        let c = b.nonterminal(&format!("C{id}"));
        let d = b.nonterminal(&format!("D{id}"));
        id += 1;
        b.rule(c, |r| r.n(cl).n(dr));
        b.rule(c, |r| r.n(dl).n(cr));
        b.rule(d, |r| r.n(dl).n(dr));
        c_nodes.push((c, d));
    }
    let (root_c, _) = c_nodes.pop().expect("at least one block");
    ucfg_grammar::analysis::trim(&b.build(root_c))
}

/// Example 4: the exponential-size **unambiguous** CFG for `L_n`.
///
/// Each derivation fixes the *first* witnessing pair `(i, i+n)`: the rules
/// pin the prefix `w` (positions `1..i-1`) and the corresponding stretch
/// `v` (positions `n+1..n+i-1`) to letter patterns with **no common `a`
/// position**, so no pair before `i` can match.
///
/// **Erratum (found by executing the construction):** the paper's rule
/// `A_i → A_w a C_{n-i} A_w̄ a C_{n-i}` uses the exact complement `w̄`,
/// which forces position `j+n` to be `a` whenever position `j` is `b`.
/// That loses every word where positions `j` and `j+n` are *both* `b`
/// (e.g. `baba ∈ L_2`, whose first — and only — pair is `(2, 4)`).
/// Minimality of the pair only requires ¬(both `a`), so we range over all
/// pairs `(w, v) ∈ Σ^{i-1} × Σ^{i-1}` whose `a`-positions are disjoint
/// (3^{i-1} pairs). Unambiguity is preserved: the word still determines
/// `i` (its first pair), and then `w`, `v` and the free stretches are
/// positionally forced. The tests verify both `L(G) = L_n` and
/// unambiguity exhaustively.
pub fn example4_ucfg(n: usize) -> Grammar {
    assert!(n >= 1);
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let s = b.nonterminal("S");

    // C_i generates all words of length i, unambiguously.
    let c_nt: Vec<Option<NonTerminal>> = (0..n)
        .map(|i| {
            if i >= 1 {
                Some(b.nonterminal(&format!("C{i}")))
            } else {
                None
            }
        })
        .collect();
    if n >= 2 {
        let c1 = c_nt[1].unwrap();
        b.rule(c1, |r| r.t('a'));
        b.rule(c1, |r| r.t('b'));
        for i in 2..n {
            let ci = c_nt[i].unwrap();
            let prev = c_nt[i - 1].unwrap();
            b.rule(ci, |r| r.t('a').n(prev));
            b.rule(ci, |r| r.t('b').n(prev));
        }
    }

    // A_w → w for every w with 1 ≤ |w| ≤ n-1.
    let mut word_nt = std::collections::HashMap::new();
    for len in 1..n {
        for mask in 0..(1u64 << len) {
            let w: String = (0..len)
                .map(|p| if mask >> p & 1 == 1 { 'a' } else { 'b' })
                .collect();
            let nt = b.nonterminal(&format!("A[{w}]"));
            b.rule(nt, |r| r.ts(&w));
            word_nt.insert((len, mask), nt);
        }
    }
    // A_i for i ∈ [1, n]. For each i, one rule per pair (w, v) of
    // length-(i-1) patterns with disjoint a-positions (3^{i-1} pairs).
    for i in 1..=n {
        let ai = b.nonterminal(&format!("A{i}"));
        b.rule(s, |r| r.n(ai));
        let wlen = i - 1;
        let pairs: Vec<(u64, u64)> = if wlen == 0 {
            vec![(0, 0)]
        } else {
            let mut out = Vec::new();
            for w in 0..(1u64 << wlen) {
                // Enumerate submasks v of the complement of w.
                let free = !w & words::low_mask(wlen);
                let mut v = free;
                loop {
                    out.push((w, v));
                    if v == 0 {
                        break;
                    }
                    v = (v - 1) & free;
                }
            }
            out
        };
        for (wmask, vmask) in pairs {
            let parts: (Option<NonTerminal>, Option<NonTerminal>) = if wlen >= 1 {
                (Some(word_nt[&(wlen, wmask)]), Some(word_nt[&(wlen, vmask)]))
            } else {
                (None, None)
            };
            if i < n {
                let gap = c_nt[n - i].expect("n - i ≥ 1");
                b.rule(ai, |r| {
                    let r = match parts.0 {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    let r = r.t('a').n(gap);
                    let r = match parts.1 {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    r.t('a').n(gap)
                });
            } else {
                b.rule(ai, |r| {
                    let r = match parts.0 {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    let r = r.t('a');
                    let r = match parts.1 {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    r.t('a')
                });
            }
        }
    }
    b.build(s)
}

/// Exact size of [`example4_ucfg`] computed from the construction, without
/// building it (for large-`n` tables). Verified against the built grammar
/// in tests.
pub fn example4_size(n: u64) -> BigUint {
    assert!(n >= 1);
    let mut total = BigUint::zero();
    // S → A_i : n rules of size 1.
    total += &BigUint::from_u64(n);
    // C rules (only for n ≥ 2): C_1 two rules of size 1; C_i (2 ≤ i ≤ n-1)
    // two rules of size 2.
    if n >= 2 {
        total += &BigUint::from_u64(2 + 4 * (n - 2));
    }
    // A_w → w : for each length ℓ ∈ [1, n-1], 2^ℓ rules of size ℓ.
    for l in 1..n {
        total += &(&BigUint::from_u64(l) * &BigUint::pow2(l));
    }
    // A_i bodies: 3^{i-1} rules each (pairs with disjoint a-positions).
    for i in 1..=n {
        let body = if i < n {
            if i == 1 {
                4
            } else {
                6
            } // [A_w] a C [A_v] a C
        } else if i == 1 {
            2 // aa
        } else {
            4 // A_w a A_v a
        };
        let count = BigUint::small_pow(3, i - 1);
        total += &(&BigUint::from_u64(body) * &count);
    }
    total
}

/// The trivial grammar `S → w` for every `w ∈ L_n` — the materialisation
/// baseline; size `2n · |L_n|`, and trivially unambiguous.
pub fn naive_grammar(n: usize) -> Grammar {
    let mut b = GrammarBuilder::new(&['a', 'b']);
    let s = b.nonterminal("S");
    for w in words::enumerate_ln(n) {
        let string = words::to_string(n, w);
        b.rule(s, |r| r.ts(&string));
    }
    b.build(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{enumerate_ln, to_string};
    use std::collections::BTreeSet;
    use ucfg_grammar::count::decide_unambiguous;
    use ucfg_grammar::language::finite_language;

    fn ln_strings(n: usize) -> BTreeSet<String> {
        enumerate_ln(n)
            .into_iter()
            .map(|w| to_string(n, w))
            .collect()
    }

    #[test]
    fn example3_accepts_l_2n_plus_1() {
        for n in 0..=2 {
            let g = example3_grammar(n);
            let target = (1usize << n) + 1; // L_{2^n + 1}
            assert_eq!(
                finite_language(&g).unwrap(),
                ln_strings(target),
                "n={n} (L_{target})"
            );
        }
    }

    #[test]
    fn example3_size_is_linear() {
        for n in [1usize, 5, 10, 20] {
            let g = example3_grammar(n);
            assert_eq!(g.size(), 4 * n + 8 + 2 * n + 2);
        }
    }

    #[test]
    fn example3_is_ambiguous() {
        let g = example3_grammar(1);
        match decide_unambiguous(&g) {
            ucfg_grammar::count::UnambiguityVerdict::Ambiguous { .. } => {}
            v => panic!("expected ambiguous, got {v:?}"),
        }
    }

    #[test]
    fn appendix_a_accepts_ln() {
        for n in 1..=8 {
            let g = appendix_a_grammar(n);
            assert_eq!(finite_language(&g).unwrap(), ln_strings(n), "n={n}");
        }
    }

    #[test]
    fn appendix_a_size_is_logarithmic() {
        for n in [2usize, 16, 256, 4096, 65536] {
            let g = appendix_a_grammar(n);
            let log = (n as f64).log2();
            assert!(
                g.size() as f64 <= 40.0 * log + 40.0,
                "n={n}: size {} not O(log n)",
                g.size()
            );
        }
    }

    #[test]
    fn literal_appendix_a_is_incomplete() {
        // Erratum #2: the single-orientation chain of the appendix text
        // loses words. For n = 5 the literal grammar is a strict subset of
        // L_5 (e.g. it cannot place the insertion at gap 0).
        let n = 5;
        let literal = finite_language(&appendix_a_grammar_literal(n)).unwrap();
        let full = ln_strings(n);
        assert!(literal.is_subset(&full), "never generates non-members");
        assert!(
            literal.len() < full.len(),
            "literal construction should miss words: {} vs {}",
            literal.len(),
            full.len()
        );
        // A concrete missing word: first pair at position 1.
        let missing = format!("a{}a{}", "b".repeat(n - 1), "b".repeat(n - 1));
        assert!(full.contains(&missing));
        assert!(!literal.contains(&missing), "{missing} should be missing");
        // The corrected construction has it.
        assert!(finite_language(&appendix_a_grammar(n))
            .unwrap()
            .contains(&missing));
    }

    #[test]
    fn example4_accepts_ln() {
        for n in 1..=6 {
            let g = example4_ucfg(n);
            assert_eq!(finite_language(&g).unwrap(), ln_strings(n), "n={n}");
        }
    }

    #[test]
    fn example4_is_unambiguous() {
        for n in 1..=5 {
            let g = example4_ucfg(n);
            assert!(
                decide_unambiguous(&g).is_unambiguous(),
                "Example 4 grammar must be a uCFG (n={n})"
            );
        }
    }

    #[test]
    fn example4_size_formula_matches_construction() {
        for n in 1..=9 {
            let g = example4_ucfg(n);
            assert_eq!(
                example4_size(n as u64).to_u64(),
                Some(g.size() as u64),
                "n={n}"
            );
        }
    }

    #[test]
    fn example4_size_is_exponential() {
        // 2^{Ω(n)} growth: size(n) ≥ 2^{n-1}.
        for n in [4u64, 8, 16, 32, 64] {
            assert!(example4_size(n) >= BigUint::pow2(n - 1), "n={n}");
        }
    }

    #[test]
    fn naive_grammar_matches_and_is_unambiguous() {
        for n in 1..=4 {
            let g = naive_grammar(n);
            assert_eq!(finite_language(&g).unwrap(), ln_strings(n), "n={n}");
            assert!(decide_unambiguous(&g).is_unambiguous(), "n={n}");
            let expected = 2 * n * crate::words::ln_size(n).to_u64().unwrap() as usize;
            assert_eq!(g.size(), expected);
        }
    }

    #[test]
    fn separation_shape_small_n() {
        // The headline separation: log-size CFG vs exponential uCFG.
        for n in [4usize, 6, 8] {
            let cfg = appendix_a_grammar(n).size();
            let ucfg = example4_size(n as u64).to_u64().unwrap() as usize;
            assert!(ucfg > cfg, "n={n}: uCFG {ucfg} vs CFG {cfg}");
        }
        // And the gap widens.
        let gap4 = example4_size(4).to_u64().unwrap() / appendix_a_grammar(4).size() as u64;
        let gap8 = example4_size(8).to_u64().unwrap() / appendix_a_grammar(8).size() as u64;
        assert!(gap8 > gap4);
    }
}
