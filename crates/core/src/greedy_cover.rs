//! Greedy *disjoint* rectangle covers of `L_n` — empirical upper bounds to
//! compare against the paper's lower bounds.
//!
//! Theorem 12 says every disjoint cover by balanced ordered rectangles has
//! size `2^Ω(n)`; Example 8 shows `n` rectangles suffice if overlaps are
//! allowed. This module constructs actual disjoint covers greedily (seed a
//! word, grow a maximal rectangle inside the uncovered remainder, repeat)
//! so the experiments can sandwich the true disjoint cover number between
//! the greedy upper bound and the rank/discrepancy lower bounds.

use crate::partition::OrderedPartition;
use crate::rectangle::SetRectangle;
use crate::words::{enumerate_ln, Word};
use std::collections::{BTreeSet, HashMap};

/// A constructed disjoint cover.
#[derive(Debug)]
pub struct GreedyCover {
    /// The rectangles, in construction order.
    pub rectangles: Vec<SetRectangle>,
    /// Which partition each rectangle used.
    pub partitions: Vec<OrderedPartition>,
}

impl GreedyCover {
    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rectangles.len()
    }

    /// Is the cover empty?
    pub fn is_empty(&self) -> bool {
        self.rectangles.is_empty()
    }
}

/// Grow a maximal rectangle around `seed` inside `remaining`, over the
/// given partition:
/// start from the seed's row/column, alternately close the sides
/// (`T := {t : ∀s ∈ S, s∪t ∈ remaining}` and symmetrically) until stable.
fn maximal_rectangle(
    part: OrderedPartition,
    remaining: &BTreeSet<Word>,
    seed: Word,
) -> SetRectangle {
    let ins = part.inside();
    let outs = part.outside();
    // Candidate side patterns present in `remaining`.
    let mut by_s: HashMap<u64, BTreeSet<u64>> = HashMap::new();
    let mut by_t: HashMap<u64, BTreeSet<u64>> = HashMap::new();
    for &w in remaining {
        by_s.entry(w & ins).or_default().insert(w & outs);
        by_t.entry(w & outs).or_default().insert(w & ins);
    }
    let seed_s = seed & ins;
    let seed_t = seed & outs;
    // Start with all T-partners of the seed row.
    let mut t: BTreeSet<u64> = by_s.get(&seed_s).cloned().unwrap_or_default();
    let mut s: BTreeSet<u64> = BTreeSet::from([seed_s]);
    loop {
        // Largest S compatible with the whole current T.
        let new_s: BTreeSet<u64> = by_t
            .get(&seed_t)
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&cs| {
                        t.iter()
                            .all(|&ct| by_s.get(&cs).is_some_and(|m| m.contains(&ct)))
                    })
                    .collect()
            })
            .unwrap_or_default();
        // Largest T compatible with the new S.
        let new_t: BTreeSet<u64> = by_s
            .get(&seed_s)
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&ct| {
                        new_s
                            .iter()
                            .all(|&cs| by_s.get(&cs).is_some_and(|m| m.contains(&ct)))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if new_s == s && new_t == t {
            break;
        }
        s = new_s;
        t = new_t;
    }
    debug_assert!(s.contains(&seed_s) && t.contains(&seed_t));
    SetRectangle::new(part, s, t)
}

/// Build a disjoint cover of `L_n` by balanced ordered rectangles, greedily:
/// for each uncovered word, try every balanced partition and keep the
/// largest maximal rectangle fully inside the uncovered remainder.
pub fn greedy_disjoint_cover(n: usize) -> GreedyCover {
    let mut remaining: BTreeSet<Word> = enumerate_ln(n).into_iter().collect();
    let partitions = OrderedPartition::all_balanced(n);
    let mut rectangles = Vec::new();
    let mut used_partitions = Vec::new();
    while let Some(&seed) = remaining.iter().next() {
        let mut best: Option<(SetRectangle, OrderedPartition)> = None;
        for &part in &partitions {
            let r = maximal_rectangle(part, &remaining, seed);
            if r.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| r.len() > b.len()) {
                best = Some((r, part));
            }
        }
        let (r, part) = best.expect("the seed alone is always a rectangle");
        for w in r.members() {
            let removed = remaining.remove(&w);
            debug_assert!(removed, "rectangle must lie inside the remainder");
        }
        rectangles.push(r);
        used_partitions.push(part);
    }
    GreedyCover {
        rectangles,
        partitions: used_partitions,
    }
}

/// The *certified exact* disjoint `[1,n]`-cover number, when determinable:
/// if the greedy upper bound meets the rank lower bound they pin the exact
/// value (observed for all n ≤ 6: exactly `2^n − 1`).
pub fn certified_exact_middle_cut_cover_number(n: usize) -> Option<usize> {
    let upper = greedy_disjoint_cover_middle_cut(n).len();
    let lower = crate::rank::rank_gf2(n);
    (upper == lower).then_some(upper)
}

/// Variant restricted to the fixed middle cut `[1, n]` (the Theorem 17
/// regime, comparable to the rank bound `2^n − 1`).
pub fn greedy_disjoint_cover_middle_cut(n: usize) -> GreedyCover {
    let part = OrderedPartition::new(n, 1, n);
    let mut remaining: BTreeSet<Word> = enumerate_ln(n).into_iter().collect();
    let mut rectangles = Vec::new();
    let mut used = Vec::new();
    while let Some(&seed) = remaining.iter().next() {
        let r = maximal_rectangle(part, &remaining, seed);
        assert!(!r.is_empty());
        for w in r.members() {
            remaining.remove(&w);
        }
        rectangles.push(r);
        used.push(part);
    }
    GreedyCover {
        rectangles,
        partitions: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::verify_cover;
    use crate::rank::rank_gf2;

    #[test]
    fn greedy_cover_is_valid_and_disjoint() {
        for n in [3usize, 4, 5] {
            let c = greedy_disjoint_cover(n);
            let rep = verify_cover(n, &c.rectangles);
            assert!(rep.covers_exactly, "n={n}");
            assert!(rep.disjoint, "n={n}");
            assert!(rep.all_balanced, "n={n}");
            assert!(!c.is_empty());
            assert_eq!(c.partitions.len(), c.len());
        }
    }

    #[test]
    fn middle_cut_cover_respects_rank_bound() {
        for n in [3usize, 4, 5] {
            let c = greedy_disjoint_cover_middle_cut(n);
            let rep = verify_cover(n, &c.rectangles);
            assert!(rep.covers_exactly && rep.disjoint, "n={n}");
            // Theorem 17: the disjoint [1,n]-cover number is ≥ 2^n − 1; the
            // greedy construction must respect it.
            assert!(c.len() >= rank_gf2(n), "n={n}: {} < rank bound", c.len());
        }
    }

    #[test]
    fn disjoint_covers_are_much_bigger_than_example8() {
        // The quantitative heart of the paper: disjointness is expensive.
        // Observed greedy sizes: n=3 → 4, n=4 → 8, n=5 → 17 (vs the
        // ambiguous cover of size n).
        for n in [4usize, 5] {
            let disjoint = greedy_disjoint_cover(n).len();
            assert!(
                disjoint >= 2 * n,
                "n={n}: disjoint {disjoint} vs ambiguous n={n}"
            );
        }
        assert!(greedy_disjoint_cover(5).len() > 2 * 5);
    }

    #[test]
    fn middle_cut_greedy_matches_rank_bound_exactly() {
        // Empirically the greedy [1,n]-cover achieves the rank bound
        // 2^n − 1 — the lower bound of Theorem 17 is tight at these sizes.
        for n in [3usize, 4, 5] {
            assert_eq!(
                greedy_disjoint_cover_middle_cut(n).len(),
                (1 << n) - 1,
                "n={n}"
            );
        }
    }

    #[test]
    fn maximal_rectangle_contains_seed_and_stays_inside() {
        let n = 4;
        let remaining: BTreeSet<Word> = enumerate_ln(n).into_iter().collect();
        let part = OrderedPartition::new(n, 1, n);
        let seed = *remaining.iter().next().unwrap();
        let r = maximal_rectangle(part, &remaining, seed);
        assert!(r.contains(seed));
        for w in r.members() {
            assert!(remaining.contains(&w));
        }
    }
}
