//! Popcount word-set bitmaps: one bit per element of a `u64`-keyed
//! domain, `Vec<u64>` backed.
//!
//! The exhaustive kernels of this crate all reduce to set algebra over two
//! kinds of domain:
//!
//! * the **word domain** `{a,b}^{2n}` — bit `w` stands for the packed word
//!   `w` of [`crate::words`] (`2^{2n}` bits);
//! * the **family domain** — bit `i` stands for the `i`-th member of the
//!   Section 4.2 family `𝓛` under the perfect rank of
//!   [`crate::discrepancy::family_rank`] (`2^n` bits).
//!
//! A [`WordSet`] is agnostic to the interpretation: it is a plain bitset
//! over `0..domain` with popcount set algebra (`and` / `or` / `andnot` /
//! [`count`](WordSet::count) / [`and_count`](WordSet::and_count) /
//! [`iter`](WordSet::iter)), so one `u64` of machine work covers 64
//! scalar membership probes. Addressing is full `u64` (conceptually up to
//! `2n = 64`), but *materialisation* is capped at [`MAX_DOMAIN_BITS`] bits
//! so a stray call can never allocate beyond experiment scale.
//!
//! The canonical sets of the reproduction — `L_n`, the family `𝓛`, and
//! its `A`/`B` split — are built once per `n` and cached process-wide
//! ([`ln_bitmap`], [`family_bitmap`], [`family_a_bitmap`],
//! [`family_b_bitmap`]); rectangle bitmaps are built in `O(|S|·|T|)` by
//! [`crate::rectangle::SetRectangle::to_wordset`] instead of scanning the
//! full domain.
//!
//! ```
//! use ucfg_core::wordset::{self, WordSet};
//!
//! let n = 3;
//! let ln = wordset::ln_bitmap(n);
//! assert_eq!(ln.count(), 37); // 4³ − 3³
//! let all = WordSet::full(1u64 << (2 * n));
//! assert_eq!(all.andnot(&ln).count(), 27); // 3³ non-members
//! ```

use crate::discrepancy::{family_rank, in_a, supports_blocks};
use crate::words::{ln_contains, Word};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use ucfg_support::{arena, obs, par, simd};

pub mod chunked;

/// Materialisation cap: a [`WordSet`] never allocates more than this many
/// bits (`2^30` bits = 128 MiB). Word-domain sets therefore stop at
/// `2n ≤ 30`, comfortably above the `2n ≤ 26` exhaustive-scan ceiling of
/// the kernels; family-domain sets stop at `n ≤ 30`.
pub const MAX_DOMAIN_BITS: u64 = 1 << 30;

// Block indices are computed as `(k / 64) as usize`. The cap bounds the
// block count at `2^24`, which must fit a `usize` for that cast to be
// lossless — true on every 32/64-bit target, checked here so a future cap
// raise (or an exotic target) fails at compile time instead of silently
// truncating indices.
const _: () = assert!(MAX_DOMAIN_BITS / 64 <= usize::MAX as u64);
#[cfg(target_pointer_width = "16")]
compile_error!("WordSet block indexing requires usize to hold MAX_DOMAIN_BITS / 64 block indices");

/// The backing-word index for element `k`, checked against `usize` in
/// debug builds (the compile-time assert above proves it for every `k`
/// below the cap; this catches out-of-contract callers early).
#[inline]
fn block_index(k: u64) -> usize {
    debug_assert!(
        k / 64 <= usize::MAX as u64,
        "block index {} truncates on this target",
        k / 64
    );
    (k / 64) as usize
}

/// A bitset over the domain `0..domain` with popcount set algebra.
///
/// Bulk algebra dispatches through [`ucfg_support::simd`] (AVX2 when the
/// CPU has it, the scalar reference otherwise — see `UCFG_NO_SIMD`), and
/// backing slabs are pooled through [`ucfg_support::arena`]: dropping a
/// `WordSet` recycles its words for the next one of similar size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordSet {
    /// Number of addressable bits (bit `k` ⇔ element `k`).
    domain: u64,
    /// The backing words; bit `k` lives at `bits[k / 64] >> (k % 64)`.
    bits: Vec<u64>,
}

impl Drop for WordSet {
    fn drop(&mut self) {
        arena::recycle(std::mem::take(&mut self.bits));
    }
}

fn blocks_for(domain: u64) -> usize {
    assert!(
        domain <= MAX_DOMAIN_BITS,
        "WordSet domain {domain} exceeds the materialisation cap {MAX_DOMAIN_BITS}"
    );
    domain.div_ceil(64) as usize
}

/// The word-domain size `2^{2n}`, guarded **before** the shift: for
/// `n ≥ 32` the raw `1u64 << (2 * n)` would overflow the shift (a
/// confusing panic in debug, a silently wrapped — and wrong — domain in
/// release), so the cap is checked on `2n` itself first. Every
/// word-domain materialisation in this module routes through here; use
/// [`chunked::logical_word_domain`] for the unguarded logical size.
pub fn word_domain(n: usize) -> u64 {
    let cap_log2 = MAX_DOMAIN_BITS.trailing_zeros() as usize;
    assert!(
        2 * n <= cap_log2,
        "word domain 2^{} for n = {n} exceeds the materialisation cap {MAX_DOMAIN_BITS} (2n ≤ {cap_log2})",
        2 * n
    );
    1u64 << (2 * n)
}

/// The family-rank domain size `2^n`, guarded like [`word_domain`]: the
/// cap is checked on `n` before the shift so `n ≥ 64` can never wrap the
/// domain in release builds, and every family-domain materialisation gets
/// the same cap message.
pub fn family_domain(n: usize) -> u64 {
    let cap_log2 = MAX_DOMAIN_BITS.trailing_zeros() as usize;
    assert!(
        n <= cap_log2,
        "family domain 2^{n} for n = {n} exceeds the materialisation cap {MAX_DOMAIN_BITS} (n ≤ {cap_log2})"
    );
    1u64 << n
}

impl WordSet {
    /// The empty set over `0..domain`.
    pub fn empty(domain: u64) -> WordSet {
        WordSet {
            domain,
            bits: arena::take_zeroed(blocks_for(domain)),
        }
    }

    /// The full set `0..domain`.
    pub fn full(domain: u64) -> WordSet {
        let mut bits = arena::take_zeroed(blocks_for(domain));
        bits.fill(u64::MAX);
        if let Some(last) = bits.last_mut() {
            let tail = domain % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        WordSet { domain, bits }
    }

    /// The empty word-domain set for words of length `2n`.
    pub fn empty_words(n: usize) -> WordSet {
        Self::empty(word_domain(n))
    }

    /// Build from a membership predicate by scanning the whole domain on
    /// [`par::thread_count`] workers. The output is a pure function of the
    /// predicate, so it is bit-identical for every worker count.
    pub fn from_pred(domain: u64, pred: impl Fn(u64) -> bool + Sync) -> WordSet {
        Self::from_pred_threads(domain, par::thread_count(), pred)
    }

    /// [`WordSet::from_pred`] with an explicit worker count.
    pub fn from_pred_threads(
        domain: u64,
        threads: usize,
        pred: impl Fn(u64) -> bool + Sync,
    ) -> WordSet {
        let blocks = blocks_for(domain);
        // Chunk on 64-bit block boundaries so every worker owns whole
        // backing words and the slabs concatenate without masking.
        let chunk = blocks.div_ceil(64).max(1);
        let num_chunks = blocks.div_ceil(chunk).max(1);
        let slabs = par::run_chunks(num_chunks, threads, |ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(blocks);
            let mut slab = arena::take_zeroed(hi - lo);
            for (slot, bi) in slab.iter_mut().zip(lo..hi) {
                let base = bi as u64 * 64;
                let top = 64.min(domain - base);
                let mut word = 0u64;
                for b in 0..top {
                    if pred(base + b) {
                        word |= 1u64 << b;
                    }
                }
                *slot = word;
            }
            slab
        });
        let mut bits = arena::take_zeroed(blocks);
        let mut at = 0usize;
        for slab in slabs {
            bits[at..at + slab.len()].copy_from_slice(&slab);
            at += slab.len();
            arena::recycle(slab);
        }
        WordSet { domain, bits }
    }

    /// The addressable domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Insert element `k`.
    ///
    /// # Panics
    ///
    /// On `k >= domain`, in **every** profile. A `debug_assert!` here
    /// would let a release-mode out-of-domain insert with
    /// `k < blocks·64` silently set a bit past `domain` in the last
    /// block — inflating [`count`](WordSet::count) and every popcount
    /// kernel built on it — so the bound is a hard check.
    #[inline]
    pub fn insert(&mut self, k: u64) {
        assert!(
            k < self.domain,
            "element {k} outside domain {}",
            self.domain
        );
        self.bits[block_index(k)] |= 1u64 << (k % 64);
    }

    /// Remove element `k`.
    ///
    /// # Panics
    ///
    /// On `k >= domain`, in every profile (see [`insert`](WordSet::insert)).
    #[inline]
    pub fn remove(&mut self, k: u64) {
        assert!(
            k < self.domain,
            "element {k} outside domain {}",
            self.domain
        );
        self.bits[block_index(k)] &= !(1u64 << (k % 64));
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        k < self.domain && self.bits[block_index(k)] >> (k % 64) & 1 == 1
    }

    /// `|self|` by popcount.
    pub fn count(&self) -> u64 {
        simd::count(&self.bits)
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// `|self ∩ other|` without materialising the intersection — the
    /// workhorse of the discrepancy and cover kernels.
    pub fn and_count(&self, other: &WordSet) -> u64 {
        self.check_domain(other);
        simd::and_count(&self.bits, &other.bits)
    }

    /// `|self ∪ other|` without materialising the union.
    pub fn or_count(&self, other: &WordSet) -> u64 {
        self.check_domain(other);
        simd::or_count(&self.bits, &other.bits)
    }

    /// `|self ∖ other|` without materialising the difference — with
    /// [`and_count`](WordSet::and_count) this splits a rectangle across
    /// an `A`/`B` partition in one pass over each operand instead of
    /// materialising the complement side.
    pub fn andnot_count(&self, other: &WordSet) -> u64 {
        self.check_domain(other);
        simd::andnot_count(&self.bits, &other.bits)
    }

    /// Are the two sets disjoint?
    pub fn is_disjoint(&self, other: &WordSet) -> bool {
        self.check_domain(other);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & b == 0)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &WordSet) -> bool {
        self.check_domain(other);
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// `self ∩ other` as a new set.
    pub fn and(&self, other: &WordSet) -> WordSet {
        let mut out = self.combine_buf(other);
        simd::and_into(&mut out.bits, &self.bits, &other.bits);
        out
    }

    /// `self ∪ other` as a new set.
    pub fn or(&self, other: &WordSet) -> WordSet {
        let mut out = self.combine_buf(other);
        simd::or_into(&mut out.bits, &self.bits, &other.bits);
        out
    }

    /// `self ∖ other` as a new set.
    pub fn andnot(&self, other: &WordSet) -> WordSet {
        let mut out = self.combine_buf(other);
        simd::andnot_into(&mut out.bits, &self.bits, &other.bits);
        out
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &WordSet) {
        self.check_domain(other);
        simd::or_assign(&mut self.bits, &other.bits);
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &WordSet) {
        self.check_domain(other);
        simd::and_assign(&mut self.bits, &other.bits);
    }

    /// In-place `self ∖= other`.
    pub fn subtract_with(&mut self, other: &WordSet) {
        self.check_domain(other);
        simd::andnot_assign(&mut self.bits, &other.bits);
    }

    /// Iterate the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bits.iter().enumerate().flat_map(|(bi, &word)| {
            let base = bi as u64 * 64;
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| base + u64::from(w.trailing_zeros()))
        })
    }

    /// Direct read access to the backing words (for block-parallel folds).
    pub fn blocks(&self) -> &[u64] {
        &self.bits
    }

    fn check_domain(&self, other: &WordSet) {
        assert_eq!(
            self.domain, other.domain,
            "set algebra across mismatched domains"
        );
    }

    /// An uninitialised-content result set for a binary combine (the
    /// caller overwrites every word), pooled through the arena.
    fn combine_buf(&self, other: &WordSet) -> WordSet {
        self.check_domain(other);
        WordSet {
            domain: self.domain,
            bits: arena::take_zeroed(self.bits.len()),
        }
    }
}

/// A bit-sliced overlap counter: layer `i` holds bit `i` of a per-element
/// hit count, so accumulating `ℓ` sets costs `O(ℓ · domain/64)` words of
/// ripple-carry instead of `O(ℓ · domain)` scalar increments. This is how
/// [`crate::cover::verify_cover`] gets disjointness, coverage and the
/// maximum overlap in one pass.
#[derive(Debug, Clone)]
pub struct OverlapCounter {
    domain: u64,
    layers: Vec<WordSet>,
    /// Reused ripple-carry buffer so [`add`](OverlapCounter::add) never
    /// allocates an intermediate bitmap per accumulated set.
    scratch: Vec<u64>,
}

impl OverlapCounter {
    /// An all-zero counter over `0..domain`.
    pub fn new(domain: u64) -> OverlapCounter {
        OverlapCounter {
            domain,
            layers: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Add one set: per-element saturating-free increment (a fresh layer
    /// is appended whenever a carry ripples off the top).
    pub fn add(&mut self, set: &WordSet) {
        assert_eq!(self.domain, set.domain, "counter/set domain mismatch");
        self.scratch.clear();
        self.scratch.extend_from_slice(&set.bits);
        let carry = &mut self.scratch;
        for layer in &mut self.layers {
            if !simd::carry_save(&mut layer.bits, carry) {
                return;
            }
        }
        if carry.iter().any(|&c| c != 0) {
            let mut bits = arena::take_zeroed(carry.len());
            bits.copy_from_slice(carry);
            self.layers.push(WordSet {
                domain: self.domain,
                bits,
            });
        }
    }

    /// The maximum per-element count.
    pub fn max_count(&self) -> usize {
        // Walk layers top-down, keeping the mask of elements that attain
        // every high bit committed so far.
        let mut max = 0usize;
        let mut mask: Option<Vec<u64>> = None;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let hit: Vec<u64> = match &mask {
                None => layer.bits.clone(),
                Some(m) => layer.bits.iter().zip(m).map(|(&l, &mm)| l & mm).collect(),
            };
            if hit.iter().any(|&b| b != 0) {
                max |= 1 << i;
                mask = Some(hit);
            }
        }
        max
    }

    /// The set of elements whose count is **exactly** `k`. Elements never
    /// touched have count 0, so `exactly(0)` is the complement of the
    /// union; a `k` above the attained maximum yields the empty set.
    pub fn exactly(&self, k: usize) -> WordSet {
        if self.layers.len() < usize::BITS as usize && k >> self.layers.len() != 0 {
            return WordSet::empty(self.domain);
        }
        let mut out = WordSet::full(self.domain);
        for (i, layer) in self.layers.iter().enumerate() {
            if k >> i & 1 == 1 {
                out.intersect_with(layer);
            } else {
                out.subtract_with(layer);
            }
        }
        out
    }

    /// `|exactly(k) ∩ other|` without materialising the count-`k` set:
    /// one streaming pass over the layer words, early-skipping words
    /// where `other` is empty. This is what the overlap-histogram kernel
    /// calls per `k`, replacing a full-domain temporary per histogram
    /// bucket with a pure fold.
    pub fn exactly_and_count(&self, k: usize, other: &WordSet) -> u64 {
        assert_eq!(self.domain, other.domain, "counter/set domain mismatch");
        if self.layers.len() < usize::BITS as usize && k >> self.layers.len() != 0 {
            return 0;
        }
        if self.layers.is_empty() {
            // No sets accumulated: every element has count 0.
            return if k == 0 { other.count() } else { 0 };
        }
        let mut total = 0u64;
        for (w, &ow) in other.bits.iter().enumerate() {
            if ow == 0 {
                continue;
            }
            let mut x = ow;
            for (i, layer) in self.layers.iter().enumerate() {
                let l = layer.bits[w];
                x &= if k >> i & 1 == 1 { l } else { !l };
                if x == 0 {
                    break;
                }
            }
            total += u64::from(x.count_ones());
        }
        total
    }

    /// The set of elements with count ≥ 1 (the union of everything added).
    pub fn any(&self) -> WordSet {
        let mut out = WordSet::empty(self.domain);
        for layer in &self.layers {
            out.union_with(layer);
        }
        out
    }
}

/// Which canonical bitmap a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Canonical {
    /// `L_n` over the word domain.
    Ln,
    /// The family `𝓛` over the word domain.
    Family,
    /// `A ⊆ 𝓛` (odd witness count) over the family-rank domain.
    FamilyA,
    /// `B = 𝓛 ∖ A` over the family-rank domain.
    FamilyB,
}

/// The process-wide canonical-bitmap cache, keyed by (kind, n). Each key
/// maps to a once-cell slot so a bitmap is built **exactly once** no
/// matter how many threads race for it (latecomers block on the slot).
type CacheSlot = Arc<OnceLock<Arc<WordSet>>>;
type CanonicalCache = Mutex<BTreeMap<(Canonical, usize), CacheSlot>>;

fn cache() -> &'static CanonicalCache {
    static CACHE: OnceLock<CanonicalCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn cached(kind: Canonical, n: usize, build: impl FnOnce() -> WordSet) -> Arc<WordSet> {
    use std::collections::btree_map::Entry;
    let slot = match cache()
        .lock()
        .expect("wordset cache poisoned")
        .entry((kind, n))
    {
        Entry::Occupied(e) => e.get().clone(),
        Entry::Vacant(v) => v.insert(Arc::new(OnceLock::new())).clone(),
    };
    // The map lock is NOT held across `build`: builders may recurse into
    // the cache (e.g. `family_b_bitmap` builds from `family_a_bitmap`,
    // a different key). The per-key once-cell guarantees exactly one
    // build — concurrent callers for the same key block here instead of
    // racing duplicate builds, so `wordset.cache.misses` counts each
    // distinct key exactly once.
    let mut built_here = false;
    let set = slot
        .get_or_init(|| {
            built_here = true;
            Arc::new(build())
        })
        .clone();
    if built_here {
        obs::count!("wordset.cache.misses");
        obs::gauge_add!("wordset.cache.bytes", (set.blocks().len() * 8) as i64);
        obs::gauge_set!("wordset.cache.len", canonical_cache_len() as i64);
    } else {
        obs::count!("wordset.cache.hits");
    }
    set
}

/// Number of canonical bitmaps currently cached (slots whose build has
/// started; with the once-cell discipline that equals the distinct keys
/// requested since the last [`clear_canonical_cache`]).
pub fn canonical_cache_len() -> usize {
    cache().lock().expect("wordset cache poisoned").len()
}

/// Drop every cached canonical bitmap and return how many entries were
/// dropped. Outstanding `Arc` handles keep their data alive; the next
/// request per key rebuilds (a fresh `wordset.cache.misses`). Bumps the
/// `wordset.cache.clears` counter and resets the resident-bytes / length
/// gauges, which track bytes built into the cache since the last clear.
pub fn clear_canonical_cache() -> usize {
    let mut map = cache().lock().expect("wordset cache poisoned");
    let dropped = map.len();
    map.clear();
    obs::count!("wordset.cache.clears");
    obs::gauge_set!("wordset.cache.bytes", 0);
    obs::gauge_set!("wordset.cache.len", 0);
    dropped
}

/// The canonical `L_n` bitmap over the word domain `{a,b}^{2n}` (cached
/// per `n`; built once with the serial scan so the cached bytes never
/// depend on the ambient thread count).
pub fn ln_bitmap(n: usize) -> Arc<WordSet> {
    // Regression (same class PR 4 fixed in `empty_words`): the domain is
    // computed through the guarded helper so `n ≥ 16` dies with the cap
    // message *before* the `1u64 << (2 * n)` shift can wrap in release.
    let domain = word_domain(n);
    cached(Canonical::Ln, n, || {
        WordSet::from_pred_threads(domain, 1, |w| ln_contains(n, w as Word))
    })
}

/// The family `𝓛` as a word-domain bitmap (cached per `n`; needs
/// `n ≡ 0 mod 4`).
pub fn family_bitmap(n: usize) -> Arc<WordSet> {
    assert!(supports_blocks(n));
    let domain = word_domain(n);
    cached(Canonical::Family, n, || {
        WordSet::from_pred_threads(domain, 1, |w| crate::discrepancy::in_family(n, w as Word))
    })
}

/// `A ⊆ 𝓛` (odd witness count) over the **family-rank domain**: bit `i`
/// is set iff the member `family_unrank(n, i)` lies in `A`. Cached per
/// `n`.
pub fn family_a_bitmap(n: usize) -> Arc<WordSet> {
    assert!(supports_blocks(n));
    let domain = family_domain(n);
    cached(Canonical::FamilyA, n, || {
        WordSet::from_pred_threads(domain, 1, |i| {
            in_a(n, crate::discrepancy::family_unrank(n, i))
        })
    })
}

/// `B = 𝓛 ∖ A` over the family-rank domain. Cached per `n`.
pub fn family_b_bitmap(n: usize) -> Arc<WordSet> {
    assert!(supports_blocks(n));
    let domain = family_domain(n);
    cached(Canonical::FamilyB, n, || {
        let a = family_a_bitmap(n);
        WordSet::full(domain).andnot(&a)
    })
}

/// The bitmap `{ a | b : a ∈ s, b ∈ t }` over `domain` — the shared
/// product-construction kernel of [`crate::rectangle::SetRectangle::to_wordset`]
/// and the aligned-partition route of [`family_rectangle_bitmap_threads`].
///
/// Instead of one read-modify-write per pair, the inner side is grouped by
/// high word (`b >> 6`): for a fixed low-6-bit pattern of `a`, each group
/// collapses to a single precomputed 64-bit mask (`⋁ 1 << ((a & 63) | (b
/// & 63))`), so the hot loop does one register OR per `(a, group)` — the
/// per-low-pattern mask columns are built lazily, at most 64 of them, so
/// the setup cost stays below one pass over the pairs. Duplicate members
/// OR harmlessly; the result is the exact member set in every case.
///
/// Panics if any `a | b` lies outside `domain` (the per-pair `insert`
/// builder enforced the same contract).
pub fn pair_or_bitmap(domain: u64, s: &[u64], t: &[u64]) -> WordSet {
    let mut out = WordSet::empty(domain);
    if s.is_empty() || t.is_empty() {
        return out;
    }
    // The grouped (inner) side should be the one with the richer low-bit
    // variety: its groups then hold several members each, and every group
    // OR replaces that many per-pair stores.
    let distinct_lows = |keys: &[u64]| {
        keys.iter()
            .fold(0u64, |m, &k| m | 1u64 << (k & 63))
            .count_ones()
    };
    let (outer, inner) = if distinct_lows(s) >= distinct_lows(t) {
        (t, s)
    } else {
        (s, t)
    };
    // Ascending order groups equal high words contiguously.
    let mut inner_sorted: Vec<u64> = inner.to_vec();
    inner_sorted.sort_unstable();
    let mut group_hi: Vec<usize> = Vec::new();
    let mut group_start: Vec<u32> = Vec::new();
    let mut lows: Vec<u8> = Vec::with_capacity(inner_sorted.len());
    for &b in &inner_sorted {
        let hi = block_index(b);
        if group_hi.last() != Some(&hi) {
            group_hi.push(hi);
            group_start.push(lows.len() as u32);
        }
        lows.push((b & 63) as u8);
    }
    group_start.push(lows.len() as u32);
    let blocks = out.bits.len();
    let tail_allowed = if domain.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (domain % 64)) - 1
    };
    // cols[al][g]: the group-g mask for outer keys with low bits `al`
    // (empty = not built yet; a built column always has ≥ 1 group).
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); 64];
    for &a in outer {
        let ah = block_index(a);
        let al = (a & 63) as usize;
        if cols[al].is_empty() {
            cols[al] = group_hi
                .iter()
                .enumerate()
                .map(|(g, _)| {
                    lows[group_start[g] as usize..group_start[g + 1] as usize]
                        .iter()
                        .fold(0u64, |m, &bl| m | 1u64 << (al as u32 | u32::from(bl)))
                })
                .collect();
        }
        let col = &cols[al];
        for (g, &hi) in group_hi.iter().enumerate() {
            let block = ah | hi;
            let mask = col[g];
            assert!(
                block < blocks && (block + 1 < blocks || mask & !tail_allowed == 0),
                "pair_or_bitmap: member out of the {domain}-bit domain"
            );
            out.bits[block] |= mask;
        }
    }
    out
}

/// The family-rank bitmap of `R ∩ 𝓛` for a rectangle `R = S × T`, built
/// in `O(min(|S|·|T|, 2^n))`: sparse rectangles rank each member pair
/// `u ∪ v` directly, while rectangles whose product exceeds the family
/// size (Example 8's cover rectangles, where `|S|·|T| ≫ |𝓛|`) fall back
/// to one membership probe per family rank. Both routes produce the same
/// set, so the choice never changes the bytes.
pub fn family_rectangle_bitmap(n: usize, r: &crate::rectangle::SetRectangle) -> WordSet {
    family_rectangle_bitmap_threads(n, r, par::thread_count())
}

/// [`family_rectangle_bitmap`] with an explicit worker count: the `S` side
/// is chunked over the deterministic parallel layer and the partial
/// bitmaps are OR-merged. The union is the same set for every chunking,
/// so the bytes are bit-identical for every `threads ≥ 1`.
pub fn family_rectangle_bitmap_threads(
    n: usize,
    r: &crate::rectangle::SetRectangle,
    threads: usize,
) -> WordSet {
    assert!(supports_blocks(n));
    let domain = family_domain(n);
    let s: Vec<u64> = r.s.iter().copied().collect();
    let t: Vec<u64> = r.t.iter().copied().collect();
    if s.is_empty() || t.is_empty() {
        return WordSet::empty(domain);
    }
    // Aligned fast route: when the partition cuts on 4-block boundaries
    // (the `[1, n]` cut of the discrepancy experiments always does), the
    // family test and the rank both split across the sides, so each side
    // reduces once to its valid members' rank contributions and the
    // product becomes a pure `contrib(u) | contrib(v)` sweep through the
    // grouped [`pair_or_bitmap`] kernel — no per-pair membership or rank
    // work at all. Both routes build the same set, so the choice never
    // changes the bytes.
    use crate::discrepancy::{nibble_aligned, side_rank_contrib};
    let low = crate::words::low_mask(2 * n);
    let ins = r.partition.inside() & low;
    let outs = r.partition.outside() & low;
    if nibble_aligned(ins) && s.iter().all(|&u| u & !ins == 0) && t.iter().all(|&v| v & !outs == 0)
    {
        obs::count!("wordset.rect.aligned_route");
        let sv: Vec<u64> = s
            .iter()
            .filter_map(|&u| side_rank_contrib(ins, u))
            .collect();
        let mut tv: Vec<u64> = t
            .iter()
            .filter_map(|&v| side_rank_contrib(outs, v))
            .collect();
        tv.sort_unstable();
        if sv.is_empty() || tv.is_empty() {
            return WordSet::empty(domain);
        }
        let chunk = sv.len().div_ceil(threads.max(1)).max(1);
        let partials = par::run_chunks(sv.len().div_ceil(chunk), threads, |ci| {
            let lo = ci * chunk;
            pair_or_bitmap(domain, &sv[lo..(lo + chunk).min(sv.len())], &tv)
        });
        let mut out = WordSet::empty(domain);
        for p in &partials {
            out.union_with(p);
        }
        return out;
    }
    if (s.len() as u128) * (t.len() as u128) > u128::from(domain) {
        // Dense rectangle: scanning the 2^n family ranks beats enumerating
        // the |S|·|T| product.
        obs::count!("wordset.rect.scan_route");
        return WordSet::from_pred_threads(domain, threads, |i| {
            r.contains(crate::discrepancy::family_unrank(n, i))
        });
    }
    obs::count!("wordset.rect.product_route");
    let chunk = s.len().div_ceil(64).max(1);
    let partials = par::run_chunks(s.len().div_ceil(chunk), threads, |ci| {
        let lo = ci * chunk;
        let mut part = WordSet::empty(domain);
        for &u in &s[lo..(lo + chunk).min(s.len())] {
            for &v in &t {
                let w = u | v;
                if crate::discrepancy::in_family(n, w) {
                    part.insert(family_rank(n, w));
                }
            }
        }
        part
    });
    let mut out = WordSet::empty(domain);
    for p in &partials {
        out.union_with(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words;
    use std::collections::BTreeSet;

    #[test]
    fn empty_full_and_membership() {
        for domain in [0u64, 1, 63, 64, 65, 130] {
            let e = WordSet::empty(domain);
            let f = WordSet::full(domain);
            assert_eq!(e.count(), 0, "domain {domain}");
            assert_eq!(f.count(), domain, "domain {domain}");
            assert!(e.is_empty());
            for k in 0..domain {
                assert!(!e.contains(k));
                assert!(f.contains(k));
            }
            assert!(!f.contains(domain), "out-of-domain probe is false");
        }
    }

    #[test]
    fn algebra_matches_btreeset_model() {
        let domain = 200u64;
        let a_model: BTreeSet<u64> = (0..domain).filter(|k| k % 3 == 0).collect();
        let b_model: BTreeSet<u64> = (0..domain).filter(|k| k % 5 == 1).collect();
        let mut a = WordSet::empty(domain);
        let mut b = WordSet::empty(domain);
        a_model.iter().for_each(|&k| a.insert(k));
        b_model.iter().for_each(|&k| b.insert(k));

        assert_eq!(a.count(), a_model.len() as u64);
        assert_eq!(
            a.and(&b).iter().collect::<BTreeSet<_>>(),
            &a_model & &b_model
        );
        assert_eq!(
            a.or(&b).iter().collect::<BTreeSet<_>>(),
            &a_model | &b_model
        );
        assert_eq!(
            a.andnot(&b).iter().collect::<BTreeSet<_>>(),
            &a_model - &b_model
        );
        assert_eq!(a.and_count(&b), (&a_model & &b_model).len() as u64);
        assert_eq!(a.is_disjoint(&b), (&a_model & &b_model).is_empty());
        assert!(a.is_subset(&a.or(&b)));
        assert!(!a.or(&b).is_subset(&a) || b_model.is_subset(&a_model));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.or(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.and(&b));

        a.remove(0);
        assert!(!a.contains(0));
    }

    #[test]
    fn iter_ascending_and_roundtrip() {
        let mut s = WordSet::empty(300);
        for k in [0u64, 1, 63, 64, 127, 128, 255, 299] {
            s.insert(k);
        }
        let got: Vec<u64> = s.iter().collect();
        assert_eq!(got, vec![0, 1, 63, 64, 127, 128, 255, 299]);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn from_pred_is_thread_invariant() {
        let domain = 1u64 << 14;
        let serial = WordSet::from_pred_threads(domain, 1, |k| k.count_ones() % 3 == 0);
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                WordSet::from_pred_threads(domain, threads, |k| k.count_ones() % 3 == 0),
                "threads {threads}"
            );
        }
        assert_eq!(
            serial,
            WordSet::from_pred(domain, |k| k.count_ones() % 3 == 0)
        );
    }

    /// Tests that rely on cache identity (`Arc::ptr_eq`) or clear the
    /// process-wide cache must not interleave under the parallel runner.
    fn cache_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn ln_bitmap_matches_enumeration() {
        let _g = cache_gate();
        for n in [2usize, 3, 5] {
            let bm = ln_bitmap(n);
            assert_eq!(bm.count(), words::ln_size(n).to_u64().unwrap(), "n={n}");
            assert!(bm.iter().eq(words::ln_iter(n)), "n={n}");
            // Cached: a second call returns the same allocation.
            assert!(Arc::ptr_eq(&bm, &ln_bitmap(n)));
        }
    }

    #[test]
    fn family_bitmaps_match_scalar_membership() {
        for n in [4usize, 8] {
            let fam = family_bitmap(n);
            let a = family_a_bitmap(n);
            let b = family_b_bitmap(n);
            assert_eq!(fam.count(), 1 << n, "|𝓛| = 2^n");
            assert_eq!(a.count() + b.count(), 1 << n, "A ⊎ B = 𝓛");
            assert!(a.is_disjoint(&b));
            for i in 0..(1u64 << n) {
                let w = crate::discrepancy::family_unrank(n, i);
                assert!(fam.contains(w), "unrank lands in 𝓛");
                assert_eq!(a.contains(i), in_a(n, w), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn rectangle_bitmap_routes_agree_on_dense_rectangles() {
        // Example 8's cover rectangles have |S|·|T| ≫ 2^n, so they take
        // the family-rank scan route; the bytes must match the brute
        // per-rank membership probe (the product route's invariant) for
        // every thread count.
        let n = 8usize;
        let mut saw_dense = false;
        for r in crate::cover::example8_cover(n) {
            let expected = WordSet::from_pred_threads(1u64 << n, 1, |i| {
                r.contains(crate::discrepancy::family_unrank(n, i))
            });
            saw_dense |= (r.s.len() as u128) * (r.t.len() as u128) > 1 << n;
            for threads in [1usize, 4] {
                assert_eq!(expected, family_rectangle_bitmap_threads(n, &r, threads));
            }
        }
        assert!(saw_dense, "at least one rectangle exercises the scan route");
    }

    #[test]
    fn pair_or_bitmap_matches_per_pair_inserts() {
        // The grouped product kernel against the naive per-pair insert
        // loop, over ragged and word-aligned domains, with key sets that
        // collide, interleave high words, and sit on the domain boundary.
        let keysets: &[(&[u64], &[u64])] = &[
            (&[0], &[0]),
            (&[0, 3, 5], &[0, 8, 16, 24]),
            (&[1, 2, 4, 64, 129], &[0, 32, 63]),
            (&[0, 63, 64, 127, 128], &[0, 1, 2, 3]),
            (&[6, 70, 134], &[1, 57]),
        ];
        for &(s, t) in keysets {
            let max = s
                .iter()
                .flat_map(|&a| t.iter().map(move |&b| a | b))
                .max()
                .unwrap();
            for domain in [max + 1, (max + 1).next_multiple_of(64), max + 77] {
                let mut expected = WordSet::empty(domain);
                for &a in s {
                    for &b in t {
                        expected.insert(a | b);
                    }
                }
                assert_eq!(expected, pair_or_bitmap(domain, s, t), "domain {domain}");
                // Symmetric in the sides.
                assert_eq!(expected, pair_or_bitmap(domain, t, s), "domain {domain}");
            }
        }
        // Empty sides give the empty set.
        assert!(pair_or_bitmap(100, &[], &[1]).is_empty());
        assert!(pair_or_bitmap(100, &[1], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of the")]
    fn pair_or_bitmap_rejects_out_of_domain_members() {
        let _ = pair_or_bitmap(64, &[1], &[64]);
    }

    #[test]
    fn aligned_rectangle_route_matches_the_per_pair_route() {
        // The block-aligned [1, n] cut takes the rank-contribution fast
        // route; its bytes must equal the brute per-rank membership probe
        // for sparse and dense sides alike, at every thread count.
        use crate::partition::OrderedPartition;
        use std::collections::BTreeSet;
        for n in [4usize, 8] {
            let part = OrderedPartition::new(n, 1, n);
            let (s_all, t_all) = crate::discrepancy::family_side_patterns(n, part);
            let cases: Vec<(BTreeSet<u64>, BTreeSet<u64>)> = vec![
                (
                    s_all.iter().copied().step_by(3).collect(),
                    t_all.iter().copied().step_by(2).collect(),
                ),
                (
                    s_all.iter().copied().collect(),
                    t_all.iter().copied().collect(),
                ),
                // An invalid S member (two bits in one block) contributes
                // nothing on any route.
                (
                    BTreeSet::from([0b11u64, s_all[0]]),
                    t_all.iter().copied().collect(),
                ),
            ];
            for (s, t) in cases {
                let r = crate::rectangle::SetRectangle {
                    partition: part,
                    s,
                    t,
                };
                let expected = WordSet::from_pred_threads(1u64 << n, 1, |i| {
                    r.contains(crate::discrepancy::family_unrank(n, i))
                });
                for threads in [1usize, 2, 8] {
                    assert_eq!(
                        expected,
                        family_rectangle_bitmap_threads(n, &r, threads),
                        "n={n} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_counter_counts_exactly() {
        let domain = 192u64;
        let sets: Vec<WordSet> = (0..5u64)
            .map(|s| WordSet::from_pred_threads(domain, 1, move |k| (k + s).is_multiple_of(s + 2)))
            .collect();
        let mut counter = OverlapCounter::new(domain);
        for s in &sets {
            counter.add(s);
        }
        let scalar_count = |k: u64| -> usize { sets.iter().filter(|s| s.contains(k)).count() };
        let max = (0..domain).map(scalar_count).max().unwrap();
        assert_eq!(counter.max_count(), max);
        for k in 0..=max {
            let exact = counter.exactly(k);
            for e in 0..domain {
                assert_eq!(exact.contains(e), scalar_count(e) == k, "k={k} e={e}");
            }
        }
        assert_eq!(
            counter.any().iter().collect::<Vec<_>>(),
            (0..domain)
                .filter(|&e| scalar_count(e) > 0)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn overlap_counter_empty_and_single() {
        let c = OverlapCounter::new(128);
        assert_eq!(c.max_count(), 0);
        assert_eq!(c.exactly(0), WordSet::full(128));
        assert!(c.any().is_empty());

        let mut c = OverlapCounter::new(128);
        let mut s = WordSet::empty(128);
        s.insert(7);
        for _ in 0..9 {
            c.add(&s); // carries ripple through multiple layers
        }
        assert_eq!(c.max_count(), 9);
        assert!(c.exactly(9).contains(7));
        assert_eq!(c.exactly(9).count(), 1);
        assert_eq!(c.exactly(0).count(), 127);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn domain_cap_enforced() {
        let _ = WordSet::empty(MAX_DOMAIN_BITS + 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_insert_panics_in_every_profile() {
        // Regression: with `debug_assert!` bounds this silently set bit
        // 100 of the last block in release, corrupting `count()`.
        let mut s = WordSet::empty(100);
        s.insert(100);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_remove_panics_in_every_profile() {
        let mut s = WordSet::empty(100);
        s.remove(127);
    }

    #[test]
    fn out_of_domain_insert_cannot_corrupt_counts() {
        // `insert(domain)` with domain < blocks·64 lands inside the last
        // backing block; prove it can no longer inflate `count()`.
        let mut s = WordSet::empty(100);
        s.insert(99);
        for k in [100u64, 101, 127] {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.insert(k)));
            assert!(attempt.is_err(), "insert({k}) must panic");
        }
        assert_eq!(s.count(), 1, "tail bits stay clear after rejected inserts");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn empty_words_at_the_cap_boundary() {
        // 2n = 30 is exactly the materialisation cap.
        assert_eq!(WordSet::empty_words(15).domain(), MAX_DOMAIN_BITS);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn empty_words_overflow_gets_the_cap_message() {
        // Regression: n = 32 used to evaluate `1u64 << 64` *before* the
        // cap check — a shift-overflow panic in debug and a silently
        // wrapped (domain = 1!) set in release. Now it dies with the
        // cap message before the shift.
        let _ = WordSet::empty_words(32);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn empty_words_just_past_the_cap_gets_the_cap_message() {
        let _ = WordSet::empty_words(16);
    }

    #[test]
    fn guarded_domains_at_the_cap_boundary() {
        // 2n = 30 (n = 15) and n = 30 sit exactly at the cap: the guarded
        // helpers return the cap itself without panicking. Checked on the
        // helpers directly — building a 128 MiB bitmap just to probe the
        // boundary would be the expensive way to say the same thing.
        assert_eq!(word_domain(15), MAX_DOMAIN_BITS);
        assert_eq!(family_domain(30), MAX_DOMAIN_BITS);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn ln_bitmap_just_past_the_cap_gets_the_cap_message() {
        let _ = ln_bitmap(16);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn ln_bitmap_overflow_gets_the_cap_message() {
        // Regression: n = 32 used to hit `1u64 << 64` before any check —
        // the exact masked-shift class PR 4 fixed in `empty_words`.
        let _ = ln_bitmap(32);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn family_bitmap_just_past_the_cap_gets_the_cap_message() {
        let _ = family_bitmap(16);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn family_a_bitmap_overflow_gets_the_cap_message() {
        // `supports_blocks(32)` holds (2n = 64), so before the guarded
        // helper this reached `1u64 << 32`-sized allocation paths; the
        // family-domain guard now dies first with the cap message.
        let _ = family_a_bitmap(32);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn family_b_bitmap_overflow_gets_the_cap_message() {
        let _ = family_b_bitmap(32);
    }

    #[test]
    #[should_panic(expected = "materialisation cap")]
    fn family_rectangle_bitmap_overflow_gets_the_cap_message() {
        // The guard fires on the domain computation, before S/T are even
        // looked at, so an empty rectangle suffices.
        let r = crate::rectangle::SetRectangle::new(
            crate::partition::OrderedPartition::new(32, 1, 32),
            BTreeSet::new(),
            BTreeSet::new(),
        );
        let _ = family_rectangle_bitmap_threads(32, &r, 1);
    }

    #[test]
    fn cache_clear_and_len_round_trip() {
        let _g = cache_gate();
        let before = canonical_cache_len();
        let bm = ln_bitmap(2);
        assert!(canonical_cache_len() >= 1.max(before));
        let dropped = clear_canonical_cache();
        assert!(dropped >= 1);
        assert_eq!(canonical_cache_len(), 0);
        // Outstanding handles stay valid; the next request rebuilds.
        assert_eq!(bm.count(), ln_bitmap(2).count());
        assert!(!Arc::ptr_eq(&bm, &ln_bitmap(2)));
    }

    #[test]
    #[should_panic(expected = "mismatched domains")]
    fn mismatched_domains_panic() {
        let _ = WordSet::empty(64).and_count(&WordSet::empty(128));
    }
}
