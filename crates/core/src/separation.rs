//! The Theorem 1 separation, as measurable data.
//!
//! For a sweep of `n` this module reports the sizes of every representation
//! the theorem compares:
//! 1. the O(log n) CFG (Appendix A),
//! 2. the Θ(n) guess-and-verify NFA (promise semantics) and the exact
//!    length-checked NFA,
//! 3. the Example 4 uCFG (2^Θ(n)) and the discrepancy lower bound
//!    2^{Ω(n)} that *every* uCFG must obey,
//!
//! plus the DAWG/right-linear baseline for small `n`.

use crate::discrepancy::cover_lower_bound_log2;
use crate::ln_grammars::{appendix_a_grammar, example4_size, example4_ucfg, naive_grammar};
use crate::words;
use ucfg_automata::convert::dfa_to_grammar;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_grammar::bignum::BigUint;

/// One row of the separation table.
#[derive(Debug, Clone)]
pub struct SeparationRow {
    /// The parameter `n` (words have length `2n`).
    pub n: usize,
    /// `|L_n| = 4^n − 3^n`.
    pub language_size: BigUint,
    /// Size of the Appendix A CFG (Theorem 1(1): Θ(log n)).
    pub cfg_size: usize,
    /// Transitions of the Θ(n) pattern NFA (promise semantics).
    pub nfa_pattern_transitions: usize,
    /// Transitions of the exact NFA (length-checked; Θ(n²)).
    pub nfa_exact_transitions: Option<usize>,
    /// Size of the Example 4 uCFG (2^Θ(n)); exact via the closed form.
    pub ucfg_example4_size: BigUint,
    /// Size of the DAWG right-linear uCFG (small `n` only).
    pub ucfg_dawg_size: Option<usize>,
    /// Size of the naive `S → w` grammar: `2n · |L_n|`.
    pub naive_size: BigUint,
    /// log₂ of the Proposition 16 lower bound every uCFG must satisfy
    /// (meaningful once `n ≡ 0 mod 4` and the Lemma 18 inequality holds,
    /// i.e. `n ≥ 16`).
    pub ucfg_lower_bound_log2: Option<f64>,
}

/// Compute one separation row. Expensive parts (exact NFA, DAWG) are only
/// computed below the given thresholds.
pub fn separation_row(n: usize, exact_nfa_max: usize, dawg_max: usize) -> SeparationRow {
    let cfg_size = appendix_a_grammar(n).size();
    let nfa_pattern_transitions = pattern_nfa(n).transition_count();
    let nfa_exact_transitions = (n <= exact_nfa_max).then(|| exact_nfa(n).transition_count());
    let ucfg_dawg_size = (n <= dawg_max).then(|| {
        let mut words: Vec<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        words.sort();
        let mut b = DawgBuilder::new(&['a', 'b']);
        for w in &words {
            b.add(w);
        }
        let dfa = b.finish();
        dfa_to_grammar(&dfa).expect("L_n has no ε").size()
    });
    let m = (n / 4) as u64;
    let ucfg_lower_bound_log2 = (n.is_multiple_of(4)
        && crate::discrepancy::lemma18_inequality_holds(m))
    .then(|| cover_lower_bound_log2(m));
    SeparationRow {
        n,
        language_size: words::ln_size(n),
        cfg_size,
        nfa_pattern_transitions,
        nfa_exact_transitions,
        ucfg_example4_size: example4_size(n as u64),
        ucfg_dawg_size,
        naive_size: &BigUint::from_u64(2 * n as u64) * &words::ln_size(n),
        ucfg_lower_bound_log2,
    }
}

/// The three grammar sizes of Theorem 1 double-checked against actually
/// constructed grammars (small `n`): (appendix CFG, example4 uCFG, naive).
pub fn constructed_sizes(n: usize) -> (usize, usize, usize) {
    (
        appendix_a_grammar(n).size(),
        example4_ucfg(n).size(),
        naive_grammar(n).size(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_expected_shape() {
        let r8 = separation_row(8, 8, 6);
        assert!(r8.nfa_exact_transitions.is_some());
        assert!(r8.ucfg_dawg_size.is_none()); // above dawg_max
        assert!(r8.ucfg_lower_bound_log2.is_none()); // m = 2 < 4

        let r16 = separation_row(16, 8, 6);
        assert!(r16.nfa_exact_transitions.is_none());
        assert!(r16.ucfg_lower_bound_log2.is_some());
        assert!(r16.ucfg_lower_bound_log2.unwrap() > 0.0);
    }

    #[test]
    fn growth_shapes() {
        // CFG ~ log n: doubling n adds roughly a constant.
        let c: Vec<usize> = [64usize, 128, 256, 512]
            .iter()
            .map(|&n| separation_row(n, 0, 0).cfg_size)
            .collect();
        let d1 = c[1] as i64 - c[0] as i64;
        let d3 = c[3] as i64 - c[2] as i64;
        assert!(d1.abs() <= 60 && d3.abs() <= 60, "not logarithmic: {c:?}");

        // Pattern NFA linear.
        let t64 = separation_row(64, 0, 0).nfa_pattern_transitions;
        let t128 = separation_row(128, 0, 0).nfa_pattern_transitions;
        assert!(t128 >= 2 * t64 - 8 && t128 <= 2 * t64 + 8);

        // uCFG exponential: log₂ roughly doubles with n... log2(size(2n)) ≈ 2·log2(size(n)).
        let l16 = separation_row(16, 0, 0).ucfg_example4_size.log2_approx();
        let l32 = separation_row(32, 0, 0).ucfg_example4_size.log2_approx();
        assert!(l32 > 1.7 * l16, "uCFG not exponential: {l16} vs {l32}");
    }

    #[test]
    fn dawg_baseline_is_unambiguous_and_correct_size() {
        let r = separation_row(4, 4, 4);
        let dawg = r.ucfg_dawg_size.unwrap();
        // The DAWG grammar is a uCFG; Example 4 is another. Both exist, and
        // both are lower-bounded by the trivial information bound.
        assert!(dawg > 0);
        let ex4 = r.ucfg_example4_size.to_u64().unwrap();
        assert!(ex4 > 0);
    }

    #[test]
    fn constructed_sizes_agree_with_formulas() {
        for n in 2..=6 {
            let (_cfg, ex4, naive) = constructed_sizes(n);
            assert_eq!(
                ex4 as u64,
                example4_size(n as u64).to_u64().unwrap(),
                "n={n}"
            );
            assert_eq!(
                naive as u64,
                2 * n as u64 * words::ln_size(n).to_u64().unwrap(),
                "n={n}"
            );
        }
    }
}
