//! The rank bound (Theorem 17's classical route).
//!
//! Under the fixed `[1, n]` partition, `L_n` is the 1-set of the
//! communication matrix `M[X][Y] = [X ∩ Y ≠ ∅]` (the complement of set
//! disjointness). If `L_n` is a disjoint union of `ℓ` `[1,n]`-rectangles
//! then `M` is a sum of `ℓ` rank-1 0/1 matrices, so `ℓ ≥ rank_F(M)` over
//! *any* field `F` (\[23\]; textbook: \[31, Ch. 2\]). We compute the rank
//! exactly over GF(2) and over a large prime field; both equal `2^n − 1`,
//! certifying an exponential lower bound for the fixed-partition case on
//! concrete instances.

use crate::wordset::chunked::{self, WordSetSource};
use crate::wordset::WordSet;
use ucfg_support::{obs, par};

/// Row `X` of the GF(2) communication matrix as a bitset of width
/// `width = ⌈2^n / 64⌉` words: bit `Y` is set iff `X ∩ Y ≠ ∅`. Built
/// output-sensitively — start from the all-ones row and clear the
/// `2^{n−|X|}` subsets of `~X` by the standard descending subset walk
/// (`s−1 & m`), including the empty set, for `Σ_X 2^{n−|X|} = 3^n` total
/// work instead of the `O(4^n)` bit-by-bit scan.
fn gf2_row(x: u64, size: usize, width: usize) -> Vec<u64> {
    let mut row = vec![u64::MAX; width];
    if !size.is_multiple_of(64) {
        row[width - 1] = (1u64 << (size % 64)) - 1;
    }
    let m = !x & (size as u64 - 1);
    let mut s = m;
    loop {
        row[(s / 64) as usize] &= !(1u64 << (s % 64));
        if s == 0 {
            break;
        }
        s = (s - 1) & m;
    }
    row
}

/// Rank of the `L_n` communication matrix over GF(2), by bitset Gaussian
/// elimination. `n ≤ 13` (matrix is `2^n × 2^n`).
///
/// Row `X` has zeros exactly at the subsets of `~X` (the `Y` with
/// `X ∩ Y = ∅`), so the build starts from the all-ones row and clears
/// those `2^{n−|X|}` bits by direct subset enumeration — `Σ_X 2^{n−|X|} =
/// 3^n` work instead of the `O(4^n)` bit-by-bit scan kept as
/// [`rank_gf2_scalar`].
///
/// The row construction runs on [`ucfg_support::par`] workers
/// (`UCFG_THREADS` override); rows are emitted in row order, so the rank
/// (and the eliminated matrix) is bit-identical to the serial build for
/// every thread count. The elimination itself is sequential.
pub fn rank_gf2(n: usize) -> usize {
    rank_gf2_threads(n, par::thread_count())
}

/// [`rank_gf2`] with an explicit worker count (`threads = 1` is the serial
/// reference path).
pub fn rank_gf2_threads(n: usize, threads: usize) -> usize {
    assert!(n <= 13, "matrix is 2^n × 2^n");
    obs::count!("rank.gf2.calls");
    obs::count!("rank.gf2.rows", 1u64 << n);
    let _t = obs::span!("rank.gf2");
    let size = 1usize << n;
    let width = size.div_ceil(64);
    let mut rows: Vec<Vec<u64>> = par::map_ranges_threads(0..size as u64, threads, |range| {
        range.map(|x| gf2_row(x, size, width)).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    gf2_rank_of_rows(&mut rows)
}

/// A streamed census of the `L_n` communication matrix: the matrix is
/// flattened row-major into `4^n` bits (bit `k` is set iff
/// `(k >> n) ∩ (k mod 2^n) ≠ ∅`), the same shape the GF(2) row build
/// materialises, and scanned through [`WordSetSource`] — in one piece
/// below the cap, chunk by chunk above it (or whenever
/// [`chunked::CHUNK_ENV`] forces the chunked path), so the census runs at
/// `n = 16`–`18` where the dense matrix cannot be held. The digest uses
/// the [`chunked::set_digest`] scheme, so it is bit-identical across
/// thread counts, chunk sizes, and the in-memory/chunked split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankMatrixScan {
    /// Number of matrix rows, `2^n`.
    pub rows: u64,
    /// Number of ones `|{(X, Y) : X ∩ Y ≠ ∅}| = 4^n − 3^n`.
    pub ones: u64,
    /// Order-invariant digest of the flattened matrix.
    pub digest: u64,
}

/// [`rank_matrix_scan_threads`] at the ambient worker count.
pub fn rank_matrix_scan(n: usize) -> RankMatrixScan {
    rank_matrix_scan_threads(n, par::thread_count())
}

/// The streamed [`RankMatrixScan`] with an explicit worker count
/// (`threads = 1` is the serial reference path; results are
/// bit-identical for every thread count and chunk size).
pub fn rank_matrix_scan_threads(n: usize, threads: usize) -> RankMatrixScan {
    obs::count!("rank.matrix_scan.calls");
    let _t = obs::span!("rank.matrix_scan");
    let mask = (1u64 << n) - 1;
    let pred = move |k: u64| (k >> n) & (k & mask) != 0;
    let rows = 1u64 << n;
    match WordSetSource::for_word_domain(n) {
        WordSetSource::InMemory { domain } => {
            let m = WordSet::from_pred_threads(domain, threads, pred);
            RankMatrixScan {
                rows,
                ones: m.count(),
                digest: chunked::set_digest(&m),
            }
        }
        WordSetSource::Chunked(plan) => {
            obs::count!("rank.matrix_scan.chunks", plan.num_chunks() as u64);
            let chunks = par::run_chunks(plan.num_chunks(), threads, |ci| {
                let range = plan.chunk_range(ci);
                let (base, len) = (range.start, range.end - range.start);
                let slab = WordSet::from_pred_threads(len, 1, |k| pred(base + k));
                (slab.count(), chunked::digest_words(base, slab.blocks()))
            });
            let (ones, digest) = chunks
                .into_iter()
                .fold((0u64, 0u64), |(c, d), (cc, cd)| (c + cc, d ^ cd));
            RankMatrixScan { rows, ones, digest }
        }
    }
}

/// The scalar reference for [`rank_gf2`]: the `O(4^n)` bit-by-bit row
/// build (every `(X, Y)` pair probed).
pub fn rank_gf2_scalar(n: usize) -> usize {
    rank_gf2_scalar_threads(n, par::thread_count())
}

/// [`rank_gf2_scalar`] with an explicit worker count; rows are emitted in
/// row order, so the result is bit-identical for every thread count.
pub fn rank_gf2_scalar_threads(n: usize, threads: usize) -> usize {
    assert!(n <= 13, "matrix is 2^n × 2^n");
    let size = 1usize << n;
    let width = size.div_ceil(64);
    // Row X: bits Y with X∩Y ≠ ∅.
    let mut rows: Vec<Vec<u64>> = par::map_ranges_threads(0..size as u64, threads, |range| {
        range
            .map(|x| {
                let mut row = vec![0u64; width];
                for y in 0..size as u64 {
                    if x & y != 0 {
                        row[(y / 64) as usize] |= 1u64 << (y % 64);
                    }
                }
                row
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    gf2_rank_of_rows(&mut rows)
}

/// GF(2) rank of arbitrary bitset rows (each row a `Vec<u64>` of equal
/// width).
pub fn gf2_rank_of_rows(rows: &mut [Vec<u64>]) -> usize {
    let width = rows.first().map_or(0, Vec::len);
    let mut rank = 0usize;
    let mut pivot_row = 0usize;
    for col in 0..width * 64 {
        let (w, b) = (col / 64, col % 64);
        // Find a row with a 1 in this column.
        let Some(found) = (pivot_row..rows.len()).find(|&r| rows[r][w] >> b & 1 == 1) else {
            continue;
        };
        rows.swap(pivot_row, found);
        let pivot = rows[pivot_row].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot_row && row[w] >> b & 1 == 1 {
                ucfg_support::simd::xor_assign(row, &pivot);
            }
        }
        pivot_row += 1;
        rank += 1;
    }
    rank
}

/// Rank of the `L_n` communication matrix over GF(p) with
/// `p = 2^{61} − 1`. Since `rank_{GF(p)}(M) ≤ rank_ℚ(M)` and both are
/// rectangle-count lower bounds, this is a valid certificate.
/// O(2^{3n}) — keep `n ≤ 9` outside benches. Row construction is
/// parallel (`UCFG_THREADS`); the elimination is sequential.
pub fn rank_mod_p(n: usize) -> usize {
    rank_mod_p_threads(n, par::thread_count())
}

/// [`rank_mod_p`] with an explicit worker count (`threads = 1` is the
/// serial reference path).
pub fn rank_mod_p_threads(n: usize, threads: usize) -> usize {
    assert!(n <= 11, "O(2^(3n)) elimination");
    obs::count!("rank.mod_p.calls");
    let _t = obs::span!("rank.mod_p");
    const P: u128 = (1u128 << 61) - 1;
    let size = 1usize << n;
    let mut rows: Vec<Vec<u64>> = par::map_ranges_threads(0..size as u64, threads, |range| {
        range
            .map(|x| (0..size as u64).map(|y| u64::from(x & y != 0)).collect())
            .collect::<Vec<Vec<u64>>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut rank = 0usize;
    let mut pivot_row = 0usize;
    for col in 0..size {
        let Some(found) = (pivot_row..size).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(pivot_row, found);
        // Normalise pivot row.
        let inv = mod_inv(rows[pivot_row][col] as u128, P);
        for cell in rows[pivot_row].iter_mut() {
            *cell = ((*cell as u128 * inv) % P) as u64;
        }
        let pivot = rows[pivot_row].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot_row && row[col] != 0 {
                let factor = row[col] as u128;
                for (cell, &p) in row.iter_mut().zip(&pivot) {
                    let sub = (factor * p as u128) % P;
                    let cur = *cell as u128;
                    *cell = ((cur + P - sub) % P) as u64;
                }
            }
        }
        pivot_row += 1;
        rank += 1;
    }
    rank
}

fn mod_inv(a: u128, p: u128) -> u128 {
    // Fermat: a^{p-2} mod p.
    mod_pow(a % p, p - 2, p)
}

fn mod_pow(mut base: u128, mut exp: u128, p: u128) -> u128 {
    let mut acc: u128 = 1;
    base %= p;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % p;
        }
        base = base * base % p;
        exp >>= 1;
    }
    acc
}

/// The rank-bound statement: any disjoint cover of `L_n` by
/// `[1,n]`-rectangles has at least this many rectangles (the max of the two
/// field ranks we compute).
pub fn rank_lower_bound(n: usize) -> usize {
    rank_gf2(n).max(if n <= 9 { rank_mod_p(n) } else { 0 })
}

/// GF(2) rank of the `L_n` communication matrix under an **arbitrary**
/// ordered partition `(Π₀, Π₁)`: rows are subsets of `Π₀`, columns subsets
/// of `Π₁`, `M[u][v] = [u ∪ v ∈ L_n]`. A disjoint cover of `L_n` by
/// rectangles over this partition needs ≥ this many rectangles — the
/// per-partition certificate behind the multi-partition discussion (T19).
pub fn rank_for_partition(n: usize, part: crate::partition::OrderedPartition) -> usize {
    rank_for_partition_threads(n, part, par::thread_count())
}

/// [`rank_for_partition`] with an explicit worker count (`threads = 1` is
/// the serial reference path). Row construction is parallel; elimination
/// is sequential.
pub fn rank_for_partition_threads(
    n: usize,
    part: crate::partition::OrderedPartition,
    threads: usize,
) -> usize {
    let ins = part.inside();
    let outs = part.outside();
    let in_bits: Vec<u32> = (0..64).filter(|&b| ins >> b & 1 == 1).collect();
    let out_bits: Vec<u32> = (0..64).filter(|&b| outs >> b & 1 == 1).collect();
    assert!(
        in_bits.len() <= 14 && out_bits.len() <= 20,
        "matrix too large"
    );
    let rows = 1usize << in_bits.len();
    let cols = 1usize << out_bits.len();
    let width = cols.div_ceil(64);
    let expand = |mask: usize, bits: &[u32]| -> u64 {
        bits.iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &b)| 1u64 << b)
            .sum()
    };
    let mut m: Vec<Vec<u64>> = par::map_ranges_threads(0..rows as u64, threads, |range| {
        range
            .map(|u| {
                let uu = expand(u as usize, &in_bits);
                let mut row = vec![0u64; width];
                for v in 0..cols {
                    let vv = expand(v, &out_bits);
                    if crate::words::ln_contains(n, uu | vv) {
                        row[v / 64] |= 1u64 << (v % 64);
                    }
                }
                row
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    gf2_rank_of_rows(&mut m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_2n_minus_1() {
        for n in 1..=7 {
            assert_eq!(rank_gf2(n), (1 << n) - 1, "GF(2), n={n}");
            assert_eq!(rank_mod_p(n), (1 << n) - 1, "GF(p), n={n}");
        }
    }

    #[test]
    fn subset_enumeration_build_matches_scalar() {
        // The output-sensitive row build must produce the same rank as the
        // bit-by-bit reference — across word-boundary sizes (n = 6 is the
        // first width-1 full word, n = 7 spans two words).
        for n in 1..=8 {
            assert_eq!(rank_gf2(n), rank_gf2_scalar(n), "n={n}");
        }
        for threads in [1usize, 2, 8] {
            assert_eq!(
                rank_gf2_threads(8, threads),
                rank_gf2_scalar_threads(8, threads),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matrix_scan_census_is_exact() {
        // ones = #{(X,Y) : X∩Y ≠ ∅} = 4^n − 3^n, and the scan is
        // bit-identical across thread counts.
        for n in [1usize, 4, 6, 8, 10] {
            let scan = rank_matrix_scan_threads(n, 1);
            assert_eq!(scan.rows, 1u64 << n, "n={n}");
            assert_eq!(scan.ones, 4u64.pow(n as u32) - 3u64.pow(n as u32), "n={n}");
            for threads in [2usize, 8] {
                assert_eq!(scan, rank_matrix_scan_threads(n, threads), "n={n}");
            }
        }
    }

    #[test]
    fn matrix_scan_digest_matches_the_row_build() {
        // At n ≥ 6 each GF(2) row occupies whole 64-bit words, so the
        // flattened-matrix digest must equal the XOR of per-row digests of
        // the very rows the elimination consumes.
        for n in [6usize, 7, 8] {
            let size = 1usize << n;
            let width = size.div_ceil(64);
            let from_rows = (0..size as u64)
                .map(|x| chunked::digest_words(x << n, &gf2_row(x, size, width)))
                .fold(0u64, |d, rd| d ^ rd);
            assert_eq!(rank_matrix_scan_threads(n, 1).digest, from_rows, "n={n}");
        }
    }

    #[test]
    fn rank_lower_bound_is_exponential() {
        assert_eq!(rank_lower_bound(6), 63);
        assert_eq!(rank_lower_bound(8), 255);
    }

    #[test]
    fn gf2_rank_of_simple_matrices() {
        // Identity 3x3.
        let mut rows = vec![vec![0b001u64], vec![0b010], vec![0b100]];
        assert_eq!(gf2_rank_of_rows(&mut rows), 3);
        // Dependent rows.
        let mut rows = vec![vec![0b011u64], vec![0b101], vec![0b110]];
        assert_eq!(gf2_rank_of_rows(&mut rows), 2); // r3 = r1 ⊕ r2
                                                    // Zero matrix.
        let mut rows = vec![vec![0u64]; 4];
        assert_eq!(gf2_rank_of_rows(&mut rows), 0);
    }

    #[test]
    fn parallel_ranks_are_bit_identical() {
        for n in [4usize, 7, 9] {
            let gf2_serial = rank_gf2_threads(n, 1);
            for threads in [2usize, 8] {
                assert_eq!(gf2_serial, rank_gf2_threads(n, threads), "gf2 n={n}");
            }
            assert_eq!(gf2_serial, rank_gf2(n), "gf2 n={n} default");
        }
        for n in [4usize, 6] {
            let p_serial = rank_mod_p_threads(n, 1);
            for threads in [2usize, 8] {
                assert_eq!(p_serial, rank_mod_p_threads(n, threads), "mod_p n={n}");
            }
        }
        use crate::partition::OrderedPartition;
        let part = OrderedPartition::new(4, 2, 5);
        let serial = rank_for_partition_threads(4, part, 1);
        for threads in [2usize, 8] {
            assert_eq!(serial, rank_for_partition_threads(4, part, threads));
        }
    }

    #[test]
    fn mod_pow_and_inv() {
        const P: u128 = (1u128 << 61) - 1;
        assert_eq!(mod_pow(2, 10, P), 1024);
        let inv7 = mod_inv(7, P);
        assert_eq!(7 * inv7 % P, 1);
    }

    #[test]
    fn rank_for_partition_generalises_middle_cut() {
        use crate::partition::OrderedPartition;
        for n in [2usize, 3, 4] {
            let mid = OrderedPartition::new(n, 1, n);
            assert_eq!(rank_for_partition(n, mid), rank_gf2(n), "n={n}");
        }
    }

    #[test]
    fn shifted_partitions_have_lower_rank() {
        use crate::partition::OrderedPartition;
        // Partitions that keep pairs together lose rank: in the extreme,
        // if every pair is on one side the matrix has rank O(1) per trace.
        let n = 4;
        let mid = rank_for_partition(n, OrderedPartition::new(n, 1, n));
        let shifted = rank_for_partition(n, OrderedPartition::new(n, 3, 6));
        assert!(shifted <= mid, "shifted {shifted} vs middle {mid}");
        assert!(shifted >= 1);
    }

    #[test]
    fn example8_cover_size_vs_rank_bound() {
        // Example 8 gives a NON-disjoint cover of size n; the disjoint rank
        // bound 2^n − 1 is exponentially larger — exactly the paper's
        // point that disjointness is expensive.
        for n in [4usize, 6] {
            assert!(rank_lower_bound(n) > n);
        }
    }
}
