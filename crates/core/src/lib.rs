//! # ucfg-core — the paper's contribution, executable
//!
//! Reproduction of *“A Lower Bound on Unambiguous Context Free Grammars via
//! Communication Complexity”* (Mengel & Vinall-Smeeth, PODS 2025): the
//! language `L_n`, its grammars and automata, and the complete lower-bound
//! machinery — rectangles, ordered/neat partitions, the Proposition 7
//! extraction, the Section 4 discrepancy argument, and the rank bound.
//!
//! * [`words`] — packed words, `L_n` membership (`4^n − 3^n` members), the
//!   set perspective of Section 4.1;
//! * [`ln_grammars`] — Example 3's `G_n`, the Appendix A O(log n) CFG, the
//!   Example 4 exponential uCFG, the naive baseline;
//! * [`partition`] / [`rectangle`] — Definitions 13/14/5 and Lemma 15;
//! * [`extract`] — the Proposition 7 rectangle-extraction algorithm;
//! * [`discrepancy`] — Lemmas 18/19/23 and the Proposition 16 bound;
//! * [`neat`] — the Lemma 21 decomposition;
//! * [`rank`] — the Theorem 17 rank-bound certificates;
//! * [`cover`] — cover verification and end-to-end accounting;
//! * [`wordset`] — popcount bitmaps backing the exhaustive kernels;
//! * [`separation`] — the Theorem 1 size tables.
//!
//! # Example — the Theorem 1 pipeline at n = 3
//!
//! ```
//! use ucfg_core::extract::extract_cover;
//! use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
//! use ucfg_core::words;
//! use ucfg_grammar::count::decide_unambiguous;
//! use ucfg_grammar::normal_form::CnfGrammar;
//!
//! let n = 3;
//! assert_eq!(words::ln_size(n).to_u64(), Some(37));       // 4³ − 3³
//!
//! let cfg = appendix_a_grammar(n);                         // Θ(log n)
//! let ucfg = example4_ucfg(n);                             // 2^Θ(n), unambiguous
//! assert!(cfg.size() < ucfg.size());
//! assert!(decide_unambiguous(&ucfg).is_unambiguous());
//!
//! // Proposition 7: the uCFG yields a disjoint balanced-rectangle cover.
//! let cover = extract_cover(&CnfGrammar::from_grammar(&ucfg), 2 * n).unwrap();
//! assert!(cover.is_disjoint());
//! assert!(cover.all_balanced());
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod cover;
pub mod discrepancy;
pub mod extract;
pub mod greedy_cover;
pub mod kmn;
pub mod ln_grammars;
pub mod neat;
pub mod partition;
pub mod rank;
pub mod rectangle;
pub mod separation;
pub mod words;
pub mod wordset;

pub use partition::OrderedPartition;
pub use rectangle::{SetRectangle, WordRectangle};
