//! Rectangle covers of `L_n`: verification and end-to-end certification.
//!
//! Ties the pieces together: Example 8's ambiguous cover of size `n`, the
//! Proposition 7 extraction from real grammars, and the Proposition 16
//! accounting `gap = Σ_i (|A∩R_i| − |B∩R_i|) ≤ ℓ · max-discrepancy` that
//! yields the lower bound.

use crate::discrepancy;
use crate::extract::ExtractionResult;
use crate::rectangle::{example8_rectangle, SetRectangle};
use crate::words::{enumerate_ln, ln_contains, Word};
use crate::wordset::chunked::{self, CoverScan, WordSetSource};
use crate::wordset::{self, OverlapCounter, WordSet};
use ucfg_support::{obs, par};

/// Outcome of verifying a family of rectangles against `L_n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverReport {
    /// Number of rectangles.
    pub size: usize,
    /// Every member of every rectangle is in `L_n` and every word of `L_n`
    /// is in some rectangle.
    pub covers_exactly: bool,
    /// No word lies in two rectangles.
    pub disjoint: bool,
    /// All rectangles balanced (Definition 13/5).
    pub all_balanced: bool,
    /// Maximum number of rectangles containing a single word.
    pub max_overlap: usize,
}

/// Verify a family of set rectangles against `L_n`.
///
/// Bitmap kernel: each rectangle's bitmap is built in `O(|S|·|T|)`
/// ([`SetRectangle::to_wordset`]) and accumulated into a bit-sliced
/// [`OverlapCounter`], which yields coverage (union equals the cached
/// `L_n` bitmap), disjointness and the maximum overlap in one pass of
/// word-level popcount algebra — no per-word `BTreeSet` probes. The old
/// scan survives as [`verify_cover_scalar`], the differential reference
/// of the property tests.
pub fn verify_cover(n: usize, rects: &[SetRectangle]) -> CoverReport {
    verify_cover_threads(n, rects, par::thread_count())
}

/// [`verify_cover`] with an explicit worker count (`threads = 1` is the
/// serial reference path). The rectangle bitmaps are built on the
/// deterministic parallel map and folded in rectangle order, so the
/// report is bit-identical for every thread count.
pub fn verify_cover_threads(n: usize, rects: &[SetRectangle], threads: usize) -> CoverReport {
    cover_scan_threads(n, rects, threads).into_report()
}

impl CoverScan {
    /// Collapse the scan aggregates into the classic [`CoverReport`].
    pub fn into_report(self) -> CoverReport {
        CoverReport {
            size: self.size,
            covers_exactly: self.covers_exactly,
            disjoint: self.max_overlap <= 1,
            all_balanced: self.all_balanced,
            max_overlap: self.max_overlap,
        }
    }
}

/// The full cover-verification scan — the [`CoverReport`] facts plus the
/// union / `L_n` counts and order-invariant digests the differential
/// suite and the CI chunked-determinism job byte-compare.
pub fn cover_scan(n: usize, rects: &[SetRectangle]) -> CoverScan {
    cover_scan_threads(n, rects, par::thread_count())
}

/// [`cover_scan`] with an explicit worker count, routed through
/// [`WordSetSource`]: in-memory below the materialisation cap (the PR 3
/// bitmap kernel, one `OverlapCounter` over the whole domain), chunked
/// above it or when `UCFG_WORDSET_CHUNK` forces the streamed path. Both
/// paths fold the same per-word facts with order-free merges, so the scan
/// is bit-identical across thread counts, chunk sizes, and the two
/// routes.
pub fn cover_scan_threads(n: usize, rects: &[SetRectangle], threads: usize) -> CoverScan {
    obs::count!("cover.verify.calls");
    obs::count!("cover.verify.rects", rects.len() as u64);
    let _t = obs::span!("cover.verify");
    match WordSetSource::for_word_domain(n) {
        WordSetSource::Chunked(plan) => {
            chunked::cover_scan_chunked_threads(n, rects, threads, &plan)
        }
        WordSetSource::InMemory { .. } => {
            let ln = wordset::ln_bitmap(n);
            let bitmaps: Vec<WordSet> = par::par_map_threads(rects, threads, |r| r.to_wordset(n));
            let mut counter = OverlapCounter::new(wordset::word_domain(n));
            for bm in &bitmaps {
                counter.add(bm);
            }
            let union = counter.any();
            CoverScan {
                size: rects.len(),
                covers_exactly: union == *ln,
                all_balanced: rects.iter().all(SetRectangle::is_balanced),
                max_overlap: counter.max_count(),
                union_count: union.count(),
                union_digest: chunked::set_digest(&union),
                ln_count: ln.count(),
                ln_digest: chunked::set_digest(&ln),
            }
        }
    }
}

/// The scalar reference for [`verify_cover`]: per-word membership probes
/// over the whole `2^{2n}` domain.
pub fn verify_cover_scalar(n: usize, rects: &[SetRectangle]) -> CoverReport {
    verify_cover_scalar_threads(n, rects, par::thread_count())
}

/// [`verify_cover_scalar`] with an explicit worker count; per-chunk
/// partials (an all-AND and a max) merge in fixed chunk order, so the
/// report is bit-identical to the serial scan for every thread count.
pub fn verify_cover_scalar_threads(
    n: usize,
    rects: &[SetRectangle],
    threads: usize,
) -> CoverReport {
    assert!(2 * n <= 26, "exhaustive verification is 2^{{2n}}");
    let partials = par::map_ranges_threads(0..(1u64 << (2 * n)), threads, |range| {
        let mut covers_exactly = true;
        let mut max_overlap = 0usize;
        for w in range {
            let hits = rects.iter().filter(|r| r.contains(w as Word)).count();
            if (hits > 0) != ln_contains(n, w) {
                covers_exactly = false;
            }
            max_overlap = max_overlap.max(hits);
        }
        (covers_exactly, max_overlap)
    });
    let covers_exactly = partials.iter().all(|&(ok, _)| ok);
    let max_overlap = partials.iter().map(|&(_, m)| m).max().unwrap_or(0);
    CoverReport {
        size: rects.len(),
        covers_exactly,
        disjoint: max_overlap <= 1,
        all_balanced: rects.iter().all(SetRectangle::is_balanced),
        max_overlap,
    }
}

/// Example 8: the non-disjoint cover of `L_n` by `n` balanced rectangles.
pub fn example8_cover(n: usize) -> Vec<SetRectangle> {
    (0..n)
        .map(|k| example8_rectangle(n, k).to_set_rectangle(n))
        .collect()
}

/// Convert an extraction result over `{a,b}^{2n}` into set rectangles.
pub fn extraction_to_set_rectangles(n: usize, res: &ExtractionResult) -> Vec<SetRectangle> {
    res.rectangles
        .iter()
        .map(|r| r.rectangle.to_set_rectangle(n))
        .collect()
}

/// The Proposition 16 accounting for a *disjoint* cover: the per-rectangle
/// signed discrepancies must sum to the global gap
/// `|A ∩ L_n| − |B ∩ L_n| = 12^m − 8^m`. Returns the vector of signed
/// discrepancies and whether the identity holds.
pub fn discrepancy_accounting(n: usize, rects: &[SetRectangle]) -> (Vec<i64>, bool) {
    discrepancy_accounting_threads(n, rects, par::thread_count())
}

/// [`discrepancy_accounting`] with an explicit worker count: the
/// rectangles are spread over the deterministic parallel map (each
/// discrepancy computed with the serial bitmap kernel, avoiding nested
/// thread pools); results stay in rectangle order, so the vector is
/// bit-identical for every thread count.
pub fn discrepancy_accounting_threads(
    n: usize,
    rects: &[SetRectangle],
    threads: usize,
) -> (Vec<i64>, bool) {
    assert!(discrepancy::supports_blocks(n));
    let discs: Vec<i64> = par::par_map_threads(rects, threads, |r| {
        discrepancy::discrepancy_threads(n, r, 1)
    });
    let total: i64 = discs.iter().sum();
    let m = (n / 4) as u64;
    let expect = discrepancy::gap(m).to_u64().expect("small n") as i64;
    (discs, total == expect)
}

/// The scalar reference for [`discrepancy_accounting`]: per-rectangle
/// exhaustive `2^n` family scans ([`discrepancy::discrepancy_scalar`]).
pub fn discrepancy_accounting_scalar(n: usize, rects: &[SetRectangle]) -> (Vec<i64>, bool) {
    assert!(discrepancy::supports_blocks(n));
    let discs: Vec<i64> = rects
        .iter()
        .map(|r| discrepancy::discrepancy_scalar_threads(n, r, 1))
        .collect();
    let total: i64 = discs.iter().sum();
    let m = (n / 4) as u64;
    let expect = discrepancy::gap(m).to_u64().expect("small n") as i64;
    (discs, total == expect)
}

/// The lower bound implied by the accounting: a disjoint cover needs at
/// least `gap / max_i |disc_i|` rectangles — with the Lemma 23 bound
/// substituted this is Proposition 16's `2^{Ω(n)}`. Returns
/// `ceil(gap / max|disc|)` for the given cover (a consistency check: the
/// actual cover size must be ≥ this).
pub fn implied_size_bound(n: usize, rects: &[SetRectangle]) -> usize {
    let (discs, _) = discrepancy_accounting(n, rects);
    let max_abs = discs
        .iter()
        .map(|d| d.unsigned_abs())
        .max()
        .unwrap_or(1)
        .max(1);
    let m = (n / 4) as u64;
    let g = discrepancy::gap(m).to_u64().expect("small n");
    g.div_ceil(max_abs) as usize
}

/// Count the words of `L_n` covered exactly once / more than once — the
/// quantitative "how non-disjoint is Example 8" figure. `hist[k]` is the
/// number of `L_n` members hit by exactly `k` rectangles; the length is
/// the maximum hit count attained on `L_n` plus one.
pub fn overlap_histogram(n: usize, rects: &[SetRectangle]) -> Vec<usize> {
    overlap_histogram_threads(n, rects, par::thread_count())
}

/// [`overlap_histogram`] with an explicit worker count.
///
/// Bitmap kernel: the rectangle bitmaps (built on the deterministic
/// parallel map) feed a bit-sliced [`OverlapCounter`]; `hist[k]` is then
/// the popcount of the exact-`k` slice intersected with the cached `L_n`
/// bitmap. Bit-identical to [`overlap_histogram_scalar`] for every
/// thread count.
pub fn overlap_histogram_threads(n: usize, rects: &[SetRectangle], threads: usize) -> Vec<usize> {
    obs::count!("cover.histogram.calls");
    let _t = obs::span!("cover.histogram");
    if let WordSetSource::Chunked(plan) = WordSetSource::for_word_domain(n) {
        return chunked::overlap_histogram_chunked_threads(n, rects, threads, &plan);
    }
    let ln = wordset::ln_bitmap(n);
    let bitmaps: Vec<WordSet> = par::par_map_threads(rects, threads, |r| r.to_wordset(n));
    let mut counter = OverlapCounter::new(wordset::word_domain(n));
    for bm in &bitmaps {
        counter.add(bm);
    }
    // The counter's maximum ranges over all words; the histogram is
    // indexed by hits over L_n members only, so trailing zero buckets
    // (attained only outside L_n) are trimmed to match the scalar shape.
    let mut hist: Vec<usize> = (0..=counter.max_count())
        .map(|k| counter.exactly_and_count(k, &ln) as usize)
        .collect();
    while hist.len() > 1 && hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

/// The scalar reference for [`overlap_histogram`]: per-member rectangle
/// probes over the enumerated `L_n`.
pub fn overlap_histogram_scalar(n: usize, rects: &[SetRectangle]) -> Vec<usize> {
    let mut hist = Vec::new();
    for w in enumerate_ln(n) {
        let hits = rects.iter().filter(|r| r.contains(w)).count();
        if hist.len() <= hits {
            hist.resize(hits + 1, 0);
        }
        hist[hits] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_cover;
    use crate::ln_grammars::example4_ucfg;
    use ucfg_grammar::normal_form::CnfGrammar;

    #[test]
    fn example8_cover_report() {
        for n in [3usize, 4, 5] {
            let rects = example8_cover(n);
            let rep = verify_cover(n, &rects);
            assert_eq!(rep.size, n);
            assert!(rep.covers_exactly, "n={n}");
            assert!(rep.all_balanced, "n={n}");
            assert!(!rep.disjoint, "Example 8 is non-disjoint (n={n})");
            assert_eq!(rep.max_overlap, n, "the all-a word hits all rectangles");
        }
    }

    #[test]
    fn ucfg_extraction_gives_disjoint_cover() {
        let n = 4; // n divisible by 4 → discrepancy accounting applies
        let g = example4_ucfg(n);
        let cnf = CnfGrammar::from_grammar(&g);
        let res = extract_cover(&cnf, 2 * n).unwrap();
        let rects = extraction_to_set_rectangles(n, &res);
        let rep = verify_cover(n, &rects);
        assert!(rep.covers_exactly);
        assert!(rep.disjoint);
        assert!(rep.all_balanced);

        // Proposition 16 accounting: discrepancies sum to the gap.
        let (_discs, ok) = discrepancy_accounting(n, &rects);
        assert!(ok, "Σ disc_i must equal 12^m − 8^m for a disjoint cover");

        // And the implied bound is honoured by the actual size.
        let bound = implied_size_bound(n, &rects);
        assert!(
            rep.size >= bound,
            "cover of size {} below implied bound {bound}",
            rep.size
        );
    }

    #[test]
    fn overlap_histogram_example8() {
        let n = 4;
        let hist = overlap_histogram(n, &example8_cover(n));
        // hist[0] must be 0 (we only scan L_n members), and some words are
        // covered more than once.
        assert_eq!(hist.first().copied().unwrap_or(0), 0);
        assert!(hist.len() > 2, "some words covered ≥ 2 times: {hist:?}");
        let total: usize = hist.iter().sum();
        assert_eq!(total as u64, crate::words::ln_size(n).to_u64().unwrap());
    }

    #[test]
    fn accounting_fails_for_non_disjoint_cover() {
        // For a non-disjoint cover the sum counts each word once per
        // rectangle: Σ_i disc(R_i) = Σ_{w ∈ 𝓛} hits(w)·sign(w), which
        // differs from the gap as soon as some member has ≥ 2 witnesses.
        // (At n = 4, i.e. m = 1, every 𝓛-member has ≤ 1 witness and the
        // two sums coincide — use n = 8.)
        let n = 8;
        let rects = example8_cover(n);
        let (discs, ok) = discrepancy_accounting(n, &rects);
        assert_eq!(discs.len(), n);
        assert!(!ok, "over-counting expected for overlapping rectangles");

        // The m = 1 coincidence, for the record.
        let (_d4, ok4) = discrepancy_accounting(4, &example8_cover(4));
        assert!(ok4);
    }

    #[test]
    fn parallel_verify_cover_is_bit_identical() {
        for n in [4usize, 8] {
            let rects = example8_cover(n);
            let serial = verify_cover_threads(n, &rects, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    serial,
                    verify_cover_threads(n, &rects, threads),
                    "n={n} threads={threads}"
                );
            }
            assert_eq!(serial, verify_cover(n, &rects), "n={n} default threads");
        }
    }

    #[test]
    fn verify_cover_detects_missing_words() {
        let n = 3;
        let mut rects = example8_cover(n);
        rects.pop(); // drop one slice → words with only the last witness are lost
        let rep = verify_cover(n, &rects);
        assert!(!rep.covers_exactly);
        assert_eq!(rep, verify_cover_scalar(n, &rects));
    }

    #[test]
    fn bitmap_cover_kernels_match_scalar_references() {
        for n in [3usize, 4, 5] {
            let mut rects = example8_cover(n);
            assert_eq!(
                verify_cover(n, &rects),
                verify_cover_scalar(n, &rects),
                "full cover, n={n}"
            );
            assert_eq!(
                overlap_histogram(n, &rects),
                overlap_histogram_scalar(n, &rects),
                "full cover histogram, n={n}"
            );
            rects.pop();
            assert_eq!(
                verify_cover(n, &rects),
                verify_cover_scalar(n, &rects),
                "partial cover, n={n}"
            );
            assert_eq!(
                overlap_histogram(n, &rects),
                overlap_histogram_scalar(n, &rects),
                "partial cover histogram, n={n}"
            );
        }
        // The empty family: nothing covered, histogram collapses to the
        // single zero-hits bucket.
        let rep = verify_cover(3, &[]);
        assert_eq!(rep, verify_cover_scalar(3, &[]));
        assert!(!rep.covers_exactly);
        assert_eq!(rep.max_overlap, 0);
        let hist = overlap_histogram(3, &[]);
        assert_eq!(hist, overlap_histogram_scalar(3, &[]));
        assert_eq!(
            hist,
            vec![crate::words::ln_size(3).to_u64().unwrap() as usize]
        );
    }

    #[test]
    fn parallel_histogram_and_accounting_are_bit_identical() {
        let n = 4;
        let rects = example8_cover(n);
        let hist1 = overlap_histogram_threads(n, &rects, 1);
        let (discs1, ok1) = discrepancy_accounting_threads(n, &rects, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                hist1,
                overlap_histogram_threads(n, &rects, threads),
                "hist threads={threads}"
            );
            let (discs, ok) = discrepancy_accounting_threads(n, &rects, threads);
            assert_eq!((&discs1, ok1), (&discs, ok), "accounting threads={threads}");
        }
        assert_eq!(hist1, overlap_histogram(n, &rects), "hist default");
        let (discs_scalar, ok_scalar) = discrepancy_accounting_scalar(n, &rects);
        assert_eq!(
            (&discs1, ok1),
            (&discs_scalar, ok_scalar),
            "scalar accounting"
        );
    }
}
