//! Chunked / streamed wordset algebra past the materialisation cap.
//!
//! [`super::WordSet`] hard-caps materialisation at [`MAX_DOMAIN_BITS`]
//! (2^30 bits), which stops exhaustive word-domain kernels near `n = 15`.
//! This module lifts that ceiling *without* raising the cap: a logical
//! domain is split into fixed-size chunks (default [`DEFAULT_CHUNK_BITS`]
//! = 2^26 bits, overridable via the [`CHUNK_ENV`] environment variable or
//! an explicit [`ChunkPlan`]), each chunk is materialised as an ordinary
//! `WordSet`, combined, folded into scalar aggregates, and dropped —
//! through the deterministic [`par`] layer, so no worker ever holds more
//! than a few chunk-sized bitmaps and the full domain is never allocated.
//!
//! Chunk boundaries depend only on the plan (never on the thread count)
//! and all per-chunk aggregates merge with order-free operations (sums,
//! maxima, XORs), so every result here is bit-identical across
//! `UCFG_THREADS` *and* across chunk sizes — the invariant the
//! differential suite and the CI chunked-determinism job pin down.
//!
//! Cross-domain comparisons use an order-invariant **digest**
//! ([`set_digest`] / [`digest_words`]): every nonzero 64-bit backing
//! block contributes `FNV1a(global_block_index, block)` and the
//! contributions XOR together. Chunks own whole blocks (chunk sizes are
//! multiples of 64), so the digest of a streamed domain equals the digest
//! of the same domain materialised in one piece — equal sets have equal
//! digests no matter how they were produced.
//!
//! Kernels route here through [`WordSetSource`]: in-memory below the cap,
//! chunked above it (or whenever [`CHUNK_ENV`] forces the chunked path,
//! which is how CI exercises it at small `n`).

use super::{OverlapCounter, WordSet, MAX_DOMAIN_BITS};
use crate::discrepancy::{family_unrank, in_a, supports_blocks};
use crate::rectangle::SetRectangle;
use crate::words::{ln_contains, Word};
use std::ops::Range;
use ucfg_support::fnv::Fnv1a;
use ucfg_support::{obs, par};

/// Environment variable overriding the chunk size in **bits** (a power of
/// two ≥ 64). Setting it also *forces* the chunked path below the cap —
/// the lever the CI determinism job uses to exercise chunked kernels at
/// small `n`.
pub const CHUNK_ENV: &str = "UCFG_WORDSET_CHUNK";

/// Default chunk size: 2^26 bits = 8 MiB per materialised chunk.
pub const DEFAULT_CHUNK_BITS: u64 = 1 << 26;

/// Is `bits` a valid chunk size? Power of two so chunk indexing is a
/// shift, ≥ 64 so chunks own whole backing blocks (which is what makes
/// [`set_digest`] chunk-size-invariant), ≤ the cap so every chunk is
/// materialisable.
fn valid_chunk_bits(bits: u64) -> bool {
    bits.is_power_of_two() && (64..=MAX_DOMAIN_BITS).contains(&bits)
}

/// Parse a chunk-size override; `Err` carries the reason.
fn parse_chunk_bits(spec: &str) -> Result<u64, String> {
    let bits: u64 = spec
        .trim()
        .parse()
        .map_err(|_| format!("invalid chunk size '{spec}' (want an integer number of bits)"))?;
    if !valid_chunk_bits(bits) {
        return Err(format!(
            "invalid chunk size {bits}: want a power of two in [64, {MAX_DOMAIN_BITS}]"
        ));
    }
    Ok(bits)
}

/// The process-wide chunk-size override: [`CHUNK_ENV`] when set.
/// A present-but-malformed value panics — a CI job that typos the
/// variable must fail, not silently fall back to in-memory kernels.
pub fn chunk_override() -> Option<u64> {
    let spec = std::env::var(CHUNK_ENV).ok()?;
    Some(parse_chunk_bits(&spec).unwrap_or_else(|e| panic!("{CHUNK_ENV}: {e}")))
}

/// Set the chunk-size override for this process by setting [`CHUNK_ENV`]
/// — the funnel behind the binaries' `--chunk-bits` flag. Also forces
/// the chunked path below the cap (see [`WordSetSource`]).
pub fn set_chunk_bits(bits: u64) {
    assert!(
        valid_chunk_bits(bits),
        "invalid chunk size {bits}: want a power of two in [64, {MAX_DOMAIN_BITS}]"
    );
    std::env::set_var(CHUNK_ENV, bits.to_string());
}

/// Strip every `--chunk-bits` flag from a binary's argument list,
/// applying the override via [`set_chunk_bits`], and return the remaining
/// arguments. Both `--chunk-bits N` and `--chunk-bits=N` are accepted; a
/// missing or malformed size is a hard error, mirroring
/// [`par::strip_thread_flags`].
pub fn strip_chunk_flags(args: &[String]) -> Result<Vec<String>, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let spec: Option<&str> = if arg == "--chunk-bits" {
            match iter.next() {
                Some(v) => Some(v.as_str()),
                None => return Err("--chunk-bits requires a size in bits".to_string()),
            }
        } else {
            arg.strip_prefix("--chunk-bits=")
        };
        match spec {
            Some(v) => set_chunk_bits(parse_chunk_bits(v)?),
            None => rest.push(arg.clone()),
        }
    }
    Ok(rest)
}

/// The logical word-domain size `2^{2n}` **without** the materialisation
/// cap — the address space the chunked kernels stream over. Still guarded
/// against shift overflow: `u64` addressing stops at `2n ≤ 63`.
pub fn logical_word_domain(n: usize) -> u64 {
    assert!(
        2 * n <= 63,
        "word domain 2^{} for n = {n} exceeds u64 addressing (2n ≤ 63)",
        2 * n
    );
    1u64 << (2 * n)
}

/// The logical family-rank domain size `2^n` without the cap (guarded at
/// `n ≤ 63` like [`logical_word_domain`]).
pub fn logical_family_domain(n: usize) -> u64 {
    assert!(
        n <= 63,
        "family domain 2^{n} exceeds u64 addressing (n ≤ 63)"
    );
    1u64 << n
}

/// A fixed split of a logical domain into power-of-two chunks. Chunk
/// boundaries are a pure function of `(domain, chunk_bits)`, so every
/// downstream aggregate is reproducible by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    domain: u64,
    chunk_bits: u64,
}

impl ChunkPlan {
    /// A plan over `domain` with the ambient chunk size: the
    /// [`chunk_override`] when set, else [`DEFAULT_CHUNK_BITS`].
    pub fn new(domain: u64) -> ChunkPlan {
        Self::with_chunk_bits(domain, chunk_override().unwrap_or(DEFAULT_CHUNK_BITS))
    }

    /// Builder: a plan with an explicit chunk size (power of two in
    /// `[64, MAX_DOMAIN_BITS]`).
    pub fn with_chunk_bits(domain: u64, chunk_bits: u64) -> ChunkPlan {
        assert!(
            valid_chunk_bits(chunk_bits),
            "invalid chunk size {chunk_bits}: want a power of two in [64, {MAX_DOMAIN_BITS}]"
        );
        ChunkPlan { domain, chunk_bits }
    }

    /// The logical domain this plan streams over.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Bits per chunk (the last chunk may be shorter when the domain is
    /// not a multiple — power-of-two domains always split evenly).
    pub fn chunk_bits(&self) -> u64 {
        self.chunk_bits
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.domain.div_ceil(self.chunk_bits).max(1) as usize
    }

    /// The half-open element range of chunk `ci`.
    pub fn chunk_range(&self, ci: usize) -> Range<u64> {
        let lo = ci as u64 * self.chunk_bits;
        lo..(lo + self.chunk_bits).min(self.domain)
    }
}

/// How a kernel should obtain its domain: materialised in one piece
/// (below the cap) or streamed chunk by chunk (above it, or whenever the
/// [`CHUNK_ENV`] override forces the chunked path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordSetSource {
    /// The whole domain fits under [`MAX_DOMAIN_BITS`]: materialise it.
    InMemory {
        /// The domain size in bits.
        domain: u64,
    },
    /// Stream the domain through the given plan.
    Chunked(ChunkPlan),
}

impl WordSetSource {
    /// The source for an arbitrary logical domain: chunked when the
    /// domain exceeds the cap or [`chunk_override`] is set, in-memory
    /// otherwise.
    pub fn for_domain(domain: u64) -> WordSetSource {
        if domain > MAX_DOMAIN_BITS || chunk_override().is_some() {
            WordSetSource::Chunked(ChunkPlan::new(domain))
        } else {
            WordSetSource::InMemory { domain }
        }
    }

    /// The source for the word domain `{a,b}^{2n}`.
    pub fn for_word_domain(n: usize) -> WordSetSource {
        Self::for_domain(logical_word_domain(n))
    }

    /// The source for the family-rank domain `2^n`.
    pub fn for_family_domain(n: usize) -> WordSetSource {
        Self::for_domain(logical_family_domain(n))
    }

    /// Is this the chunked path?
    pub fn is_chunked(&self) -> bool {
        matches!(self, WordSetSource::Chunked(_))
    }

    /// The logical domain size.
    pub fn domain(&self) -> u64 {
        match *self {
            WordSetSource::InMemory { domain } => domain,
            WordSetSource::Chunked(plan) => plan.domain(),
        }
    }

    /// A one-line human description (for the CLI and experiment logs).
    pub fn describe(&self) -> String {
        match *self {
            WordSetSource::InMemory { domain } => format!("in-memory ({domain} bits)"),
            WordSetSource::Chunked(plan) => format!(
                "chunked ({} bits in {} chunks of {})",
                plan.domain(),
                plan.num_chunks(),
                plan.chunk_bits()
            ),
        }
    }
}

/// Order-invariant digest of a run of backing words starting at bit
/// `base_bit` (a multiple of 64) of some logical domain: every nonzero
/// word at global block index `i` contributes `FNV1a(i, word)`, XORed
/// together. Zero words contribute nothing, so the digest of a set equals
/// the XOR of the digests of any chunking of it.
pub fn digest_words(base_bit: u64, words: &[u64]) -> u64 {
    debug_assert!(base_bit.is_multiple_of(64), "chunks must own whole blocks");
    let base_block = base_bit / 64;
    let mut acc = 0u64;
    for (i, &w) in words.iter().enumerate() {
        if w != 0 {
            acc ^= Fnv1a::new()
                .write_u64(base_block + i as u64)
                .write_u64(w)
                .finish();
        }
    }
    acc
}

/// [`digest_words`] over a whole materialised set (base bit 0). Equal
/// sets have equal digests; a chunked scan producing the same logical set
/// XORs to the same value.
pub fn set_digest(set: &WordSet) -> u64 {
    digest_words(0, set.blocks())
}

/// Aggregates of one streamed cover-verification pass — everything
/// [`crate::cover::CoverReport`] needs plus the counts and digests the
/// differential suite and the CI determinism job byte-compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverScan {
    /// Number of rectangles.
    pub size: usize,
    /// Union of the rectangles equals `L_n` exactly.
    pub covers_exactly: bool,
    /// All rectangles balanced (a per-rectangle property, domain-free).
    pub all_balanced: bool,
    /// Maximum number of rectangles containing a single word.
    pub max_overlap: usize,
    /// `|⋃ R_i|`.
    pub union_count: u64,
    /// Digest of `⋃ R_i` ([`set_digest`] scheme).
    pub union_digest: u64,
    /// `|L_n|`.
    pub ln_count: u64,
    /// Digest of `L_n`.
    pub ln_digest: u64,
}

/// The chunk of rectangle `r`'s word-domain bitmap restricted to
/// `[base, base + len)`, built by filtering both sides on their high
/// bits: `S` and `T` live on disjoint position masks, so `u ∪ v` lands in
/// the chunk iff `u` matches the chunk base on `Π₀`'s high positions and
/// `v` matches it on `Π₁`'s — `O(|S| + |T|)` filtering plus one insert
/// per member actually in the chunk (summed over all chunks that is
/// exactly the `O(|S|·|T|)` of [`SetRectangle::to_wordset`]).
fn rect_word_chunk(r: &SetRectangle, chunk_bits: u64, base: u64, len: u64) -> WordSet {
    let high = !(chunk_bits - 1);
    let ins = r.partition.inside();
    let outs = r.partition.outside();
    let low = chunk_bits - 1;
    let su: Vec<u64> =
        r.s.iter()
            .copied()
            .filter(|&u| u & high == base & ins & high)
            .collect();
    let mut part = WordSet::empty(len);
    if su.is_empty() {
        return part;
    }
    let tv: Vec<u64> =
        r.t.iter()
            .copied()
            .filter(|&v| v & high == base & outs & high)
            .collect();
    for &u in &su {
        for &v in &tv {
            part.insert((u | v) & low);
        }
    }
    part
}

/// One chunk of the streamed cover pass: the `L_n` slice, the bit-sliced
/// overlap counter over the rectangle slices, and the scalar aggregates.
struct CoverChunk {
    covers_exactly: bool,
    max_overlap: usize,
    union_count: u64,
    union_digest: u64,
    ln_count: u64,
    ln_digest: u64,
}

/// Streamed cover verification over `plan`: chunk results merge with
/// order-free folds (AND / max / sum / XOR) in chunk order, so the scan
/// is bit-identical across thread counts *and* chunk sizes, and equal to
/// the in-memory pass wherever both are feasible.
pub fn cover_scan_chunked_threads(
    n: usize,
    rects: &[SetRectangle],
    threads: usize,
    plan: &ChunkPlan,
) -> CoverScan {
    assert_eq!(
        plan.domain(),
        logical_word_domain(n),
        "plan/domain mismatch"
    );
    obs::count!("wordset.chunked.cover_scans");
    obs::count!("wordset.chunked.chunks", plan.num_chunks() as u64);
    let _t = obs::span!("wordset.chunked.cover");
    let chunks = par::run_chunks(plan.num_chunks(), threads, |ci| {
        let range = plan.chunk_range(ci);
        let (base, len) = (range.start, range.end - range.start);
        let ln = WordSet::from_pred_threads(len, 1, |k| ln_contains(n, (base + k) as Word));
        let mut counter = OverlapCounter::new(len);
        for r in rects {
            counter.add(&rect_word_chunk(r, plan.chunk_bits(), base, len));
        }
        let union = counter.any();
        CoverChunk {
            covers_exactly: union == ln,
            max_overlap: counter.max_count(),
            union_count: union.count(),
            union_digest: digest_words(base, union.blocks()),
            ln_count: ln.count(),
            ln_digest: digest_words(base, ln.blocks()),
        }
    });
    let mut scan = CoverScan {
        size: rects.len(),
        covers_exactly: true,
        all_balanced: rects.iter().all(SetRectangle::is_balanced),
        max_overlap: 0,
        union_count: 0,
        union_digest: 0,
        ln_count: 0,
        ln_digest: 0,
    };
    for c in chunks {
        scan.covers_exactly &= c.covers_exactly;
        scan.max_overlap = scan.max_overlap.max(c.max_overlap);
        scan.union_count += c.union_count;
        scan.union_digest ^= c.union_digest;
        scan.ln_count += c.ln_count;
        scan.ln_digest ^= c.ln_digest;
    }
    scan
}

/// Streamed overlap histogram over `plan`: per-chunk exact-`k` popcounts
/// against the chunk's `L_n` slice, summed bucket-wise across chunks and
/// trimmed like [`crate::cover::overlap_histogram`].
pub fn overlap_histogram_chunked_threads(
    n: usize,
    rects: &[SetRectangle],
    threads: usize,
    plan: &ChunkPlan,
) -> Vec<usize> {
    assert_eq!(
        plan.domain(),
        logical_word_domain(n),
        "plan/domain mismatch"
    );
    obs::count!("wordset.chunked.histograms");
    let _t = obs::span!("wordset.chunked.histogram");
    let partials = par::run_chunks(plan.num_chunks(), threads, |ci| {
        let range = plan.chunk_range(ci);
        let (base, len) = (range.start, range.end - range.start);
        let ln = WordSet::from_pred_threads(len, 1, |k| ln_contains(n, (base + k) as Word));
        let mut counter = OverlapCounter::new(len);
        for r in rects {
            counter.add(&rect_word_chunk(r, plan.chunk_bits(), base, len));
        }
        (0..=counter.max_count())
            .map(|k| counter.exactly_and_count(k, &ln) as usize)
            .collect::<Vec<usize>>()
    });
    let mut hist = Vec::new();
    for p in partials {
        if hist.len() < p.len() {
            hist.resize(p.len(), 0);
        }
        for (h, v) in hist.iter_mut().zip(p) {
            *h += v;
        }
    }
    if hist.is_empty() {
        hist.push(0);
    }
    while hist.len() > 1 && hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

/// The count and digest of a rectangle's family-rank bitmap, streamed
/// over `plan` by per-rank membership probes (the family rank interleaves
/// `Π₀`/`Π₁` bits, so the side-filtering trick of the word domain does
/// not apply; the scan route is the chunk-local analogue of the dense
/// route in [`super::family_rectangle_bitmap_threads`]).
pub fn family_rectangle_scan_chunked_threads(
    n: usize,
    r: &SetRectangle,
    threads: usize,
    plan: &ChunkPlan,
) -> (u64, u64) {
    assert!(supports_blocks(n));
    assert_eq!(
        plan.domain(),
        logical_family_domain(n),
        "plan/domain mismatch"
    );
    obs::count!("wordset.chunked.rect_scans");
    let chunks = par::run_chunks(plan.num_chunks(), threads, |ci| {
        let range = plan.chunk_range(ci);
        let (base, len) = (range.start, range.end - range.start);
        let chunk = WordSet::from_pred_threads(len, 1, |k| r.contains(family_unrank(n, base + k)));
        (chunk.count(), digest_words(base, chunk.blocks()))
    });
    chunks
        .into_iter()
        .fold((0u64, 0u64), |(c, d), (cc, cd)| (c + cc, d ^ cd))
}

/// Signed discrepancy `|R ∩ A| − |R ∩ B|` streamed over the family-rank
/// domain: per chunk, the rectangle slice is intersected with the `A`
/// slice (both built by per-rank probes) and the two popcounts
/// subtracted; per-chunk signed sums add in chunk order.
pub fn discrepancy_chunked_threads(
    n: usize,
    r: &SetRectangle,
    threads: usize,
    plan: &ChunkPlan,
) -> i64 {
    assert!(supports_blocks(n));
    assert_eq!(
        plan.domain(),
        logical_family_domain(n),
        "plan/domain mismatch"
    );
    obs::count!("wordset.chunked.discrepancies");
    let _t = obs::span!("wordset.chunked.discrepancy");
    let partials = par::run_chunks(plan.num_chunks(), threads, |ci| {
        let range = plan.chunk_range(ci);
        let (base, len) = (range.start, range.end - range.start);
        let rect = WordSet::from_pred_threads(len, 1, |k| r.contains(family_unrank(n, base + k)));
        let a = WordSet::from_pred_threads(len, 1, |k| in_a(n, family_unrank(n, base + k)));
        let in_a_count = rect.and_count(&a) as i64;
        let in_b_count = rect.count() as i64 - in_a_count;
        in_a_count - in_b_count
    });
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::example8_cover;

    #[test]
    fn chunk_spec_parsing_and_validation() {
        assert!(parse_chunk_bits("64").is_ok());
        assert!(parse_chunk_bits(" 1024 ").is_ok());
        assert_eq!(parse_chunk_bits("65536"), Ok(1 << 16));
        for bad in ["", "banana", "0", "63", "100", "-64"] {
            assert!(parse_chunk_bits(bad).is_err(), "spec {bad:?}");
        }
        // 2^31 exceeds the materialisation cap: a chunk that big could
        // never be built.
        assert!(parse_chunk_bits(&(MAX_DOMAIN_BITS * 2).to_string()).is_err());
        assert!(valid_chunk_bits(MAX_DOMAIN_BITS));
        assert!(!valid_chunk_bits(MAX_DOMAIN_BITS + 1));
    }

    /// Tests that set or read [`CHUNK_ENV`] must not interleave under the
    /// parallel test runner.
    fn env_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clear [`CHUNK_ENV`] for the test body and restore the ambient
    /// value on drop — the CI chunked-determinism job exports the
    /// variable process-wide, and these tests assert about both states.
    struct EnvRestore(Option<String>);
    impl EnvRestore {
        fn clear() -> EnvRestore {
            let saved = std::env::var(CHUNK_ENV).ok();
            std::env::remove_var(CHUNK_ENV);
            EnvRestore(saved)
        }
    }
    impl Drop for EnvRestore {
        fn drop(&mut self) {
            match &self.0 {
                Some(v) => std::env::set_var(CHUNK_ENV, v),
                None => std::env::remove_var(CHUNK_ENV),
            }
        }
    }

    #[test]
    fn strip_chunk_flags_round_trip() {
        let _g = env_gate();
        let _e = EnvRestore::clear();
        let argv = |args: &[&str]| -> Vec<String> { args.iter().map(|s| s.to_string()).collect() };
        for form in [
            &["--chunk-bits", "1024", "cmd"][..],
            &["--chunk-bits=1024", "cmd"],
        ] {
            let rest = strip_chunk_flags(&argv(form)).expect("valid spelling");
            assert_eq!(rest, argv(&["cmd"]), "form {form:?}");
            assert_eq!(std::env::var(CHUNK_ENV).as_deref(), Ok("1024"));
            std::env::remove_var(CHUNK_ENV);
        }
        for bad in [
            &["--chunk-bits"][..],
            &["--chunk-bits", "0"],
            &["--chunk-bits=banana"],
            &["--chunk-bits", "100"],
        ] {
            assert!(strip_chunk_flags(&argv(bad)).is_err(), "form {bad:?}");
        }
        // Unrelated args pass through untouched.
        assert_eq!(
            strip_chunk_flags(&argv(&["a", "b"])).unwrap(),
            argv(&["a", "b"])
        );
    }

    #[test]
    fn plan_geometry() {
        let plan = ChunkPlan::with_chunk_bits(1 << 12, 1 << 10);
        assert_eq!(plan.num_chunks(), 4);
        assert_eq!(plan.chunk_range(0), 0..1024);
        assert_eq!(plan.chunk_range(3), 3072..4096);
        // Chunk larger than the domain: one short chunk.
        let plan = ChunkPlan::with_chunk_bits(100, 1 << 10);
        assert_eq!(plan.num_chunks(), 1);
        assert_eq!(plan.chunk_range(0), 0..100);
        // The empty domain still plans one (empty) chunk.
        let plan = ChunkPlan::with_chunk_bits(0, 64);
        assert_eq!(plan.num_chunks(), 1);
        assert_eq!(plan.chunk_range(0), 0..0);
    }

    #[test]
    #[should_panic(expected = "invalid chunk size")]
    fn plan_rejects_non_power_of_two() {
        let _ = ChunkPlan::with_chunk_bits(1 << 12, 100);
    }

    #[test]
    fn source_picks_by_cap() {
        let _g = env_gate();
        let _e = EnvRestore::clear();
        assert!(!WordSetSource::for_domain(MAX_DOMAIN_BITS).is_chunked());
        assert!(WordSetSource::for_domain(MAX_DOMAIN_BITS + 1).is_chunked());
        assert!(!WordSetSource::for_word_domain(13).is_chunked());
        assert!(WordSetSource::for_word_domain(16).is_chunked());
        assert_eq!(WordSetSource::for_word_domain(16).domain(), 1u64 << 32);
        assert!(WordSetSource::for_family_domain(32).is_chunked());
        assert!(!WordSetSource::for_family_domain(16).is_chunked());
        assert!(WordSetSource::for_word_domain(13)
            .describe()
            .starts_with("in-memory"));
        assert!(WordSetSource::for_word_domain(16)
            .describe()
            .starts_with("chunked"));
        // The env override forces the chunked path even below the cap —
        // the lever the CI chunked-determinism job relies on.
        std::env::set_var(CHUNK_ENV, "4096");
        assert!(WordSetSource::for_word_domain(4).is_chunked());
        assert_eq!(chunk_override(), Some(4096));
        std::env::remove_var(CHUNK_ENV);
        assert_eq!(chunk_override(), None);
    }

    #[test]
    #[should_panic(expected = "u64 addressing")]
    fn logical_word_domain_guards_the_shift() {
        let _ = logical_word_domain(32);
    }

    #[test]
    fn digest_is_chunking_invariant() {
        let domain = 1u64 << 12;
        let set = WordSet::from_pred_threads(domain, 1, |k| k.is_multiple_of(3) || k > 4000);
        let whole = set_digest(&set);
        for chunk_bits in [64u64, 256, 1024, 4096] {
            let plan = ChunkPlan::with_chunk_bits(domain, chunk_bits);
            let mut acc = 0u64;
            for ci in 0..plan.num_chunks() {
                let r = plan.chunk_range(ci);
                let piece =
                    WordSet::from_pred_threads(r.end - r.start, 1, |k| set.contains(r.start + k));
                acc ^= digest_words(r.start, piece.blocks());
            }
            assert_eq!(acc, whole, "chunk_bits={chunk_bits}");
        }
        // Digests distinguish sets and positions.
        let other = WordSet::from_pred_threads(domain, 1, |k| k.is_multiple_of(3));
        assert_ne!(set_digest(&other), whole);
        assert_ne!(digest_words(0, &[1]), digest_words(64, &[1]));
        assert_eq!(set_digest(&WordSet::empty(domain)), 0);
    }

    #[test]
    fn rect_word_chunks_reassemble_to_wordset() {
        let n = 4usize;
        for r in example8_cover(n) {
            let whole = r.to_wordset(n);
            for chunk_bits in [64u64, 128] {
                let plan = ChunkPlan::with_chunk_bits(whole.domain(), chunk_bits);
                let mut count = 0u64;
                let mut digest = 0u64;
                for ci in 0..plan.num_chunks() {
                    let rg = plan.chunk_range(ci);
                    let piece = rect_word_chunk(&r, chunk_bits, rg.start, rg.end - rg.start);
                    count += piece.count();
                    digest ^= digest_words(rg.start, piece.blocks());
                }
                assert_eq!(count, whole.count(), "chunk_bits={chunk_bits}");
                assert_eq!(digest, set_digest(&whole), "chunk_bits={chunk_bits}");
            }
        }
    }

    #[test]
    fn chunked_scans_are_thread_and_chunk_invariant() {
        let n = 4usize;
        let rects = example8_cover(n);
        let word_plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), 64);
        let base = cover_scan_chunked_threads(n, &rects, 1, &word_plan);
        let base_hist = overlap_histogram_chunked_threads(n, &rects, 1, &word_plan);
        for chunk_bits in [64u64, 256, 1 << 20] {
            let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), chunk_bits);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    base,
                    cover_scan_chunked_threads(n, &rects, threads, &plan),
                    "chunk_bits={chunk_bits} threads={threads}"
                );
                assert_eq!(
                    base_hist,
                    overlap_histogram_chunked_threads(n, &rects, threads, &plan),
                    "chunk_bits={chunk_bits} threads={threads}"
                );
            }
        }
        assert!(base.covers_exactly);
        assert_eq!(base.max_overlap, n);
        assert_eq!(base.union_count, base.ln_count);
        assert_eq!(base.union_digest, base.ln_digest);
    }

    #[test]
    fn chunked_discrepancy_matches_scalar() {
        let n = 8usize;
        let plan = ChunkPlan::with_chunk_bits(logical_family_domain(n), 64);
        for r in example8_cover(n) {
            let expect = crate::discrepancy::discrepancy_scalar_threads(n, &r, 1);
            for threads in [1usize, 4] {
                assert_eq!(
                    expect,
                    discrepancy_chunked_threads(n, &r, threads, &plan),
                    "threads={threads}"
                );
            }
            let (count, digest) = family_rectangle_scan_chunked_threads(n, &r, 2, &plan);
            let whole = super::super::family_rectangle_bitmap_threads(n, &r, 1);
            assert_eq!(count, whole.count());
            assert_eq!(digest, set_digest(&whole));
        }
    }
}
