//! The Kimelfeld–Martens–Niewerth upper bound, as an API: every CFG of a
//! finite language can be converted to an *unambiguous* CFG with at most a
//! double-exponential blow-up (\[20\]; the paper's related-work section
//! notes this makes Theorem 1's separation optimal).
//!
//! The constructive route implemented here: materialise `L(G)` (single
//! exponential in `|G|`, doubly exponential including word lengths), build
//! its minimal DAWG, and read off the right-linear grammar — which is
//! always unambiguous. [`determinize_grammar`] performs the conversion
//! with full size accounting; [`double_exponential_ceiling_log2`] is the
//! theoretical worst case it stays under.

use ucfg_automata::convert::dfa_to_grammar;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_grammar::bignum::BigUint;
use ucfg_grammar::language::{finite_language, max_word_length};
use ucfg_grammar::Grammar;

/// Result of the CFG → uCFG conversion, with accounting.
#[derive(Debug)]
pub struct Determinization {
    /// The unambiguous grammar.
    pub ucfg: Grammar,
    /// Input size `|G|`.
    pub input_size: usize,
    /// Output size `|G'|`.
    pub output_size: usize,
    /// `|L(G)|` (the intermediate materialisation).
    pub language_size: usize,
    /// Longest word of the language.
    pub max_word_len: usize,
}

/// Errors from [`determinize_grammar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeterminizeError {
    /// The language is infinite; the finite-language route does not apply
    /// (and by Schmidt–Szymanski no computable bound exists in general).
    InfiniteLanguage,
    /// The language contains ε, which the right-linear reading cannot
    /// express (wrap the result in an ε-alternative yourself if needed).
    ContainsEpsilon,
}

/// Convert any finite-language CFG into an unambiguous CFG via the
/// materialise-then-DAWG route of \[20\].
pub fn determinize_grammar(g: &Grammar) -> Result<Determinization, DeterminizeError> {
    let lang = finite_language(g).ok_or(DeterminizeError::InfiniteLanguage)?;
    if lang.contains("") {
        return Err(DeterminizeError::ContainsEpsilon);
    }
    let max_word_len = max_word_length(g).expect("finite");
    let mut sorted: Vec<&str> = lang.iter().map(|s| s.as_str()).collect();
    sorted.sort_unstable();
    let mut b = DawgBuilder::new(g.alphabet());
    for w in &sorted {
        b.add(w);
    }
    let dawg = b.finish();
    let ucfg = dfa_to_grammar(&dawg).expect("ε excluded above");
    Ok(Determinization {
        input_size: g.size(),
        output_size: ucfg.size(),
        language_size: lang.len(),
        max_word_len,
        ucfg,
    })
}

/// The theoretical ceiling the conversion stays under: a CNF grammar of
/// size `s` generates words of length at most `2^s`, so the language has
/// at most `(|Σ|+1)^{2^s}` words and the naive unambiguous grammar has
/// size at most `2^s · |Σ|^{2^s}` — doubly exponential in `s`. Returned in
/// log₂ (a `BigUint` exponent): `log₂ ceiling = 2^s · (log₂|Σ| + s·ε)`,
/// here simplified to the dominating `2^s · log₂(|Σ|+1) + s`.
pub fn double_exponential_ceiling_log2(grammar_size: u64, alphabet: usize) -> BigUint {
    // log2( len · Σ^len ) with len = 2^s: s + 2^s·log2(Σ) ≤ (s+2)·2^s for Σ ≤ 4.
    let len = BigUint::pow2(grammar_size);
    let log_sigma = (usize::BITS - (alphabet.max(2) - 1).leading_zeros()) as u64;
    &(&len * &BigUint::from_u64(log_sigma)) + &BigUint::from_u64(grammar_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ln_grammars::appendix_a_grammar;
    use crate::words;
    use ucfg_grammar::count::decide_unambiguous;
    use ucfg_grammar::GrammarBuilder;

    #[test]
    fn determinizes_the_ln_cfg() {
        for n in 2..=5usize {
            let g = appendix_a_grammar(n);
            let d = determinize_grammar(&g).unwrap();
            assert!(decide_unambiguous(&d.ucfg).is_unambiguous(), "n={n}");
            assert_eq!(
                finite_language(&d.ucfg),
                finite_language(&g),
                "language preserved, n={n}"
            );
            assert_eq!(d.language_size as u64, words::ln_size(n).to_u64().unwrap());
            assert_eq!(d.max_word_len, 2 * n);
            // The blow-up is exponential in n — but n is itself
            // exponential in |G| = O(log n): doubly exponential overall,
            // within the ceiling.
            let ceiling = double_exponential_ceiling_log2(d.input_size as u64, 2);
            assert!(
                BigUint::from_u64(d.output_size as u64).bits()
                    <= ceiling.to_u64().unwrap_or(u64::MAX),
                "n={n}"
            );
        }
    }

    #[test]
    fn blowup_is_exponential_in_n() {
        let s4 = determinize_grammar(&appendix_a_grammar(4))
            .unwrap()
            .output_size;
        let s8 = determinize_grammar(&appendix_a_grammar(8))
            .unwrap()
            .output_size;
        assert!(s8 > 8 * s4, "{s4} vs {s8}");
    }

    #[test]
    fn rejects_infinite_language() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        assert_eq!(
            determinize_grammar(&b.build(s)).unwrap_err(),
            DeterminizeError::InfiniteLanguage
        );
    }

    #[test]
    fn rejects_epsilon() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.epsilon_rule(s);
        b.rule(s, |r| r.t('a'));
        assert_eq!(
            determinize_grammar(&b.build(s)).unwrap_err(),
            DeterminizeError::ContainsEpsilon
        );
    }

    #[test]
    fn already_unambiguous_input_roundtrips() {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.ts("ab"));
        b.rule(s, |r| r.ts("ba"));
        let g = b.build(s);
        let d = determinize_grammar(&g).unwrap();
        assert_eq!(finite_language(&d.ucfg), finite_language(&g));
        assert!(decide_unambiguous(&d.ucfg).is_unambiguous());
    }

    #[test]
    fn ceiling_grows_doubly_exponentially() {
        let c10 = double_exponential_ceiling_log2(10, 2);
        let c20 = double_exponential_ceiling_log2(20, 2);
        // log₂-ceilings themselves grow exponentially.
        assert!(c20 > &c10 * &BigUint::from_u64(500));
    }
}
