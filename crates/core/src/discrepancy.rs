//! The discrepancy argument of Section 4.2.
//!
//! For `n = 4m`, `Z` is split into `2m` blocks of four; the family `𝓛`
//! consists of the sets picking exactly one element per block, `A ⊆ 𝓛` are
//! the members with an odd number of witnessing pairs, `B = 𝓛 \ A`.
//!
//! Quantities reproduced exactly (Lemma 18): `|𝓛| = 2^{4m}`,
//! `|B ∖ L_n| = 12^m`, `|B| − |A| = 2^{3m}`, and the gap
//! `|A ∩ L_n| − |B ∩ L_n| = 12^m − 8^m` (which exceeds `2^{7m/2}` for
//! `m ≥ 4`). Per-rectangle discrepancy `||R∩A| − |R∩B||` is computed
//! exhaustively and checked against the Lemma 19 bound `2^{3m}` (for
//! `[1, n]`-rectangles) and the Lemma 23 bound `2^{10m/3}` (for neat
//! balanced rectangles); the implied cover lower bound of
//! Proposition 16 / Theorem 17 follows.
//!
//! ```
//! use ucfg_core::discrepancy;
//!
//! // Lemma 18's identities, exactly, at any scale:
//! let m = 16;
//! assert_eq!(discrepancy::family_size(m), ucfg_grammar::BigUint::pow2(4 * m));
//! assert!(discrepancy::lemma18_inequality_holds(m)); // gap > 2^{7m/2} for m ≥ 4
//! // The Proposition 16 lower bound grows linearly in m (≈ 0.25 bits per m):
//! assert!(discrepancy::cover_lower_bound_log2(m) > 3.0);
//! ```

use crate::partition::OrderedPartition;
use crate::rectangle::SetRectangle;
use crate::words::{witness_count, Word};
use std::collections::BTreeSet;
use ucfg_grammar::bignum::{BigInt, BigUint};
use ucfg_support::obs;
use ucfg_support::rng::Rng;

/// Does `n` support the block structure (`n ≡ 0 mod 4`, `n ≥ 4`)?
pub fn supports_blocks(n: usize) -> bool {
    n >= 4 && n.is_multiple_of(4) && 2 * n <= 64
}

/// Repeating `0b0001` nibbles — the SWAR lane mask of the 4-blocks.
const NIBBLE_ONES: u64 = 0x1111_1111_1111_1111;

/// Is `w` in the family `𝓛` (exactly one element per 4-block)?
///
/// Branchless SWAR: two masked adds leave each 4-bit lane holding its
/// popcount, and membership is one comparison against the all-ones lane
/// pattern — the rectangle-bitmap product route probes this once per
/// `(u, v)` pair, where the old per-block loop dominated the build.
pub fn in_family(n: usize, w: Word) -> bool {
    debug_assert!(supports_blocks(n));
    let w = w & crate::words::low_mask(2 * n);
    let pairs = (w & 0x5555_5555_5555_5555) + ((w >> 1) & 0x5555_5555_5555_5555);
    let nib = (pairs & 0x3333_3333_3333_3333) + ((pairs >> 2) & 0x3333_3333_3333_3333);
    nib == NIBBLE_ONES & crate::words::low_mask(2 * n)
}

/// Is `w ∈ A` (member of `𝓛` with an odd number of witnessing pairs)?
pub fn in_a(n: usize, w: Word) -> bool {
    in_family(n, w) && witness_count(n, w) % 2 == 1
}

/// Is `w ∈ B = 𝓛 ∖ A`?
pub fn in_b(n: usize, w: Word) -> bool {
    in_family(n, w) && witness_count(n, w).is_multiple_of(2)
}

/// Perfect rank of a family member into `[0, 2^n)`: each of the `n/2`
/// blocks holds exactly one element, and its index within the block
/// (`0..4`) contributes two bits of the rank. This bijection is what lets
/// the bitmap kernels index `𝓛` with `2^n` bits instead of the `2^{2n}`
/// word domain (see [`crate::wordset`]).
pub fn family_rank(n: usize, w: Word) -> u64 {
    debug_assert!(in_family(n, w), "rank is defined on 𝓛 only");
    rank_fold(w & crate::words::low_mask(2 * n))
}

/// The SWAR body of [`family_rank`]: branchless `trailing_zeros` per
/// one-hot nibble — for index bits `b1 b0` of each block, `b0` is set by
/// nibble values {2, 8} and `b1` by {4, 8} — then the per-nibble 2-bit
/// indices fold down to a packed rank by halving the stride. Zero nibbles
/// contribute zero bits, so the fold is also the per-*side* rank
/// contribution of an aligned partition (see [`side_rank_contrib`]).
#[inline]
fn rank_fold(w: u64) -> u64 {
    let b0 = (w >> 1 | w >> 3) & NIBBLE_ONES;
    let b1 = (w >> 2 | w >> 3) & NIBBLE_ONES;
    let y = b0 | (b1 << 1);
    let y = (y | (y >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    let y = (y | (y >> 4)) & 0x00FF_00FF_00FF_00FF;
    let y = (y | (y >> 8)) & 0x0000_FFFF_0000_FFFF;
    (y | (y >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Is `mask` a union of whole 4-blocks (no straddled nibble)? For such a
/// partition side the family membership test and the rank split cleanly
/// across the sides, which is what the aligned rectangle-bitmap route
/// exploits.
pub(crate) fn nibble_aligned(mask: u64) -> bool {
    mask == (mask & NIBBLE_ONES).wrapping_mul(0xF)
}

/// One-sided family check + rank contribution for a mask confined to the
/// nibble-aligned side `side_mask`: `Some(contrib)` iff every side nibble
/// of `u` is one-hot (members of `𝓛` project to exactly that), where
/// `family_rank(n, u | v) = contrib(u) | contrib(v)` for the two sides of
/// an aligned partition. `None` means no `u | v` pair can lie in `𝓛`.
pub(crate) fn side_rank_contrib(side_mask: u64, u: u64) -> Option<u64> {
    debug_assert!(nibble_aligned(side_mask) && u & !side_mask == 0);
    let pairs = (u & 0x5555_5555_5555_5555) + ((u >> 1) & 0x5555_5555_5555_5555);
    let nib = (pairs & 0x3333_3333_3333_3333) + ((pairs >> 2) & 0x3333_3333_3333_3333);
    (nib == side_mask & NIBBLE_ONES).then(|| rank_fold(u))
}

/// Inverse of [`family_rank`]: the member of `𝓛` with rank `i`.
pub fn family_unrank(n: usize, i: u64) -> Word {
    debug_assert!(supports_blocks(n));
    debug_assert!(i < 1u64 << n, "rank domain is [0, 2^n)");
    let mut w = 0u64;
    for t in 0..n / 2 {
        let idx = i >> (2 * t) & 0b11;
        w |= 1u64 << (4 * t + idx as usize);
    }
    w
}

/// Enumerate `𝓛` (size `2^n`; experiment-scale `n`).
pub fn enumerate_family(n: usize) -> Vec<Word> {
    assert!(supports_blocks(n) && n <= 24, "family enumeration is 2^n");
    let blocks = n / 2;
    let mut out = Vec::with_capacity(1 << n);
    let mut stack: Vec<(usize, Word)> = vec![(0, 0)];
    while let Some((t, acc)) = stack.pop() {
        if t == blocks {
            out.push(acc);
            continue;
        }
        for bit in 0..4 {
            stack.push((t + 1, acc | 1u64 << (4 * t + bit)));
        }
    }
    out
}

/// `|𝓛| = 2^{4m}`.
pub fn family_size(m: u64) -> BigUint {
    BigUint::pow2(4 * m)
}

/// `|A| = (16^m − 8^m) / 2`.
pub fn a_size(m: u64) -> BigUint {
    let (q, r) = BigUint::pow2(4 * m)
        .checked_sub(&BigUint::pow2(3 * m))
        .expect("16^m > 8^m")
        .div_rem_small(2);
    debug_assert_eq!(r, 0);
    q
}

/// `|B| = (16^m + 8^m) / 2`.
pub fn b_size(m: u64) -> BigUint {
    let (q, r) = (&BigUint::pow2(4 * m) + &BigUint::pow2(3 * m)).div_rem_small(2);
    debug_assert_eq!(r, 0);
    q
}

/// `|B ∖ L_n| = 12^m` (Lemma 18).
pub fn b_outside_ln(m: u64) -> BigUint {
    BigUint::small_pow(12, m)
}

/// The gap `|A ∩ L_n| − |B ∩ L_n| = 12^m − 8^m` (Lemma 18's inequality is
/// `gap > 2^{7m/2}`, which holds for all `m ≥ 4`).
pub fn gap(m: u64) -> BigUint {
    BigUint::small_pow(12, m)
        .checked_sub(&BigUint::pow2(3 * m))
        .expect("12^m ≥ 8^m")
}

/// Does Lemma 18's inequality `gap > 2^{7m/2}` hold for this `m`?
/// (Checked exactly: `gap² > 2^{7m}`.)
pub fn lemma18_inequality_holds(m: u64) -> bool {
    let g = gap(m);
    &g * &g > BigUint::pow2(7 * m)
}

/// Signed discrepancy `|R ∩ A| − |R ∩ B|` of a rectangle.
///
/// Bitmap kernel: the rectangle's family-rank bitmap is built in
/// `O(|S|·|T|)` ([`crate::wordset::family_rectangle_bitmap`]) and the two
/// intersection sizes are popcounts against the cached `A`/`B` bitmaps —
/// no `2^n` family scan. The scalar scan survives as
/// [`discrepancy_scalar`], the differential reference of the property
/// tests.
pub fn discrepancy(n: usize, r: &SetRectangle) -> i64 {
    discrepancy_threads(n, r, ucfg_support::par::thread_count())
}

/// [`discrepancy`] with an explicit worker count (`threads = 1` is the
/// serial reference path). The bitmap build OR-merges per-chunk partials
/// and the popcounts are order-free, so the result is bit-identical for
/// every thread count.
pub fn discrepancy_threads(n: usize, r: &SetRectangle, threads: usize) -> i64 {
    obs::count!("discrepancy.calls");
    let _t = obs::span!("discrepancy.bitmap");
    use crate::wordset::chunked::{self, WordSetSource};
    if let WordSetSource::Chunked(plan) = WordSetSource::for_family_domain(n) {
        return chunked::discrepancy_chunked_threads(n, r, threads, &plan);
    }
    let rect = crate::wordset::family_rectangle_bitmap_threads(n, r, threads);
    let a = crate::wordset::family_a_bitmap(n);
    // B = 𝓛 ∖ A on the family-rank domain, so |R ∩ B| is the fused
    // `R ∖ A` popcount — one pass over `rect`/`A`, no `B` bitmap at all.
    rect.and_count(&a) as i64 - rect.andnot_count(&a) as i64
}

/// The scalar reference for [`discrepancy`]: exhaustive `2^n` family scan
/// with per-member [`SetRectangle::contains`] probes.
pub fn discrepancy_scalar(n: usize, r: &SetRectangle) -> i64 {
    discrepancy_scalar_threads(n, r, ucfg_support::par::thread_count())
}

/// [`discrepancy_scalar`] with an explicit worker count; partial integer
/// sums merge in fixed chunk order, so the result is bit-identical to the
/// serial scan for every thread count.
pub fn discrepancy_scalar_threads(n: usize, r: &SetRectangle, threads: usize) -> i64 {
    let fam = enumerate_family(n);
    ucfg_support::par::map_ranges_threads(0..fam.len() as u64, threads, |range| {
        fam[range.start as usize..range.end as usize]
            .iter()
            .filter(|&&w| r.contains(w))
            .map(|&w| {
                if witness_count(n, w) % 2 == 1 {
                    1i64
                } else {
                    -1
                }
            })
            .sum::<i64>()
    })
    .into_iter()
    .sum()
}

/// The Lemma 19 bound for `[1, n]`-rectangles: `2^{3m}`.
pub fn lemma19_bound(m: u64) -> BigUint {
    BigUint::pow2(3 * m)
}

/// The complete Lemma 18/19 ledger for the family at `n = 4m`, every
/// quantity in exact closed form over [`BigUint`]/[`BigInt`] — valid at
/// any `m`, in particular `n ≥ 32` where enumeration is impossible and
/// the signed quantities (`gap`, the full-family discrepancy `−2^{3m}`)
/// overflow machine integers. Cross-checked against exhaustive
/// enumeration at every `m` where both are feasible (see the tests and
/// `crates/core/tests/chunked_differential.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyAccounting {
    /// The block parameter `m` (so `n = 4m`).
    pub m: u64,
    /// `|𝓛| = 16^m`.
    pub family_size: BigUint,
    /// `|A| = (16^m − 8^m) / 2`.
    pub a_size: BigUint,
    /// `|B| = (16^m + 8^m) / 2`.
    pub b_size: BigUint,
    /// `|B ∖ L_n| = 12^m` (Lemma 18).
    pub b_outside_ln: BigUint,
    /// `|A ∩ L_n| = |A|` — `A ⊆ L_n` since an odd witness count is ≥ 1.
    pub a_in_ln: BigUint,
    /// `|B ∩ L_n| = |B| − 12^m`.
    pub b_in_ln: BigUint,
    /// The signed gap `|A ∩ L_n| − |B ∩ L_n| = 12^m − 8^m`.
    pub gap: BigInt,
    /// The signed discrepancy of the full-family rectangle `𝓛` itself:
    /// `|A| − |B| = −2^{3m}` — Lemma 19's bound met with equality, on the
    /// negative side.
    pub full_family_discrepancy: BigInt,
    /// The Lemma 19 bound `2^{3m}` for `[1, n]`-rectangles.
    pub lemma19_bound: BigUint,
    /// Does Lemma 18's inequality `gap > 2^{7m/2}` hold (exact check)?
    pub lemma18_holds: bool,
}

/// The exact [`FamilyAccounting`] at block parameter `m`.
pub fn family_accounting(m: u64) -> FamilyAccounting {
    let a = a_size(m);
    let b = b_size(m);
    let outside = b_outside_ln(m);
    let b_in_ln = b.checked_sub(&outside).expect("|B| ≥ 12^m");
    FamilyAccounting {
        m,
        family_size: family_size(m),
        a_size: a.clone(),
        b_size: b.clone(),
        b_outside_ln: outside,
        a_in_ln: a.clone(),
        gap: BigInt::sub_unsigned(&a, &b_in_ln),
        b_in_ln,
        full_family_discrepancy: BigInt::sub_unsigned(&a, &b),
        lemma19_bound: lemma19_bound(m),
        lemma18_holds: lemma18_inequality_holds(m),
    }
}

/// Exact check of the Lemma 23 bound `|d| ≤ 2^{10m/3}` as `|d|³ ≤ 2^{10m}`.
pub fn within_lemma23_bound(m: u64, d: i64) -> bool {
    let a = BigUint::from_u64(d.unsigned_abs());
    &(&a * &a) * &a <= BigUint::pow2(10 * m)
}

/// The Proposition 16 cover lower bound in log₂:
/// `log₂ ℓ ≥ log₂(12^m − 8^m) − 10m/3`.
pub fn cover_lower_bound_log2(m: u64) -> f64 {
    gap(m).log2_approx() - 10.0 * m as f64 / 3.0
}

/// The Theorem 17 (fixed `[1,n]`-partition) cover lower bound in log₂:
/// `log₂ ℓ ≥ log₂(12^m − 8^m) − 3m`.
pub fn fixed_partition_lower_bound_log2(m: u64) -> f64 {
    gap(m).log2_approx() - 3.0 * m as f64
}

/// Sample a random rectangle over `partition` whose sides are subsets of
/// the projections of `𝓛` (other patterns never meet `𝓛` and contribute
/// nothing to discrepancy).
pub fn random_family_rectangle<R: Rng + ?Sized>(
    n: usize,
    partition: OrderedPartition,
    rng: &mut R,
) -> SetRectangle {
    let fam = enumerate_family(n);
    let ins = partition.inside();
    let outs = partition.outside();
    let s_all: BTreeSet<u64> = fam.iter().map(|&w| w & ins).collect();
    let t_all: BTreeSet<u64> = fam.iter().map(|&w| w & outs).collect();
    let s = s_all.into_iter().filter(|_| rng.random_bool(0.5)).collect();
    let t = t_all.into_iter().filter(|_| rng.random_bool(0.5)).collect();
    SetRectangle::new(partition, s, t)
}

/// Adversarial discrepancy search by alternating maximisation: for a fixed
/// `T` the best `S` is `{u : Σ_{v∈T} f(u∪v) > 0}` (and symmetrically), so
/// alternate until a fixpoint. Returns the best rectangle found and its
/// signed discrepancy. This gives strong *lower* estimates of the maximal
/// discrepancy, to be compared against the Lemma 19/23 upper bounds.
pub fn adversarial_rectangle<R: Rng + ?Sized>(
    n: usize,
    partition: OrderedPartition,
    rounds: usize,
    rng: &mut R,
) -> (SetRectangle, i64) {
    let fam = enumerate_family(n);
    let ins = partition.inside();
    let outs = partition.outside();
    let sign = |w: Word| {
        if witness_count(n, w) % 2 == 1 {
            1i64
        } else {
            -1i64
        }
    };
    // Group family members by their side patterns.
    let s_all: Vec<u64> = fam
        .iter()
        .map(|&w| w & ins)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let t_all: Vec<u64> = fam
        .iter()
        .map(|&w| w & outs)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // f(u, v) summed lazily; members of 𝓛 are exactly the u|v combinations
    // that lie in 𝓛.
    let mut best: Option<(BTreeSet<u64>, BTreeSet<u64>, i64)> = None;
    for _ in 0..rounds.max(1) {
        let mut t_cur: BTreeSet<u64> = t_all
            .iter()
            .copied()
            .filter(|_| rng.random_bool(0.5))
            .collect();
        let mut s_cur: BTreeSet<u64> = BTreeSet::new();
        let mut last_d = i64::MIN;
        for _iter in 0..16 {
            // Best S for current T.
            s_cur = s_all
                .iter()
                .copied()
                .filter(|&u| {
                    let score: i64 = t_cur
                        .iter()
                        .filter(|&&v| in_family(n, u | v))
                        .map(|&v| sign(u | v))
                        .sum();
                    score > 0
                })
                .collect();
            // Best T for current S.
            t_cur = t_all
                .iter()
                .copied()
                .filter(|&v| {
                    let score: i64 = s_cur
                        .iter()
                        .filter(|&&u| in_family(n, u | v))
                        .map(|&u| sign(u | v))
                        .sum();
                    score > 0
                })
                .collect();
            let d: i64 = s_cur
                .iter()
                .flat_map(|&u| t_cur.iter().map(move |&v| (u, v)))
                .filter(|&(u, v)| in_family(n, u | v))
                .map(|(u, v)| sign(u | v))
                .sum();
            if d == last_d {
                break;
            }
            last_d = d;
        }
        let d = last_d;
        if best.as_ref().is_none_or(|b| d > b.2) {
            best = Some((s_cur, t_cur, d));
        }
    }
    let (s, t, d) = best.expect("at least one round");
    (SetRectangle::new(partition, s, t), d)
}

/// The T-pattern cap for [`exact_max_discrepancy`]: above this many
/// T-side patterns the `2^{|T-patterns|}` subset scan is declined
/// (`None`). The Gray-code walk costs `O(|S|)` per subset, so 26 patterns
/// (a 2^26 ≈ 6.7·10⁷-step scan) completes in seconds; the old full-rescan
/// implementation capped out at 20.
pub const EXACT_MAX_T_PATTERNS: usize = 26;

/// The distinct side patterns of `𝓛` under a partition: the projections
/// of the family onto `Π₀` (the `S` candidates) and `Π₁` (the `T`
/// candidates), each in ascending mask order. Rectangles built from any
/// other patterns never meet `𝓛`.
pub fn family_side_patterns(n: usize, partition: OrderedPartition) -> (Vec<u64>, Vec<u64>) {
    let fam = enumerate_family(n);
    let ins = partition.inside();
    let outs = partition.outside();
    let s_all: Vec<u64> = fam
        .iter()
        .map(|&w| w & ins)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let t_all: Vec<u64> = fam
        .iter()
        .map(|&w| w & outs)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    (s_all, t_all)
}

/// The full-family rectangle `R = 𝓛` at the block-aligned `[1, n]` cut,
/// built directly — one one-hot nibble per 4-block and side, `|S| = |T|
/// = 2^{n/2}` — so it exists at every `n` the family supports.
/// [`family_side_patterns`] computes the same sides but enumerates all
/// `2^n` members first, which stops at `n = 24`; this constructor is
/// what lets the streamed discrepancy kernel run at `n = 32`.
pub fn full_family_rectangle(n: usize) -> SetRectangle {
    assert!(supports_blocks(n));
    let part = OrderedPartition::new(n, 1, n);
    let half = n / 4;
    let side = |base: usize| -> BTreeSet<u64> {
        (0..1u64 << (2 * half))
            .map(|i| {
                (0..half).fold(0u64, |w, t| {
                    let idx = (i >> (2 * t)) & 0b11;
                    w | 1u64 << (4 * (base + t) + idx as usize)
                })
            })
            .collect()
    };
    SetRectangle::new(part, side(0), side(half))
}

/// The `{−1, 0, +1}` score matrix of a partition in **column-major**
/// layout (`f[j·rows + i]` is the sign of `s_all[i] ∪ t_all[j]`), the
/// input format of [`gray_subset_max_threads`].
fn family_score_matrix(n: usize, s_all: &[u64], t_all: &[u64]) -> Vec<i64> {
    let rows = s_all.len();
    let mut f = vec![0i64; rows * t_all.len()];
    for (j, &v) in t_all.iter().enumerate() {
        for (i, &u) in s_all.iter().enumerate() {
            let w = u | v;
            if in_family(n, w) {
                f[j * rows + i] = if witness_count(n, w) % 2 == 1 { 1 } else { -1 };
            }
        }
    }
    f
}

/// *Exact* maximum `||R∩A| − |R∩B||` over **all** rectangles of a
/// partition, by enumerating every `T ⊆` (T-side patterns) and pairing it
/// with its optimal `S` (for the maximising rectangle, `S` is always the
/// set of rows with positive — resp. negative — total, so scanning all `T`
/// with optimal `S` finds the true optimum).
///
/// Feasible only when the T-side has few patterns (`2^{|T-patterns|}`
/// subsets); returns `None` above [`EXACT_MAX_T_PATTERNS`]. For `n = 4`
/// this covers every partition; for `n = 8` the neat ones.
///
/// The scan is a Gray-code walk ([`gray_subset_max_threads`]): each step
/// flips a single T-pattern in or out and updates the per-row scores and
/// the pos/neg totals incrementally, `O(|S|)` per subset instead of the
/// `O(|S|·|T|)` rescan kept as [`exact_max_discrepancy_scalar`].
pub fn exact_max_discrepancy(n: usize, partition: OrderedPartition) -> Option<u64> {
    exact_max_discrepancy_threads(n, partition, ucfg_support::par::thread_count())
}

/// [`exact_max_discrepancy`] with an explicit worker count (`threads = 1`
/// is the serial reference path).
pub fn exact_max_discrepancy_threads(
    n: usize,
    partition: OrderedPartition,
    threads: usize,
) -> Option<u64> {
    let (s_all, t_all) = family_side_patterns(n, partition);
    if t_all.len() > EXACT_MAX_T_PATTERNS {
        return None;
    }
    obs::count!("discrepancy.exact_max.calls");
    let _t = obs::span!("discrepancy.exact_max");
    let f = family_score_matrix(n, &s_all, &t_all);
    Some(gray_subset_max_threads(
        &f,
        s_all.len(),
        t_all.len(),
        threads,
    ))
}

/// The scalar reference for [`exact_max_discrepancy`]: a full
/// `O(|S|·|T|)` score rescan per subset. Kept for the differential
/// property tests; use the Gray-code path for real scans.
pub fn exact_max_discrepancy_scalar(n: usize, partition: OrderedPartition) -> Option<u64> {
    exact_max_discrepancy_scalar_threads(n, partition, ucfg_support::par::thread_count())
}

/// [`exact_max_discrepancy_scalar`] with an explicit worker count;
/// per-chunk maxima merge in fixed chunk order, so the result is
/// bit-identical to the serial scan for every thread count.
pub fn exact_max_discrepancy_scalar_threads(
    n: usize,
    partition: OrderedPartition,
    threads: usize,
) -> Option<u64> {
    let (s_all, t_all) = family_side_patterns(n, partition);
    if t_all.len() > EXACT_MAX_T_PATTERNS {
        return None;
    }
    let rows = s_all.len();
    let f = family_score_matrix(n, &s_all, &t_all);
    let best = ucfg_support::par::map_ranges_threads(0..(1u64 << t_all.len()), threads, |range| {
        let mut chunk_best: u64 = 0;
        for t_mask in range {
            let mut pos: i64 = 0;
            let mut neg: i64 = 0;
            for i in 0..rows {
                let mut score: i64 = 0;
                // A u64 mask throughout: the pre-Gray implementation
                // narrowed this to u32, silently dropping columns ≥ 32 had
                // the cap ever been raised past 32 patterns.
                let mut m: u64 = t_mask;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    score += f[j * rows + i];
                    m &= m - 1;
                }
                if score > 0 {
                    pos += score;
                } else {
                    neg += score;
                }
            }
            chunk_best = chunk_best.max(pos as u64).max(neg.unsigned_abs());
        }
        chunk_best
    })
    .into_iter()
    .max()
    .unwrap_or(0);
    Some(best)
}

/// The Gray-code subset-maximum kernel behind [`exact_max_discrepancy`],
/// public so the bench suite can drive it on synthetic matrices.
///
/// For a column-major score matrix `f` (`f[j·rows + i]`, `rows × cols`),
/// every column subset `T` induces per-row scores
/// `score_i(T) = Σ_{j ∈ T} f[j·rows + i]`; the kernel returns the maximum
/// over all `2^cols` subsets of
/// `max(Σ_{score_i > 0} score_i, −Σ_{score_i ≤ 0} score_i)` — i.e. the
/// best rectangle discrepancy once the row set is chosen optimally for
/// the subset.
///
/// Subsets are visited in Gray-code order (`g(i) = i ⊕ (i >> 1)`): step
/// `i` flips exactly column `trailing_zeros(i)`, so the per-row scores
/// and the pos/neg totals update in `O(rows)` per subset. The range is
/// chunked on [`ucfg_support::par`]; each chunk initialises its scores at
/// its first Gray code (`O(rows·cols)` once) and walks from there, and
/// per-chunk maxima merge by `max`, so the result is bit-identical for
/// every `threads ≥ 1`.
pub fn gray_subset_max_threads(f: &[i64], rows: usize, cols: usize, threads: usize) -> u64 {
    assert!(
        cols <= EXACT_MAX_T_PATTERNS,
        "2^{cols}-subset scan exceeds the documented cap"
    );
    assert_eq!(f.len(), rows * cols, "column-major rows×cols matrix");
    if rows == 0 || cols == 0 {
        return 0;
    }
    obs::count!("discrepancy.gray.subsets", 1u64 << cols);
    let _t = obs::span!("discrepancy.gray");
    let gray = |i: u64| i ^ (i >> 1);
    ucfg_support::par::map_ranges_threads(0..(1u64 << cols), threads, |range| {
        // Scores of the chunk's first subset, from scratch.
        let mut scores = vec![0i64; rows];
        let mut m = gray(range.start);
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            for (s, &c) in scores.iter_mut().zip(&f[j * rows..(j + 1) * rows]) {
                *s += c;
            }
            m &= m - 1;
        }
        let mut pos: i64 = 0;
        let mut neg: i64 = 0;
        for &s in &scores {
            if s > 0 {
                pos += s;
            } else {
                neg += s;
            }
        }
        let mut best = (pos as u64).max(neg.unsigned_abs());
        // Walk the rest of the chunk: step i flips column trailing_zeros(i)
        // to the value it has in gray(i).
        for i in range.start + 1..range.end {
            let j = i.trailing_zeros() as usize;
            let added = gray(i) >> j & 1 == 1;
            for (s, &c) in scores.iter_mut().zip(&f[j * rows..(j + 1) * rows]) {
                let old = *s;
                let new = if added { old + c } else { old - c };
                *s = new;
                if old > 0 {
                    pos -= old;
                } else {
                    neg -= old;
                }
                if new > 0 {
                    pos += new;
                } else {
                    neg += new;
                }
            }
            best = best.max(pos as u64).max(neg.unsigned_abs());
        }
        best
    })
    .into_iter()
    .max()
    .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{ln_contains, low_mask};
    use ucfg_support::rng::{SeedableRng, StdRng};

    #[test]
    fn family_membership_and_size() {
        for n in [4usize, 8] {
            let fam = enumerate_family(n);
            assert_eq!(fam.len() as u64, 1 << n, "n={n}");
            let m = (n / 4) as u64;
            assert_eq!(family_size(m).to_u64(), Some(1 << n));
            for &w in &fam {
                assert!(in_family(n, w));
                assert!(in_a(n, w) ^ in_b(n, w));
            }
            // Non-members: empty set, everything.
            assert!(!in_family(n, 0));
            assert!(!in_family(n, low_mask(2 * n)));
        }
    }

    #[test]
    fn family_rank_is_a_bijection() {
        for n in [4usize, 8] {
            let mut seen = vec![false; 1 << n];
            for &w in &enumerate_family(n) {
                let i = family_rank(n, w);
                assert!(!seen[i as usize], "n={n}: rank {i} hit twice");
                seen[i as usize] = true;
                assert_eq!(family_unrank(n, i), w, "n={n} w={w:b}");
            }
            assert!(seen.iter().all(|&s| s), "n={n}: rank is onto [0, 2^n)");
        }
    }

    #[test]
    fn lemma18_counts_exhaustive() {
        for n in [4usize, 8, 12] {
            let m = (n / 4) as u64;
            let fam = enumerate_family(n);
            let a_count = fam.iter().filter(|&&w| in_a(n, w)).count() as u64;
            let b_count = fam.iter().filter(|&&w| in_b(n, w)).count() as u64;
            assert_eq!(a_size(m).to_u64(), Some(a_count), "n={n}");
            assert_eq!(b_size(m).to_u64(), Some(b_count), "n={n}");
            assert_eq!(b_count - a_count, 1 << (3 * m), "|B|−|A| = 2^{{3m}}");
            let b_out = fam
                .iter()
                .filter(|&&w| in_b(n, w) && !ln_contains(n, w))
                .count() as u64;
            assert_eq!(b_outside_ln(m).to_u64(), Some(b_out), "|B∖L_n| = 12^m");
            // A ⊆ L_n (odd intersections ⇒ at least one).
            assert!(fam
                .iter()
                .filter(|&&w| in_a(n, w))
                .all(|&w| ln_contains(n, w)));
            // The gap.
            let gap_count = {
                let a_in = fam
                    .iter()
                    .filter(|&&w| in_a(n, w) && ln_contains(n, w))
                    .count() as i64;
                let b_in = fam
                    .iter()
                    .filter(|&&w| in_b(n, w) && ln_contains(n, w))
                    .count() as i64;
                a_in - b_in
            };
            assert_eq!(gap(m).to_u64(), Some(gap_count as u64), "gap = 12^m − 8^m");
        }
    }

    #[test]
    fn family_accounting_matches_enumeration() {
        // Every closed-form field of the ledger against exhaustive counts
        // at the m where enumeration is feasible.
        for n in [4usize, 8, 12] {
            let m = (n / 4) as u64;
            let acc = family_accounting(m);
            let fam = enumerate_family(n);
            let count = |p: &dyn Fn(Word) -> bool| fam.iter().filter(|&&w| p(w)).count() as u64;
            assert_eq!(acc.family_size.to_u64(), Some(fam.len() as u64), "n={n}");
            assert_eq!(acc.a_size.to_u64(), Some(count(&|w| in_a(n, w))), "n={n}");
            assert_eq!(acc.b_size.to_u64(), Some(count(&|w| in_b(n, w))), "n={n}");
            assert_eq!(
                acc.b_outside_ln.to_u64(),
                Some(count(&|w| in_b(n, w) && !ln_contains(n, w))),
                "n={n}"
            );
            assert_eq!(
                acc.a_in_ln.to_u64(),
                Some(count(&|w| in_a(n, w) && ln_contains(n, w))),
                "n={n}: A ⊆ L_n"
            );
            assert_eq!(
                acc.b_in_ln.to_u64(),
                Some(count(&|w| in_b(n, w) && ln_contains(n, w))),
                "n={n}"
            );
            assert_eq!(
                acc.gap.to_i128(),
                Some(
                    count(&|w| in_a(n, w)) as i128
                        - count(&|w| in_b(n, w) && ln_contains(n, w)) as i128
                ),
                "n={n}"
            );
            // The full-family rectangle's signed discrepancy is the
            // enumerated |A| − |B| = −2^{3m}, and the chunked/bitmap
            // kernels agree on it where they can run.
            assert_eq!(
                acc.full_family_discrepancy.to_i128(),
                Some(count(&|w| in_a(n, w)) as i128 - count(&|w| in_b(n, w)) as i128),
                "n={n}"
            );
            assert!(acc.full_family_discrepancy.is_negative());
            assert_eq!(
                acc.full_family_discrepancy.magnitude(),
                &acc.lemma19_bound,
                "Lemma 19 met with equality by 𝓛 itself"
            );
            assert_eq!(acc.lemma18_holds, lemma18_inequality_holds(m));
        }
        // The ledger stays internally consistent far beyond enumeration.
        for m in [8u64, 16, 32, 64] {
            let acc = family_accounting(m);
            assert_eq!(
                &(&acc.a_in_ln + &acc.b_in_ln) + &acc.b_outside_ln,
                acc.family_size,
                "m={m}: 𝓛 splits into A ⊎ (B∩L_n) ⊎ (B∖L_n)"
            );
            assert_eq!(
                acc.gap,
                BigInt::sub_unsigned(&b_outside_ln(m), &BigUint::pow2(3 * m)),
                "m={m}: gap = 12^m − 8^m"
            );
            assert!(acc.lemma18_holds, "m={m}");
            assert!(!acc.gap.is_negative());
        }
    }

    #[test]
    fn full_family_rectangle_matches_the_enumerated_sides() {
        // The direct per-block constructor equals the enumeration route
        // at every n where the latter runs, and its product is 𝓛 itself.
        for n in [4usize, 8, 12] {
            let r = full_family_rectangle(n);
            let (s_all, t_all) = family_side_patterns(n, OrderedPartition::new(n, 1, n));
            assert_eq!(r.s.iter().copied().collect::<Vec<_>>(), s_all, "n={n}");
            assert_eq!(r.t.iter().copied().collect::<Vec<_>>(), t_all, "n={n}");
            assert_eq!(r.s.len() as u64, 1u64 << (n / 2), "n={n}");
            for &w in &enumerate_family(n) {
                assert!(r.contains(w), "n={n} w={w:b}");
            }
        }
        // Existence past the enumeration ceiling: 2^16 patterns per side
        // at n = 32, every member a one-nibble-per-block pattern.
        let r = full_family_rectangle(32);
        assert_eq!(r.s.len(), 1 << 16);
        assert_eq!(r.t.len(), 1 << 16);
        assert!(r
            .s
            .iter()
            .all(|&u| (0..8).all(|t| (u >> (4 * t) & 0xf).count_ones() == 1)));
    }

    #[test]
    fn lemma18_inequality_threshold() {
        // 12^m − 8^m > 2^{7m/2} holds exactly from m = 4 on.
        assert!(!lemma18_inequality_holds(1));
        assert!(!lemma18_inequality_holds(2));
        assert!(!lemma18_inequality_holds(3));
        for m in 4..=64 {
            assert!(lemma18_inequality_holds(m), "m={m}");
        }
    }

    #[test]
    fn lemma19_bound_on_random_middle_cut_rectangles() {
        let n = 8;
        let m = 2u64;
        let part = OrderedPartition::new(n, 1, n);
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..30 {
            let r = random_family_rectangle(n, part, &mut rng);
            let d = discrepancy(n, &r).unsigned_abs();
            assert!(
                BigUint::from_u64(d) <= lemma19_bound(m),
                "|d| = {d} exceeds 2^{{3m}}"
            );
        }
    }

    #[test]
    fn lemma23_bound_on_random_balanced_rectangles() {
        let n = 8;
        let m = 2u64;
        let mut rng = StdRng::seed_from_u64(7);
        for part in OrderedPartition::all_balanced(n) {
            for _ in 0..5 {
                let r = random_family_rectangle(n, part, &mut rng);
                let d = discrepancy(n, &r);
                assert!(within_lemma23_bound(m, d), "{part:?}: d={d}");
            }
        }
    }

    #[test]
    fn adversarial_search_respects_bounds() {
        let n = 8;
        let m = 2u64;
        let mut rng = StdRng::seed_from_u64(99);
        let part = OrderedPartition::new(n, 1, n);
        let (r, d) = adversarial_rectangle(n, part, 3, &mut rng);
        assert_eq!(discrepancy(n, &r), d);
        assert!(BigUint::from_u64(d.unsigned_abs()) <= lemma19_bound(m));
        // The search should find a substantially positive discrepancy.
        assert!(d > 0, "adversarial search found nothing: {d}");
    }

    #[test]
    fn exact_max_discrepancy_within_bounds() {
        // n = 4, m = 1: the exact maximum over ALL [1,4]-rectangles obeys
        // Lemma 19's 2^{3m} = 8.
        let n = 4;
        let part = OrderedPartition::new(n, 1, n);
        let exact = exact_max_discrepancy(n, part).unwrap();
        assert!(exact <= 8, "Lemma 19 exact check: {exact}");
        assert!(exact >= 1);
        // Every partition of n = 4 is feasible and obeys Lemma 23
        // (|d|³ ≤ 2^{10}).
        for p in OrderedPartition::all_balanced(n) {
            let d = exact_max_discrepancy(n, p).unwrap();
            assert!(within_lemma23_bound(1, d as i64), "{p:?}: {d}");
        }
        // The adversarial search cannot beat the exact optimum.
        let mut rng = StdRng::seed_from_u64(5);
        let (_, adv) = adversarial_rectangle(n, part, 5, &mut rng);
        assert!(adv.unsigned_abs() <= exact);
    }

    #[test]
    fn parallel_discrepancy_is_bit_identical() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(31);
        let part = OrderedPartition::new(n, 1, n);
        for _ in 0..5 {
            let r = random_family_rectangle(n, part, &mut rng);
            let serial = discrepancy_threads(n, &r, 1);
            for threads in [2usize, 8] {
                assert_eq!(serial, discrepancy_threads(n, &r, threads), "{threads}");
            }
            assert_eq!(serial, discrepancy(n, &r), "default threads");
        }
    }

    #[test]
    fn parallel_exact_max_discrepancy_is_bit_identical() {
        let n = 4;
        for part in OrderedPartition::all_balanced(n) {
            let serial = exact_max_discrepancy_threads(n, part, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    serial,
                    exact_max_discrepancy_threads(n, part, threads),
                    "{part:?} threads={threads}"
                );
            }
            assert_eq!(serial, exact_max_discrepancy(n, part), "{part:?} default");
        }
    }

    #[test]
    fn gray_walk_matches_scalar_rescan() {
        let n = 4;
        for part in OrderedPartition::all_balanced(n) {
            assert_eq!(
                exact_max_discrepancy(n, part),
                exact_max_discrepancy_scalar(n, part),
                "{part:?}"
            );
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    exact_max_discrepancy_threads(n, part, threads),
                    exact_max_discrepancy_scalar_threads(n, part, threads),
                    "{part:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn bitmap_discrepancy_matches_scalar() {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(12);
        for part in OrderedPartition::all_balanced(n) {
            let r = random_family_rectangle(n, part, &mut rng);
            assert_eq!(discrepancy(n, &r), discrepancy_scalar(n, &r), "{part:?}");
        }
        // Empty rectangle: both zero.
        let part = OrderedPartition::new(n, 1, n);
        let empty = SetRectangle::new(part, BTreeSet::new(), BTreeSet::new());
        assert_eq!(discrepancy(n, &empty), 0);
        assert_eq!(discrepancy_scalar(n, &empty), 0);
        // The full-family rectangle: discrepancy = |A| − |B| = −2^{3m}.
        let (s_all, t_all) = family_side_patterns(n, part);
        let full = SetRectangle::new(
            part,
            s_all.into_iter().collect(),
            t_all.into_iter().collect(),
        );
        let m = (n / 4) as u64;
        assert_eq!(discrepancy(n, &full), -(1i64 << (3 * m)));
        assert_eq!(discrepancy_scalar(n, &full), discrepancy(n, &full));
    }

    #[test]
    fn gray_kernel_on_synthetic_matrices() {
        // Exhaustive cross-check on a dense synthetic matrix: the kernel
        // must agree with a brute-force subset scan.
        let (rows, cols) = (5usize, 7usize);
        let f: Vec<i64> = (0..rows * cols)
            .map(|k| ((k * 37 + 11) % 5) as i64 - 2)
            .collect();
        let brute = {
            let mut best = 0u64;
            for mask in 0u64..(1 << cols) {
                let (mut pos, mut neg) = (0i64, 0i64);
                for i in 0..rows {
                    let score: i64 = (0..cols)
                        .filter(|&j| mask >> j & 1 == 1)
                        .map(|j| f[j * rows + i])
                        .sum();
                    if score > 0 {
                        pos += score;
                    } else {
                        neg += score;
                    }
                }
                best = best.max(pos as u64).max(neg.unsigned_abs());
            }
            best
        };
        for threads in [1usize, 2, 8] {
            assert_eq!(
                gray_subset_max_threads(&f, rows, cols, threads),
                brute,
                "threads={threads}"
            );
        }
        // Degenerate shapes.
        assert_eq!(gray_subset_max_threads(&[], 0, 0, 4), 0);
        assert_eq!(gray_subset_max_threads(&[], 0, 3, 4), 0);
        assert_eq!(gray_subset_max_threads(&[1, -1], 2, 1, 4), 1);
    }

    #[test]
    fn lower_bound_grows_linearly() {
        // log₂ bound ≈ m·(log₂ 12 − 10/3) ≈ 0.25 m.
        let lb4 = cover_lower_bound_log2(4);
        let lb16 = cover_lower_bound_log2(16);
        let lb64 = cover_lower_bound_log2(64);
        assert!(lb16 > lb4);
        assert!(lb64 > 3.0 * lb16 / 2.0);
        // Slope sanity: for large m the bound per m tends to
        // log2(12) − 10/3 ≈ 0.2516.
        let slope = (cover_lower_bound_log2(200) - cover_lower_bound_log2(100)) / 100.0;
        assert!(
            (slope - (12f64.log2() - 10.0 / 3.0)).abs() < 1e-3,
            "slope {slope}"
        );
        // Theorem 17's fixed-partition bound is stronger:
        assert!(fixed_partition_lower_bound_log2(16) > cover_lower_bound_log2(16));
    }
}
