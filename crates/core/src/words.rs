//! Packed binary words and the language `L_n`.
//!
//! Words of length `2n ≤ 64` over `{a, b}` are packed into `u64` bitmasks:
//! bit `i` (0-based) is set iff position `i+1` (1-based, as in the paper)
//! carries an `a`. Under the Section 4.1 set perspective the same mask *is*
//! the pair `(X_w, Y_w)`: the low `n` bits are `X_w ⊆ {x_1..x_n}` and the
//! high `n` bits are `Y_w ⊆ {y_1..y_n}`.
//!
//! `L_n` membership is a two-instruction bit trick:
//! `w ∈ L_n ⇔ (w & (w >> n)) & mask_n ≠ 0`.
//!
//! ```
//! use ucfg_core::words;
//!
//! let n = 3;
//! let w = words::from_string(n, "abbaba").unwrap();
//! assert!(words::ln_contains(n, w));          // pair at positions (1, 4)
//! assert_eq!(words::witness_count(n, w), 1);
//! assert_eq!(words::ln_size(n).to_u64(), Some(37)); // 4³ − 3³
//! assert_eq!(words::ln_iter(n).count(), 37);
//! ```

use ucfg_grammar::bignum::BigUint;
use ucfg_support::par;

/// A word of length `2n` packed as a bitmask (bit i ⇔ position i+1 is `a`).
pub type Word = u64;

/// Maximum supported `n` (words have length `2n` and must fit in 64 bits).
pub const MAX_N: usize = 32;

/// Bitmask with the low `k` bits set.
#[inline]
pub fn low_mask(k: usize) -> u64 {
    debug_assert!(k <= 64);
    if k == 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Is `w` (a word of length `2n`) in `L_n`? True iff some `i ∈ [1, n]` has
/// `a` at positions `i` and `i + n`.
#[inline]
pub fn ln_contains(n: usize, w: Word) -> bool {
    debug_assert!((1..=MAX_N).contains(&n));
    (w & (w >> n)) & low_mask(n) != 0
}

/// Number of witnessing pairs: `|{i : w_i = w_{i+n} = a}|`.
#[inline]
pub fn witness_count(n: usize, w: Word) -> u32 {
    ((w & (w >> n)) & low_mask(n)).count_ones()
}

/// The `X_w` component (low `n` bits).
#[inline]
pub fn x_part(n: usize, w: Word) -> u64 {
    w & low_mask(n)
}

/// The `Y_w` component, shifted down to `[0, n)` bit positions.
#[inline]
pub fn y_part(n: usize, w: Word) -> u64 {
    (w >> n) & low_mask(n)
}

/// Rebuild a word from its `X` and `Y` components (both in low bits).
#[inline]
pub fn from_parts(n: usize, x: u64, y: u64) -> Word {
    debug_assert_eq!(x & !low_mask(n), 0);
    debug_assert_eq!(y & !low_mask(n), 0);
    x | (y << n)
}

/// Exact size of `L_n`: the `n` pairs `(i, i+n)` are independent, a word
/// avoids `L_n` iff every pair avoids `(a, a)` (3 of 4 choices), so
/// `|L_n| = 4^n − 3^n`.
pub fn ln_size(n: usize) -> BigUint {
    BigUint::small_pow(4, n as u64)
        .checked_sub(&BigUint::small_pow(3, n as u64))
        .expect("4^n > 3^n")
}

/// Enumerate all of `L_n` (2^{2n} scan; for experiment-scale `n`).
///
/// The scan runs on [`ucfg_support::par`] workers (`UCFG_THREADS`
/// override); the result is in ascending mask order and bit-identical to
/// the serial scan for every thread count.
pub fn enumerate_ln(n: usize) -> Vec<Word> {
    enumerate_ln_threads(n, par::thread_count())
}

/// [`enumerate_ln`] with an explicit worker count (`threads = 1` is the
/// serial reference path).
pub fn enumerate_ln_threads(n: usize, threads: usize) -> Vec<Word> {
    assert!(
        2 * n <= 26,
        "enumeration is exponential; use ln_size for large n"
    );
    par::map_ranges_threads(0..(1u64 << (2 * n)), threads, |range| {
        range.filter(|&w| ln_contains(n, w)).collect::<Vec<Word>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Enumerate the complement of `L_n` within `{a,b}^{2n}`.
pub fn enumerate_ln_complement(n: usize) -> Vec<Word> {
    assert!(2 * n <= 26, "enumeration is exponential");
    (0..(1u64 << (2 * n)))
        .filter(|&w| !ln_contains(n, w))
        .collect()
}

/// The witness spectrum: `spectrum[k]` = number of words of `Σ^{2n}` with
/// exactly `k` witnessing pairs. The `n` pairs `(i, i+n)` are independent
/// (they partition the positions), so the count is binomial:
/// `C(n, k) · 3^{n−k}`. This is exactly the overlap histogram of the
/// Example 8 cover (each rectangle `L_n^k` collects one witness).
pub fn witness_spectrum(n: usize) -> Vec<BigUint> {
    let mut binom = BigUint::one();
    let mut out = Vec::with_capacity(n + 1);
    for k in 0..=n as u64 {
        let entry = &binom * &BigUint::small_pow(3, n as u64 - k);
        out.push(entry);
        // binom C(n, k+1) = C(n, k) · (n − k) / (k + 1)
        if k < n as u64 {
            let (q, r) = (&binom * &BigUint::from_u64(n as u64 - k)).div_rem_small(k as u32 + 1);
            debug_assert_eq!(r, 0);
            binom = q;
        }
    }
    out
}

/// Streaming iterator over `L_n` in numeric (mask) order, O(1) memory —
/// for sweeps where materialising `4^n − 3^n` words is wasteful.
pub fn ln_iter(n: usize) -> impl Iterator<Item = Word> {
    assert!(n >= 1 && 2 * n <= 63, "mask iteration domain");
    (0..(1u64 << (2 * n))).filter(move |&w| ln_contains(n, w))
}

/// Streaming iterator over the complement of `L_n` within `Σ^{2n}`.
pub fn ln_complement_iter(n: usize) -> impl Iterator<Item = Word> {
    assert!(n >= 1 && 2 * n <= 63);
    (0..(1u64 << (2 * n))).filter(move |&w| !ln_contains(n, w))
}

/// Render a word as a `String` over `{a, b}`.
pub fn to_string(n: usize, w: Word) -> String {
    (0..2 * n)
        .map(|i| if w >> i & 1 == 1 { 'a' } else { 'b' })
        .collect()
}

/// Parse a word from a `&str` over `{a, b}`; `None` on foreign characters
/// or wrong length.
pub fn from_string(n: usize, s: &str) -> Option<Word> {
    if s.chars().count() != 2 * n {
        return None;
    }
    let mut w = 0u64;
    for (i, c) in s.chars().enumerate() {
        match c {
            'a' => w |= 1u64 << i,
            'b' => {}
            _ => return None,
        }
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_trick_matches_definition() {
        for n in 1..=6 {
            for w in 0..(1u64 << (2 * n)) {
                let naive = (0..n).any(|i| w >> i & 1 == 1 && w >> (i + n) & 1 == 1);
                assert_eq!(ln_contains(n, w), naive, "n={n} w={w:b}");
            }
        }
    }

    #[test]
    fn ln_size_matches_enumeration() {
        for n in 1..=8 {
            let count = enumerate_ln(n).len() as u64;
            assert_eq!(ln_size(n).to_u64(), Some(count), "n={n}");
            assert_eq!(
                enumerate_ln_complement(n).len() as u64,
                (1u64 << (2 * n)) - count
            );
        }
    }

    #[test]
    fn ln_size_closed_form() {
        assert_eq!(ln_size(1).to_u64(), Some(1)); // {aa}
        assert_eq!(ln_size(2).to_u64(), Some(7));
        assert_eq!(ln_size(3).to_u64(), Some(37));
        // Large n goes through BigUint without overflow.
        assert_eq!(ln_size(64), {
            let f = BigUint::small_pow(4, 64);
            f.checked_sub(&BigUint::small_pow(3, 64)).unwrap()
        });
    }

    #[test]
    fn witness_spectrum_closed_form() {
        for n in 1..=6usize {
            let spectrum = witness_spectrum(n);
            assert_eq!(spectrum.len(), n + 1);
            // Exhaustive cross-check.
            let mut counted = vec![0u64; n + 1];
            for w in 0..(1u64 << (2 * n)) {
                counted[witness_count(n, w) as usize] += 1;
            }
            for (k, c) in counted.iter().enumerate() {
                assert_eq!(spectrum[k].to_u64(), Some(*c), "n={n} k={k}");
            }
            // Totals: Σ = 4^n; Σ_{k≥1} = |L_n|.
            let total: BigUint = spectrum.iter().cloned().sum();
            assert_eq!(total, BigUint::small_pow(4, n as u64));
            let in_ln: BigUint = spectrum[1..].iter().cloned().sum();
            assert_eq!(in_ln, ln_size(n));
        }
    }

    #[test]
    fn spectrum_equals_example8_overlap_histogram() {
        // hist[k] of the Example 8 cover = C(n,k)·3^{n−k} for k ≥ 1.
        let n = 4;
        let hist = crate::cover::overlap_histogram(n, &crate::cover::example8_cover(n));
        let spectrum = witness_spectrum(n);
        for (k, s) in spectrum.iter().enumerate().take(n + 1).skip(1) {
            assert_eq!(
                s.to_u64().unwrap() as usize,
                hist.get(k).copied().unwrap_or(0),
                "k={k}"
            );
        }
    }

    #[test]
    fn iterators_match_materialisation() {
        for n in 1..=6 {
            assert!(ln_iter(n).eq(enumerate_ln(n).into_iter()), "n={n}");
            assert!(
                ln_complement_iter(n).eq(enumerate_ln_complement(n).into_iter()),
                "n={n}"
            );
            // The two streams partition the domain.
            assert_eq!(
                ln_iter(n).count() + ln_complement_iter(n).count(),
                1usize << (2 * n)
            );
        }
    }

    #[test]
    fn parallel_enumeration_is_bit_identical() {
        for n in [3usize, 6, 9] {
            let serial = enumerate_ln_threads(n, 1);
            for threads in [2usize, 8] {
                assert_eq!(
                    serial,
                    enumerate_ln_threads(n, threads),
                    "n={n} threads={threads}"
                );
            }
            assert_eq!(serial, enumerate_ln(n), "n={n} default threads");
        }
    }

    #[test]
    fn string_roundtrip() {
        for n in 1..=4 {
            for w in 0..(1u64 << (2 * n)) {
                let s = to_string(n, w);
                assert_eq!(s.len(), 2 * n);
                assert_eq!(from_string(n, &s), Some(w));
            }
        }
        assert_eq!(from_string(2, "abc"), None);
        assert_eq!(from_string(2, "abab!"), None);
        assert_eq!(from_string(2, "aaaaaa"), None); // wrong length
    }

    #[test]
    fn concrete_members() {
        // n = 2: abab has a at positions 1 and 3 → distance 2 ✓.
        assert!(ln_contains(2, from_string(2, "abab").unwrap()));
        assert!(!ln_contains(2, from_string(2, "abba").unwrap()));
        assert!(ln_contains(2, from_string(2, "aaaa").unwrap()));
        assert!(!ln_contains(2, from_string(2, "bbbb").unwrap()));
    }

    #[test]
    fn witness_counts() {
        assert_eq!(witness_count(2, from_string(2, "aaaa").unwrap()), 2);
        assert_eq!(witness_count(2, from_string(2, "abab").unwrap()), 1);
        assert_eq!(witness_count(2, from_string(2, "bbbb").unwrap()), 0);
    }

    #[test]
    fn parts_roundtrip() {
        for n in [1usize, 3, 5] {
            for w in [0u64, 1, (1 << (2 * n)) - 1, 0b1010 & low_mask(2 * n)] {
                assert_eq!(from_parts(n, x_part(n, w), y_part(n, w)), w);
            }
        }
    }

    #[test]
    fn set_perspective_alignment() {
        // x_i ∈ X_w and y_i ∈ Y_w ⇔ the word has the witnessing pair i.
        let n = 3;
        let w = from_string(n, "abbaba").unwrap(); // a at 1, 4, 6 → pairs: (1,4)? positions 1..6; pair i: (i, i+3): i=1: pos1=a, pos4=a ✓
        assert!(ln_contains(n, w));
        assert_eq!(x_part(n, w) & y_part(n, w) & low_mask(n), 0b001);
    }
}
