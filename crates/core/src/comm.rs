//! A small communication-complexity toolkit around `L_n`.
//!
//! Under the set perspective, `L_n` is the complement of set disjointness
//! — "the flagship problem of communication complexity" (§4.1). This
//! module makes the protocol view executable:
//!
//! * [`NondetProtocol`] — a nondeterministic (multi-partition) protocol is
//!   exactly a rectangle cover; its cost is `⌈log₂ ℓ⌉` bits plus the
//!   partition choice, and it is *unambiguous* when the cover is disjoint.
//!   Example 8 gives the classic `log n`-bit nondeterministic protocol for
//!   intersection; Theorem 12 says unambiguous protocols built from uCFGs
//!   pay `Ω(n)` bits.
//! * [`canonical_fooling_set`] — the textbook fooling set
//!   `{({i}, {i})}_{i ∈ [n]}` for intersection, with verification and a
//!   greedy extension procedure; a fooling set of size `f` forces any
//!   1-monochromatic rectangle cover to have `ℓ ≥ f`.

use crate::partition::OrderedPartition;
use crate::rectangle::SetRectangle;
use crate::words::{self, Word};

/// A nondeterministic protocol = a cover of the accepted set by
/// rectangles (possibly over different partitions: the multi-partition
/// model of \[14\]).
#[derive(Debug, Clone)]
pub struct NondetProtocol {
    /// The certificate rectangles.
    pub rectangles: Vec<SetRectangle>,
}

impl NondetProtocol {
    /// Wrap a rectangle cover as a protocol.
    pub fn from_cover(rectangles: Vec<SetRectangle>) -> Self {
        NondetProtocol { rectangles }
    }

    /// Does the protocol accept the input (∃ a certificate rectangle)?
    pub fn accepts(&self, w: Word) -> bool {
        self.rectangles.iter().any(|r| r.contains(w))
    }

    /// Number of certificates for the input (1 everywhere on the accepted
    /// set ⇔ the protocol is unambiguous).
    pub fn certificate_count(&self, w: Word) -> usize {
        self.rectangles.iter().filter(|r| r.contains(w)).count()
    }

    /// Cost in bits: the prover sends the index of a certificate
    /// rectangle (`⌈log₂ ℓ⌉`).
    pub fn cost_bits(&self) -> u32 {
        (self.rectangles.len().max(1) as u64)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// Is the protocol unambiguous (every accepted input has exactly one
    /// certificate) on the whole domain `{0,1}^{2n}`?
    pub fn is_unambiguous(&self, n: usize) -> bool {
        (0..(1u64 << (2 * n))).all(|w| self.certificate_count(w) <= 1)
    }

    /// Does the protocol compute exactly `L_n`?
    pub fn computes_ln(&self, n: usize) -> bool {
        (0..(1u64 << (2 * n))).all(|w| self.accepts(w) == words::ln_contains(n, w))
    }
}

/// Is `fs` a fooling set for `L_n` under the partition: all members are in
/// `L_n`, and for every two members the two cross-combinations are not
/// both in `L_n`?
pub fn is_fooling_set(n: usize, part: OrderedPartition, fs: &[Word]) -> bool {
    let ins = part.inside();
    let outs = part.outside();
    if !fs.iter().all(|&w| words::ln_contains(n, w)) {
        return false;
    }
    for (i, &w1) in fs.iter().enumerate() {
        for &w2 in &fs[i + 1..] {
            let cross1 = (w1 & ins) | (w2 & outs);
            let cross2 = (w2 & ins) | (w1 & outs);
            if words::ln_contains(n, cross1) && words::ln_contains(n, cross2) {
                return false;
            }
        }
    }
    true
}

/// The canonical fooling set for intersection under the middle cut:
/// `{({i}, {i})}` — words with exactly one witnessing pair at position i
/// and nothing else.
pub fn canonical_fooling_set(n: usize) -> Vec<Word> {
    (0..n).map(|i| (1u64 << i) | (1u64 << (i + n))).collect()
}

/// Greedily extend a fooling set for `L_n` under the given partition,
/// scanning members of `L_n` in numeric order. Returns the final set.
pub fn greedy_fooling_set(n: usize, part: OrderedPartition) -> Vec<Word> {
    let ins = part.inside();
    let outs = part.outside();
    let mut fs: Vec<Word> = Vec::new();
    for w in words::enumerate_ln(n) {
        let ok = fs.iter().all(|&v| {
            let c1 = (w & ins) | (v & outs);
            let c2 = (v & ins) | (w & outs);
            !(words::ln_contains(n, c1) && words::ln_contains(n, c2))
        });
        if ok {
            fs.push(w);
        }
    }
    debug_assert!(is_fooling_set(n, part, &fs));
    fs
}

/// The fooling-set lower bound: any cover of `L_n` by rectangles over
/// `part` needs at least `|fooling set|` rectangles *if the cover is
/// disjoint*; for arbitrary covers the weaker "no rectangle holds two
/// fooling words" still gives the same bound.
pub fn fooling_bound(n: usize, part: OrderedPartition) -> usize {
    greedy_fooling_set(n, part).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::example8_cover;
    use crate::greedy_cover::greedy_disjoint_cover_middle_cut;

    #[test]
    fn example8_is_a_log_n_protocol() {
        for n in [3usize, 4, 5] {
            let p = NondetProtocol::from_cover(example8_cover(n));
            assert!(p.computes_ln(n), "n={n}");
            // Ambiguous: the all-a word has n certificates.
            assert_eq!(p.certificate_count((1u64 << (2 * n)) - 1), n);
            assert!(!p.is_unambiguous(n));
            // Cost ⌈log₂ n⌉ bits.
            assert!(p.cost_bits() <= (n as f64).log2().ceil() as u32 + 1);
        }
    }

    #[test]
    fn greedy_disjoint_cover_is_unambiguous_protocol() {
        let n = 4;
        let cover = greedy_disjoint_cover_middle_cut(n);
        let p = NondetProtocol::from_cover(cover.rectangles);
        assert!(p.computes_ln(n));
        assert!(p.is_unambiguous(n));
        // Unambiguous cost is ~n bits vs the ambiguous log n.
        assert!(p.cost_bits() >= n as u32 - 1, "cost {}", p.cost_bits());
    }

    #[test]
    fn canonical_fooling_set_is_valid() {
        for n in [2usize, 4, 8] {
            let fs = canonical_fooling_set(n);
            assert_eq!(fs.len(), n);
            let part = OrderedPartition::new(n, 1, n);
            assert!(is_fooling_set(n, part, &fs), "n={n}");
        }
    }

    #[test]
    fn crossing_two_singletons_leaves_ln() {
        // The crux: ({i}, {j}) for i ≠ j is disjoint → ∉ L_n.
        let n = 4;
        let fs = canonical_fooling_set(n);
        let part = OrderedPartition::new(n, 1, n);
        let ins = part.inside();
        let outs = part.outside();
        let cross = (fs[0] & ins) | (fs[2] & outs);
        assert!(!words::ln_contains(n, cross));
    }

    #[test]
    fn greedy_extends_beyond_canonical() {
        let n = 4;
        let part = OrderedPartition::new(n, 1, n);
        let g = greedy_fooling_set(n, part);
        assert!(g.len() >= n, "greedy ≥ canonical: {}", g.len());
        assert!(is_fooling_set(n, part, &g));
    }

    #[test]
    fn non_fooling_set_detected() {
        let n = 2;
        let part = OrderedPartition::new(n, 1, n);
        // Two words whose crossings are both in L_2: {1}×{1,2} and {1,2}×{1}.
        let w1 = 0b0101u64; // X={1}, Y={1}
        let w2 = 0b0111u64; // X={1,2}, Y={1}
        assert!(!is_fooling_set(n, part, &[w1, w2]));
        // And a non-member breaks it trivially.
        assert!(!is_fooling_set(n, part, &[0]));
    }

    #[test]
    fn cost_bits_formula() {
        let part = OrderedPartition::new(2, 1, 2);
        let empty_rect = SetRectangle::new(
            part,
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
        );
        for (count, expect) in [(1usize, 0u32), (2, 1), (3, 2), (4, 2), (7, 3), (8, 3)] {
            let p = NondetProtocol::from_cover(vec![empty_rect.clone(); count]);
            assert_eq!(p.cost_bits(), expect, "count={count}");
        }
    }
}
