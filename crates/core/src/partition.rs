//! Ordered partitions of `Z = {z_1, …, z_2n}` (Definition 13) and their
//! structure (Lemma 22).
//!
//! A partition `(Π₀, Π₁)` of `Z` is *induced by the interval* `[i, j]` when
//! one side is exactly `Z[i, j]`. We represent a side as a `u64` bitmask
//! over the `2n` ground elements (the same packing as words — element `z_k`
//! is bit `k-1`).

use crate::words::low_mask;

/// An ordered partition of `Z[1, 2n]`, induced by the 1-based interval
/// `[i, j]`. `Π₀ = Z[i, j]`, `Π₁ = Z \ Z[i, j]` by convention — the lemmas
/// that prefer `|Π₀| ≤ |Π₁|` use [`OrderedPartition::smaller_side`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderedPartition {
    /// Half word length: the ground set is `Z[1, 2n]`.
    pub n: usize,
    /// Interval start (1-based, inclusive).
    pub i: usize,
    /// Interval end (1-based, inclusive).
    pub j: usize,
}

impl OrderedPartition {
    /// The partition induced by `[i, j]` (1-based, `1 ≤ i ≤ j ≤ 2n`).
    pub fn new(n: usize, i: usize, j: usize) -> Self {
        assert!(
            1 <= i && i <= j && j <= 2 * n,
            "bad interval [{i},{j}] for n={n}"
        );
        OrderedPartition { n, i, j }
    }

    /// Bitmask of `Π₀ = Z[i, j]`.
    pub fn inside(&self) -> u64 {
        low_mask(self.j) & !low_mask(self.i - 1)
    }

    /// Bitmask of `Π₁ = Z \ Z[i, j]`.
    pub fn outside(&self) -> u64 {
        low_mask(2 * self.n) & !self.inside()
    }

    /// `|Π₀|`.
    pub fn inside_len(&self) -> usize {
        self.j - self.i + 1
    }

    /// Definition 13: balanced iff `2n/3 ≤ |Π₀|, |Π₁| ≤ 4n/3`
    /// (checked without rounding: `3·|Π| ≥ 2n` and `3·|Π| ≤ 4n`).
    pub fn is_balanced(&self) -> bool {
        let a = self.inside_len();
        let b = 2 * self.n - a;
        3 * a >= 2 * self.n && 3 * a <= 4 * self.n && 3 * b >= 2 * self.n && 3 * b <= 4 * self.n
    }

    /// The smaller side's bitmask (ties go to `Π₀`).
    pub fn smaller_side(&self) -> u64 {
        if self.inside_len() <= 2 * self.n - self.inside_len() {
            self.inside()
        } else {
            self.outside()
        }
    }

    /// The good-index set `G ⊆ [n]` (as a mask over `[0, n)`): indices `ℓ`
    /// such that `x_ℓ` and `y_ℓ` lie on different sides.
    pub fn good_indices(&self) -> u64 {
        let ins = self.inside();
        let x_in = ins & low_mask(self.n);
        let y_in = (ins >> self.n) & low_mask(self.n);
        x_in ^ y_in
    }

    /// Bitmask (over `Z`) of `V_G`: all `x_ℓ, y_ℓ` with `ℓ ∈ G`.
    pub fn v_good(&self) -> u64 {
        let g = self.good_indices();
        g | (g << self.n)
    }

    /// The 4-blocks `I_1, …, I_{2m}` (only for `n` divisible by 4):
    /// block `t` (0-based, `t < 2m`) covers `z`-bits `[4t, 4t+4)`.
    pub fn block_mask(n: usize, t: usize) -> u64 {
        debug_assert!(n.is_multiple_of(4) && t < n / 2);
        0b1111u64 << (4 * t)
    }

    /// Number of 4-blocks (`2m` where `m = n/4`).
    pub fn block_count(n: usize) -> usize {
        debug_assert!(n.is_multiple_of(4));
        n / 2
    }

    /// Is the partition *neat*: every 4-block entirely on one side?
    /// Requires `n ≡ 0 (mod 4)`.
    pub fn is_neat(&self) -> bool {
        assert!(
            self.n.is_multiple_of(4),
            "neatness is relative to the 4-blocks"
        );
        let ins = self.inside();
        (0..Self::block_count(self.n)).all(|t| {
            let b = Self::block_mask(self.n, t);
            ins & b == 0 || ins & b == b
        })
    }

    /// The 4-blocks violating neatness (at most two, since `Π₀` is an
    /// interval).
    pub fn violating_blocks(&self) -> Vec<usize> {
        assert!(self.n.is_multiple_of(4));
        let ins = self.inside();
        (0..Self::block_count(self.n))
            .filter(|&t| {
                let b = Self::block_mask(self.n, t);
                ins & b != 0 && ins & b != b
            })
            .collect()
    }

    /// All balanced ordered partitions for a given `n`.
    pub fn all_balanced(n: usize) -> Vec<OrderedPartition> {
        let mut out = Vec::new();
        for i in 1..=2 * n {
            for j in i..=2 * n {
                let p = OrderedPartition::new(n, i, j);
                if p.is_balanced() {
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_z() {
        let p = OrderedPartition::new(4, 3, 6);
        assert_eq!(p.inside() | p.outside(), low_mask(8));
        assert_eq!(p.inside() & p.outside(), 0);
        assert_eq!(p.inside_len(), 4);
        assert_eq!(p.inside(), 0b0011_1100);
    }

    #[test]
    fn balance_bounds() {
        // n = 6 → 2n = 12; balanced needs sides in [4, 8].
        assert!(OrderedPartition::new(6, 1, 6).is_balanced()); // 6/6
        assert!(OrderedPartition::new(6, 1, 4).is_balanced()); // 4/8
        assert!(!OrderedPartition::new(6, 1, 3).is_balanced()); // 3/9
        assert!(OrderedPartition::new(6, 3, 10).is_balanced()); // 8/4
        assert!(!OrderedPartition::new(6, 2, 10).is_balanced()); // 9/3
    }

    #[test]
    fn smaller_side_selection() {
        let p = OrderedPartition::new(6, 1, 4);
        assert_eq!(p.smaller_side(), p.inside());
        let q = OrderedPartition::new(6, 1, 8);
        assert_eq!(q.smaller_side(), q.outside());
    }

    #[test]
    fn good_indices_middle_cut() {
        // The [1, n] partition splits every pair: G = [n].
        let p = OrderedPartition::new(4, 1, 4);
        assert_eq!(p.good_indices(), low_mask(4));
        assert_eq!(p.v_good(), low_mask(8));
    }

    #[test]
    fn good_indices_partial() {
        // n = 4, interval [1, 6]: x_1..x_4 and y_1, y_2 inside.
        // pairs split: ℓ=3,4 (x in, y out); ℓ=1,2 both in → G = {3,4}.
        let p = OrderedPartition::new(4, 1, 6);
        assert_eq!(p.good_indices(), 0b1100);
    }

    #[test]
    fn lemma22_structure() {
        // For a balanced partition with |Π₀| ≤ |Π₁|: Π₀ ⊆ V_G and |Π₀| = |G|.
        for n in [4usize, 8, 12] {
            for p in OrderedPartition::all_balanced(n) {
                let small = p.smaller_side();
                let vg = p.v_good();
                assert_eq!(small & !vg, 0, "Π₀ ⊄ V_G for {p:?}");
                assert_eq!(
                    small.count_ones(),
                    p.good_indices().count_ones(),
                    "|Π₀| ≠ |G| for {p:?}"
                );
            }
        }
    }

    #[test]
    fn neatness() {
        // n = 4: blocks are [1..4], [5..8] in z-positions... with n=4,
        // 2m = 2 blocks of 4.
        assert!(OrderedPartition::new(4, 1, 4).is_neat());
        assert!(OrderedPartition::new(4, 5, 8).is_neat());
        assert!(!OrderedPartition::new(4, 2, 5).is_neat());
        assert_eq!(
            OrderedPartition::new(4, 2, 5).violating_blocks(),
            vec![0, 1]
        );
        assert_eq!(
            OrderedPartition::new(4, 1, 4).violating_blocks(),
            Vec::<usize>::new()
        );
        // At most two violations, always.
        for p in OrderedPartition::all_balanced(8) {
            assert!(p.violating_blocks().len() <= 2, "{p:?}");
        }
    }

    #[test]
    fn all_balanced_nonempty_and_valid() {
        for n in [3usize, 4, 6] {
            let all = OrderedPartition::all_balanced(n);
            assert!(!all.is_empty());
            for p in all {
                assert!(p.is_balanced());
            }
        }
    }
}
