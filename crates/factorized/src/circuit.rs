//! d-representations in the unnamed perspective.
//!
//! Kimelfeld, Martens & Niewerth observed that CFGs accepting finite
//! languages are isomorphic to *d-representations* — the factorised
//! representations of Olteanu & Závodný — in the unnamed perspective. This
//! module provides those circuits directly: DAGs of ε/letter/∪/× nodes
//! representing finite languages, with the size measure (total fan-in)
//! matching the paper's grammar size up to constants.
//!
//! A circuit is *deterministic* when every union's branches denote pairwise
//! disjoint word sets — the circuit analogue of unambiguity, and exactly
//! the property whose cost the paper quantifies.

use std::collections::BTreeSet;
use ucfg_grammar::bignum::BigUint;

/// Index of a node in a [`Circuit`].
pub type NodeId = u32;

/// A circuit node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// The language `{ε}`.
    Epsilon,
    /// The language `{c}`.
    Letter(char),
    /// Union of the children's languages.
    Union(Vec<NodeId>),
    /// Concatenation (product) of the children's languages, in order.
    Product(Vec<NodeId>),
}

/// A d-representation: a DAG with a designated root.
///
/// Nodes may only reference lower-numbered nodes (enforced at build time),
/// which guarantees acyclicity.
#[derive(Debug, Clone)]
pub struct Circuit {
    nodes: Vec<Node>,
    root: NodeId,
}

/// Incremental builder for [`Circuit`].
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    nodes: Vec<Node>,
}

impl CircuitBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, n: Node) -> NodeId {
        if let Node::Union(cs) | Node::Product(cs) = &n {
            for &c in cs {
                assert!(
                    (c as usize) < self.nodes.len(),
                    "children must be built before parents"
                );
            }
        }
        self.nodes.push(n);
        (self.nodes.len() - 1) as NodeId
    }

    /// Add an ε node.
    pub fn epsilon(&mut self) -> NodeId {
        self.push(Node::Epsilon)
    }

    /// Add a letter node.
    pub fn letter(&mut self, c: char) -> NodeId {
        self.push(Node::Letter(c))
    }

    /// Add a union node.
    pub fn union(&mut self, children: Vec<NodeId>) -> NodeId {
        self.push(Node::Union(children))
    }

    /// Add a product node.
    pub fn product(&mut self, children: Vec<NodeId>) -> NodeId {
        self.push(Node::Product(children))
    }

    /// Finish with the given root.
    pub fn build(self, root: NodeId) -> Circuit {
        assert!((root as usize) < self.nodes.len());
        Circuit {
            nodes: self.nodes,
            root,
        }
    }
}

impl Circuit {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Size = total fan-in of ∪/× nodes plus 1 per leaf — the analogue of
    /// the paper's `Σ |rhs|` measure.
    pub fn size(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Epsilon | Node::Letter(_) => 1,
                Node::Union(cs) | Node::Product(cs) => cs.len(),
            })
            .sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The word set of every node (bottom-up materialisation).
    pub fn languages(&self) -> Vec<BTreeSet<String>> {
        let mut langs: Vec<BTreeSet<String>> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let set = match n {
                Node::Epsilon => BTreeSet::from([String::new()]),
                Node::Letter(c) => BTreeSet::from([c.to_string()]),
                Node::Union(cs) => {
                    let mut s = BTreeSet::new();
                    for &c in cs {
                        s.extend(langs[c as usize].iter().cloned());
                    }
                    s
                }
                Node::Product(cs) => {
                    let mut s = BTreeSet::from([String::new()]);
                    for &c in cs {
                        let mut next = BTreeSet::new();
                        for p in &s {
                            for q in &langs[c as usize] {
                                next.insert(format!("{p}{q}"));
                            }
                        }
                        s = next;
                    }
                    s
                }
            };
            langs.push(set);
        }
        langs
    }

    /// The represented language.
    pub fn language(&self) -> BTreeSet<String> {
        self.languages().swap_remove(self.root as usize)
    }

    /// Number of *derivations* (proof trees); for deterministic circuits
    /// with unambiguous products this equals the number of words.
    pub fn count_derivations(&self) -> BigUint {
        let mut counts: Vec<BigUint> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let c = match n {
                Node::Epsilon | Node::Letter(_) => BigUint::one(),
                Node::Union(cs) => cs.iter().map(|&c| counts[c as usize].clone()).sum(),
                Node::Product(cs) => {
                    let mut acc = BigUint::one();
                    for &c in cs {
                        acc = &acc * &counts[c as usize];
                    }
                    acc
                }
            };
            counts.push(c);
        }
        counts.swap_remove(self.root as usize)
    }

    /// Exact number of distinct words (via materialisation — exponential;
    /// the point of determinism is that [`Circuit::count_derivations`]
    /// avoids this).
    pub fn count_words(&self) -> usize {
        self.language().len()
    }

    /// Is every union deterministic (pairwise disjoint branch languages)
    /// *and* every product unambiguous (each word splits uniquely)?
    ///
    /// Decided exactly by materialisation; equivalent to "every word has
    /// exactly one derivation".
    pub fn is_unambiguous(&self) -> bool {
        self.count_derivations() == BigUint::from_u64(self.count_words() as u64)
    }

    /// Membership test.
    pub fn contains(&self, w: &str) -> bool {
        self.language().contains(w)
    }

    /// Generic semiring evaluation (the factorised-database aggregation
    /// primitive): `⊕` over derivations of the `⊗` of their letter
    /// weights. With the counting semiring this is
    /// [`Circuit::count_derivations`]; with tropical weights it is
    /// min-cost; with polynomials it is provenance.
    pub fn eval<S, F>(&self, letter_weight: F) -> S
    where
        S: ucfg_grammar::weighted::Semiring,
        F: Fn(char) -> S,
    {
        let mut vals: Vec<S> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let v = match n {
                Node::Epsilon => S::one(),
                Node::Letter(c) => letter_weight(*c),
                Node::Union(cs) => {
                    let mut acc = S::zero();
                    for &c in cs {
                        acc = acc.add(&vals[c as usize]);
                    }
                    acc
                }
                Node::Product(cs) => {
                    let mut acc = S::one();
                    for &c in cs {
                        acc = acc.mul(&vals[c as usize]);
                    }
                    acc
                }
            };
            vals.push(v);
        }
        vals.swap_remove(self.root as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// {ab, ba} as a deterministic circuit.
    fn two_words() -> Circuit {
        let mut b = CircuitBuilder::new();
        let a = b.letter('a');
        let bb = b.letter('b');
        let ab = b.product(vec![a, bb]);
        let ba = b.product(vec![bb, a]);
        let root = b.union(vec![ab, ba]);
        b.build(root)
    }

    #[test]
    fn language_and_size() {
        let c = two_words();
        let lang = c.language();
        assert_eq!(lang.len(), 2);
        assert!(lang.contains("ab") && lang.contains("ba"));
        assert_eq!(c.size(), 1 + 1 + 2 + 2 + 2);
        assert!(c.contains("ab"));
        assert!(!c.contains("aa"));
    }

    #[test]
    fn determinism_detection() {
        let c = two_words();
        assert!(c.is_unambiguous());

        // Duplicate branch → non-deterministic union.
        let mut b = CircuitBuilder::new();
        let a = b.letter('a');
        let root = b.union(vec![a, a]);
        let c = b.build(root);
        assert_eq!(c.count_derivations().to_u64(), Some(2));
        assert_eq!(c.count_words(), 1);
        assert!(!c.is_unambiguous());
    }

    #[test]
    fn ambiguous_product_detected() {
        // ({ε, a} · {ε, a}) has word "a" twice.
        let mut b = CircuitBuilder::new();
        let e = b.epsilon();
        let a = b.letter('a');
        let ea = b.union(vec![e, a]);
        let root = b.product(vec![ea, ea]);
        let c = b.build(root);
        assert_eq!(c.count_derivations().to_u64(), Some(4));
        assert_eq!(c.count_words(), 3); // ε, a, aa
        assert!(!c.is_unambiguous());
    }

    #[test]
    fn factorisation_is_smaller_than_enumeration() {
        // ({a,b})^k : factorised size O(k), 2^k words.
        let k = 10;
        let mut b = CircuitBuilder::new();
        let a = b.letter('a');
        let bb = b.letter('b');
        let or = b.union(vec![a, bb]);
        let root = b.product(vec![or; k]);
        let c = b.build(root);
        assert_eq!(c.count_derivations().to_u64(), Some(1 << k));
        assert!(c.is_unambiguous());
        assert!(c.size() < 3 * k + 10);
        assert_eq!(c.count_words(), 1 << k);
    }

    #[test]
    fn epsilon_only() {
        let mut b = CircuitBuilder::new();
        let e = b.epsilon();
        let c = b.build(e);
        assert_eq!(c.language(), BTreeSet::from([String::new()]));
        assert!(c.is_unambiguous());
    }

    #[test]
    #[should_panic(expected = "children must be built before parents")]
    fn forward_references_rejected() {
        let mut b = CircuitBuilder::new();
        b.union(vec![5]);
    }

    #[test]
    fn semiring_eval_matches_specialised_ops() {
        use ucfg_grammar::weighted::{Count, MinPlus};
        let c = two_words(); // {ab, ba}
                             // Counting semiring = count_derivations.
        let Count(total) = c.eval(|_| Count(BigUint::one()));
        assert_eq!(total, c.count_derivations());
        // Tropical: cost a = 3, b = 1 → both words cost 4.
        let m: MinPlus = c.eval(|ch| MinPlus(Some(if ch == 'a' { 3 } else { 1 })));
        assert_eq!(m, MinPlus(Some(4)));
        // Weighting 'a' to ∞ kills both words (each contains an a).
        let m: MinPlus = c.eval(|ch| {
            if ch == 'a' {
                MinPlus(None)
            } else {
                MinPlus(Some(1))
            }
        });
        assert_eq!(m, MinPlus(None));
    }

    #[test]
    fn empty_union_is_empty_language() {
        let mut b = CircuitBuilder::new();
        let u = b.union(vec![]);
        let c = b.build(u);
        assert!(c.language().is_empty());
        assert!(c.count_derivations().is_zero());
        assert!(c.is_unambiguous());
    }
}
