//! The KMN isomorphism: CFGs for finite languages ↔ d-representations.
//!
//! A trimmed grammar with acyclic derivations maps to a circuit with one
//! union per non-terminal (over its rules) and one product per rule (over
//! its body); the inverse direction reads a grammar off the circuit. Both
//! directions preserve the language, the derivation counts (hence
//! unambiguity ↔ determinism), and the size up to the stated constants.

use crate::circuit::{Circuit, CircuitBuilder, Node, NodeId};
use ucfg_grammar::analysis::{has_derivation_cycle, is_language_finite, trim};
use ucfg_grammar::symbol::{NonTerminal, Symbol};
use ucfg_grammar::{Grammar, GrammarBuilder};

/// Errors from [`grammar_to_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The grammar's language is infinite — no finite circuit represents it.
    InfiniteLanguage,
    /// Non-growing derivation cycles have no acyclic circuit image.
    DerivationCycle,
}

/// Convert a finite-language grammar to a d-representation.
pub fn grammar_to_circuit(g: &Grammar) -> Result<Circuit, ConvertError> {
    let g = trim(g);
    if !is_language_finite(&g) {
        return Err(ConvertError::InfiniteLanguage);
    }
    if has_derivation_cycle(&g) {
        return Err(ConvertError::DerivationCycle);
    }
    let mut b = CircuitBuilder::new();
    // Topological order over non-terminals (DAG after the cycle check):
    // iterative DFS post-order.
    let n = g.nonterminal_count();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = open, 2 = done
    for root in 0..n as u32 {
        if state[root as usize] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        state[root as usize] = 1;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            // Children: every non-terminal occurrence in any rule of v.
            let children: Vec<u32> = g
                .rules_for(NonTerminal(v))
                .flat_map(|r| r.rhs.iter().filter_map(|s| s.nonterminal()).map(|x| x.0))
                .collect();
            if *ci < children.len() {
                let w = children[*ci];
                *ci += 1;
                if state[w as usize] == 0 {
                    state[w as usize] = 1;
                    stack.push((w, 0));
                }
            } else {
                state[v as usize] = 2;
                order.push(v);
                stack.pop();
            }
        }
    }
    // Build circuit nodes bottom-up.
    let mut letter_node: std::collections::HashMap<char, NodeId> = std::collections::HashMap::new();
    let mut eps_node: Option<NodeId> = None;
    let mut nt_node: Vec<Option<NodeId>> = vec![None; n];
    for &v in &order {
        let mut branches = Vec::new();
        let rules: Vec<_> = g.rules_for(NonTerminal(v)).cloned().collect();
        for r in rules {
            if r.rhs.is_empty() {
                let e = *eps_node.get_or_insert_with(|| b.epsilon());
                branches.push(e);
                continue;
            }
            let mut factors = Vec::with_capacity(r.rhs.len());
            for &s in &r.rhs {
                match s {
                    Symbol::T(t) => {
                        let c = g.letter(t);
                        let id = *letter_node.entry(c).or_insert_with(|| b.letter(c));
                        factors.push(id);
                    }
                    Symbol::N(m) => {
                        factors.push(nt_node[m.index()].expect("topological order"));
                    }
                }
            }
            if factors.len() == 1 {
                branches.push(factors[0]);
            } else {
                branches.push(b.product(factors));
            }
        }
        let id = if branches.len() == 1 {
            branches[0]
        } else {
            b.union(branches)
        };
        nt_node[v as usize] = Some(id);
    }
    let root = nt_node[g.start().index()].expect("start is kept by trim");
    Ok(b.build(root))
}

/// Convert a circuit back to a grammar (one non-terminal per ∪/× node).
pub fn circuit_to_grammar(c: &Circuit, alphabet: &[char]) -> Grammar {
    let mut b = GrammarBuilder::new(alphabet);
    let nts: Vec<_> = (0..c.node_count())
        .map(|i| b.nonterminal(&format!("N{i}")))
        .collect();
    for (i, node) in c.nodes().iter().enumerate() {
        match node {
            Node::Epsilon => b.epsilon_rule(nts[i]),
            Node::Letter(ch) => b.rule(nts[i], |r| r.t(*ch)),
            Node::Union(cs) => {
                for &ch in cs {
                    let child = nts[ch as usize];
                    b.rule(nts[i], |r| r.n(child));
                }
            }
            Node::Product(cs) => {
                let body: Vec<_> = cs.iter().map(|&ch| nts[ch as usize].into()).collect();
                b.raw_rule(nts[i], body);
            }
        }
    }
    trim(&b.build(nts[c.root() as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
    use ucfg_grammar::count::decide_unambiguous;
    use ucfg_grammar::language::finite_language;

    #[test]
    fn roundtrip_preserves_language() {
        for n in 1..=5 {
            let g = appendix_a_grammar(n);
            let c = grammar_to_circuit(&g).unwrap();
            assert_eq!(
                c.language(),
                finite_language(&g).unwrap(),
                "grammar → circuit, n={n}"
            );
            let g2 = circuit_to_grammar(&c, &['a', 'b']);
            assert_eq!(
                finite_language(&g2).unwrap(),
                finite_language(&g).unwrap(),
                "circuit → grammar, n={n}"
            );
        }
    }

    #[test]
    fn unambiguity_maps_to_determinism() {
        let g = example4_ucfg(3);
        let c = grammar_to_circuit(&g).unwrap();
        assert!(c.is_unambiguous(), "uCFG → deterministic circuit");

        let amb = appendix_a_grammar(3);
        let c = grammar_to_circuit(&amb).unwrap();
        assert!(!c.is_unambiguous(), "ambiguous CFG → ambiguous circuit");
        // And back: the ambiguous circuit's grammar is ambiguous.
        let g2 = circuit_to_grammar(&c, &['a', 'b']);
        assert!(!decide_unambiguous(&g2).is_unambiguous());
    }

    #[test]
    fn sizes_track_each_other() {
        for n in 2..=6 {
            let g = appendix_a_grammar(n);
            let c = grammar_to_circuit(&g).unwrap();
            // |circuit| ≤ 2·|G| + constants and vice versa.
            assert!(
                c.size() <= 2 * g.size() + 8,
                "n={n}: {} vs {}",
                c.size(),
                g.size()
            );
            let g2 = circuit_to_grammar(&c, &['a', 'b']);
            assert!(g2.size() <= 2 * c.size() + 8, "n={n}");
        }
    }

    #[test]
    fn derivation_counts_preserved() {
        let g = appendix_a_grammar(2);
        let c = grammar_to_circuit(&g).unwrap();
        let counter = ucfg_grammar::count::TreeCounter::new(&g).unwrap();
        let total: ucfg_grammar::BigUint = finite_language(&g)
            .unwrap()
            .iter()
            .map(|w| counter.count_str(w))
            .sum();
        assert_eq!(c.count_derivations(), total);
    }

    #[test]
    fn infinite_language_rejected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        assert_eq!(
            grammar_to_circuit(&b.build(s)).unwrap_err(),
            ConvertError::InfiniteLanguage
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(s));
        b.rule(a, |r| r.t('a'));
        assert_eq!(
            grammar_to_circuit(&b.build(s)).unwrap_err(),
            ConvertError::DerivationCycle
        );
    }
}
