//! Ordering and random access on d-representations.
//!
//! The factorised-database operations of Bakibayev et al. ("aggregation
//! and ordering in factorised databases", \[4\] in the paper): without
//! materialising the language, compute the lexicographically extreme
//! words, and random-access the `k`-th word of a *deterministic* circuit
//! (`rank`/`unrank`). Both are linear-time DPs over the DAG.
//!
//! The lexicographic DP requires the circuit to be **length-uniform**
//! (every node derives words of a single length — true of all fixed-length
//! languages like `L_n` and of join results): for mixed lengths the
//! lexicographic minimum of a concatenation does not decompose
//! componentwise.

use crate::circuit::{Circuit, Node};
use ucfg_grammar::bignum::BigUint;

/// Per-node word length if the circuit is length-uniform (and every node
/// non-empty), else `None`.
pub fn uniform_lengths(c: &Circuit) -> Option<Vec<usize>> {
    let mut lens: Vec<usize> = Vec::with_capacity(c.node_count());
    for node in c.nodes() {
        let l = match node {
            Node::Epsilon => 0,
            Node::Letter(_) => 1,
            Node::Union(cs) => {
                let mut it = cs.iter().map(|&x| lens[x as usize]);
                let first = it.next()?;
                if it.any(|l| l != first) {
                    return None;
                }
                first
            }
            Node::Product(cs) => cs.iter().map(|&x| lens[x as usize]).sum(),
        };
        lens.push(l);
    }
    Some(lens)
}

/// Per-node derivation counts (shared helper).
fn counts(c: &Circuit) -> Vec<BigUint> {
    let mut out: Vec<BigUint> = Vec::with_capacity(c.node_count());
    for node in c.nodes() {
        let v = match node {
            Node::Epsilon | Node::Letter(_) => BigUint::one(),
            Node::Union(cs) => cs.iter().map(|&x| out[x as usize].clone()).sum(),
            Node::Product(cs) => {
                let mut acc = BigUint::one();
                for &x in cs {
                    acc = &acc * &out[x as usize];
                }
                acc
            }
        };
        out.push(v);
    }
    out
}

/// The lexicographically smallest (`min = true`) or largest word of a
/// length-uniform circuit, without materialisation. `None` if the circuit
/// is empty or not length-uniform.
pub fn lex_extreme(c: &Circuit, min: bool) -> Option<String> {
    uniform_lengths(c)?;
    let cnt = counts(c);
    if cnt[c.root() as usize].is_zero() {
        return None;
    }
    let mut memo: Vec<Option<String>> = Vec::with_capacity(c.node_count());
    for (i, node) in c.nodes().iter().enumerate() {
        let w = match node {
            Node::Epsilon => Some(String::new()),
            Node::Letter(ch) => Some(ch.to_string()),
            Node::Union(cs) => {
                let mut best: Option<String> = None;
                for &x in cs {
                    if let Some(cand) = memo[x as usize].clone() {
                        best = Some(match best {
                            None => cand,
                            Some(b) => {
                                if (cand < b) == min {
                                    cand
                                } else {
                                    b
                                }
                            }
                        });
                    }
                }
                best
            }
            Node::Product(cs) => {
                let mut acc = String::new();
                let mut ok = true;
                for &x in cs {
                    match &memo[x as usize] {
                        Some(p) => acc.push_str(p),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                ok.then_some(acc)
            }
        };
        let _ = i;
        memo.push(w);
    }
    memo[c.root() as usize].clone()
}

/// The `idx`-th word of the circuit in canonical derivation order (union
/// branches in order, products in mixed radix with the last factor fastest).
/// For a deterministic circuit this enumerates each word exactly once —
/// random access into the represented set.
pub fn unrank(c: &Circuit, idx: &BigUint) -> Option<String> {
    let cnt = counts(c);
    if idx >= &cnt[c.root() as usize] {
        return None;
    }
    let mut out = String::new();
    unrank_at(c, &cnt, c.root() as usize, idx.clone(), &mut out);
    Some(out)
}

fn unrank_at(c: &Circuit, cnt: &[BigUint], node: usize, mut idx: BigUint, out: &mut String) {
    match &c.nodes()[node] {
        Node::Epsilon => {}
        Node::Letter(ch) => out.push(*ch),
        Node::Union(cs) => {
            for &x in cs {
                let k = &cnt[x as usize];
                if &idx < k {
                    unrank_at(c, cnt, x as usize, idx, out);
                    return;
                }
                idx = idx.checked_sub(k).expect("idx >= k");
            }
            unreachable!("idx < node count");
        }
        Node::Product(cs) => {
            // Mixed radix, last factor fastest: idx = ((i₀·k₁ + i₁)·k₂ + …).
            let mut indices = vec![BigUint::zero(); cs.len()];
            for (pos, &x) in cs.iter().enumerate().rev() {
                let k = &cnt[x as usize];
                let (q, r) = idx.div_rem(k);
                indices[pos] = r;
                idx = q;
            }
            for (pos, &x) in cs.iter().enumerate() {
                unrank_at(c, cnt, x as usize, indices[pos].clone(), out);
            }
        }
    }
}

/// The rank of `word` in the canonical order of a **deterministic,
/// length-uniform** circuit (`None` if the word is not in the language or
/// the circuit is not length-uniform).
pub fn rank(c: &Circuit, word: &str) -> Option<BigUint> {
    let lens = uniform_lengths(c)?;
    let cnt = counts(c);
    let chars: Vec<char> = word.chars().collect();
    if chars.len() != lens[c.root() as usize] {
        return None;
    }
    rank_at(c, &cnt, &lens, c.root() as usize, &chars)
}

fn rank_at(
    c: &Circuit,
    cnt: &[BigUint],
    lens: &[usize],
    node: usize,
    word: &[char],
) -> Option<BigUint> {
    match &c.nodes()[node] {
        Node::Epsilon => word.is_empty().then(BigUint::zero),
        Node::Letter(ch) => (word == [*ch]).then(BigUint::zero),
        Node::Union(cs) => {
            let mut offset = BigUint::zero();
            for &x in cs {
                if let Some(r) = rank_at(c, cnt, lens, x as usize, word) {
                    return Some(&offset + &r);
                }
                offset += &cnt[x as usize];
            }
            None
        }
        Node::Product(cs) => {
            let mut acc = BigUint::zero();
            let mut pos = 0usize;
            for &x in cs {
                let l = lens[x as usize];
                let sub = &word[pos..pos + l];
                let r = rank_at(c, cnt, lens, x as usize, sub)?;
                acc = &(&acc * &cnt[x as usize]) + &r;
                pos += l;
            }
            debug_assert_eq!(pos, word.len());
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::grammar_to_circuit;
    use crate::join::{complete_chain, factorized_path_join};
    use std::collections::BTreeSet;
    use ucfg_core::ln_grammars::example4_ucfg;

    fn ln_circuit(n: usize) -> Circuit {
        grammar_to_circuit(&example4_ucfg(n)).unwrap()
    }

    #[test]
    fn uniform_lengths_of_ln_circuit() {
        let c = ln_circuit(3);
        let lens = uniform_lengths(&c).expect("L_n is fixed-length");
        assert_eq!(lens[c.root() as usize], 6);
    }

    #[test]
    fn lex_extremes_match_materialisation() {
        for n in 2..=4usize {
            let c = ln_circuit(n);
            let lang = c.language();
            assert_eq!(
                lex_extreme(&c, true).as_deref(),
                lang.iter().next().map(|s| s.as_str())
            );
            assert_eq!(
                lex_extreme(&c, false).as_deref(),
                lang.iter().next_back().map(|s| s.as_str())
            );
        }
    }

    #[test]
    fn unrank_enumerates_deterministic_circuit_exactly() {
        let n = 3;
        let c = ln_circuit(n);
        assert!(c.is_unambiguous());
        let total = c.count_derivations().to_u64().unwrap();
        let mut seen = BTreeSet::new();
        for i in 0..total {
            let w = unrank(&c, &BigUint::from_u64(i)).unwrap();
            assert!(seen.insert(w), "duplicate at {i}");
        }
        assert_eq!(seen, c.language());
        assert!(unrank(&c, &BigUint::from_u64(total)).is_none());
    }

    #[test]
    fn rank_is_inverse_of_unrank() {
        let c = ln_circuit(3);
        let total = c.count_derivations().to_u64().unwrap();
        for i in (0..total).step_by(7) {
            let idx = BigUint::from_u64(i);
            let w = unrank(&c, &idx).unwrap();
            assert_eq!(rank(&c, &w), Some(idx), "word {w}");
        }
        assert_eq!(rank(&c, "bbbbbb"), None); // not in L_3
        assert_eq!(rank(&c, "aa"), None); // wrong length
    }

    #[test]
    fn join_circuits_are_orderable() {
        let rels = complete_chain(3, 4);
        let c = factorized_path_join(&rels);
        let lens = uniform_lengths(&c).unwrap();
        assert_eq!(lens[c.root() as usize], 5);
        let lang = c.language();
        assert_eq!(lex_extreme(&c, true), lang.iter().next().cloned());
        assert_eq!(lex_extreme(&c, false), lang.iter().next_back().cloned());
        // Random access agrees with enumeration order being a bijection.
        let total = c.count_derivations().to_u64().unwrap();
        let w0 = unrank(&c, &BigUint::zero()).unwrap();
        assert!(lang.contains(&w0));
        let wl = unrank(&c, &BigUint::from_u64(total - 1)).unwrap();
        assert!(lang.contains(&wl));
    }

    #[test]
    fn non_uniform_circuit_rejected_for_ordering() {
        use crate::circuit::CircuitBuilder;
        let mut b = CircuitBuilder::new();
        let e = b.epsilon();
        let a = b.letter('a');
        let u = b.union(vec![e, a]); // lengths 0 and 1 → not uniform
        let c = b.build(u);
        assert!(uniform_lengths(&c).is_none());
        assert!(lex_extreme(&c, true).is_none());
        assert!(rank(&c, "a").is_none());
        // unrank still works (derivation order needs no lengths).
        assert_eq!(unrank(&c, &BigUint::zero()).as_deref(), Some(""));
        assert_eq!(unrank(&c, &BigUint::one()).as_deref(), Some("a"));
    }
}
