//! A micro factorised-join engine.
//!
//! The motivation the paper inherits from Olteanu & Závodný: query results
//! can be *factorised* instead of materialised, and the factorised form can
//! be exponentially smaller. We reproduce the canonical instance — a path
//! join `R₁(A₀,A₁) ⋈ R₂(A₁,A₂) ⋈ … ⋈ R_k(A_{k-1},A_k)` — building the
//! d-representation directly from the relations: one shared sub-circuit
//! per (layer, value), so the size is O(Σ|R_i|) while the materialised
//! result can have |domain|^Ω(k) tuples.
//!
//! Tuples are encoded as words: one character per attribute value
//! (digits/letters), so join results are finite languages and the circuit
//! machinery applies unchanged.

use crate::circuit::{Circuit, CircuitBuilder, NodeId};
use std::collections::{BTreeSet, HashMap};
use ucfg_grammar::bignum::BigUint;

/// Maximum domain size for the character encoding.
pub const MAX_DOMAIN: u32 = 36;

/// Encode a value as a character (`0-9a-z`).
pub fn value_char(v: u32) -> char {
    assert!(v < MAX_DOMAIN);
    char::from_digit(v, 36).expect("v < 36")
}

/// A binary relation: a set of `(left, right)` value pairs.
#[derive(Debug, Clone, Default)]
pub struct BinaryRelation {
    /// The tuples.
    pub tuples: BTreeSet<(u32, u32)>,
}

impl BinaryRelation {
    /// From explicit pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        BinaryRelation {
            tuples: pairs.into_iter().collect(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Successors of a left value.
    pub fn successors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.tuples
            .iter()
            .filter(move |&&(l, _)| l == v)
            .map(|&(_, r)| r)
    }
}

/// Materialise the path join: all `(v₀, …, v_k)` with `(v_{i-1}, v_i) ∈ R_i`,
/// encoded as words.
pub fn materialized_path_join(rels: &[BinaryRelation]) -> BTreeSet<String> {
    let mut tuples: BTreeSet<String> = BTreeSet::new();
    let firsts: BTreeSet<u32> = rels
        .first()
        .map(|r| r.tuples.iter().map(|&(l, _)| l).collect())
        .unwrap_or_default();
    let mut stack: Vec<(usize, u32, String)> = firsts
        .into_iter()
        .map(|v| (0, v, value_char(v).to_string()))
        .collect();
    while let Some((layer, v, word)) = stack.pop() {
        if layer == rels.len() {
            tuples.insert(word);
            continue;
        }
        for succ in rels[layer].successors(v) {
            let mut w = word.clone();
            w.push(value_char(succ));
            stack.push((layer + 1, succ, w));
        }
    }
    tuples
}

/// Number of result tuples of the path join (DP — no materialisation).
pub fn path_join_count(rels: &[BinaryRelation]) -> BigUint {
    let firsts: BTreeSet<u32> = rels
        .first()
        .map(|r| r.tuples.iter().map(|&(l, _)| l).collect())
        .unwrap_or_default();
    // counts[v] = number of paths from value v through remaining layers.
    let mut counts: HashMap<u32, BigUint> = HashMap::new();
    if let Some(last) = rels.last() {
        for &(_, r) in &last.tuples {
            counts.entry(r).or_insert_with(BigUint::one);
        }
    }
    for rel in rels.iter().rev() {
        let mut next: HashMap<u32, BigUint> = HashMap::new();
        for &(l, r) in &rel.tuples {
            if let Some(c) = counts.get(&r) {
                let e = next.entry(l).or_insert_with(BigUint::zero);
                *e += c;
            }
        }
        counts = next;
    }
    firsts.iter().filter_map(|v| counts.get(v)).cloned().sum()
}

/// Build the factorised (d-representation) join result: grouping by the
/// join values gives one shared node per (layer, value), so the circuit is
/// linear in the input relations.
pub fn factorized_path_join(rels: &[BinaryRelation]) -> Circuit {
    let mut b = CircuitBuilder::new();
    // node(layer, v) = circuit for "print v, then all completions from
    // layer". Built from the last layer backwards.
    let mut current: HashMap<u32, NodeId> = HashMap::new();
    if let Some(last) = rels.last() {
        let ends: BTreeSet<u32> = last.tuples.iter().map(|&(_, r)| r).collect();
        for v in ends {
            let l = b.letter(value_char(v));
            current.insert(v, l);
        }
    }
    for rel in rels.iter().rev() {
        let mut next: HashMap<u32, NodeId> = HashMap::new();
        let lefts: BTreeSet<u32> = rel.tuples.iter().map(|&(l, _)| l).collect();
        for v in lefts {
            let branches: Vec<NodeId> = rel
                .successors(v)
                .filter_map(|s| current.get(&s).copied())
                .collect();
            if branches.is_empty() {
                continue;
            }
            let tail = if branches.len() == 1 {
                branches[0]
            } else {
                b.union(branches)
            };
            let head = b.letter(value_char(v));
            let node = b.product(vec![head, tail]);
            next.insert(v, node);
        }
        current = next;
    }
    let mut roots: Vec<NodeId> = current.into_values().collect();
    roots.sort();
    let root = if roots.len() == 1 {
        roots[0]
    } else {
        b.union(roots)
    };
    b.build(root)
}

/// Aggregate over the join result without materialising it: the minimum
/// total tuple weight, where each value `v` contributes `weight(v)` —
/// the factorised-DB aggregation of \[4\], as a tropical circuit
/// evaluation.
pub fn min_weight_tuple(rels: &[BinaryRelation], weight: impl Fn(u32) -> u64) -> Option<u64> {
    use ucfg_grammar::weighted::MinPlus;
    let circ = factorized_path_join(rels);
    let v: MinPlus = circ.eval(|c| {
        let val = c.to_digit(36).expect("value chars are base-36 digits");
        MinPlus(Some(weight(val)))
    });
    v.0
}

/// The canonical exponential-gap instance: `k` layers of the complete
/// bipartite relation over a domain of size `d`. Materialised size
/// `d^{k+1}` tuples; factorised size `O(k·d²)`.
pub fn complete_chain(d: u32, k: usize) -> Vec<BinaryRelation> {
    let rel = BinaryRelation::from_pairs((0..d).flat_map(|l| (0..d).map(move |r| (l, r))));
    vec![rel; k]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_chain() -> Vec<BinaryRelation> {
        // R1 = {(0,1),(0,2),(1,2)} ; R2 = {(1,3),(2,3),(2,0)}
        vec![
            BinaryRelation::from_pairs([(0, 1), (0, 2), (1, 2)]),
            BinaryRelation::from_pairs([(1, 3), (2, 3), (2, 0)]),
        ]
    }

    #[test]
    fn factorized_equals_materialized() {
        let rels = small_chain();
        let mat = materialized_path_join(&rels);
        let circ = factorized_path_join(&rels);
        assert_eq!(circ.language(), mat);
        // Expected tuples: 013, 023, 020, 123, 120.
        assert_eq!(mat.len(), 5);
    }

    #[test]
    fn counting_without_materialisation() {
        let rels = small_chain();
        assert_eq!(path_join_count(&rels).to_u64(), Some(5));
        let circ = factorized_path_join(&rels);
        // The grouped circuit is deterministic, so derivation counting is
        // tuple counting.
        assert!(circ.is_unambiguous());
        assert_eq!(circ.count_derivations().to_u64(), Some(5));
    }

    #[test]
    fn exponential_gap_on_complete_chains() {
        let (d, k) = (4u32, 6usize);
        let rels = complete_chain(d, k);
        let count = path_join_count(&rels);
        assert_eq!(count.to_u64(), Some((d as u64).pow(k as u32 + 1))); // 4^7
        let circ = factorized_path_join(&rels);
        // Factorised linear in k·d², materialisation d^{k+1}·(k+1) chars.
        assert!(circ.size() <= 4 * k * (d as usize) * (d as usize));
        let materialised_chars = count.to_u64().unwrap() as usize * (k + 1);
        assert!(circ.size() * 100 < materialised_chars, "no gap?");
        assert_eq!(circ.count_derivations(), count);
    }

    #[test]
    fn min_weight_aggregation() {
        let rels = small_chain();
        // Tuples: 013, 023, 020, 123, 120. Weight = value itself.
        // Cheapest: 020 → 0+2+0 = 2.
        assert_eq!(min_weight_tuple(&rels, |v| v as u64), Some(2));
        // Weight 3 free, everything else expensive: cheapest is 013 or 123
        // … weights: w(0)=10, w(1)=10, w(2)=10, w(3)=0: 013 → 20.
        assert_eq!(
            min_weight_tuple(&rels, |v| if v == 3 { 0 } else { 10 }),
            Some(20)
        );
        // Empty join aggregates to None (the tropical zero).
        let empty = vec![
            BinaryRelation::from_pairs([(0, 1)]),
            BinaryRelation::from_pairs([(2, 3)]),
        ];
        assert_eq!(min_weight_tuple(&empty, |v| v as u64), None);
    }

    #[test]
    fn empty_join() {
        let rels = vec![
            BinaryRelation::from_pairs([(0, 1)]),
            BinaryRelation::from_pairs([(2, 3)]), // no join partner
        ];
        assert!(materialized_path_join(&rels).is_empty());
        assert!(path_join_count(&rels).is_zero());
        let c = factorized_path_join(&rels);
        assert!(c.language().is_empty());
    }

    #[test]
    fn single_relation() {
        let rels = vec![BinaryRelation::from_pairs([(0, 1), (2, 3)])];
        let mat = materialized_path_join(&rels);
        assert_eq!(mat.len(), 2);
        assert!(mat.contains("01") && mat.contains("23"));
        assert_eq!(factorized_path_join(&rels).language(), mat);
    }

    #[test]
    fn relation_helpers() {
        let r = BinaryRelation::from_pairs([(1, 2), (1, 3)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.successors(1).count(), 2);
        assert_eq!(r.successors(9).count(), 0);
        assert_eq!(value_char(10), 'a');
    }
}
