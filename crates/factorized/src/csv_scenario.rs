//! The introduction's information-extraction scenario.
//!
//! Data: lines with `c` single-character columns over an alphabet `Σ`.
//! Task: extract the pairs of lines with identical entries in at least one
//! column from a chosen set `S ⊆ [c]`. The corresponding language
//!
//! ```text
//! Agree(c, S, Σ) = { u v ∈ Σ^{2c} | ∃ j ∈ S : u_j = v_j }
//! ```
//!
//! has a small (ambiguous) CFG — one alternative per `(column, letter)` —
//! but, by reduction from `L_n`, every *unambiguous* grammar for it is
//! exponential in `|S|`: map `a ↦ a` on both lines and `b ↦ c` on the first
//! line / `b ↦ d` on the second (over `Σ = {a, c, d}`); then two encoded
//! columns agree iff both original letters were `a`, so the encoded image
//! of `Σ^{2n}` intersected with `Agree` is exactly the image of `L_n`.

use ucfg_core::words::{self, Word};
use ucfg_grammar::{Grammar, GrammarBuilder, NonTerminal};

/// The small ambiguous CFG for `Agree(c, S, Σ)`.
///
/// Size `O(c + |S|·|Σ|)`: chain non-terminals `W_k` for `Σ^k` plus one rule
/// per `(j ∈ S, σ ∈ Σ)` pinning positions `j` and `j + c` to `σ`.
pub fn agreement_grammar(c: usize, s_cols: &[usize], alphabet: &[char]) -> Grammar {
    assert!(c >= 1 && !alphabet.is_empty());
    assert!(
        s_cols.iter().all(|&j| (1..=c).contains(&j)),
        "columns are 1-based in [1, c]"
    );
    let mut b = GrammarBuilder::new(alphabet);
    let start = b.nonterminal("Start");
    // W_k generates Σ^k, for every k we need (0 handled by omission).
    let w: Vec<Option<NonTerminal>> = (0..2 * c)
        .map(|k| {
            if k >= 1 {
                Some(b.nonterminal(&format!("W{k}")))
            } else {
                None
            }
        })
        .collect();
    if let Some(w1) = w.get(1).copied().flatten() {
        for &ch in alphabet {
            b.rule(w1, |r| r.t(ch));
        }
        for k in 2..2 * c {
            let wk = w[k].unwrap();
            let prev = w[k - 1].unwrap();
            for &ch in alphabet {
                b.rule(wk, |r| r.t(ch).n(prev));
            }
        }
    }
    // For j ∈ S, σ ∈ Σ: Σ^{j-1} σ Σ^{c-1} σ Σ^{c-j}.
    for &j in s_cols {
        for &ch in alphabet {
            b.rule(start, |r| {
                let r = match w.get(j - 1).copied().flatten() {
                    Some(nt) => r.n(nt),
                    None => r,
                };
                let r = r.t(ch);
                let r = match w.get(c - 1).copied().flatten() {
                    Some(nt) => r.n(nt),
                    None => r,
                };
                let r = r.t(ch);
                match w.get(c - j).copied().flatten() {
                    Some(nt) => r.n(nt),
                    None => r,
                }
            });
        }
    }
    ucfg_grammar::analysis::trim(&b.build(start))
}

/// Direct semantics: does the word (two lines of `c` columns) agree on some
/// column of `S`?
pub fn agrees(c: usize, s_cols: &[usize], word: &str) -> bool {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() != 2 * c {
        return false;
    }
    s_cols.iter().any(|&j| chars[j - 1] == chars[j - 1 + c])
}

/// Enumerate `Agree(c, S, Σ)` by brute force (|Σ|^{2c} scan).
pub fn agreement_language(c: usize, s_cols: &[usize], alphabet: &[char]) -> Vec<String> {
    let k = alphabet.len();
    assert!(k.pow(2 * c as u32) <= 1 << 22, "enumeration too large");
    let mut out = Vec::new();
    let total = k.pow(2 * c as u32);
    for idx in 0..total {
        let mut x = idx;
        let mut word = String::with_capacity(2 * c);
        for _ in 0..2 * c {
            word.push(alphabet[x % k]);
            x /= k;
        }
        if agrees(c, s_cols, &word) {
            out.push(word);
        }
    }
    out
}

/// Generalised scenario: pairs of lines where some column `j ∈ S`
/// satisfies an arbitrary binary comparison `R(u_j, v_j)` — the paper
/// notes that the lower bound persists for "other natural comparisons of
/// the columns, say lexicographic order, similarity measures, and so on".
///
/// Size `O(c·|Σ| + |S|·|{(σ,τ) : R}|)`.
pub fn comparison_grammar(
    c: usize,
    s_cols: &[usize],
    alphabet: &[char],
    relation: impl Fn(char, char) -> bool,
) -> Grammar {
    assert!(c >= 1 && !alphabet.is_empty());
    assert!(s_cols.iter().all(|&j| (1..=c).contains(&j)));
    let mut b = GrammarBuilder::new(alphabet);
    let start = b.nonterminal("Start");
    let w: Vec<Option<NonTerminal>> = (0..2 * c)
        .map(|k| {
            if k >= 1 {
                Some(b.nonterminal(&format!("W{k}")))
            } else {
                None
            }
        })
        .collect();
    if let Some(w1) = w.get(1).copied().flatten() {
        for &ch in alphabet {
            b.rule(w1, |r| r.t(ch));
        }
        for k in 2..2 * c {
            let wk = w[k].unwrap();
            let prev = w[k - 1].unwrap();
            for &ch in alphabet {
                b.rule(wk, |r| r.t(ch).n(prev));
            }
        }
    }
    for &j in s_cols {
        for &sigma in alphabet {
            for &tau in alphabet {
                if !relation(sigma, tau) {
                    continue;
                }
                b.rule(start, |r| {
                    let r = match w.get(j - 1).copied().flatten() {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    let r = r.t(sigma);
                    let r = match w.get(c - 1).copied().flatten() {
                        Some(nt) => r.n(nt),
                        None => r,
                    };
                    let r = r.t(tau);
                    match w.get(c - j).copied().flatten() {
                        Some(nt) => r.n(nt),
                        None => r,
                    }
                });
            }
        }
    }
    ucfg_grammar::analysis::trim(&b.build(start))
}

/// Direct semantics for the generalised scenario.
pub fn compares(
    c: usize,
    s_cols: &[usize],
    word: &str,
    relation: impl Fn(char, char) -> bool,
) -> bool {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() != 2 * c {
        return false;
    }
    s_cols
        .iter()
        .any(|&j| relation(chars[j - 1], chars[j - 1 + c]))
}

/// The reduction `L_n → Agree(n, [n], {a,c,d})`: rename the first line's
/// `b` to `c` and the second line's `b` to `d`.
pub fn encode_ln_word(n: usize, w: Word) -> String {
    let s = words::to_string(n, w);
    s.chars()
        .enumerate()
        .map(|(i, ch)| match (ch, i < n) {
            ('a', _) => 'a',
            ('b', true) => 'c',
            ('b', false) => 'd',
            _ => unreachable!("L_n words are over {{a,b}}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_core::words::{enumerate_ln, ln_contains};
    use ucfg_grammar::language::finite_language;

    #[test]
    fn grammar_matches_semantics() {
        for (c, s_cols, alphabet) in [
            (2usize, vec![1usize, 2], vec!['a', 'b']),
            (2, vec![2], vec!['a', 'b', 'c']),
            (3, vec![1, 3], vec!['a', 'b']),
        ] {
            let g = agreement_grammar(c, &s_cols, &alphabet);
            let lang = finite_language(&g).unwrap();
            let expect: std::collections::BTreeSet<String> =
                agreement_language(c, &s_cols, &alphabet)
                    .into_iter()
                    .collect();
            assert_eq!(lang, expect, "c={c} S={s_cols:?} Σ={alphabet:?}");
        }
    }

    #[test]
    fn grammar_size_is_linear_in_s_and_sigma() {
        let alphabet: Vec<char> = ('a'..='f').collect();
        let c = 10;
        let g_small = agreement_grammar(c, &[1], &alphabet);
        let g_big = agreement_grammar(c, &(1..=10).collect::<Vec<_>>(), &alphabet);
        // The W-chain dominates; the per-(j,σ) rules add ≤ 5 each.
        let delta = g_big.size() - g_small.size();
        assert!(delta <= 9 * alphabet.len() * 5, "delta={delta}");
    }

    #[test]
    fn reduction_from_ln() {
        // Encoded L_n words are exactly the encoded-domain words in Agree.
        let n = 3;
        let s_cols: Vec<usize> = (1..=n).collect();
        for w in 0..(1u64 << (2 * n)) {
            let enc = encode_ln_word(n, w);
            assert_eq!(
                agrees(n, &s_cols, &enc),
                ln_contains(n, w),
                "w={w:b} enc={enc}"
            );
        }
        // Sanity: the encoding is injective.
        let all: std::collections::BTreeSet<String> = (0..(1u64 << (2 * n)))
            .map(|w| encode_ln_word(n, w))
            .collect();
        assert_eq!(all.len(), 1 << (2 * n));
        let _ = enumerate_ln(n);
    }

    #[test]
    fn agreement_grammar_is_ambiguous() {
        // A pair agreeing on two columns has (at least) two derivations.
        let g = agreement_grammar(2, &[1, 2], &['a', 'b']);
        match ucfg_grammar::count::decide_unambiguous(&g) {
            ucfg_grammar::count::UnambiguityVerdict::Ambiguous { degree, .. } => {
                assert!(degree.to_u64().unwrap() >= 2);
            }
            v => panic!("expected ambiguity, got {v:?}"),
        }
    }

    #[test]
    fn comparison_grammar_generalises_equality() {
        // Equality as a relation reproduces agreement_grammar's language.
        let (c, s_cols, alphabet) = (2usize, vec![1usize, 2], vec!['a', 'b']);
        let eq = comparison_grammar(c, &s_cols, &alphabet, |x, y| x == y);
        let ag = agreement_grammar(c, &s_cols, &alphabet);
        assert_eq!(finite_language(&eq).unwrap(), finite_language(&ag).unwrap());
    }

    #[test]
    fn lexicographic_comparison() {
        // "some column of line 1 is strictly smaller": the paper's
        // lexicographic-order variant.
        let (c, s_cols, alphabet) = (2usize, vec![1usize, 2], vec!['a', 'b', 'c']);
        let g = comparison_grammar(c, &s_cols, &alphabet, |x, y| x < y);
        let lang = finite_language(&g).unwrap();
        // Brute-force oracle.
        let total = alphabet.len().pow(2 * c as u32);
        let mut expect = std::collections::BTreeSet::new();
        for idx in 0..total {
            let mut x = idx;
            let mut word = String::new();
            for _ in 0..2 * c {
                word.push(alphabet[x % alphabet.len()]);
                x /= alphabet.len();
            }
            if compares(c, &s_cols, &word, |a, b| a < b) {
                expect.insert(word);
            }
        }
        assert_eq!(lang, expect);
    }

    #[test]
    fn similarity_comparison_within_distance() {
        // |σ − τ| ≤ 1 on a digit alphabet — a toy similarity measure.
        let (c, s_cols, alphabet) = (1usize, vec![1usize], vec!['0', '1', '2', '3']);
        let close = |x: char, y: char| {
            (x.to_digit(10).unwrap() as i32 - y.to_digit(10).unwrap() as i32).abs() <= 1
        };
        let g = comparison_grammar(c, &s_cols, &alphabet, close);
        let lang = finite_language(&g).unwrap();
        assert!(lang.contains("01") && lang.contains("33") && lang.contains("21"));
        assert!(!lang.contains("03") && !lang.contains("31"));
    }

    #[test]
    fn comparison_grammar_size_scales_with_relation() {
        // Equality has |Σ| pairs per column, ≤ has |Σ|(|Σ|+1)/2.
        let alphabet: Vec<char> = ('a'..='d').collect();
        let c = 6;
        let s: Vec<usize> = (1..=c).collect();
        let eq = comparison_grammar(c, &s, &alphabet, |x, y| x == y);
        let le = comparison_grammar(c, &s, &alphabet, |x, y| x <= y);
        assert!(le.size() > eq.size());
        assert!(le.size() <= eq.size() * (alphabet.len() + 1) / 2 + 8);
    }

    #[test]
    fn degenerate_single_column() {
        let g = agreement_grammar(1, &[1], &['a', 'b']);
        let lang = finite_language(&g).unwrap();
        assert_eq!(lang, ["aa", "bb"].iter().map(|s| s.to_string()).collect());
    }
}
