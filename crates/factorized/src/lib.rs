//! # ucfg-factorized — the database-facing substrate
//!
//! The factorised-representation context the paper's motivation rests on:
//!
//! * [`circuit`] — d-representations in the unnamed perspective
//!   (ε/letter/∪/× DAGs), size, counting, determinism;
//! * [`convert`] — the Kimelfeld–Martens–Niewerth isomorphism between CFGs
//!   for finite languages and d-representations (unambiguity ↔ determinism);
//! * [`join`] — a micro factorised-join engine reproducing the
//!   Olteanu–Závodný exponential gap between factorised and materialised
//!   query results;
//! * [`csv_scenario`] — the introduction's CSV column-agreement extraction
//!   task, with its small ambiguous CFG and the reduction from `L_n` that
//!   makes every uCFG for it exponential in the column set.
//!
//! # Example — a factorised join, counted and ordered
//!
//! ```
//! use ucfg_factorized::join::{complete_chain, factorized_path_join, path_join_count};
//! use ucfg_factorized::ordering::lex_extreme;
//!
//! let rels = complete_chain(3, 4);                 // 3^5 = 243 tuples
//! let circuit = factorized_path_join(&rels);
//! assert_eq!(circuit.count_derivations(), path_join_count(&rels));
//! assert!(circuit.size() < 100);                   // vs 243 · 5 characters
//! assert_eq!(lex_extreme(&circuit, true).unwrap(), "00000");
//! assert_eq!(lex_extreme(&circuit, false).unwrap(), "22222");
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod convert;
pub mod csv_scenario;
pub mod join;
pub mod ordering;
pub mod select;

pub use circuit::{Circuit, CircuitBuilder, Node};
