//! Selection and projection on d-representations — structural query
//! operators that work directly on the factorised form (no
//! materialisation), for length-uniform circuits.
//!
//! * [`select_position`] — `σ_{pos = ch}`: keep exactly the words whose
//!   `pos`-th character is `ch`. Size never grows; determinism is
//!   preserved (a subset of a deterministic union stays deterministic).
//! * [`project_out`] — `π_{-pos}`: delete position `pos` from every word.
//!   Size never grows, but distinct words may collapse, so determinism can
//!   break — the factorised analogue of duplicate handling after
//!   projection in databases.
//!
//! ```
//! use ucfg_factorized::join::{complete_chain, factorized_path_join};
//! use ucfg_factorized::select::{project_out, select_position};
//!
//! let circuit = factorized_path_join(&complete_chain(3, 2)); // 3³ tuples
//! let sel = select_position(&circuit, 1, '2').unwrap();      // middle = 2
//! assert_eq!(sel.count_derivations().to_u64(), Some(9));
//! let proj = project_out(&circuit, 1).unwrap();              // drop the middle
//! assert_eq!(proj.count_words(), 9);
//! ```

use crate::circuit::{Circuit, CircuitBuilder, Node, NodeId};
use crate::ordering::uniform_lengths;

/// Rebuild the circuit keeping only words with `ch` at 0-based `pos`.
/// Returns `None` if the circuit is not length-uniform or `pos` is out of
/// range.
pub fn select_position(c: &Circuit, pos: usize, ch: char) -> Option<Circuit> {
    transform(c, pos, Op::Select(ch))
}

/// Rebuild the circuit with position `pos` deleted from every word.
/// Returns `None` if the circuit is not length-uniform or `pos` is out of
/// range.
pub fn project_out(c: &Circuit, pos: usize) -> Option<Circuit> {
    transform(c, pos, Op::Project)
}

#[derive(Clone, Copy)]
enum Op {
    Select(char),
    Project,
}

fn transform(c: &Circuit, pos: usize, op: Op) -> Option<Circuit> {
    let lens = uniform_lengths(c)?;
    if pos >= lens[c.root() as usize] {
        return None;
    }
    let mut b = CircuitBuilder::new();
    // memo[(node, offset)] = rebuilt node containing the target at
    // `offset` within this node's span (None = empty language).
    let mut memo: std::collections::HashMap<(NodeId, usize), Option<NodeId>> =
        std::collections::HashMap::new();
    // untouched[node] = copy of the node without modification.
    let mut untouched: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    // An empty rebuild is a legitimate result (the selection filtered
    // everything out), represented by an empty union.
    let root = rebuild(
        c,
        &lens,
        c.root(),
        pos,
        op,
        &mut b,
        &mut memo,
        &mut untouched,
    )
    .unwrap_or_else(|| b.union(Vec::new()));
    Some(b.build(root))
}

/// Copy a node (and its cone) verbatim into the builder.
fn copy(
    c: &Circuit,
    node: NodeId,
    b: &mut CircuitBuilder,
    untouched: &mut std::collections::HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&id) = untouched.get(&node) {
        return id;
    }
    let id = match &c.nodes()[node as usize] {
        Node::Epsilon => b.epsilon(),
        Node::Letter(ch) => b.letter(*ch),
        Node::Union(cs) => {
            let kids: Vec<NodeId> = cs.iter().map(|&x| copy(c, x, b, untouched)).collect();
            b.union(kids)
        }
        Node::Product(cs) => {
            let kids: Vec<NodeId> = cs.iter().map(|&x| copy(c, x, b, untouched)).collect();
            b.product(kids)
        }
    };
    untouched.insert(node, id);
    id
}

#[allow(clippy::too_many_arguments)]
fn rebuild(
    c: &Circuit,
    lens: &[usize],
    node: NodeId,
    offset: usize,
    op: Op,
    b: &mut CircuitBuilder,
    memo: &mut std::collections::HashMap<(NodeId, usize), Option<NodeId>>,
    untouched: &mut std::collections::HashMap<NodeId, NodeId>,
) -> Option<NodeId> {
    if let Some(&r) = memo.get(&(node, offset)) {
        return r;
    }
    let result = match &c.nodes()[node as usize] {
        Node::Epsilon => None, // the target position cannot fall in ε
        Node::Letter(ch) => {
            debug_assert_eq!(offset, 0);
            match op {
                Op::Select(want) => (*ch == want).then(|| b.letter(*ch)),
                Op::Project => Some(b.epsilon()),
            }
        }
        Node::Union(cs) => {
            let kids: Vec<NodeId> = cs
                .iter()
                .filter_map(|&x| rebuild(c, lens, x, offset, op, b, memo, untouched))
                .collect();
            if kids.is_empty() {
                None
            } else if kids.len() == 1 {
                Some(kids[0])
            } else {
                Some(b.union(kids))
            }
        }
        Node::Product(cs) => {
            // Locate which factor contains the target offset.
            let mut at = offset;
            let mut factors: Vec<NodeId> = Vec::with_capacity(cs.len());
            let mut ok = true;
            let mut placed = false;
            for &x in cs {
                let l = lens[x as usize];
                if !placed && at < l {
                    match rebuild(c, lens, x, at, op, b, memo, untouched) {
                        Some(id) => factors.push(id),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                    placed = true;
                } else {
                    if !placed {
                        at -= l;
                    }
                    factors.push(copy(c, x, b, untouched));
                }
            }
            (ok && placed).then(|| b.product(factors))
        }
    };
    memo.insert((node, offset), result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::grammar_to_circuit;
    use std::collections::BTreeSet;
    use ucfg_core::ln_grammars::example4_ucfg;

    fn ln_circuit(n: usize) -> Circuit {
        grammar_to_circuit(&example4_ucfg(n)).unwrap()
    }

    #[test]
    fn selection_matches_materialised_filter() {
        let n = 3;
        let c = ln_circuit(n);
        let lang = c.language();
        for pos in 0..2 * n {
            for ch in ['a', 'b'] {
                let sel = select_position(&c, pos, ch).unwrap();
                let expect: BTreeSet<String> = lang
                    .iter()
                    .filter(|w| w.chars().nth(pos) == Some(ch))
                    .cloned()
                    .collect();
                assert_eq!(sel.language(), expect, "pos={pos} ch={ch}");
                // Determinism preserved, size never grows (beyond the copy).
                assert!(sel.is_unambiguous(), "pos={pos} ch={ch}");
            }
        }
    }

    #[test]
    fn selection_count_without_materialisation() {
        // σ_{pos 0 = a} on L_3: closed form = 4^2·1… easier: brute force.
        let n = 3;
        let c = ln_circuit(n);
        let sel = select_position(&c, 0, 'a').unwrap();
        let brute = (0..(1u64 << (2 * n)))
            .filter(|&w| ucfg_core::words::ln_contains(n, w) && w & 1 == 1)
            .count() as u64;
        assert_eq!(sel.count_derivations().to_u64(), Some(brute));
    }

    #[test]
    fn projection_deletes_the_position() {
        let n = 2;
        let c = ln_circuit(n);
        let lang = c.language();
        for pos in 0..2 * n {
            let proj = project_out(&c, pos).unwrap();
            let expect: BTreeSet<String> = lang
                .iter()
                .map(|w| {
                    w.chars()
                        .enumerate()
                        .filter(|&(i, _)| i != pos)
                        .map(|(_, c)| c)
                        .collect()
                })
                .collect();
            assert_eq!(proj.language(), expect, "pos={pos}");
        }
    }

    #[test]
    fn projection_can_break_determinism() {
        // Projecting out a distinguishing position merges words, so the
        // deterministic circuit may become ambiguous — the duplicate
        // problem of projection.
        let n = 2;
        let c = ln_circuit(n);
        assert!(c.is_unambiguous());
        let proj = project_out(&c, 3).unwrap();
        let words = proj.count_words() as u64;
        let derivs = proj.count_derivations().to_u64().unwrap();
        assert!(derivs >= words);
        assert!(derivs > words, "L_2 projection does collapse words");
    }

    #[test]
    fn out_of_range_and_non_uniform_rejected() {
        let c = ln_circuit(2);
        assert!(select_position(&c, 4, 'a').is_none());
        assert!(project_out(&c, 99).is_none());

        let mut b = CircuitBuilder::new();
        let e = b.epsilon();
        let a = b.letter('a');
        let u = b.union(vec![e, a]);
        let mixed = b.build(u);
        assert!(select_position(&mixed, 0, 'a').is_none());
    }

    #[test]
    fn chained_selections() {
        // σ then σ composes: fix positions 0 and n to 'a' → witnessing
        // pair forced → all remaining positions free.
        let n = 3;
        let c = ln_circuit(n);
        let s1 = select_position(&c, 0, 'a').unwrap();
        let s2 = select_position(&s1, n, 'a').unwrap();
        assert_eq!(s2.count_words(), 1 << (2 * n - 2));
        assert!(s2.is_unambiguous());
    }
}
