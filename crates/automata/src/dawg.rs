//! Minimal acyclic DFAs (DAWGs) from sorted word lists.
//!
//! The incremental algorithm of Daciuk, Mihov, Watson & Watson: words are
//! added in strictly increasing lexicographic order; after each word the
//! suffix that is no longer on the active path is minimised against a
//! registry of frozen states. The result is the *minimal* DFA of the word
//! set.
//!
//! In this reproduction the DAWG plays the role of the canonical
//! unambiguous baseline: a DFA is trivially unambiguous, and its
//! right-linear grammar (see [`crate::convert`]) is a uCFG — this realises
//! the generic CFG → uCFG upper-bound route of \[20\] (experiment T12).
//!
//! ```
//! use ucfg_automata::dawg::dawg_of_words;
//!
//! let dfa = dawg_of_words(&['a', 'b'], ["ab", "abb", "bb"]);
//! assert!(dfa.accepts("abb"));
//! assert!(!dfa.accepts("a"));
//! // Already minimal:
//! assert_eq!(dfa.state_count(), dfa.minimized().state_count());
//! // Lexicographic enumeration:
//! let words: Vec<String> = dfa.words_lex(4).collect();
//! assert_eq!(words, ["ab", "abb", "bb"]);
//! ```

use crate::dfa::Dfa;
use crate::nfa::State;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NodeKey {
    accepting: bool,
    edges: Vec<(u16, State)>,
}

#[derive(Debug, Clone)]
struct Node {
    accepting: bool,
    /// Sorted by symbol (insertion order is increasing because input words
    /// are sorted).
    edges: Vec<(u16, State)>,
}

/// Incremental builder; see module docs.
pub struct DawgBuilder {
    alphabet: Vec<char>,
    nodes: Vec<Node>,
    registry: HashMap<NodeKey, State>,
    last_word: Vec<u16>,
    finished: bool,
}

impl DawgBuilder {
    /// Start building over the given alphabet.
    pub fn new(alphabet: &[char]) -> Self {
        DawgBuilder {
            alphabet: alphabet.to_vec(),
            nodes: vec![Node {
                accepting: false,
                edges: Vec::new(),
            }],
            registry: HashMap::new(),
            last_word: Vec::new(),
            finished: false,
        }
    }

    fn encode(&self, w: &str) -> Option<Vec<u16>> {
        w.chars()
            .map(|c| self.alphabet.iter().position(|&x| x == c).map(|i| i as u16))
            .collect()
    }

    /// Add a word; must be strictly greater than all previous words.
    ///
    /// Panics on out-of-order insertion or foreign characters.
    pub fn add(&mut self, w: &str) {
        assert!(!self.finished, "builder already finished");
        let word = self.encode(w).expect("word over the builder's alphabet");
        assert!(
            self.last_word < word,
            "words must be added in strictly increasing order"
        );
        // Longest common prefix with the previous word.
        let lcp = self
            .last_word
            .iter()
            .zip(&word)
            .take_while(|(a, b)| a == b)
            .count();
        // Minimise the now-fixed suffix of the previous word.
        self.replace_or_register_path(lcp);
        // Append fresh states for the new suffix.
        let mut cur = self.walk_prefix(lcp);
        for &sym in &word[lcp..] {
            let fresh = self.nodes.len() as State;
            self.nodes.push(Node {
                accepting: false,
                edges: Vec::new(),
            });
            self.nodes[cur as usize].edges.push((sym, fresh));
            cur = fresh;
        }
        self.nodes[cur as usize].accepting = true;
        self.last_word = word;
    }

    /// The state reached by the first `depth` symbols of the last word.
    fn walk_prefix(&self, depth: usize) -> State {
        let mut cur: State = 0;
        for &sym in &self.last_word[..depth] {
            cur = self.nodes[cur as usize]
                .edges
                .iter()
                .rev()
                .find(|&&(s, _)| s == sym)
                .expect("path of last word exists")
                .1;
        }
        cur
    }

    /// Bottom-up minimise the active path below depth `from` (exclusive).
    fn replace_or_register_path(&mut self, from: usize) {
        // Collect the active path states of the last word.
        let mut path = vec![0 as State];
        for &sym in &self.last_word {
            let cur = *path.last().unwrap();
            let next = self.nodes[cur as usize]
                .edges
                .iter()
                .rev()
                .find(|&&(s, _)| s == sym)
                .expect("active path")
                .1;
            path.push(next);
        }
        // Minimise from the deepest state up to depth `from`+1, re-pointing
        // the parent edge when an equivalent registered state exists.
        for depth in (from + 1..path.len()).rev() {
            let state = path[depth];
            let key = NodeKey {
                accepting: self.nodes[state as usize].accepting,
                edges: self.nodes[state as usize].edges.clone(),
            };
            let parent = path[depth - 1];
            let sym = self.last_word[depth - 1];
            match self.registry.get(&key) {
                Some(&existing) if existing != state => {
                    // Re-point the parent's edge (it is the last edge for
                    // `sym`, and by sorted insertion the last edge overall).
                    let e = self.nodes[parent as usize]
                        .edges
                        .iter_mut()
                        .rev()
                        .find(|(s, _)| *s == sym)
                        .expect("parent edge");
                    e.1 = existing;
                }
                Some(_) => {}
                None => {
                    self.registry.insert(key, state);
                }
            }
        }
    }

    /// Finish and return the minimal DFA.
    pub fn finish(mut self) -> Dfa {
        self.replace_or_register_path(0);
        self.finished = true;
        // Compact: only states reachable from the root survive.
        let mut remap: Vec<Option<State>> = vec![None; self.nodes.len()];
        let mut order: Vec<State> = Vec::new();
        let mut stack = vec![0 as State];
        remap[0] = Some(0);
        order.push(0);
        while let Some(s) = stack.pop() {
            for &(_, t) in &self.nodes[s as usize].edges {
                if remap[t as usize].is_none() {
                    remap[t as usize] = Some(order.len() as State);
                    order.push(t);
                    stack.push(t);
                }
            }
        }
        let mut delta = vec![vec![None; self.alphabet.len()]; order.len()];
        let mut accepting = vec![false; order.len()];
        for (new_id, &old) in order.iter().enumerate() {
            accepting[new_id] = self.nodes[old as usize].accepting;
            for &(sym, t) in &self.nodes[old as usize].edges {
                delta[new_id][sym as usize] = remap[t as usize];
            }
        }
        Dfa::from_parts(self.alphabet, delta, 0, accepting)
    }
}

/// Convenience: the minimal DFA of a sorted iterator of words.
pub fn dawg_of_words<'a>(alphabet: &[char], words: impl IntoIterator<Item = &'a str>) -> Dfa {
    let mut b = DawgBuilder::new(alphabet);
    for w in words {
        b.add(w);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn check_language(alphabet: &[char], words: &[&str], max_len: usize) {
        let dawg = dawg_of_words(alphabet, words.iter().copied());
        let set: BTreeSet<&str> = words.iter().copied().collect();
        // Exhaustively compare on all words up to max_len.
        let mut all = vec![String::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &all {
                for &c in alphabet {
                    let mut x = w.clone();
                    x.push(c);
                    next.push(x);
                }
            }
            for w in &next {
                assert_eq!(dawg.accepts(w), set.contains(w.as_str()), "{w}");
            }
            all = next;
        }
        assert_eq!(dawg.accepts(""), set.contains(""));
    }

    #[test]
    fn small_word_sets() {
        check_language(&['a', 'b'], &["ab", "abb", "ba"], 4);
        check_language(&['a', 'b'], &["a"], 2);
        check_language(&['a', 'b'], &[], 2);
    }

    #[test]
    fn shared_suffixes_are_merged() {
        // {aab, bab, bbb}: all share suffix "b"→accept; aa/ba/bb prefixes.
        let dawg = dawg_of_words(&['a', 'b'], ["aab", "bab", "bbb"]);
        // Minimality: compare with the brute-force minimal DFA.
        let min = dawg.minimized();
        assert_eq!(
            dawg.state_count(),
            min.state_count(),
            "DAWG should already be minimal"
        );
        assert!(dawg.equivalent(&min));
    }

    #[test]
    fn dawg_is_minimal_on_random_sets() {
        // Deterministic pseudo-random word sets, checked for minimality
        // against Moore minimisation.
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _case in 0..20 {
            let mut words = BTreeSet::new();
            for _ in 0..20 {
                let len = (next() % 6) as usize + 1; // ε is not supported
                let w: String = (0..len)
                    .map(|_| if next() % 2 == 0 { 'a' } else { 'b' })
                    .collect();
                words.insert(w);
            }
            let words: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
            let dawg = dawg_of_words(&['a', 'b'], words.iter().copied());
            for w in &words {
                assert!(dawg.accepts(w));
            }
            let min = dawg.minimized();
            assert_eq!(dawg.state_count(), min.state_count());
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_input() {
        let mut b = DawgBuilder::new(&['a', 'b']);
        b.add("b");
        b.add("a");
    }

    #[test]
    fn epsilon_word_supported() {
        // The empty word is the smallest; adding it first marks the root.
        let mut b = DawgBuilder::new(&['a']);
        // "" < "a": but add("") requires last_word < "" to fail... the root
        // case: empty word is only addable first.
        // Directly: the builder starts with last_word = "", so add("")
        // panics (not strictly greater). Accept that ε is unsupported and
        // assert the panic contract instead.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.add("")));
        assert!(r.is_err());
    }
}
