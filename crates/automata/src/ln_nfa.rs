//! Automata for the paper's language `L_n` (Theorem 1(2)).
//!
//! `L_n` is the set of words of length `2n` over `{a,b}` with two `a`s at
//! distance exactly `n`. Two automata are provided:
//!
//! * [`pattern_nfa`] — the Θ(n) guess-and-verify automaton for
//!   `Σ* a Σ^{n-1} a Σ*`. Among words of length `2n` it accepts exactly
//!   `L_n`; this *promise* reading is how the Θ(n) figure of Theorem 1(2)
//!   is reproduced.
//! * [`exact_nfa`] — the automaton accepting exactly `L_n` (no promise),
//!   obtained as the product with the length-`2n` chain. It has Θ(n²)
//!   transitions — necessarily so: in a trimmed NFA for a fixed-length
//!   language every useful state occurs at a single input position, and a
//!   fooling-set argument forces Ω(n − |t|) states at each position `n+t`,
//!   so exactness costs Ω(n²). (This sharpening is discussed in
//!   EXPERIMENTS.md; it does not affect the paper's results, where only the
//!   CFG/uCFG sizes matter.)

use crate::nfa::Nfa;

/// The chain automaton for `Σ^len` over `{a, b}`.
pub fn sigma_exact(len: usize) -> Nfa {
    let mut n = Nfa::new(&['a', 'b'], (len + 1) as u32);
    n.set_initial(0);
    n.set_accepting(len as u32);
    for i in 0..len {
        n.add_transition(i as u32, 'a', (i + 1) as u32);
        n.add_transition(i as u32, 'b', (i + 1) as u32);
    }
    n
}

/// The Θ(n) pattern automaton for `Σ* a Σ^{n-1} a Σ*`:
/// guess the first marked `a`, count `n−1` letters, require the second `a`.
///
/// States: `0` (pre-loop), `1..=n-1` (counting the gap), `n` (post-loop,
/// accepting). 2n + 3 transitions.
pub fn pattern_nfa(n: usize) -> Nfa {
    assert!(n >= 1);
    // States: 0 = pre-loop; i ∈ [1, n] = i letters read since (and
    // including) the marked 'a'; n+1 = matching 'a' read, post-loop.
    // The gap between the two a's is n-1 letters, i.e. the matching 'a' is
    // the (n+1)-st letter after the mark started.
    let states = (n + 2) as u32;
    let mut a = Nfa::new(&['a', 'b'], states);
    a.set_initial(0);
    a.set_accepting((n + 1) as u32);
    // Pre: loop on anything; commit the marked 'a' (entering state 1).
    a.add_transition(0, 'a', 0);
    a.add_transition(0, 'b', 0);
    a.add_transition(0, 'a', 1);
    // Gap of n-1 arbitrary letters: states 1..n.
    for i in 1..n {
        a.add_transition(i as u32, 'a', (i + 1) as u32);
        a.add_transition(i as u32, 'b', (i + 1) as u32);
    }
    // The matching 'a' at distance exactly n from the mark.
    a.add_transition(n as u32, 'a', (n + 1) as u32);
    // Post: loop on anything.
    a.add_transition((n + 1) as u32, 'a', (n + 1) as u32);
    a.add_transition((n + 1) as u32, 'b', (n + 1) as u32);
    a
}

/// The exact automaton for `L_n` (length `2n` enforced): product of the
/// pattern automaton with `Σ^{2n}`, trimmed. Θ(n²) transitions.
pub fn exact_nfa(n: usize) -> Nfa {
    pattern_nfa(n).intersect(&sigma_exact(2 * n))
}

/// Reference membership predicate: does `w` (over `{a,b}`) belong to `L_n`?
pub fn word_in_ln(n: usize, w: &str) -> bool {
    let chars: Vec<char> = w.chars().collect();
    if chars.len() != 2 * n {
        return false;
    }
    (0..n).any(|k| chars[k] == 'a' && chars[k + n] == 'a')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambiguity::is_unambiguous;

    fn all_words(len: usize) -> Vec<String> {
        (0..(1usize << len))
            .map(|mask| {
                (0..len)
                    .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn membership_predicate() {
        assert!(word_in_ln(2, "abab"));
        assert!(word_in_ln(2, "baba"));
        assert!(!word_in_ln(2, "abba"));
        assert!(!word_in_ln(2, "bbbb"));
        assert!(!word_in_ln(2, "ab")); // wrong length
        assert!(word_in_ln(1, "aa"));
        assert!(!word_in_ln(1, "ab"));
    }

    #[test]
    fn exact_nfa_matches_predicate() {
        for n in 1..=5 {
            let a = exact_nfa(n);
            for w in all_words(2 * n) {
                assert_eq!(a.accepts(&w), word_in_ln(n, &w), "n={n} w={w}");
            }
            // And rejects wrong lengths.
            assert!(!a.accepts(&"a".repeat(2 * n + 1)));
            assert!(!a.accepts(&"a".repeat(2 * n - 1)));
        }
    }

    #[test]
    fn pattern_nfa_matches_on_promise_length() {
        for n in 1..=5 {
            let a = pattern_nfa(n);
            for w in all_words(2 * n) {
                assert_eq!(a.accepts(&w), word_in_ln(n, &w), "n={n} w={w}");
            }
        }
    }

    #[test]
    fn pattern_nfa_is_linear_size() {
        for n in [1usize, 4, 16, 64, 256] {
            let a = pattern_nfa(n);
            assert!(
                a.state_count() <= n + 2,
                "n={n}: {} states",
                a.state_count()
            );
            assert!(
                a.transition_count() <= 2 * n + 6,
                "n={n}: {} transitions",
                a.transition_count()
            );
        }
    }

    #[test]
    fn exact_nfa_is_quadratic_size() {
        for n in [2usize, 4, 8, 16] {
            let a = exact_nfa(n);
            let t = a.transition_count();
            assert!(t >= n * n / 2, "n={n}: only {t} transitions");
            assert!(t <= 8 * n * n, "n={n}: {t} transitions");
        }
    }

    #[test]
    fn ln_nfas_are_ambiguous() {
        // The guess-and-verify automaton has one run per witnessing pair, so
        // words with several matching pairs have several runs.
        for n in 2..=4 {
            assert!(!is_unambiguous(&exact_nfa(n)), "n={n}");
            let a = exact_nfa(n);
            let all_a = "a".repeat(2 * n);
            assert_eq!(a.run_count(&all_a).to_u64(), Some(n as u64));
        }
    }

    #[test]
    fn counts_match_direct_enumeration() {
        for n in 1..=5 {
            let a = exact_nfa(n);
            let expect = all_words(2 * n).iter().filter(|w| word_in_ln(n, w)).count() as u64;
            let counts = a.accepted_word_counts(2 * n);
            assert_eq!(counts[2 * n].to_u64(), Some(expect), "n={n}");
            for (l, c) in counts.iter().enumerate().take(2 * n) {
                assert_eq!(c.to_u64(), Some(0), "n={n} l={l}");
            }
        }
    }

    #[test]
    fn sigma_exact_counts() {
        let s = sigma_exact(3);
        let counts = s.accepted_word_counts(4);
        assert_eq!(counts[3].to_u64(), Some(8));
        assert_eq!(counts[2].to_u64(), Some(0));
        assert_eq!(counts[4].to_u64(), Some(0));
    }
}
