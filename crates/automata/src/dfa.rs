//! Deterministic finite automata: subset construction, counting,
//! minimisation, and equivalence.

use crate::nfa::{Nfa, State};
use std::collections::{BTreeSet, HashMap};
use ucfg_grammar::bignum::BigUint;

/// A (possibly partial) DFA. Missing transitions go to an implicit dead
/// state.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<char>,
    /// `delta[state][symbol]` = successor, or `None` (dead).
    delta: Vec<Vec<Option<State>>>,
    initial: State,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Build from explicit parts.
    pub fn from_parts(
        alphabet: Vec<char>,
        delta: Vec<Vec<Option<State>>>,
        initial: State,
        accepting: Vec<bool>,
    ) -> Self {
        assert_eq!(delta.len(), accepting.len());
        Dfa {
            alphabet,
            delta,
            initial,
            accepting,
        }
    }

    /// Subset construction from an NFA (only reachable subsets are built).
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let alphabet = nfa.alphabet().to_vec();
        let init: BTreeSet<State> = nfa.initial_states().iter().copied().collect();
        let mut ids: HashMap<BTreeSet<State>, State> = HashMap::new();
        let mut subsets: Vec<BTreeSet<State>> = Vec::new();
        let mut delta: Vec<Vec<Option<State>>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        ids.insert(init.clone(), 0);
        subsets.push(init);
        let mut next = 0usize;
        while next < subsets.len() {
            let cur = subsets[next].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for sym in 0..alphabet.len() {
                let mut succ = BTreeSet::new();
                for &s in &cur {
                    succ.extend(nfa.successors(s, sym).iter().copied());
                }
                if succ.is_empty() {
                    row.push(None);
                } else {
                    let id = *ids.entry(succ.clone()).or_insert_with(|| {
                        subsets.push(succ);
                        (subsets.len() - 1) as State
                    });
                    row.push(Some(id));
                }
            }
            delta.push(row);
            accepting.push(subsets[next].iter().any(|&s| nfa.is_accepting(s)));
            next += 1;
        }
        Dfa {
            alphabet,
            delta,
            initial: 0,
            accepting,
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// Number of (explicit) states.
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// Number of (explicit) transitions.
    pub fn transition_count(&self) -> usize {
        self.delta
            .iter()
            .map(|row| row.iter().flatten().count())
            .sum()
    }

    /// The initial state.
    pub fn initial(&self) -> State {
        self.initial
    }

    /// Is `s` accepting?
    pub fn is_accepting(&self, s: State) -> bool {
        self.accepting[s as usize]
    }

    /// The transition from `s` on symbol index `sym`.
    pub fn step(&self, s: State, sym: usize) -> Option<State> {
        self.delta[s as usize][sym]
    }

    /// Run the automaton.
    pub fn accepts(&self, w: &str) -> bool {
        let mut cur = self.initial;
        for c in w.chars() {
            let Some(sym) = self.alphabet.iter().position(|&x| x == c) else {
                return false;
            };
            match self.step(cur, sym) {
                Some(t) => cur = t,
                None => return false,
            }
        }
        self.accepting[cur as usize]
    }

    /// Number of accepted words per length `0..=max_len` (each word is one
    /// path, so path counting is word counting).
    pub fn accepted_word_counts(&self, max_len: usize) -> Vec<BigUint> {
        let n = self.state_count();
        let mut cur = vec![BigUint::zero(); n];
        cur[self.initial as usize] = BigUint::one();
        let mut out = Vec::with_capacity(max_len + 1);
        let count_accepting = |v: &[BigUint]| -> BigUint {
            v.iter()
                .enumerate()
                .filter(|(s, _)| self.accepting[*s])
                .map(|(_, c)| c.clone())
                .sum()
        };
        out.push(count_accepting(&cur));
        for _ in 1..=max_len {
            let mut next = vec![BigUint::zero(); n];
            for (s, c) in cur.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                for t in self.delta[s].iter().flatten() {
                    next[*t as usize] += c;
                }
            }
            cur = next;
            out.push(count_accepting(&cur));
        }
        out
    }

    /// Moore minimisation (with an implicit dead state). Returns the
    /// canonical minimal DFA for the same language, trimmed of dead states.
    pub fn minimized(&self) -> Dfa {
        let n = self.state_count();
        // Work over n+1 states, the last one dead/complete.
        let dead = n;
        let total = n + 1;
        let step_c = |s: usize, sym: usize| -> usize {
            if s == dead {
                dead
            } else {
                self.delta[s][sym].map(|t| t as usize).unwrap_or(dead)
            }
        };
        // Initial partition: accepting vs not (dead is non-accepting).
        let mut class = vec![0usize; total];
        for (s, c) in class.iter_mut().enumerate().take(n) {
            *c = usize::from(self.accepting[s]);
        }
        loop {
            // Signature: (class, classes of successors).
            let mut sig_ids: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next_class = vec![0usize; total];
            for s in 0..total {
                let sig = (
                    class[s],
                    (0..self.alphabet.len())
                        .map(|sym| class[step_c(s, sym)])
                        .collect(),
                );
                let fresh = sig_ids.len();
                next_class[s] = *sig_ids.entry(sig).or_insert(fresh);
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        // Build quotient, skipping the dead class.
        let dead_class = class[dead];
        let n_classes = class.iter().max().copied().unwrap_or(0) + 1;
        let mut remap: Vec<Option<State>> = vec![None; n_classes];
        let mut next_id = 0u32;
        for s in 0..n {
            if class[s] != dead_class && remap[class[s]].is_none() {
                remap[class[s]] = Some(next_id);
                next_id += 1;
            }
        }
        let mut delta = vec![vec![None; self.alphabet.len()]; next_id as usize];
        let mut accepting = vec![false; next_id as usize];
        for s in 0..n {
            let Some(id) = remap[class[s]] else { continue };
            accepting[id as usize] = self.accepting[s];
            for (sym, slot) in delta[id as usize].iter_mut().enumerate() {
                let t = step_c(s, sym);
                if class[t] != dead_class {
                    *slot = remap[class[t]];
                }
            }
        }
        let initial = match remap[class[self.initial as usize]] {
            Some(i) => i,
            None => {
                // The language is empty: single non-accepting initial state.
                return Dfa::from_parts(
                    self.alphabet.clone(),
                    vec![vec![None; self.alphabet.len()]],
                    0,
                    vec![false],
                );
            }
        };
        // Quotienting can keep unreachable classes; trim them.
        Dfa::from_parts(self.alphabet.clone(), delta, initial, accepting).reachable_only()
    }

    fn reachable_only(&self) -> Dfa {
        let n = self.state_count();
        let mut seen = vec![false; n];
        let mut stack = vec![self.initial as usize];
        seen[self.initial as usize] = true;
        while let Some(s) = stack.pop() {
            for t in self.delta[s].iter().flatten() {
                if !seen[*t as usize] {
                    seen[*t as usize] = true;
                    stack.push(*t as usize);
                }
            }
        }
        let mut remap = vec![None; n];
        let mut next = 0u32;
        for (s, &k) in seen.iter().enumerate() {
            if k {
                remap[s] = Some(next);
                next += 1;
            }
        }
        let mut delta = vec![vec![None; self.alphabet.len()]; next as usize];
        let mut accepting = vec![false; next as usize];
        for s in 0..n {
            let Some(id) = remap[s] else { continue };
            accepting[id as usize] = self.accepting[s];
            for (sym, slot) in delta[id as usize].iter_mut().enumerate() {
                *slot = self.delta[s][sym].and_then(|t| remap[t as usize]);
            }
        }
        Dfa::from_parts(
            self.alphabet.clone(),
            delta,
            remap[self.initial as usize].unwrap(),
            accepting,
        )
    }

    /// Language equivalence via product reachability of distinguishing
    /// pairs.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(self.alphabet, other.alphabet, "alphabets must match");
        // Pair (s, t) with Option for dead; BFS from (init, init).
        let mut seen: BTreeSet<(Option<State>, Option<State>)> = BTreeSet::new();
        let mut stack = vec![(Some(self.initial), Some(other.initial))];
        seen.insert(stack[0]);
        while let Some((s, t)) = stack.pop() {
            let acc_s = s.is_some_and(|x| self.accepting[x as usize]);
            let acc_t = t.is_some_and(|x| other.accepting[x as usize]);
            if acc_s != acc_t {
                return false;
            }
            if s.is_none() && t.is_none() {
                continue;
            }
            for sym in 0..self.alphabet.len() {
                let ns = s.and_then(|x| self.step(x, sym));
                let nt = t.and_then(|x| other.step(x, sym));
                if (ns.is_some() || nt.is_some()) && seen.insert((ns, nt)) {
                    stack.push((ns, nt));
                }
            }
        }
        true
    }

    /// Iterate the accepted words of length ≤ `max_len` in lexicographic
    /// order (alphabet order = the DFA's symbol order), with O(length)
    /// work per step — the enumeration primitive for DAWG-backed
    /// unambiguous representations.
    pub fn words_lex(&self, max_len: usize) -> LexWords<'_> {
        LexWords {
            dfa: self,
            stack: vec![(self.initial, 0)],
            word: Vec::new(),
            max_len,
        }
    }

    /// Complement restricted to words of length exactly `len` (the natural
    /// complement in the fixed-length world of the paper).
    pub fn complement_within_length(&self, len: usize) -> Dfa {
        // Complete product with the length counter.
        let n = self.state_count();
        let dead = n; // completed dead state of self
        let total = n + 1;
        let id = |s: usize, l: usize| (l * total + s) as State;
        let mut delta = vec![vec![None; self.alphabet.len()]; total * (len + 1)];
        let mut accepting = vec![false; total * (len + 1)];
        for l in 0..=len {
            for s in 0..total {
                let acc_here = s < n && self.accepting[s];
                if l == len && !acc_here {
                    accepting[id(s, l) as usize] = true;
                }
                if l < len {
                    let row = &mut delta[id(s, l) as usize];
                    for (sym, slot) in row.iter_mut().enumerate() {
                        let t = if s == dead {
                            dead
                        } else {
                            self.delta[s][sym].map_or(dead, |x| x as usize)
                        };
                        *slot = Some(id(t, l + 1));
                    }
                }
            }
        }
        Dfa::from_parts(
            self.alphabet.clone(),
            delta,
            id(self.initial as usize, 0),
            accepting,
        )
        .reachable_only()
    }
}

/// Brzozowski minimisation: determinise the reverse, reverse again,
/// determinise again. An independent cross-check of [`Dfa::minimized`]
/// (Moore) used by the property tests.
pub fn brzozowski_minimized(nfa: &crate::nfa::Nfa) -> Dfa {
    let rev = Dfa::from_nfa(&nfa.reversed());
    let back = crate::convert::dfa_to_nfa(&rev).reversed();
    Dfa::from_nfa(&back)
}

/// Iterator over a DFA's accepted words in lexicographic order; see
/// [`Dfa::words_lex`].
pub struct LexWords<'d> {
    dfa: &'d Dfa,
    /// `(state, next symbol index)` per depth; `usize::MAX` marks "just
    /// emitted this prefix, resume children from 0".
    stack: Vec<(State, usize)>,
    word: Vec<char>,
    max_len: usize,
}

impl<'d> Iterator for LexWords<'d> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        loop {
            let depth = self.stack.len();
            if depth == 0 {
                return None;
            }
            let (s, idx) = self.stack[depth - 1];
            // First visit: possibly emit this prefix (shorter words precede
            // their extensions in lex order).
            if idx == 0 && self.dfa.is_accepting(s) {
                self.stack[depth - 1].1 = usize::MAX; // mark emitted, restart at 0
                return Some(self.word.iter().collect());
            }
            let idx = if idx == usize::MAX {
                self.stack[depth - 1].1 = 0;
                0
            } else {
                idx
            };
            if self.word.len() >= self.max_len {
                self.stack.pop();
                self.word.pop();
                continue;
            }
            // Advance to the next existing child in alphabet order.
            let k = self.dfa.alphabet.len();
            let mut advanced = false;
            let mut i = idx;
            while i < k {
                if let Some(t) = self.dfa.step(s, i) {
                    self.stack[depth - 1].1 = i + 1;
                    self.word.push(self.dfa.alphabet[i]);
                    self.stack.push((t, 0));
                    advanced = true;
                    break;
                }
                i += 1;
            }
            if !advanced {
                self.stack.pop();
                self.word.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn astar_b_nfa() -> Nfa {
        let mut n = Nfa::new(&['a', 'b'], 2);
        n.set_initial(0);
        n.set_accepting(1);
        n.add_transition(0, 'a', 0);
        n.add_transition(0, 'b', 1);
        n
    }

    #[test]
    fn subset_construction_preserves_language() {
        let nfa = astar_b_nfa();
        let dfa = Dfa::from_nfa(&nfa);
        for w in ["b", "ab", "aaab"] {
            assert!(dfa.accepts(w), "{w}");
        }
        for w in ["", "a", "ba", "bb"] {
            assert!(!dfa.accepts(w), "{w}");
        }
    }

    #[test]
    fn word_counts_by_length() {
        let dfa = Dfa::from_nfa(&astar_b_nfa());
        // a^k b : exactly one word per length ≥ 1.
        let counts = dfa.accepted_word_counts(5);
        assert_eq!(counts[0].to_u64(), Some(0));
        for (l, c) in counts.iter().enumerate().take(6).skip(1) {
            assert_eq!(c.to_u64(), Some(1), "len {l}");
        }
    }

    #[test]
    fn ambiguous_nfa_counts_words_not_runs() {
        // Two parallel paths for "a": word count must still be 1.
        let mut n = Nfa::new(&['a'], 3);
        n.set_initial(0);
        n.set_accepting(1);
        n.set_accepting(2);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2);
        assert_eq!(n.run_count("a").to_u64(), Some(2));
        let counts = n.accepted_word_counts(1);
        assert_eq!(counts[1].to_u64(), Some(1));
    }

    #[test]
    fn minimization_collapses_equivalent_states() {
        // A bloated DFA for a*b with duplicated states.
        let delta = vec![
            vec![Some(1), Some(2)], // 0 --a--> 1, --b--> 2
            vec![Some(1), Some(3)], // 1 behaves like 0
            vec![None, None],       // 2 accepting
            vec![None, None],       // 3 accepting (same as 2)
        ];
        let dfa = Dfa::from_parts(vec!['a', 'b'], delta, 0, vec![false, false, true, true]);
        let min = dfa.minimized();
        assert_eq!(min.state_count(), 2);
        assert!(min.accepts("aab"));
        assert!(!min.accepts("aba"));
        assert!(min.equivalent(&dfa));
    }

    #[test]
    fn minimized_is_canonical_for_language() {
        let d1 = Dfa::from_nfa(&astar_b_nfa()).minimized();
        // Independent DFA for the same language.
        let delta = vec![vec![Some(0), Some(1)], vec![None, None]];
        let d2 = Dfa::from_parts(vec!['a', 'b'], delta, 0, vec![false, true]);
        assert!(d1.equivalent(&d2));
        assert_eq!(d1.state_count(), d2.minimized().state_count());
    }

    #[test]
    fn equivalence_detects_difference() {
        let d1 = Dfa::from_nfa(&astar_b_nfa());
        let delta = vec![vec![Some(1), None], vec![None, None]];
        let just_a = Dfa::from_parts(vec!['a', 'b'], delta, 0, vec![false, true]);
        assert!(!d1.equivalent(&just_a));
    }

    #[test]
    fn empty_language_minimizes_to_one_state() {
        let d = Dfa::from_parts(vec!['a'], vec![vec![None]], 0, vec![false]);
        let m = d.minimized();
        assert_eq!(m.state_count(), 1);
        assert!(!m.accepts(""));
        assert!(!m.accepts("a"));
    }

    #[test]
    fn brzozowski_agrees_with_moore() {
        // Same language and same state count as Moore minimisation.
        let nfa = astar_b_nfa();
        let brz = brzozowski_minimized(&nfa);
        let moore = Dfa::from_nfa(&nfa).minimized();
        assert!(brz.equivalent(&moore));
        assert_eq!(brz.state_count(), moore.state_count());

        // On the exact L_n automaton too.
        let nfa = crate::ln_nfa::exact_nfa(3);
        let brz = brzozowski_minimized(&nfa);
        let moore = Dfa::from_nfa(&nfa).minimized();
        assert!(brz.equivalent(&moore), "L_3");
        assert_eq!(brz.state_count(), moore.state_count(), "L_3");
    }

    #[test]
    fn lex_words_enumerates_in_order() {
        // a*b up to length 4: b, ab, aab, aaab — lexicographic with a < b.
        let dfa = Dfa::from_nfa(&astar_b_nfa());
        let words: Vec<String> = dfa.words_lex(4).collect();
        assert_eq!(words, vec!["aaab", "aab", "ab", "b"]);
        let mut sorted = words.clone();
        sorted.sort();
        assert_eq!(words, sorted, "already lex-sorted");
    }

    #[test]
    fn lex_words_on_dawg() {
        use crate::dawg::dawg_of_words;
        let input = ["ab", "abb", "ba", "bb"];
        let dawg = dawg_of_words(&['a', 'b'], input);
        let words: Vec<String> = dawg.words_lex(5).collect();
        assert_eq!(words, vec!["ab", "abb", "ba", "bb"]);
    }

    #[test]
    fn lex_words_includes_epsilon() {
        // DFA accepting {ε, a}.
        let d = Dfa::from_parts(
            vec!['a'],
            vec![vec![Some(1)], vec![None]],
            0,
            vec![true, true],
        );
        let words: Vec<String> = d.words_lex(3).collect();
        assert_eq!(words, vec!["", "a"]);
    }

    #[test]
    fn lex_words_respects_max_len() {
        let dfa = Dfa::from_nfa(&astar_b_nfa());
        assert_eq!(dfa.words_lex(1).collect::<Vec<_>>(), vec!["b"]);
        assert!(dfa.words_lex(0).collect::<Vec<_>>().is_empty());
    }

    #[test]
    fn complement_within_length() {
        let dfa = Dfa::from_nfa(&astar_b_nfa());
        let comp = dfa.complement_within_length(2);
        // Length-2 words: ab ∈ L, so complement = {aa, ba, bb}.
        assert!(!comp.accepts("ab"));
        for w in ["aa", "ba", "bb"] {
            assert!(comp.accepts(w), "{w}");
        }
        // Words of other lengths are never accepted.
        assert!(!comp.accepts("b"));
        assert!(!comp.accepts("aaa"));
    }
}
