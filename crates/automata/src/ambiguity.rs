//! Deciding unambiguity of NFAs.
//!
//! An NFA is *unambiguous* (a UFA) when every word has at most one accepting
//! run. The decision is the classic self-product criterion: after trimming,
//! the automaton is ambiguous iff the product automaton reaches a state pair
//! `(p, q)` with `p ≠ q` that is both reachable from an initial pair and
//! co-reachable from an accepting pair. This mirrors the role unambiguity
//! plays for CFGs in the paper (UFA questions are surveyed in its
//! introduction: \[11\], \[16\], \[32\]).

use crate::nfa::{Nfa, State};
use std::collections::BTreeSet;
use ucfg_grammar::bignum::BigUint;

/// Is the NFA unambiguous (every word has ≤ 1 accepting run)?
pub fn is_unambiguous(nfa: &Nfa) -> bool {
    let t = nfa.trimmed();
    let n = t.state_count() as State;
    if n == 0 {
        return true;
    }
    let pair = |a: State, b: State| (a * n + b) as usize;
    // Forward reachability over pairs.
    let mut fwd = vec![false; (n * n) as usize];
    let mut stack: Vec<(State, State)> = Vec::new();
    for &a in t.initial_states() {
        for &b in t.initial_states() {
            if !fwd[pair(a, b)] {
                fwd[pair(a, b)] = true;
                stack.push((a, b));
            }
        }
    }
    while let Some((a, b)) = stack.pop() {
        for sym in 0..t.alphabet().len() {
            for &ta in t.successors(a, sym) {
                for &tb in t.successors(b, sym) {
                    if !fwd[pair(ta, tb)] {
                        fwd[pair(ta, tb)] = true;
                        stack.push((ta, tb));
                    }
                }
            }
        }
    }
    // Backward co-reachability over pairs.
    let mut rev: Vec<Vec<(State, State)>> = vec![Vec::new(); (n * n) as usize];
    for a in 0..n {
        for b in 0..n {
            for sym in 0..t.alphabet().len() {
                for &ta in t.successors(a, sym) {
                    for &tb in t.successors(b, sym) {
                        rev[pair(ta, tb)].push((a, b));
                    }
                }
            }
        }
    }
    let mut bwd = vec![false; (n * n) as usize];
    let mut stack: Vec<(State, State)> = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if t.is_accepting(a) && t.is_accepting(b) && !bwd[pair(a, b)] {
                bwd[pair(a, b)] = true;
                stack.push((a, b));
            }
        }
    }
    while let Some((a, b)) = stack.pop() {
        for &(pa, pb) in &rev[pair(a, b)] {
            if !bwd[pair(pa, pb)] {
                bwd[pair(pa, pb)] = true;
                stack.push((pa, pb));
            }
        }
    }
    // Ambiguous iff some off-diagonal pair is live in both directions.
    for a in 0..n {
        for b in 0..n {
            if a != b && fwd[pair(a, b)] && bwd[pair(a, b)] {
                return false;
            }
        }
    }
    true
}

/// The ambiguity degrees of all accepted words of a given length:
/// `(word, #accepting runs)`, sorted by word. Exponential in `len`; for
/// experiment-scale checks.
pub fn ambiguity_profile(nfa: &Nfa, len: usize) -> Vec<(String, BigUint)> {
    let words: BTreeSet<String> = nfa.accepted_words(len);
    words
        .into_iter()
        .map(|w| {
            let c = nfa.run_count(&w);
            (w, c)
        })
        .collect()
}

/// Maximum ambiguity degree over accepted words of a given length.
pub fn max_ambiguity(nfa: &Nfa, len: usize) -> BigUint {
    ambiguity_profile(nfa, len)
        .into_iter()
        .map(|(_, c)| c)
        .max()
        .unwrap_or_else(BigUint::zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unambiguous_astar_b() -> Nfa {
        let mut n = Nfa::new(&['a', 'b'], 2);
        n.set_initial(0);
        n.set_accepting(1);
        n.add_transition(0, 'a', 0);
        n.add_transition(0, 'b', 1);
        n
    }

    fn ambiguous_double_path() -> Nfa {
        let mut n = Nfa::new(&['a'], 3);
        n.set_initial(0);
        n.set_accepting(1);
        n.set_accepting(2);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2);
        n
    }

    #[test]
    fn detects_unambiguous() {
        assert!(is_unambiguous(&unambiguous_astar_b()));
    }

    #[test]
    fn detects_ambiguous() {
        assert!(!is_unambiguous(&ambiguous_double_path()));
    }

    #[test]
    fn dead_branch_does_not_cause_ambiguity() {
        // Second path never reaches acceptance → still unambiguous.
        let mut n = Nfa::new(&['a'], 3);
        n.set_initial(0);
        n.set_accepting(1);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2); // dead
        assert!(is_unambiguous(&n));
    }

    #[test]
    fn multiple_initials_can_be_ambiguous() {
        let mut n = Nfa::new(&['a'], 2);
        n.set_initial(0);
        n.set_initial(1);
        n.set_accepting(0);
        n.set_accepting(1);
        // "a" from 0→0? no transitions; ε accepted twice? runs on ε: both
        // initial+accepting states give two runs of the empty word.
        assert!(!is_unambiguous(&n));
    }

    #[test]
    fn profile_and_max() {
        let n = ambiguous_double_path();
        let prof = ambiguity_profile(&n, 1);
        assert_eq!(prof.len(), 1);
        assert_eq!(prof[0].0, "a");
        assert_eq!(prof[0].1.to_u64(), Some(2));
        assert_eq!(max_ambiguity(&n, 1).to_u64(), Some(2));
        assert_eq!(max_ambiguity(&n, 2).to_u64(), Some(0));
    }

    #[test]
    fn empty_automaton_unambiguous() {
        let n = Nfa::new(&['a'], 0);
        assert!(is_unambiguous(&n));
    }
}
