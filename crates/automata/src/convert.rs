//! Conversions between automata and grammars.
//!
//! An NFA's right-linear grammar has one derivation per accepting run, so
//! the conversion preserves ambiguity degrees exactly: a DFA (or any UFA)
//! yields a uCFG. This is the bridge the experiments use to realise the
//! generic CFG → uCFG upper bound of \[20\] (materialise the finite language,
//! build its DAWG, read off the right-linear uCFG) and to compare automata
//! sizes with grammar sizes on an equal footing.

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use ucfg_grammar::{Grammar, GrammarBuilder};

/// Errors from the automaton → grammar conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The automaton accepts ε, which an ε-free right-linear grammar cannot.
    AcceptsEpsilon,
}

/// Right-linear grammar of an NFA (ε-free; derivations biject with
/// accepting runs).
///
/// Non-terminals: one per useful state plus a fresh start. Rules:
/// `S → Q_i` for each initial state, `Q_p → c Q_q` for each transition, and
/// `Q_p → c` for each transition into an accepting state.
pub fn nfa_to_grammar(nfa: &Nfa) -> Result<Grammar, ConvertError> {
    let t = nfa.trimmed();
    if t.initial_states().iter().any(|&s| t.is_accepting(s)) {
        return Err(ConvertError::AcceptsEpsilon);
    }
    let mut b = GrammarBuilder::new(t.alphabet());
    let start = b.nonterminal("S");
    let states: Vec<_> = (0..t.state_count())
        .map(|s| b.nonterminal(&format!("Q{s}")))
        .collect();
    for &i in t.initial_states() {
        let qi = states[i as usize];
        b.rule(start, |r| r.n(qi));
    }
    let alphabet = t.alphabet().to_vec();
    for p in 0..t.state_count() as u32 {
        for (sym, &c) in alphabet.iter().enumerate() {
            for &q in t.successors(p, sym) {
                let qp = states[p as usize];
                let qq = states[q as usize];
                // Continue the run…
                b.rule(qp, |r| r.t(c).n(qq));
                // …or end it here if q is accepting.
                if t.is_accepting(q) {
                    b.rule(qp, |r| r.t(c));
                }
            }
        }
    }
    Ok(ucfg_grammar::analysis::trim(&b.build(start)))
}

/// View a DFA as an NFA (used to reuse NFA algorithms and conversions).
pub fn dfa_to_nfa(dfa: &Dfa) -> Nfa {
    let mut n = Nfa::new(dfa.alphabet(), dfa.state_count() as u32);
    n.set_initial(dfa.initial());
    for s in 0..dfa.state_count() as u32 {
        if dfa.is_accepting(s) {
            n.set_accepting(s);
        }
        for (sym, &c) in dfa.alphabet().to_vec().iter().enumerate() {
            if let Some(t) = dfa.step(s, sym) {
                n.add_transition(s, c, t);
            }
        }
    }
    n
}

/// The right-linear grammar of a DFA. Because a DFA has at most one run per
/// word, the result is always an *unambiguous* CFG.
pub fn dfa_to_grammar(dfa: &Dfa) -> Result<Grammar, ConvertError> {
    nfa_to_grammar(&dfa_to_nfa(dfa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dawg::dawg_of_words;
    use ucfg_grammar::count::{decide_unambiguous, TreeCounter};
    use ucfg_grammar::language::finite_language;

    fn two_path_nfa() -> Nfa {
        // "aa" accepted along two distinct runs.
        let mut n = Nfa::new(&['a', 'b'], 4);
        n.set_initial(0);
        n.set_accepting(3);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2);
        n.add_transition(1, 'a', 3);
        n.add_transition(2, 'a', 3);
        n
    }

    #[test]
    fn grammar_language_matches_nfa() {
        let n = two_path_nfa();
        let g = nfa_to_grammar(&n).unwrap();
        let lang = finite_language(&g).unwrap();
        assert_eq!(lang.len(), 1);
        assert!(lang.contains("aa"));
    }

    #[test]
    fn derivations_match_runs() {
        let n = two_path_nfa();
        let g = nfa_to_grammar(&n).unwrap();
        let counter = TreeCounter::new(&g).unwrap();
        assert_eq!(counter.count_str("aa"), n.run_count("aa"));
        assert_eq!(counter.count_str("aa").to_u64(), Some(2));
    }

    #[test]
    fn dfa_grammar_is_unambiguous() {
        let dawg = dawg_of_words(&['a', 'b'], ["ab", "abb", "ba", "bb"]);
        let g = dfa_to_grammar(&dawg).unwrap();
        assert!(decide_unambiguous(&g).is_unambiguous());
        let lang = finite_language(&g).unwrap();
        assert_eq!(lang.len(), 4);
        for w in ["ab", "abb", "ba", "bb"] {
            assert!(lang.contains(w), "{w}");
        }
    }

    #[test]
    fn grammar_size_tracks_transitions() {
        let dawg = dawg_of_words(&['a', 'b'], ["aab", "bab", "bbb"]);
        let g = dfa_to_grammar(&dawg).unwrap();
        let nfa = dfa_to_nfa(&dawg);
        // Each transition contributes ≤ 3 to |G| (one binary rule + maybe a
        // terminal rule), plus one unit rule per initial state.
        assert!(g.size() <= 3 * nfa.transition_count() + nfa.initial_states().len());
    }

    #[test]
    fn epsilon_rejected() {
        let mut n = Nfa::new(&['a'], 1);
        n.set_initial(0);
        n.set_accepting(0);
        assert_eq!(
            nfa_to_grammar(&n).unwrap_err(),
            ConvertError::AcceptsEpsilon
        );
    }

    #[test]
    fn dfa_to_nfa_same_language() {
        let dawg = dawg_of_words(&['a', 'b'], ["ab", "ba"]);
        let n = dfa_to_nfa(&dawg);
        for w in ["ab", "ba"] {
            assert!(n.accepts(w));
        }
        for w in ["aa", "bb", "a", "aba"] {
            assert!(!n.accepts(w));
        }
    }
}
