//! Regular expressions and the Glushkov (position) construction.
//!
//! A small regex language (`|`, concatenation, `*`, `+`, `?`, parentheses,
//! literal characters) with a recursive-descent parser and the
//! ε-transition-free Glushkov automaton: one state per letter *position*
//! plus an initial state, built from the classic nullable/first/last/follow
//! sets. Used to assemble input languages for the experiments (pattern
//! automata, encoded domains) and as another substrate the paper's world
//! relies on (regular spanners are regex-shaped).
//!
//! The Glushkov automaton of a *one-unambiguous* expression is
//! deterministic; in general it has one accepting run per *witness
//! parse* of the word — the tests exercise both regimes.
//!
//! ```
//! use ucfg_automata::regex::Regex;
//!
//! let r = Regex::parse("(a|b)*abb").unwrap();
//! let nfa = r.glushkov();
//! assert!(nfa.accepts("ababb"));
//! assert!(!nfa.accepts("abab"));
//! assert_eq!(nfa.state_count(), 6); // 5 letter positions + the initial state
//! ```

use crate::nfa::Nfa;
use std::fmt;

/// A regular expression AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single letter.
    Letter(char),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable message.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    _src: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    // alt := cat ('|' cat)*
    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut left = self.cat()?;
        while self.peek() == Some('|') {
            self.bump();
            let right = self.cat()?;
            left = Regex::Alt(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // cat := postfix*
    fn cat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.postfix()?);
        }
        Ok(match parts.len() {
            0 => Regex::Epsilon,
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("nonempty");
                it.fold(first, |acc, r| Regex::Concat(Box::new(acc), Box::new(r)))
            }
        })
    }

    // postfix := atom ('*' | '+' | '?')*
    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        while let Some(c) = self.peek() {
            match c {
                '*' => {
                    self.bump();
                    r = Regex::Star(Box::new(r));
                }
                '+' => {
                    self.bump();
                    r = Regex::Concat(Box::new(r.clone()), Box::new(Regex::Star(Box::new(r))));
                }
                '?' => {
                    self.bump();
                    r = Regex::Alt(Box::new(r), Box::new(Regex::Epsilon));
                }
                _ => break,
            }
        }
        Ok(r)
    }

    // atom := '(' alt ')' | literal
    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alt()?;
                if self.bump() != Some(')') {
                    return Err(ParseError {
                        at: self.pos,
                        msg: "expected ')'",
                    });
                }
                Ok(inner)
            }
            Some(c) if !"|)*+?".contains(c) => {
                self.bump();
                Ok(Regex::Letter(c))
            }
            _ => Err(ParseError {
                at: self.pos,
                msg: "expected atom",
            }),
        }
    }
}

impl Regex {
    /// Parse a regex from the mini-syntax.
    pub fn parse(src: &str) -> Result<Regex, ParseError> {
        let mut p = Parser {
            chars: src.chars().collect(),
            pos: 0,
            _src: src,
        };
        let r = p.alt()?;
        if p.pos != p.chars.len() {
            return Err(ParseError {
                at: p.pos,
                msg: "trailing input",
            });
        }
        Ok(r)
    }

    /// Does the expression accept ε?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Letter(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Reference matcher (backtracking over suffix positions) — the
    /// independent oracle for the Glushkov construction.
    pub fn matches(&self, w: &str) -> bool {
        let chars: Vec<char> = w.chars().collect();
        self.match_spans(&chars, 0).contains(&chars.len())
    }

    /// All end positions reachable by matching a prefix of `w[from..]`.
    fn match_spans(&self, w: &[char], from: usize) -> Vec<usize> {
        let mut out = match self {
            Regex::Empty => Vec::new(),
            Regex::Epsilon => vec![from],
            Regex::Letter(c) => {
                if w.get(from) == Some(c) {
                    vec![from + 1]
                } else {
                    Vec::new()
                }
            }
            Regex::Concat(a, b) => {
                let mut ends = Vec::new();
                for mid in a.match_spans(w, from) {
                    ends.extend(b.match_spans(w, mid));
                }
                ends
            }
            Regex::Alt(a, b) => {
                let mut ends = a.match_spans(w, from);
                ends.extend(b.match_spans(w, from));
                ends
            }
            Regex::Star(a) => {
                let mut seen = vec![from];
                let mut frontier = vec![from];
                while let Some(p) = frontier.pop() {
                    for e in a.match_spans(w, p) {
                        if e > p && !seen.contains(&e) {
                            seen.push(e);
                            frontier.push(e);
                        }
                    }
                }
                seen
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The letters occurring in the expression, in first-occurrence order.
    pub fn alphabet(&self) -> Vec<char> {
        let mut out = Vec::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet(&self, out: &mut Vec<char>) {
        match self {
            Regex::Letter(c) if !out.contains(c) => out.push(*c),
            Regex::Letter(_) => {}
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_alphabet(out);
                b.collect_alphabet(out);
            }
            Regex::Star(a) => a.collect_alphabet(out),
            _ => {}
        }
    }

    /// The Glushkov automaton: state 0 is initial; state `i ≥ 1` is letter
    /// position `i` of the expression.
    pub fn glushkov(&self) -> Nfa {
        // Number the positions and compute first/last/follow.
        let mut letters: Vec<char> = Vec::new();
        #[derive(Clone)]
        struct Sets {
            nullable: bool,
            first: Vec<u32>,
            last: Vec<u32>,
        }
        fn go(r: &Regex, letters: &mut Vec<char>, follow: &mut Vec<Vec<u32>>) -> Sets {
            match r {
                Regex::Empty => Sets {
                    nullable: false,
                    first: vec![],
                    last: vec![],
                },
                Regex::Epsilon => Sets {
                    nullable: true,
                    first: vec![],
                    last: vec![],
                },
                Regex::Letter(c) => {
                    letters.push(*c);
                    follow.push(Vec::new());
                    let p = letters.len() as u32; // 1-based position
                    Sets {
                        nullable: false,
                        first: vec![p],
                        last: vec![p],
                    }
                }
                Regex::Concat(a, b) => {
                    let sa = go(a, letters, follow);
                    let sb = go(b, letters, follow);
                    for &l in &sa.last {
                        follow[(l - 1) as usize].extend(sb.first.iter().copied());
                    }
                    let mut first = sa.first.clone();
                    if sa.nullable {
                        first.extend(sb.first.iter().copied());
                    }
                    let mut last = sb.last.clone();
                    if sb.nullable {
                        last.extend(sa.last.iter().copied());
                    }
                    Sets {
                        nullable: sa.nullable && sb.nullable,
                        first,
                        last,
                    }
                }
                Regex::Alt(a, b) => {
                    let sa = go(a, letters, follow);
                    let sb = go(b, letters, follow);
                    let mut first = sa.first;
                    first.extend(sb.first);
                    let mut last = sa.last;
                    last.extend(sb.last);
                    Sets {
                        nullable: sa.nullable || sb.nullable,
                        first,
                        last,
                    }
                }
                Regex::Star(a) => {
                    let sa = go(a, letters, follow);
                    for &l in &sa.last {
                        follow[(l - 1) as usize].extend(sa.first.iter().copied());
                    }
                    Sets {
                        nullable: true,
                        first: sa.first,
                        last: sa.last,
                    }
                }
            }
        }
        let mut follow: Vec<Vec<u32>> = Vec::new();
        let sets = go(self, &mut letters, &mut follow);
        let alphabet = self.alphabet();
        let alphabet = if alphabet.is_empty() {
            vec!['a']
        } else {
            alphabet
        };
        let mut nfa = Nfa::new(&alphabet, letters.len() as u32 + 1);
        nfa.set_initial(0);
        if sets.nullable {
            nfa.set_accepting(0);
        }
        for &p in &sets.last {
            nfa.set_accepting(p);
        }
        for &p in &sets.first {
            nfa.add_transition(0, letters[(p - 1) as usize], p);
        }
        for (i, fols) in follow.iter().enumerate() {
            for &q in fols {
                nfa.add_transition(i as u32 + 1, letters[(q - 1) as usize], q);
            }
        }
        nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambiguity::is_unambiguous;

    fn check(pattern: &str, accepted: &[&str], rejected: &[&str]) {
        let r = Regex::parse(pattern).unwrap();
        let nfa = r.glushkov();
        for w in accepted {
            assert!(r.matches(w), "{pattern} should match {w}");
            assert!(nfa.accepts(w), "Glushkov({pattern}) should accept {w}");
        }
        for w in rejected {
            assert!(!r.matches(w), "{pattern} should not match {w}");
            assert!(!nfa.accepts(w), "Glushkov({pattern}) should reject {w}");
        }
    }

    #[test]
    fn basic_patterns() {
        check("ab", &["ab"], &["a", "b", "ba", ""]);
        check("a|b", &["a", "b"], &["ab", ""]);
        check("a*", &["", "a", "aaa"], &["b", "ab"]);
        check("a+", &["a", "aa"], &["", "b"]);
        check("a?b", &["b", "ab"], &["a", "aab"]);
        check(
            "(a|b)*abb",
            &["abb", "aabb", "babb", "ababb"],
            &["ab", "ba", ""],
        );
    }

    #[test]
    fn glushkov_agrees_with_oracle_exhaustively() {
        for pattern in ["(a|b)*a(a|b)", "a(ba)*b?", "((a|b)(a|b))*", "a*b*a*"] {
            let r = Regex::parse(pattern).unwrap();
            let nfa = r.glushkov();
            for len in 0..=6usize {
                for mask in 0..(1u32 << len) {
                    let w: String = (0..len)
                        .map(|i| if mask >> i & 1 == 1 { 'a' } else { 'b' })
                        .collect();
                    assert_eq!(nfa.accepts(&w), r.matches(&w), "{pattern} on {w}");
                }
            }
        }
    }

    #[test]
    fn glushkov_size_is_positions_plus_one() {
        let r = Regex::parse("(a|b)*abb").unwrap();
        assert_eq!(r.glushkov().state_count(), 6); // 5 letters + initial
    }

    #[test]
    fn one_unambiguous_expression_gives_ufa() {
        // a*b is one-unambiguous → the Glushkov automaton is a UFA
        // (here even deterministic).
        let r = Regex::parse("a*b").unwrap();
        assert!(is_unambiguous(&r.glushkov()));
    }

    #[test]
    fn ambiguous_expression_gives_ambiguous_nfa() {
        // (a|a) is maximally not one-unambiguous.
        let r = Regex::parse("a|a").unwrap();
        let nfa = r.glushkov();
        assert!(nfa.accepts("a"));
        assert!(!is_unambiguous(&nfa));
        assert_eq!(nfa.run_count("a").to_u64(), Some(2));
    }

    #[test]
    fn ln_pattern_regex() {
        // The Σ* a Σ^{n-1} a Σ* pattern of Theorem 1(2), n = 3.
        let r = Regex::parse("(a|b)*a(a|b)(a|b)a(a|b)*").unwrap();
        let nfa = r.glushkov();
        for w in 0..(1u64 << 6) {
            let word: String = (0..6)
                .map(|i| if w >> i & 1 == 1 { 'a' } else { 'b' })
                .collect();
            let expect =
                (0..3).any(|i| word.as_bytes()[i] == b'a' && word.as_bytes()[i + 3] == b'a');
            assert_eq!(nfa.accepts(&word), expect, "{word}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(a").is_err());
        assert!(Regex::parse("a)").is_err());
        assert!(Regex::parse("*a").is_err());
        assert_eq!(Regex::parse("").unwrap(), Regex::Epsilon);
    }

    #[test]
    fn nullable_computation() {
        assert!(Regex::parse("a*").unwrap().nullable());
        assert!(Regex::parse("a?b?").unwrap().nullable());
        assert!(!Regex::parse("a|bb").unwrap().nullable());
    }
}
