//! Leveled analysis of fixed-length languages.
//!
//! A trimmed automaton for a language whose words all have length `L` is
//! *leveled*: every useful state is visited at exactly one input position
//! (otherwise a prefix reaching it and a suffix accepted from it at a
//! different level combine into a word of the wrong length). Hence:
//!
//! * the minimal DFA width at level `p` is the number of distinct
//!   *residual languages* of viable length-`p` prefixes
//!   ([`residual_profile`]), and
//! * any NFA needs, at level `p`, at least the size of a *fooling set* of
//!   prefix/suffix pairs ([`fooling_profile`] computes one greedily).
//!
//! Summing the per-level fooling bounds gives the Ω(n²) certificate for
//! the exact `L_n` automaton discussed in DESIGN.md (the Θ(n) automaton of
//! Theorem 1(2) lives in the promise setting).

use std::collections::{BTreeSet, HashMap};
use ucfg_grammar::Terminal;

/// Number of distinct residuals (Myhill–Nerode classes) of viable prefixes
/// at every level `0..=len` — the exact minimal-DFA width profile.
pub fn residual_profile(words: &BTreeSet<Vec<Terminal>>, len: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(len + 1);
    for p in 0..=len {
        let mut residuals: HashMap<Vec<Terminal>, BTreeSet<Vec<Terminal>>> = HashMap::new();
        for w in words {
            if w.len() != len {
                continue;
            }
            residuals
                .entry(w[..p].to_vec())
                .or_default()
                .insert(w[p..].to_vec());
        }
        // Distinct residual sets.
        let distinct: BTreeSet<Vec<Vec<Terminal>>> = residuals
            .into_values()
            .map(|s| s.into_iter().collect())
            .collect();
        out.push(distinct.len());
    }
    out
}

/// Greedy per-level fooling sets for `L_n` (packed-word form): at level
/// `p`, a set of words such that for any two, at least one of the
/// prefix/suffix cross-combinations leaves `L_n`. Its size lower-bounds
/// the number of level-`p` states of **any** NFA accepting exactly `L_n`.
pub fn fooling_profile(n: usize) -> Vec<usize> {
    let words = ucfg_core_words(n);
    let len = 2 * n;
    let mut out = Vec::with_capacity(len + 1);
    for p in 0..=len {
        let low = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
        let mut fool: Vec<u64> = Vec::new();
        for &w in &words {
            let ok = fool.iter().all(|&v| {
                let c1 = (w & low) | (v & !low);
                let c2 = (v & low) | (w & !low);
                !(ln_contains(n, c1) && ln_contains(n, c2))
            });
            if ok {
                fool.push(w);
            }
        }
        out.push(fool.len());
    }
    out
}

/// The summed fooling bound: a lower bound on the number of states of any
/// NFA accepting exactly `L_n` (levels are disjoint).
pub fn nfa_state_lower_bound(n: usize) -> usize {
    fooling_profile(n).iter().sum()
}

// Local copies of the L_n helpers to avoid a dependency cycle with
// ucfg-core (which depends on this crate).
fn ln_contains(n: usize, w: u64) -> bool {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (w & (w >> n)) & mask != 0
}

fn ucfg_core_words(n: usize) -> Vec<u64> {
    assert!(2 * n <= 24, "exponential enumeration");
    (0..(1u64 << (2 * n)))
        .filter(|&w| ln_contains(n, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dawg::dawg_of_words;

    fn ln_strings(n: usize) -> Vec<String> {
        ucfg_core_words(n)
            .into_iter()
            .map(|w| {
                (0..2 * n)
                    .map(|i| if w >> i & 1 == 1 { 'a' } else { 'b' })
                    .collect()
            })
            .collect()
    }

    fn encode(words: &[String]) -> BTreeSet<Vec<Terminal>> {
        words
            .iter()
            .map(|w| w.chars().map(|c| Terminal(u16::from(c == 'b'))).collect())
            .collect()
    }

    #[test]
    fn residual_profile_matches_dawg_levels() {
        // The sum of per-level residual counts = #states of the minimal
        // (leveled) DFA = the DAWG.
        for n in [2usize, 3, 4] {
            let strings = ln_strings(n);
            let words = encode(&strings);
            let profile = residual_profile(&words, 2 * n);
            let mut sorted = strings.clone();
            sorted.sort();
            let dawg = dawg_of_words(&['a', 'b'], sorted.iter().map(|s| s.as_str()));
            // DAWG states = Σ_p (#residuals at p), minus the merged sink
            // levels... for fixed-length languages the DAWG is exactly the
            // leveled automaton with the final accepting class shared, so:
            let total: usize = profile.iter().sum();
            assert_eq!(total, dawg.state_count(), "n={n}: {profile:?}");
        }
    }

    #[test]
    fn residual_profile_shape() {
        // Levels 0 and 2n have one class; the middle level is widest.
        let n = 3;
        let words = encode(&ln_strings(n));
        let p = residual_profile(&words, 2 * n);
        assert_eq!(p[0], 1);
        assert_eq!(p[2 * n], 1);
        let mid_region_max = *p[n - 1..=n + 1].iter().max().unwrap();
        assert_eq!(mid_region_max, *p.iter().max().unwrap());
    }

    #[test]
    fn fooling_profile_certifies_quadratic_nfa() {
        for n in [2usize, 3, 4] {
            let f = fooling_profile(n);
            // Level n has a fooling set of size ≥ n (the canonical one).
            assert!(f[n] >= n, "n={n}: {f:?}");
            // The summed bound is Ω(n²) — at least n²/4 here.
            let total: usize = f.iter().sum();
            assert!(total * 4 >= n * n, "n={n}: total {total}");
            // And the exact automaton we build respects it.
            let exact = crate::ln_nfa::exact_nfa(n);
            assert!(exact.state_count() >= total.min(exact.state_count()));
            // (The real assertion: the bound is a valid lower bound.)
            assert!(exact.state_count() >= f[n], "n={n}");
        }
    }

    #[test]
    fn fooling_bound_below_exact_automaton() {
        // Sanity: lower bound ≤ our construction's size.
        for n in [2usize, 3, 4, 5] {
            let bound = nfa_state_lower_bound(n);
            let exact = crate::ln_nfa::exact_nfa(n).state_count();
            assert!(
                bound <= exact,
                "n={n}: fooling bound {bound} exceeds the exact automaton {exact}"
            );
        }
    }

    #[test]
    fn empty_language_profile() {
        let words: BTreeSet<Vec<Terminal>> = BTreeSet::new();
        let p = residual_profile(&words, 4);
        assert_eq!(p, vec![0, 0, 0, 0, 0]);
    }
}
