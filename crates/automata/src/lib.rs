//! # ucfg-automata — finite-automata substrate
//!
//! Automata support for the PODS 2025 uCFG lower-bound reproduction:
//!
//! * [`nfa`] / [`dfa`] — ε-free NFAs, subset construction, Moore
//!   minimisation, counting accepted words with exact big-integer
//!   arithmetic;
//! * [`ambiguity`] — the self-product decision procedure for unambiguous
//!   NFAs (UFAs), the automaton analogue of the paper's central notion;
//! * [`ln_nfa`] — the automata of Theorem 1(2): the Θ(n) guess-and-verify
//!   pattern automaton and the exact (length-checked) Θ(n²) automaton for
//!   `L_n`;
//! * [`dawg`] — minimal acyclic DFAs from sorted word lists, the canonical
//!   unambiguous baseline representation;
//! * [`convert`] — right-linear grammars of automata (run ↔ derivation
//!   bijection), bridging to the grammar world.
//!
//! # Example
//!
//! ```
//! use ucfg_automata::dawg::dawg_of_words;
//! use ucfg_automata::ambiguity::is_unambiguous;
//! use ucfg_automata::convert::{dfa_to_grammar, dfa_to_nfa};
//!
//! // The minimal DFA of a word set, its (unambiguous) NFA view, and its
//! // right-linear uCFG.
//! let dawg = dawg_of_words(&['a', 'b'], ["ab", "abb", "ba"]);
//! assert!(dawg.accepts("abb") && !dawg.accepts("bb"));
//! assert!(is_unambiguous(&dfa_to_nfa(&dawg)));
//! let grammar = dfa_to_grammar(&dawg).unwrap();
//! assert!(grammar.size() > 0);
//! ```

#![warn(missing_docs)]

pub mod ambiguity;
pub mod convert;
pub mod dawg;
pub mod degree;
pub mod dfa;
pub mod intersect;
pub mod leveled;
pub mod ln_nfa;
pub mod nfa;
pub mod regex;

pub use dfa::Dfa;
pub use nfa::Nfa;
