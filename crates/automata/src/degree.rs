//! Degree-of-ambiguity classification for NFAs.
//!
//! Beyond the yes/no of [`crate::ambiguity`], the growth of the ambiguity
//! function `amb(ℓ) = max_w,|w|=ℓ #accepting runs(w)` classifies automata
//! into unambiguous / finitely / polynomially / exponentially ambiguous —
//! the hierarchy from the unambiguity literature the paper's introduction
//! surveys (\[11\], Weber–Seidl criteria):
//!
//! * **EDA** (∃ a state with two distinct loops on the same word — a
//!   same-SCC off-diagonal pair in the self-product) ⇔ exponential
//!   ambiguity;
//! * **IDA** (∃ `p ≠ q` and `v` with `p →v p`, `p →v q`, `q →v q` —
//!   detected in the triple product) ⇔ polynomial (unbounded) ambiguity;
//! * neither ⇒ finite ambiguity (bounded by a constant).

use crate::nfa::{Nfa, State};
use std::collections::BTreeSet;

/// The ambiguity classes, in increasing order of growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AmbiguityClass {
    /// Every word has at most one accepting run.
    Unambiguous,
    /// `amb(ℓ) = O(1)` but some word has ≥ 2 runs.
    Finite,
    /// `amb(ℓ)` grows polynomially (IDA holds, EDA does not).
    Polynomial,
    /// `amb(ℓ)` grows exponentially (EDA holds).
    Exponential,
}

/// Does the (trimmed) automaton satisfy the EDA criterion?
pub fn has_eda(nfa: &Nfa) -> bool {
    let t = nfa.trimmed();
    let n = t.state_count() as State;
    if n == 0 {
        return false;
    }
    // Product graph on pairs; SCCs via iterative Tarjan.
    let pair = |a: State, b: State| (a * n + b) as usize;
    let total = (n * n) as usize;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
    for a in 0..n {
        for b in 0..n {
            for sym in 0..t.alphabet().len() {
                for &ta in t.successors(a, sym) {
                    for &tb in t.successors(b, sym) {
                        adj[pair(a, b)].push(pair(ta, tb));
                    }
                }
            }
        }
    }
    let comp = scc(&adj);
    // EDA ⇔ some SCC contains a diagonal pair (p,p) and an off-diagonal
    // pair (r,s).
    let mut has_diag = vec![false; total];
    let mut has_off = vec![false; total];
    for a in 0..n {
        for b in 0..n {
            let c = comp[pair(a, b)];
            if a == b {
                has_diag[c] = true;
            } else {
                has_off[c] = true;
            }
        }
    }
    // Only SCCs with at least one edge inside count as loops.
    let mut has_loop = vec![false; total];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            if comp[v] == comp[w] {
                has_loop[comp[v]] = true;
            }
        }
    }
    (0..total).any(|c| has_diag[c] && has_off[c] && has_loop[c])
}

/// Does the (trimmed) automaton satisfy the IDA criterion?
pub fn has_ida(nfa: &Nfa) -> bool {
    let t = nfa.trimmed();
    let n = t.state_count() as State;
    if n == 0 {
        return false;
    }
    // Triple product: reachability from (p, p, q) to (p, q, q) for p ≠ q.
    let trip = |a: State, b: State, c: State| ((a * n + b) * n + c) as usize;
    let total = (n as usize).pow(3);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                for sym in 0..t.alphabet().len() {
                    for &ta in t.successors(a, sym) {
                        for &tb in t.successors(b, sym) {
                            for &tc in t.successors(c, sym) {
                                adj[trip(a, b, c)].push(trip(ta, tb, tc));
                            }
                        }
                    }
                }
            }
        }
    }
    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            // BFS from (p, p, q) looking for (p, q, q).
            let src = trip(p, p, q);
            let dst = trip(p, q, q);
            let mut seen = vec![false; total];
            let mut stack = vec![src];
            seen[src] = true;
            let mut found = false;
            while let Some(v) = stack.pop() {
                if v == dst {
                    found = true;
                    break;
                }
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            if found {
                return true;
            }
        }
    }
    false
}

/// Classify the ambiguity growth of an NFA.
pub fn classify(nfa: &Nfa) -> AmbiguityClass {
    if crate::ambiguity::is_unambiguous(nfa) {
        return AmbiguityClass::Unambiguous;
    }
    if has_eda(nfa) {
        return AmbiguityClass::Exponential;
    }
    if has_ida(nfa) {
        return AmbiguityClass::Polynomial;
    }
    AmbiguityClass::Finite
}

/// Empirical ambiguity profile: `max_w,|w|=ℓ #runs(w)` for
/// `ℓ ∈ 0..=max_len` (exponential scan; used to validate the
/// classification on small automata).
pub fn ambiguity_growth(nfa: &Nfa, max_len: usize) -> Vec<u64> {
    let alphabet: Vec<char> = nfa.alphabet().to_vec();
    let mut out = Vec::with_capacity(max_len + 1);
    let mut words: Vec<String> = vec![String::new()];
    for l in 0..=max_len {
        let max = words
            .iter()
            .map(|w| nfa.run_count(w).to_u64().unwrap_or(u64::MAX))
            .max()
            .unwrap_or(0);
        out.push(max);
        if l < max_len {
            words = words
                .iter()
                .flat_map(|w| {
                    alphabet.iter().map(move |&c| {
                        let mut x = w.clone();
                        x.push(c);
                        x
                    })
                })
                .collect();
        }
    }
    out
}

/// Iterative Tarjan SCC over an explicit adjacency list.
fn scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Distinct states visited by any accepting run of length ≤ `len` (debug
/// helper for the tests).
pub fn active_states(nfa: &Nfa, len: usize) -> BTreeSet<State> {
    let t = nfa.trimmed();
    let mut seen: BTreeSet<State> = t.initial_states().iter().copied().collect();
    let mut frontier = seen.clone();
    for _ in 0..len {
        let mut next = BTreeSet::new();
        for &s in &frontier {
            for sym in 0..t.alphabet().len() {
                next.extend(t.successors(s, sym).iter().copied());
            }
        }
        seen.extend(next.iter().copied());
        frontier = next;
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic a*b.
    fn dfa_like() -> Nfa {
        let mut n = Nfa::new(&['a', 'b'], 2);
        n.set_initial(0);
        n.set_accepting(1);
        n.add_transition(0, 'a', 0);
        n.add_transition(0, 'b', 1);
        n
    }

    /// Two parallel accepting paths for "a": finite ambiguity (exactly 2).
    fn finitely_ambiguous() -> Nfa {
        let mut n = Nfa::new(&['a'], 3);
        n.set_initial(0);
        n.set_accepting(1);
        n.set_accepting(2);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2);
        n.add_transition(1, 'a', 1);
        n.add_transition(2, 'a', 2);
        n
    }

    /// "Some position carries a": linear ambiguity (one run per a).
    fn polynomially_ambiguous() -> Nfa {
        let mut n = Nfa::new(&['a', 'b'], 2);
        n.set_initial(0);
        n.set_accepting(1);
        for c in ['a', 'b'] {
            n.add_transition(0, c, 0);
            n.add_transition(1, c, 1);
        }
        n.add_transition(0, 'a', 1);
        n
    }

    /// Two loops at one state on the same letter: exponential ambiguity.
    fn exponentially_ambiguous() -> Nfa {
        let mut n = Nfa::new(&['a'], 2);
        n.set_initial(0);
        n.set_accepting(0);
        n.add_transition(0, 'a', 0);
        n.add_transition(0, 'a', 1);
        n.add_transition(1, 'a', 0);
        n
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&dfa_like()), AmbiguityClass::Unambiguous);
        assert_eq!(classify(&finitely_ambiguous()), AmbiguityClass::Finite);
        assert_eq!(
            classify(&polynomially_ambiguous()),
            AmbiguityClass::Polynomial
        );
        assert_eq!(
            classify(&exponentially_ambiguous()),
            AmbiguityClass::Exponential
        );
    }

    #[test]
    fn growth_matches_classification() {
        // Finite: bounded by 2.
        let g = ambiguity_growth(&finitely_ambiguous(), 8);
        assert!(g.iter().all(|&x| x <= 2));
        assert!(g.contains(&2));

        // Polynomial: grows linearly (run count of a^ℓ is ℓ).
        let g = ambiguity_growth(&polynomially_ambiguous(), 8);
        assert_eq!(g[8], 8);
        assert_eq!(g[4], 4);

        // Exponential: Fibonacci-like growth.
        let g = ambiguity_growth(&exponentially_ambiguous(), 10);
        assert!(g[10] > 2 * g[8], "{g:?}");
    }

    #[test]
    fn eda_implies_ida_style_ordering() {
        // EDA examples also have unbounded ambiguity; classification picks
        // the stronger class.
        assert!(has_eda(&exponentially_ambiguous()));
        assert!(!has_eda(&polynomially_ambiguous()));
        assert!(has_ida(&polynomially_ambiguous()));
        assert!(!has_ida(&finitely_ambiguous()));
        assert!(!has_eda(&dfa_like()));
        assert!(!has_ida(&dfa_like()));
    }

    #[test]
    fn ln_pattern_automaton_is_polynomially_ambiguous() {
        // The guess-and-verify automaton for L_n: one run per witnessing
        // pair → at most n runs on length-2n words, but over Σ* its
        // ambiguity grows with the word length: IDA, not EDA.
        let a = crate::ln_nfa::pattern_nfa(3);
        assert_eq!(classify(&a), AmbiguityClass::Polynomial);
    }

    #[test]
    fn exact_ln_automaton_is_finitely_ambiguous() {
        // The length-checked automaton is acyclic: ambiguity ≤ n, a
        // constant per automaton → finite class.
        let a = crate::ln_nfa::exact_nfa(3);
        let cls = classify(&a);
        assert_eq!(cls, AmbiguityClass::Finite);
        let g = ambiguity_growth(&a, 6);
        assert_eq!(g.iter().max().copied(), Some(3), "max runs = n witnesses");
    }

    #[test]
    fn active_states_monotone() {
        let a = dfa_like();
        let s2 = active_states(&a, 2);
        let s4 = active_states(&a, 4);
        assert!(s2.is_subset(&s4));
    }
}
