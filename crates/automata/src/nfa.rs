//! Nondeterministic finite automata.
//!
//! ε-free NFAs over `char` alphabets with possibly several initial states.
//! The size measure reported in the experiments is the transition count
//! (plus states where stated), mirroring how the paper sizes representations
//! by the sum of their parts.

use std::collections::BTreeSet;
use ucfg_grammar::bignum::BigUint;

/// State id.
pub type State = u32;

/// An ε-free NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Vec<char>,
    n_states: u32,
    initial: Vec<State>,
    accepting: Vec<bool>,
    /// `delta[state][symbol]` = successor states (sorted, deduped).
    delta: Vec<Vec<Vec<State>>>,
}

impl Nfa {
    /// An NFA with `n_states` states and no transitions.
    pub fn new(alphabet: &[char], n_states: u32) -> Self {
        Nfa {
            alphabet: alphabet.to_vec(),
            n_states,
            initial: Vec::new(),
            accepting: vec![false; n_states as usize],
            delta: vec![vec![Vec::new(); alphabet.len()]; n_states as usize],
        }
    }

    /// Add a fresh state, returning its id.
    pub fn add_state(&mut self) -> State {
        let s = self.n_states;
        self.n_states += 1;
        self.accepting.push(false);
        self.delta.push(vec![Vec::new(); self.alphabet.len()]);
        s
    }

    /// Mark a state initial.
    pub fn set_initial(&mut self, s: State) {
        if !self.initial.contains(&s) {
            self.initial.push(s);
        }
    }

    /// Mark a state accepting.
    pub fn set_accepting(&mut self, s: State) {
        self.accepting[s as usize] = true;
    }

    /// Add the transition `from --c--> to`. Duplicates are ignored.
    pub fn add_transition(&mut self, from: State, c: char, to: State) {
        let sym = self.symbol_index(c).expect("symbol in alphabet");
        let v = &mut self.delta[from as usize][sym];
        if let Err(pos) = v.binary_search(&to) {
            v.insert(pos, to);
        }
    }

    /// Index of a character in the alphabet.
    pub fn symbol_index(&self, c: char) -> Option<usize> {
        self.alphabet.iter().position(|&x| x == c)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// Number of transitions (the headline size measure).
    pub fn transition_count(&self) -> usize {
        self.delta
            .iter()
            .map(|per| per.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Initial states.
    pub fn initial_states(&self) -> &[State] {
        &self.initial
    }

    /// Is `s` accepting?
    pub fn is_accepting(&self, s: State) -> bool {
        self.accepting[s as usize]
    }

    /// Successors of `s` on symbol index `sym`.
    pub fn successors(&self, s: State, sym: usize) -> &[State] {
        &self.delta[s as usize][sym]
    }

    /// Subset simulation: is `w` accepted?
    pub fn accepts(&self, w: &str) -> bool {
        let mut cur: BTreeSet<State> = self.initial.iter().copied().collect();
        for c in w.chars() {
            let Some(sym) = self.symbol_index(c) else {
                return false;
            };
            let mut next = BTreeSet::new();
            for &s in &cur {
                next.extend(self.successors(s, sym).iter().copied());
            }
            cur = next;
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|&s| self.is_accepting(s))
    }

    /// Number of accepting runs of `w` (the ambiguity degree of the word).
    pub fn run_count(&self, w: &str) -> BigUint {
        // Vector-matrix product over ℕ.
        let mut cur = vec![BigUint::zero(); self.n_states as usize];
        for &s in &self.initial {
            cur[s as usize] = BigUint::one();
        }
        for c in w.chars() {
            let Some(sym) = self.symbol_index(c) else {
                return BigUint::zero();
            };
            let mut next = vec![BigUint::zero(); self.n_states as usize];
            for (s, cnt) in cur.iter().enumerate() {
                if cnt.is_zero() {
                    continue;
                }
                for &t in self.successors(s as State, sym) {
                    next[t as usize] += cnt;
                }
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .filter(|(s, _)| self.accepting[*s])
            .map(|(_, c)| c.clone())
            .sum()
    }

    /// Number of accepted words of each length `0..=max_len`
    /// (transfer-matrix DP over the determinised reachable subsets would
    /// double-count; instead we count via subset construction on the fly).
    pub fn accepted_word_counts(&self, max_len: usize) -> Vec<BigUint> {
        // DP over subsets reached per prefix would be exponential; instead
        // determinise lazily and count paths in the subset automaton, where
        // each word corresponds to exactly one path.
        let dfa = crate::dfa::Dfa::from_nfa(self);
        dfa.accepted_word_counts(max_len)
    }

    /// All accepted words of exactly `len` (exponential; for small cases).
    pub fn accepted_words(&self, len: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let init: BTreeSet<State> = self.initial.iter().copied().collect();
        let mut stack: Vec<(BTreeSet<State>, String)> = vec![(init, String::new())];
        while let Some((set, prefix)) = stack.pop() {
            if prefix.len() == len {
                if set.iter().any(|&s| self.is_accepting(s)) {
                    out.insert(prefix);
                }
                continue;
            }
            for (sym, &c) in self.alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &s in &set {
                    next.extend(self.successors(s, sym).iter().copied());
                }
                if !next.is_empty() {
                    let mut p = prefix.clone();
                    p.push(c);
                    stack.push((next, p));
                }
            }
        }
        out
    }

    /// States reachable from the initial states.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.n_states as usize];
        let mut stack: Vec<State> = self.initial.clone();
        for &s in &self.initial {
            seen[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for per in &self.delta[s as usize] {
                for &t in per {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        stack.push(t);
                    }
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable.
    pub fn coreachable(&self) -> Vec<bool> {
        let mut rev: Vec<Vec<State>> = vec![Vec::new(); self.n_states as usize];
        for (s, per) in self.delta.iter().enumerate() {
            for tos in per {
                for &t in tos {
                    rev[t as usize].push(s as State);
                }
            }
        }
        let mut seen = vec![false; self.n_states as usize];
        let mut stack: Vec<State> = Vec::new();
        for s in 0..self.n_states {
            if self.accepting[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Remove states that are not both reachable and co-reachable.
    pub fn trimmed(&self) -> Nfa {
        let reach = self.reachable();
        let co = self.coreachable();
        let keep: Vec<bool> = reach.iter().zip(&co).map(|(&r, &c)| r && c).collect();
        let mut remap = vec![u32::MAX; self.n_states as usize];
        let mut next = 0u32;
        for (s, &k) in keep.iter().enumerate() {
            if k {
                remap[s] = next;
                next += 1;
            }
        }
        let mut out = Nfa::new(&self.alphabet, next);
        for &s in &self.initial {
            if keep[s as usize] {
                out.set_initial(remap[s as usize]);
            }
        }
        for s in 0..self.n_states as usize {
            if !keep[s] {
                continue;
            }
            if self.accepting[s] {
                out.set_accepting(remap[s]);
            }
            for (sym, tos) in self.delta[s].iter().enumerate() {
                for &t in tos {
                    if keep[t as usize] {
                        out.add_transition(remap[s], self.alphabet[sym], remap[t as usize]);
                    }
                }
            }
        }
        out
    }

    /// Product (intersection) automaton.
    pub fn intersect(&self, other: &Nfa) -> Nfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabets must match");
        let pair = |a: State, b: State| a * other.n_states + b;
        let mut out = Nfa::new(&self.alphabet, self.n_states * other.n_states);
        for &a in &self.initial {
            for &b in &other.initial {
                out.set_initial(pair(a, b));
            }
        }
        for a in 0..self.n_states {
            for b in 0..other.n_states {
                if self.accepting[a as usize] && other.accepting[b as usize] {
                    out.set_accepting(pair(a, b));
                }
                for (sym, &c) in self.alphabet.iter().enumerate() {
                    for &ta in self.successors(a, sym) {
                        for &tb in other.successors(b, sym) {
                            out.add_transition(pair(a, b), c, pair(ta, tb));
                        }
                    }
                }
            }
        }
        out.trimmed()
    }

    /// Union (disjoint juxtaposition).
    pub fn union(&self, other: &Nfa) -> Nfa {
        assert_eq!(self.alphabet, other.alphabet, "alphabets must match");
        let mut out = Nfa::new(&self.alphabet, self.n_states + other.n_states);
        let off = self.n_states;
        for &s in &self.initial {
            out.set_initial(s);
        }
        for &s in &other.initial {
            out.set_initial(s + off);
        }
        for s in 0..self.n_states {
            if self.accepting[s as usize] {
                out.set_accepting(s);
            }
            for (sym, &c) in self.alphabet.iter().enumerate() {
                for &t in self.successors(s, sym) {
                    out.add_transition(s, c, t);
                }
            }
        }
        for s in 0..other.n_states {
            if other.accepting[s as usize] {
                out.set_accepting(s + off);
            }
            for (sym, &c) in other.alphabet.iter().enumerate() {
                for &t in other.successors(s, sym) {
                    out.add_transition(s + off, c, t + off);
                }
            }
        }
        out
    }

    /// Reverse automaton (accepts the mirror language).
    pub fn reversed(&self) -> Nfa {
        let mut out = Nfa::new(&self.alphabet, self.n_states);
        for s in 0..self.n_states {
            if self.accepting[s as usize] {
                out.set_initial(s);
            }
            for (sym, tos) in self.delta[s as usize].iter().enumerate() {
                for &t in tos {
                    out.add_transition(t, self.alphabet[sym], s);
                }
            }
        }
        for &s in &self.initial {
            out.set_accepting(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a*b as an NFA.
    fn astar_b() -> Nfa {
        let mut n = Nfa::new(&['a', 'b'], 2);
        n.set_initial(0);
        n.set_accepting(1);
        n.add_transition(0, 'a', 0);
        n.add_transition(0, 'b', 1);
        n
    }

    #[test]
    fn basic_acceptance() {
        let n = astar_b();
        assert!(n.accepts("b"));
        assert!(n.accepts("aaab"));
        assert!(!n.accepts("ba"));
        assert!(!n.accepts(""));
        assert!(!n.accepts("abc"));
    }

    #[test]
    fn sizes() {
        let n = astar_b();
        assert_eq!(n.state_count(), 2);
        assert_eq!(n.transition_count(), 2);
    }

    #[test]
    fn run_count_counts_ambiguity() {
        // Two parallel paths accepting "a".
        let mut n = Nfa::new(&['a'], 3);
        n.set_initial(0);
        n.set_accepting(1);
        n.set_accepting(2);
        n.add_transition(0, 'a', 1);
        n.add_transition(0, 'a', 2);
        assert_eq!(n.run_count("a").to_u64(), Some(2));
        assert_eq!(n.run_count("aa").to_u64(), Some(0));
        assert!(n.accepts("a"));
    }

    #[test]
    fn accepted_words_enumeration() {
        let n = astar_b();
        let w2 = n.accepted_words(2);
        assert_eq!(w2.len(), 1);
        assert!(w2.contains("ab"));
        assert!(n.accepted_words(0).is_empty());
    }

    #[test]
    fn trimmed_removes_dead_states() {
        let mut n = astar_b();
        let dead = n.add_state(); // unreachable
        n.add_transition(dead, 'a', dead);
        let t = n.trimmed();
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts("aab"));
        assert!(!t.accepts("aa"));
    }

    #[test]
    fn intersect_is_conjunction() {
        // a*b ∩ (words of length 2) = {ab}.
        let mut len2 = Nfa::new(&['a', 'b'], 3);
        len2.set_initial(0);
        len2.set_accepting(2);
        for c in ['a', 'b'] {
            len2.add_transition(0, c, 1);
            len2.add_transition(1, c, 2);
        }
        let both = astar_b().intersect(&len2);
        assert!(both.accepts("ab"));
        assert!(!both.accepts("b"));
        assert!(!both.accepts("aab"));
        assert_eq!(both.accepted_words(2).len(), 1);
    }

    #[test]
    fn union_is_disjunction() {
        let mut just_a = Nfa::new(&['a', 'b'], 2);
        just_a.set_initial(0);
        just_a.set_accepting(1);
        just_a.add_transition(0, 'a', 1);
        let u = astar_b().union(&just_a);
        assert!(u.accepts("a"));
        assert!(u.accepts("aab"));
        assert!(!u.accepts("aa"));
    }

    #[test]
    fn reversed_accepts_mirror() {
        let n = astar_b(); // a*b ; mirror = b a*
        let r = n.reversed();
        assert!(r.accepts("b"));
        assert!(r.accepts("baa"));
        assert!(!r.accepts("ab"));
    }

    #[test]
    fn reachable_coreachable() {
        let mut n = astar_b();
        let orphan = n.add_state();
        n.set_accepting(orphan);
        let reach = n.reachable();
        assert!(!reach[orphan as usize]);
        let co = n.coreachable();
        assert!(co[orphan as usize]); // accepting → trivially co-reachable
        assert!(co[0]);
    }
}
