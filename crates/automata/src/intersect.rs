//! Bar-Hillel intersection: CFG ∩ DFA is context-free, constructively.
//!
//! For a CNF grammar `G` and a DFA `D`, the triple construction builds a
//! grammar over non-terminals `(A, p, q)` ("A derives a word taking `D`
//! from state `p` to `q`"). Only productive triples are materialised, so
//! the output is `O(|G|·|Q|²)` in the worst case but usually far smaller.
//!
//! Because `D` is deterministic, each word has exactly one state
//! trajectory, so derivations of `w` in the result biject with derivations
//! of `w` in `G` — **intersection with a DFA preserves unambiguity**. This
//! is the tool behind the paper's intro reduction (`L_n` ↪ the CSV
//! agreement language restricted to a regular encoded domain): it turns a
//! uCFG for the restricted language into a uCFG for `L_n`.

use crate::dfa::Dfa;
use crate::nfa::State;
use std::collections::{HashMap, HashSet};
use ucfg_grammar::analysis::trim;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::symbol::NonTerminal;
use ucfg_grammar::{Grammar, GrammarBuilder};

/// Intersect a CNF grammar with a DFA; the result is a general grammar
/// (the start symbol needs unit rules to the accepting triples).
pub fn intersect_cnf_dfa(g: &CnfGrammar, d: &Dfa) -> Grammar {
    // Character → DFA symbol index (symbols missing from the DFA alphabet
    // make the letter a dead end).
    let dfa_sym: Vec<Option<usize>> = g
        .alphabet()
        .iter()
        .map(|&c| d.alphabet().iter().position(|&x| x == c))
        .collect();

    // --- Productive triples, bottom-up fixpoint. ---
    type Triple = (u32, State, State);
    let mut productive: HashSet<Triple> = HashSet::new();
    // Terminal seeds.
    for &(a, t) in g.term_rules() {
        if let Some(sym) = dfa_sym[t.index()] {
            for p in 0..d.state_count() as State {
                if let Some(q) = d.step(p, sym) {
                    productive.insert((a.0, p, q));
                }
            }
        }
    }
    // Binary closure. Index productive triples by their left component for
    // the join.
    let mut changed = true;
    while changed {
        changed = false;
        // by_nt_from[(B, p)] = set of q with (B, p, q) productive.
        let mut by_nt_from: HashMap<(u32, State), Vec<State>> = HashMap::new();
        for &(a, p, q) in &productive {
            by_nt_from.entry((a, p)).or_default().push(q);
        }
        for &(a, b, c) in g.bin_rules() {
            // For each productive (B, p, r), extend with (C, r, q).
            let starts: Vec<(State, State)> = productive
                .iter()
                .filter(|&&(x, _, _)| x == b.0)
                .map(|&(_, p, r)| (p, r))
                .collect();
            for (p, r) in starts {
                if let Some(qs) = by_nt_from.get(&(c.0, r)) {
                    for &q in qs {
                        if productive.insert((a.0, p, q)) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // --- Emit the grammar over productive triples. ---
    let mut builder = GrammarBuilder::new(g.alphabet());
    let start = builder.nonterminal("S∩");
    let mut ids: HashMap<Triple, NonTerminal> = HashMap::new();
    let mut intern = |builder: &mut GrammarBuilder, t: Triple| -> NonTerminal {
        *ids.entry(t).or_insert_with(|| {
            builder.nonterminal(&format!("({},{},{})", g.name(NonTerminal(t.0)), t.1, t.2))
        })
    };
    for &(a, t) in g.term_rules() {
        if let Some(sym) = dfa_sym[t.index()] {
            for p in 0..d.state_count() as State {
                if let Some(q) = d.step(p, sym) {
                    if productive.contains(&(a.0, p, q)) {
                        let nt = intern(&mut builder, (a.0, p, q));
                        let ch = g.letter(t);
                        builder.rule(nt, |r| r.t(ch));
                    }
                }
            }
        }
    }
    let triples: Vec<Triple> = productive.iter().copied().collect();
    for &(a, b, c) in g.bin_rules() {
        for &(x, p, r) in &triples {
            if x != b.0 {
                continue;
            }
            for &(y, r2, q) in &triples {
                if y != c.0 || r2 != r {
                    continue;
                }
                if !productive.contains(&(a.0, p, q)) {
                    continue;
                }
                let lhs = intern(&mut builder, (a.0, p, q));
                let left = intern(&mut builder, (b.0, p, r));
                let right = intern(&mut builder, (c.0, r, q));
                builder.rule(lhs, |rr| rr.n(left).n(right));
            }
        }
    }
    // Start: any (S, q0, f) with f accepting.
    for f in 0..d.state_count() as State {
        if d.is_accepting(f) && productive.contains(&(g.start().0, d.initial(), f)) {
            let nt = intern(&mut builder, (g.start().0, d.initial(), f));
            builder.rule(start, |r| r.n(nt));
        }
    }
    trim(&builder.build(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dawg::dawg_of_words;
    use ucfg_grammar::builder::GrammarBuilder;
    use ucfg_grammar::count::decide_unambiguous;
    use ucfg_grammar::language::finite_language;

    /// All words of length 2 over {a,b}.
    fn len2_grammar() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    #[test]
    fn intersection_restricts_language() {
        let g = len2_grammar();
        // DFA for {ab, bb} via the DAWG.
        let d = dawg_of_words(&['a', 'b'], ["ab", "bb"]);
        let i = intersect_cnf_dfa(&g, &d);
        let lang = finite_language(&i).unwrap();
        assert_eq!(lang.len(), 2);
        assert!(lang.contains("ab") && lang.contains("bb"));
    }

    #[test]
    fn empty_intersection() {
        let g = len2_grammar();
        let d = dawg_of_words(&['a', 'b'], ["aaa"]); // only length 3
        let i = intersect_cnf_dfa(&g, &d);
        assert!(finite_language(&i).unwrap().is_empty());
    }

    #[test]
    fn unambiguity_is_preserved() {
        let g = len2_grammar(); // unambiguous
        let d = dawg_of_words(&['a', 'b'], ["aa", "ab", "ba"]);
        let i = intersect_cnf_dfa(&g, &d);
        assert!(decide_unambiguous(&i).is_unambiguous());
        assert_eq!(finite_language(&i).unwrap().len(), 3);
    }

    #[test]
    fn ambiguity_degrees_are_preserved_per_word() {
        // Ambiguous grammar: S → A B | B A with A, B → a: "aa" has 2 trees.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.n(a).n(bb));
        b.rule(s, |r| r.n(bb).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(bb, |r| r.t('a'));
        let g = CnfGrammar::from_grammar(&b.build(s));
        let d = dawg_of_words(&['a', 'b'], ["aa"]);
        let i = intersect_cnf_dfa(&g, &d);
        let counter = ucfg_grammar::count::TreeCounter::new(&i).unwrap();
        assert_eq!(counter.count_str("aa").to_u64(), Some(2));
    }

    #[test]
    fn foreign_alphabet_letters_block() {
        // Grammar over {a,b}, DFA only knows {a}: every word containing b
        // is excluded.
        let g = len2_grammar();
        let d = dawg_of_words(&['a'], ["aa"]);
        let i = intersect_cnf_dfa(&g, &d);
        let lang = finite_language(&i).unwrap();
        assert_eq!(lang.len(), 1);
        assert!(lang.contains("aa"));
    }

    #[test]
    fn size_is_polynomial_in_inputs() {
        let g = len2_grammar();
        let d = dawg_of_words(&['a', 'b'], ["aa", "ab", "ba", "bb"]);
        let i = intersect_cnf_dfa(&g, &d);
        let q = d.state_count();
        assert!(
            i.size() <= 3 * g.size() * q * q + q,
            "size {} too big",
            i.size()
        );
    }
}
