//! Runtime-dispatched SIMD kernels for `u64` bitset slabs.
//!
//! Every hot loop in the workspace bottoms out in bulk word algebra over
//! `&[u64]` slabs: AND/OR/ANDNOT combines, popcounts, fused
//! combine-and-count folds, and the ripple-carry step of the bit-sliced
//! overlap counter. This module owns those loops once, behind a runtime
//! dispatch:
//!
//! * **AVX2 backend** (`x86_64` only): 256-bit `_mm256_{and,or,andnot}_si256`
//!   lanes with the popcounts unrolled over the four extracted `u64` lanes.
//!   Selected when `is_x86_feature_detected!` confirms **both** `avx2` and
//!   `popcnt` (the default `x86-64` target lacks `popcnt`, so the scalar
//!   `count_ones` compiles to a ~12-op SWAR sequence — the hardware
//!   instruction is most of the win on the count kernels).
//! * **Scalar backend**: plain `u64` loops, the always-tested reference on
//!   every architecture. Forced by setting the [`NO_SIMD_ENV`]
//!   (`UCFG_NO_SIMD=1`) environment variable, which CI uses to run the
//!   whole kernel suite in both dispatch modes and byte-compare results.
//!
//! The choice is made once per process and cached in a `OnceLock`
//! ([`backend`]). Both backends are pure functions of their inputs and
//! produce bit-identical results (verified by the differential tests
//! below and by the cross-mode CI job), so dispatch never changes any
//! kernel's bytes — only its speed.
//!
//! Each public entry point bumps a **volatile** `obs` counter
//! (`simd.dispatch.avx2` / `simd.dispatch.scalar`) so `/metrics` shows
//! which path served a workload; volatile placement keeps the
//! deterministic metric stratum byte-identical across dispatch modes.

use crate::obs;
use std::sync::OnceLock;

/// Environment variable that forces the scalar backend when set to
/// anything other than `0` or the empty string (`UCFG_NO_SIMD=1`).
pub const NO_SIMD_ENV: &str = "UCFG_NO_SIMD";

/// Which kernel backend the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// 256-bit AVX2 lanes + hardware popcount (`x86_64` with `avx2` and
    /// `popcnt` detected at runtime).
    Avx2,
    /// Portable `u64` loops — the always-available reference path.
    Scalar,
}

/// The backend this process dispatches to, detected once and cached.
///
/// Scalar is chosen when [`NO_SIMD_ENV`] is set, when the target is not
/// `x86_64`, or when the CPU lacks `avx2`/`popcnt`.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if forced_scalar() {
            return Backend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                return Backend::Avx2;
            }
        }
        Backend::Scalar
    })
}

fn forced_scalar() -> bool {
    match std::env::var(NO_SIMD_ENV) {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
        Err(_) => false,
    }
}

/// Record one dispatch decision on the volatile metric stratum.
#[inline]
fn note(backend: Backend) {
    match backend {
        Backend::Avx2 => obs::vcount!("simd.dispatch.avx2"),
        Backend::Scalar => obs::vcount!("simd.dispatch.scalar"),
    }
}

macro_rules! dispatch {
    ($avx2:expr, $scalar:expr) => {{
        let b = backend();
        note(b);
        match b {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Backend::Avx2` is only ever produced after runtime
            // detection confirmed both `avx2` and `popcnt`.
            Backend::Avx2 => unsafe { $avx2 },
            _ => $scalar,
        }
    }};
}

/// `Σ popcount(a)`.
pub fn count(a: &[u64]) -> u64 {
    dispatch!(avx2::count(a), count_scalar(a))
}

/// `Σ popcount(a & b)`. Panics on length mismatch.
pub fn and_count(a: &[u64], b: &[u64]) -> u64 {
    check_len(a, b);
    dispatch!(avx2::and_count(a, b), and_count_scalar(a, b))
}

/// `Σ popcount(a | b)`. Panics on length mismatch.
pub fn or_count(a: &[u64], b: &[u64]) -> u64 {
    check_len(a, b);
    dispatch!(avx2::or_count(a, b), or_count_scalar(a, b))
}

/// `Σ popcount(a & !b)`. Panics on length mismatch.
pub fn andnot_count(a: &[u64], b: &[u64]) -> u64 {
    check_len(a, b);
    dispatch!(avx2::andnot_count(a, b), andnot_count_scalar(a, b))
}

/// `out = a & b` elementwise. Panics unless all three lengths match.
pub fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    check_len(a, b);
    check_len(out, a);
    dispatch!(avx2::and_into(out, a, b), and_into_scalar(out, a, b))
}

/// `out = a | b` elementwise. Panics unless all three lengths match.
pub fn or_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    check_len(a, b);
    check_len(out, a);
    dispatch!(avx2::or_into(out, a, b), or_into_scalar(out, a, b))
}

/// `out = a & !b` elementwise. Panics unless all three lengths match.
pub fn andnot_into(out: &mut [u64], a: &[u64], b: &[u64]) {
    check_len(a, b);
    check_len(out, a);
    dispatch!(avx2::andnot_into(out, a, b), andnot_into_scalar(out, a, b))
}

/// In-place `dst |= src`. Panics on length mismatch.
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    check_len(dst, src);
    dispatch!(avx2::or_assign(dst, src), or_assign_scalar(dst, src))
}

/// In-place `dst &= src`. Panics on length mismatch.
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    check_len(dst, src);
    dispatch!(avx2::and_assign(dst, src), and_assign_scalar(dst, src))
}

/// In-place `dst &= !src`. Panics on length mismatch.
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    check_len(dst, src);
    dispatch!(
        avx2::andnot_assign(dst, src),
        andnot_assign_scalar(dst, src)
    )
}

/// In-place `dst ^= src` (GF(2) row elimination). Panics on length
/// mismatch.
pub fn xor_assign(dst: &mut [u64], src: &[u64]) {
    check_len(dst, src);
    dispatch!(avx2::xor_assign(dst, src), xor_assign_scalar(dst, src))
}

/// One ripple-carry step of a bit-sliced counter: per word,
/// `t = layer & carry; layer ^= carry; carry = t`. Returns `true` when
/// any carry word is still nonzero (the caller ripples into the next
/// layer). Panics on length mismatch.
pub fn carry_save(layer: &mut [u64], carry: &mut [u64]) -> bool {
    check_len(layer, carry);
    dispatch!(
        avx2::carry_save(layer, carry),
        carry_save_scalar(layer, carry)
    )
}

#[inline]
fn check_len(a: &[u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "simd kernel slice length mismatch");
}

// ---------------------------------------------------------------------------
// Scalar backend — the portable reference. Public so differential tests
// (and the forced `UCFG_NO_SIMD=1` CI pass) can pin the SIMD path to it.
// ---------------------------------------------------------------------------

/// Scalar reference for [`count`].
pub fn count_scalar(a: &[u64]) -> u64 {
    a.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Scalar reference for [`and_count`].
pub fn and_count_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum()
}

/// Scalar reference for [`or_count`].
pub fn or_count_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x | y).count_ones()))
        .sum()
}

/// Scalar reference for [`andnot_count`].
pub fn andnot_count_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x & !y).count_ones()))
        .sum()
}

/// Scalar reference for [`and_into`].
pub fn and_into_scalar(out: &mut [u64], a: &[u64], b: &[u64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Scalar reference for [`or_into`].
pub fn or_into_scalar(out: &mut [u64], a: &[u64], b: &[u64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x | y;
    }
}

/// Scalar reference for [`andnot_into`].
pub fn andnot_into_scalar(out: &mut [u64], a: &[u64], b: &[u64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x & !y;
    }
}

/// Scalar reference for [`or_assign`].
pub fn or_assign_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Scalar reference for [`and_assign`].
pub fn and_assign_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// Scalar reference for [`andnot_assign`].
pub fn andnot_assign_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

/// Scalar reference for [`xor_assign`].
pub fn xor_assign_scalar(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Scalar reference for [`carry_save`].
pub fn carry_save_scalar(layer: &mut [u64], carry: &mut [u64]) -> bool {
    let mut any = 0u64;
    for (l, c) in layer.iter_mut().zip(carry.iter_mut()) {
        let t = *l & *c;
        *l ^= *c;
        *c = t;
        any |= t;
    }
    any != 0
}

// ---------------------------------------------------------------------------
// AVX2 backend. Each kernel processes two 256-bit lanes (8 words) per
// iteration with a scalar tail; counts pop the four `u64` lanes with the
// hardware instruction (`popcnt` is enabled on these functions).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm256_xor_si256,
    };

    #[inline]
    unsafe fn load(p: *const u64) -> __m256i {
        unsafe { _mm256_loadu_si256(p.cast()) }
    }

    #[inline]
    unsafe fn store(p: *mut u64, v: __m256i) {
        unsafe { _mm256_storeu_si256(p.cast(), v) }
    }

    /// Popcount one 256-bit lane via the four extracted `u64` words.
    /// `count_ones` lowers to the hardware `popcnt` instruction here
    /// because the enclosing kernels enable the `popcnt` feature.
    #[inline]
    unsafe fn pop4(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        unsafe { store(lanes.as_mut_ptr(), v) };
        u64::from(lanes[0].count_ones())
            + u64::from(lanes[1].count_ones())
            + u64::from(lanes[2].count_ones())
            + u64::from(lanes[3].count_ones())
    }

    macro_rules! count_kernel {
        ($name:ident, |$x:ident, $y:ident| $vec:expr, |$a:ident, $b:ident| $tail:expr) => {
            #[target_feature(enable = "avx2", enable = "popcnt")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> u64 {
                let n = a.len();
                let mut total = 0u64;
                let mut i = 0usize;
                while i + 8 <= n {
                    let $x = unsafe { load(a.as_ptr().add(i)) };
                    let $y = unsafe { load(b.as_ptr().add(i)) };
                    let lo = $vec;
                    let $x = unsafe { load(a.as_ptr().add(i + 4)) };
                    let $y = unsafe { load(b.as_ptr().add(i + 4)) };
                    let hi = $vec;
                    total += unsafe { pop4(lo) + pop4(hi) };
                    i += 4 + 4;
                }
                while i < n {
                    let $a = a[i];
                    let $b = b[i];
                    total += u64::from(($tail).count_ones());
                    i += 1;
                }
                total
            }
        };
    }

    count_kernel!(and_count, |x, y| _mm256_and_si256(x, y), |a, b| a & b);
    count_kernel!(or_count, |x, y| _mm256_or_si256(x, y), |a, b| a | b);
    // `_mm256_andnot_si256(x, y)` computes `!x & y`, so the operands swap
    // to express `a & !b`.
    count_kernel!(andnot_count, |x, y| _mm256_andnot_si256(y, x), |a, b| a
        & !b);

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn count(a: &[u64]) -> u64 {
        let n = a.len();
        let mut total = 0u64;
        let mut i = 0usize;
        while i + 8 <= n {
            let lo = unsafe { load(a.as_ptr().add(i)) };
            let hi = unsafe { load(a.as_ptr().add(i + 4)) };
            total += unsafe { pop4(lo) + pop4(hi) };
            i += 8;
        }
        while i < n {
            total += u64::from(a[i].count_ones());
            i += 1;
        }
        total
    }

    macro_rules! combine_into_kernel {
        ($name:ident, |$x:ident, $y:ident| $vec:expr, |$a:ident, $b:ident| $tail:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(out: &mut [u64], a: &[u64], b: &[u64]) {
                let n = out.len();
                let mut i = 0usize;
                while i + 4 <= n {
                    let $x = unsafe { load(a.as_ptr().add(i)) };
                    let $y = unsafe { load(b.as_ptr().add(i)) };
                    unsafe { store(out.as_mut_ptr().add(i), $vec) };
                    i += 4;
                }
                while i < n {
                    let $a = a[i];
                    let $b = b[i];
                    out[i] = $tail;
                    i += 1;
                }
            }
        };
    }

    combine_into_kernel!(and_into, |x, y| _mm256_and_si256(x, y), |a, b| a & b);
    combine_into_kernel!(or_into, |x, y| _mm256_or_si256(x, y), |a, b| a | b);
    combine_into_kernel!(andnot_into, |x, y| _mm256_andnot_si256(y, x), |a, b| a & !b);

    macro_rules! assign_kernel {
        ($name:ident, |$x:ident, $y:ident| $vec:expr, |$d:ident, $s:ident| $tail:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(dst: &mut [u64], src: &[u64]) {
                let n = dst.len();
                let mut i = 0usize;
                while i + 4 <= n {
                    let $x = unsafe { load(dst.as_ptr().add(i)) };
                    let $y = unsafe { load(src.as_ptr().add(i)) };
                    unsafe { store(dst.as_mut_ptr().add(i), $vec) };
                    i += 4;
                }
                while i < n {
                    let $d = dst[i];
                    let $s = src[i];
                    dst[i] = $tail;
                    i += 1;
                }
            }
        };
    }

    assign_kernel!(or_assign, |x, y| _mm256_or_si256(x, y), |d, s| d | s);
    assign_kernel!(and_assign, |x, y| _mm256_and_si256(x, y), |d, s| d & s);
    assign_kernel!(andnot_assign, |x, y| _mm256_andnot_si256(y, x), |d, s| d
        & !s);
    assign_kernel!(xor_assign, |x, y| _mm256_xor_si256(x, y), |d, s| d ^ s);

    #[target_feature(enable = "avx2")]
    pub unsafe fn carry_save(layer: &mut [u64], carry: &mut [u64]) -> bool {
        let n = layer.len();
        let mut i = 0usize;
        let mut any_vec = _mm256_setzero_si256();
        while i + 4 <= n {
            let l = unsafe { load(layer.as_ptr().add(i)) };
            let c = unsafe { load(carry.as_ptr().add(i)) };
            let t = _mm256_and_si256(l, c);
            unsafe { store(layer.as_mut_ptr().add(i), _mm256_xor_si256(l, c)) };
            unsafe { store(carry.as_mut_ptr().add(i), t) };
            any_vec = _mm256_or_si256(any_vec, t);
            i += 4;
        }
        let mut any = {
            let mut lanes = [0u64; 4];
            unsafe { store(lanes.as_mut_ptr(), any_vec) };
            lanes[0] | lanes[1] | lanes[2] | lanes[3]
        };
        while i < n {
            let t = layer[i] & carry[i];
            layer[i] ^= carry[i];
            carry[i] = t;
            any |= t;
            i += 1;
        }
        any != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng, StdRng};

    /// Slab lengths chosen to hit every tail shape: empty, sub-lane,
    /// exactly one 256-bit lane, the 8-word unroll boundary, and ragged
    /// tails just around both.
    const LENS: [usize; 12] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33];

    fn slab(rng: &mut StdRng, len: usize) -> Vec<u64> {
        (0..len).map(|_| rng.random::<u64>()).collect()
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(0x51_D0);
        for &len in &LENS {
            for trial in 0..8 {
                let a = slab(&mut rng, len);
                let b = slab(&mut rng, len);
                let ctx = format!("len={len} trial={trial}");

                assert_eq!(count(&a), count_scalar(&a), "count {ctx}");
                assert_eq!(and_count(&a, &b), and_count_scalar(&a, &b), "and {ctx}");
                assert_eq!(or_count(&a, &b), or_count_scalar(&a, &b), "or {ctx}");
                assert_eq!(
                    andnot_count(&a, &b),
                    andnot_count_scalar(&a, &b),
                    "andnot {ctx}"
                );

                let mut got = vec![0u64; len];
                let mut want = vec![0u64; len];
                and_into(&mut got, &a, &b);
                and_into_scalar(&mut want, &a, &b);
                assert_eq!(got, want, "and_into {ctx}");
                or_into(&mut got, &a, &b);
                or_into_scalar(&mut want, &a, &b);
                assert_eq!(got, want, "or_into {ctx}");
                andnot_into(&mut got, &a, &b);
                andnot_into_scalar(&mut want, &a, &b);
                assert_eq!(got, want, "andnot_into {ctx}");

                for (op, scalar) in [
                    (
                        or_assign as fn(&mut [u64], &[u64]),
                        or_assign_scalar as fn(&mut [u64], &[u64]),
                    ),
                    (and_assign, and_assign_scalar),
                    (andnot_assign, andnot_assign_scalar),
                    (xor_assign, xor_assign_scalar),
                ] {
                    let mut got = a.clone();
                    let mut want = a.clone();
                    op(&mut got, &b);
                    scalar(&mut want, &b);
                    assert_eq!(got, want, "assign {ctx}");
                }

                let (mut l1, mut c1) = (a.clone(), b.clone());
                let (mut l2, mut c2) = (a.clone(), b.clone());
                assert_eq!(
                    carry_save(&mut l1, &mut c1),
                    carry_save_scalar(&mut l2, &mut c2),
                    "carry flag {ctx}"
                );
                assert_eq!(l1, l2, "carry layer {ctx}");
                assert_eq!(c1, c2, "carry words {ctx}");
            }
        }
    }

    #[test]
    fn fused_counts_agree_with_materialised_ops() {
        let mut rng = StdRng::seed_from_u64(0xF0_5E);
        for &len in &LENS {
            let a = slab(&mut rng, len);
            let b = slab(&mut rng, len);
            let mut buf = vec![0u64; len];
            and_into(&mut buf, &a, &b);
            assert_eq!(and_count(&a, &b), count(&buf), "len={len}");
            or_into(&mut buf, &a, &b);
            assert_eq!(or_count(&a, &b), count(&buf), "len={len}");
            andnot_into(&mut buf, &a, &b);
            assert_eq!(andnot_count(&a, &b), count(&buf), "len={len}");
        }
    }

    #[test]
    fn backend_is_cached_and_consistent() {
        assert_eq!(backend(), backend());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = and_count(&[0u64; 3], &[0u64; 4]);
    }
}
