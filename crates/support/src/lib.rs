//! # ucfg-support — hermetic workspace support
//!
//! In-tree, zero-dependency replacements for the three external crates the
//! workspace used, so `cargo build` / `cargo test` / `cargo bench` work
//! fully offline and bit-for-bit reproducibly:
//!
//! - [`rng`] — deterministic seedable PRNGs (SplitMix64, xoshiro256**)
//!   with the `random`/`random_range`/`shuffle`/`choose` surface
//!   (replaces `rand`),
//! - [`prop`] — a property-testing harness with generators, fixed-seed
//!   replay, and bounded size-directed shrinking (replaces `proptest`),
//! - [`mod@bench`] — a warmup + median/p95 bench harness emitting
//!   `out/BENCH_*.json` lines, with a `--smoke` mode for CI (replaces
//!   `criterion`),
//! - [`par`] — a scoped, deterministic parallel-map layer (ordered
//!   results, fixed chunking, `UCFG_THREADS` override, serial fallback)
//!   for the exhaustive kernels (replaces `rayon`),
//! - [`obs`] — a process-wide observability layer (counters / gauges /
//!   duration histograms behind atomics, RAII spans, a deterministic
//!   `out/METRICS_*.json` exporter), off by default and switched on by
//!   `UCFG_TRACE=1` or the binaries' `--trace` flag,
//! - [`fnv`] — a stable FNV-1a 64-bit hasher for content-addressed
//!   artifact caching (`std::hash` is seed-randomised per process, so
//!   it cannot produce stable cache keys),
//! - [`html`] — a self-contained static-HTML document builder for the
//!   orchestrator's run reports (tables, `<pre>` blocks, badges; inline
//!   CSS, no scripts),
//! - [`baseline`] — the pure baseline-diffing logic behind the
//!   orchestrator's `--check` regression gate (tolerance ratios, noise
//!   floors, exact-digest comparison),
//! - [`simd`] — runtime-dispatched AVX2/scalar kernels for the `u64`
//!   bitset slabs behind the word-set and CYK hot loops (`UCFG_NO_SIMD`
//!   forces the always-tested scalar path),
//! - [`arena`] — a bounded process-wide pool of `u64` slab buffers so the
//!   serve daemon's per-request charts and chunk blocks stop paying
//!   allocator traffic,
//! - [`evloop`] — thin edge-triggered `epoll` bindings (poller, events,
//!   cross-thread waker, `RLIMIT_NOFILE` raise) for the serve daemon's
//!   nonblocking accept/read path (Linux; stubs elsewhere).

#![warn(missing_docs)]

pub mod arena;
pub mod baseline;
pub mod bench;
pub mod evloop;
pub mod fnv;
pub mod html;
pub mod obs;
pub mod par;
pub mod prop;
pub mod rng;
pub mod simd;

pub use rng::{Rng, SeedableRng, StdRng};
