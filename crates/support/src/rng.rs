//! Deterministic, seedable pseudo-random number generation.
//!
//! Two classic generators are provided in-tree so the workspace needs no
//! external crates: [`SplitMix64`] (Steele–Lea–Flood; used for seeding and
//! stream splitting) and [`Xoshiro256StarStar`] (Blackman–Vigna; the
//! workhorse, aliased as [`StdRng`]). Both are fully specified algorithms:
//! a fixed seed yields the same sequence on every platform, toolchain, and
//! run — the property the reproducibility claims in EXPERIMENTS.md rest on.
//!
//! The surface mirrors the small slice of the `rand` crate the workspace
//! used: [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`] (alias [`Rng::gen_range`]), [`Rng::random_bool`],
//! plus [`Rng::shuffle`] and [`Rng::choose`] for slices.
//!
//! ```
//! use ucfg_support::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die = rng.random_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let raw: u64 = rng.random();
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.random_range(1..=6u32), die);
//! let _ = raw;
//! ```

use std::ops::{Range, RangeInclusive};

/// The minimal generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: a tiny, fast, well-distributed generator with a 64-bit
/// state that simply increments — ideal for deriving independent seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The bare mixing function: maps an incrementing counter to a
    /// well-distributed 64-bit word. Exposed so seed derivation can be
    /// done statelessly (e.g. per-case seeds in the property harness).
    pub fn mix(z: u64) -> u64 {
        let mut z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 256 bits of state, period 2²⁵⁶ − 1, excellent statistical
/// quality; the workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Build from raw state words. At least one word must be nonzero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be nonzero"
        );
        Xoshiro256StarStar { s }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    /// Seed the four state words from a SplitMix64 stream, as the xoshiro
    /// authors recommend (guarantees a nonzero state for every seed).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The workspace's default generator.
pub type StdRng = Xoshiro256StarStar;

/// Integer types that [`Rng::random_range`] can sample uniformly.
///
/// Everything funnels through `u128` so one unbiased rejection sampler
/// serves all widths.
pub trait UniformInt: Copy + PartialOrd {
    /// The value as a `u128`.
    fn to_u128(self) -> u128;
    /// Back from a `u128` (callers guarantee the value fits).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )+};
}
impl_uniform_int!(u8, u16, u32, u64, u128, usize);

/// Ranges acceptable to [`Rng::random_range`]: `lo..hi` and `lo..=hi`.
pub trait IntRange<T: UniformInt> {
    /// Inclusive `(lo, hi)` bounds as `u128`. Panics on an empty range.
    fn inclusive_bounds(&self) -> (u128, u128);
}

impl<T: UniformInt> IntRange<T> for Range<T> {
    fn inclusive_bounds(&self) -> (u128, u128) {
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        assert!(lo < hi, "random_range called with an empty range");
        (lo, hi - 1)
    }
}

impl<T: UniformInt> IntRange<T> for RangeInclusive<T> {
    fn inclusive_bounds(&self) -> (u128, u128) {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "random_range called with an empty range");
        (lo, hi)
    }
}

/// Types with a canonical "uniform over all values" distribution for
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform `u128` in `[0, hi − lo]` shifted by `lo`, by masked rejection:
/// draw the minimal number of bits, retry while above the span. Consumes
/// one `next_u64` per attempt when the span fits 64 bits.
fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u128, hi: u128) -> u128 {
    let span = hi - lo; // number of values minus one
    if span == 0 {
        return lo;
    }
    if span == u128::MAX {
        return u128::sample(rng);
    }
    if span <= u128::from(u64::MAX) {
        let span64 = span as u64;
        let mask = u64::MAX >> span64.leading_zeros();
        loop {
            let v = rng.next_u64() & mask;
            if v <= span64 {
                return lo + u128::from(v);
            }
        }
    }
    let mask = u128::MAX >> span.leading_zeros();
    loop {
        let v = u128::sample(rng) & mask;
        if v <= span {
            return lo + v;
        }
    }
}

/// The user-facing sampling surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (all bit patterns / both booleans equally
    /// likely).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform integer in `range` (`lo..hi` or `lo..=hi`), unbiased.
    /// Panics if the range is empty.
    fn random_range<T: UniformInt, B: IntRange<T>>(&mut self, range: B) -> T {
        let (lo, hi) = range.inclusive_bounds();
        T::from_u128(sample_inclusive(self, lo, hi))
    }

    /// `rand` 0.8 spelling of [`Rng::random_range`].
    fn gen_range<T: UniformInt, B: IntRange<T>>(&mut self, range: B) -> T {
        self.random_range(range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`), using 53 random
    /// bits.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fisher–Yates shuffle of a slice, in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniform element of the slice, or `None` if it is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }

    /// A uniform sample of `k` distinct indices from `0..len` (partial
    /// Fisher–Yates over the index set), in selection order.
    fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        let k = k.min(len);
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..k {
            let j = self.random_range(i..len);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from the published SplitMix64 algorithm, seed 0.
    #[test]
    fn splitmix64_reference_sequence() {
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(rng.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(rng.next_u64(), 0x06c45d188009454f);
        assert_eq!(rng.next_u64(), 0xf88bb8a8724c81ec);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed, same stream");
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different seeds, different streams");
    }

    #[test]
    fn ranges_are_exhaustive_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.random_range(1..=6u32);
            assert!((1..=6).contains(&v));
            seen[v as usize - 1] = true;
        }
        assert!(seen.iter().all(|&x| x), "all faces seen: {seen:?}");
        for _ in 0..200 {
            assert!(rng.random_range(5..8usize) < 8);
            assert!(rng.random_range(5..8usize) >= 5);
        }
        // Degenerate one-value ranges.
        assert_eq!(rng.random_range(9..10u64), 9);
        assert_eq!(rng.random_range(3..=3u8), 3);
        // Full-width ranges do not overflow.
        let _ = rng.random_range(0..=u128::MAX);
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3u32);
    }

    #[test]
    fn random_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_and_sample_indices() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        let picked = rng.sample_indices(10, 4);
        assert_eq!(picked.len(), 4);
        let set: std::collections::BTreeSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 4, "indices are distinct");
        assert!(picked.iter().all(|&i| i < 10));
        assert_eq!(rng.sample_indices(3, 9).len(), 3, "k clamps to len");
    }

    #[test]
    fn uniformity_of_range_sampling() {
        // χ²-style sanity: 12 buckets, 12k draws, expect ~1000 each.
        let mut rng = StdRng::seed_from_u64(2024);
        let mut buckets = [0u32; 12];
        for _ in 0..12_000 {
            buckets[rng.random_range(0..12usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((850..1150).contains(&b), "bucket {i}: {b}");
        }
    }
}
