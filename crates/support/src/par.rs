//! A scoped, deterministic parallel-map layer for the exhaustive kernels.
//!
//! Every quantitative kernel in the workspace (the `2^{2n}` cover scans,
//! the discrepancy maxima over `𝓛`, the `2^n × 2^n` rank matrices, the
//! separation sweep) is an embarrassingly parallel loop whose output must
//! stay **bit-identical** regardless of how many threads run it. This
//! module provides that guarantee by construction:
//!
//! - work is split into chunks whose boundaries depend only on the input
//!   length — never on the thread count — so per-chunk results are fixed,
//! - chunk results are always combined in chunk order, so callers see the
//!   serial order even though chunks complete out of order,
//! - `threads <= 1` (or a single chunk) takes a plain serial loop with no
//!   thread machinery at all.
//!
//! The worker count defaults to [`thread_count`]: the `UCFG_THREADS`
//! environment variable when set (`UCFG_THREADS=1` forces the serial path
//! everywhere), otherwise [`std::thread::available_parallelism`].
//!
//! ```
//! use ucfg_support::par;
//!
//! let squares = par::par_map_threads(&[1u64, 2, 3, 4], 8, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // ordered, regardless of threads
//! ```

use crate::obs;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count
/// (`UCFG_THREADS=1` forces every kernel onto its serial path).
pub const THREADS_ENV: &str = "UCFG_THREADS";

/// Upper bound on the number of chunks any input is split into. The bound
/// is a balance knob only: chunk *boundaries* are derived from the input
/// length alone, so results never depend on it reaching saturation.
const MAX_CHUNKS: usize = 64;

/// Parse a thread-count override; `None` on absent/unusable values.
fn parse_threads(spec: Option<&str>) -> Option<usize> {
    spec?.trim().parse::<usize>().ok().filter(|&t| t >= 1)
}

/// The worker-thread count: `UCFG_THREADS` when set to a positive integer,
/// else the machine's available parallelism (at least 1).
pub fn thread_count() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Override the worker-thread count for this process by setting
/// [`THREADS_ENV`] — the funnel behind the binaries' `--threads` flag, so
/// a per-invocation override reaches every kernel that defaults to
/// [`thread_count`]. Kernel results are bit-identical across counts, so
/// this only changes how fast they run.
pub fn set_thread_count(threads: usize) {
    assert!(threads >= 1, "thread count must be ≥ 1");
    std::env::set_var(THREADS_ENV, threads.to_string());
}

/// Strip every thread-override flag from a binary's argument list,
/// applying the override via [`set_thread_count`], and return the
/// remaining arguments. All four conventional spellings are accepted:
/// `--threads N`, `-j N`, `--threads=N` and `-jN`. A flag with a
/// missing, zero or non-numeric count is an error (not silently
/// ignored), so `--threads banana` can never be misread as a command.
pub fn strip_thread_flags(args: &[String]) -> Result<Vec<String>, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let spec: Option<std::borrow::Cow<'_, str>> = if arg == "--threads" || arg == "-j" {
            match iter.next() {
                Some(v) => Some(v.as_str().into()),
                None => return Err(format!("{arg} requires a thread count")),
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            Some(v.into())
        } else {
            arg.strip_prefix("-j")
                .filter(|v| !v.is_empty())
                .map(|v| v.into())
        };
        match spec {
            Some(v) => match parse_threads(Some(&v)) {
                Some(t) => set_thread_count(t),
                None => return Err(format!("invalid thread count '{v}' (want an integer ≥ 1)")),
            },
            None => rest.push(arg.clone()),
        }
    }
    Ok(rest)
}

/// The fixed chunk size for an input of `len` items: at most
/// [`MAX_CHUNKS`] chunks, depending only on `len`.
fn chunk_len(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

/// Evaluate `work(0..num_chunks)` on up to `threads` workers and return
/// the results **in chunk order**. The scheduling (an atomic work queue)
/// affects only which thread computes which chunk, never the result.
pub fn run_chunks<A: Send>(
    num_chunks: usize,
    threads: usize,
    work: impl Fn(usize) -> A + Sync,
) -> Vec<A> {
    obs::count!("par.calls");
    obs::count!("par.chunks", num_chunks as u64);
    if threads <= 1 || num_chunks <= 1 {
        // Which calls take the serial path depends on the worker count,
        // so this counter lives in the volatile stratum.
        obs::vcount!("par.serial_hits");
        return (0..num_chunks).map(work).collect();
    }
    let workers = threads.min(num_chunks);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<A>> = Vec::with_capacity(num_chunks);
    slots.resize_with(num_chunks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let work = &work;
                scope.spawn(move || {
                    let mut done: Vec<(usize, A)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= num_chunks {
                            // Per-worker load: how evenly the atomic
                            // queue spread the chunks (volatile).
                            obs::record!("par.worker.chunks", done.len() as u64);
                            return done;
                        }
                        done.push((idx, work(idx)));
                    }
                })
            })
            .collect();
        for h in handles {
            for (idx, a) in h.join().expect("par worker panicked") {
                slots[idx] = Some(a);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk computed"))
        .collect()
}

/// Ordered parallel map over a slice, using [`thread_count`] workers.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_threads(items, thread_count(), f)
}

/// Ordered parallel map over a slice with an explicit worker count.
/// Output is element-for-element identical to `items.iter().map(f)` for
/// every `threads >= 1`.
pub fn par_map_threads<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    obs::count!("par.items", len as u64);
    let chunk = chunk_len(len);
    let per_chunk = run_chunks(len.div_ceil(chunk), threads, |ci| {
        let lo = ci * chunk;
        items[lo..(lo + chunk).min(len)]
            .iter()
            .map(&f)
            .collect::<Vec<U>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Split a `u64` range into fixed sub-ranges (boundaries depend only on
/// the range), evaluate `work` on each in parallel, and return the results
/// in range order. This is the word-scan primitive: `work` typically folds
/// a sub-range of packed words into a partial aggregate which the caller
/// merges left-to-right.
pub fn map_ranges<A: Send>(range: Range<u64>, work: impl Fn(Range<u64>) -> A + Sync) -> Vec<A> {
    map_ranges_threads(range, thread_count(), work)
}

/// [`map_ranges`] with an explicit worker count.
pub fn map_ranges_threads<A: Send>(
    range: Range<u64>,
    threads: usize,
    work: impl Fn(Range<u64>) -> A + Sync,
) -> Vec<A> {
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return Vec::new();
    }
    obs::count!("par.items", len);
    let chunk = len.div_ceil(MAX_CHUNKS as u64).max(1);
    let num_chunks = len.div_ceil(chunk) as usize;
    run_chunks(num_chunks, threads, |ci| {
        let lo = range.start + ci as u64 * chunk;
        work(lo..(lo + chunk).min(range.end))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_spec_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn chunking_depends_only_on_length() {
        assert_eq!(chunk_len(0), 1);
        assert_eq!(chunk_len(1), 1);
        assert_eq!(chunk_len(MAX_CHUNKS), 1);
        assert_eq!(chunk_len(MAX_CHUNKS + 1), 2);
        assert_eq!(chunk_len(1 << 20), (1usize << 20).div_ceil(MAX_CHUNKS));
    }

    #[test]
    fn par_map_is_ordered_and_thread_invariant() {
        let items: Vec<u64> = (0..1000).collect();
        let serial = par_map_threads(&items, 1, |&x| x.wrapping_mul(0x9e37_79b9));
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                serial,
                par_map_threads(&items, threads, |&x| x.wrapping_mul(0x9e37_79b9)),
                "threads = {threads}"
            );
        }
        assert_eq!(serial.len(), 1000);
        assert_eq!(serial[3], 3u64.wrapping_mul(0x9e37_79b9));
    }

    #[test]
    fn par_map_edge_cases() {
        assert_eq!(par_map_threads(&[] as &[u8], 8, |&x| x), Vec::<u8>::new());
        assert_eq!(par_map_threads(&[7u8], 8, |&x| x + 1), vec![8]);
        // More threads than items.
        assert_eq!(par_map_threads(&[1u8, 2], 64, |&x| x), vec![1, 2]);
    }

    #[test]
    fn map_ranges_covers_exactly_once() {
        for threads in [1usize, 2, 8] {
            let pieces = map_ranges_threads(10..1_000_010, threads, |r| r);
            assert_eq!(pieces.first().map(|r| r.start), Some(10));
            assert_eq!(pieces.last().map(|r| r.end), Some(1_000_010));
            for w in pieces.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous, in order");
            }
        }
        // Piece boundaries are identical across thread counts.
        let a = map_ranges_threads(0..12345, 2, |r| (r.start, r.end));
        let b = map_ranges_threads(0..12345, 8, |r| (r.start, r.end));
        assert_eq!(a, b);
        assert!(map_ranges_threads(5..5, 4, |r| r).is_empty());
    }

    #[test]
    fn range_fold_matches_serial_sum() {
        let serial: u64 = (0..100_000u64).sum();
        for threads in [1usize, 2, 8] {
            let total: u64 = map_ranges_threads(0..100_000, threads, |r| r.sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, serial, "threads = {threads}");
        }
    }

    #[test]
    fn run_chunks_ordered_under_contention() {
        let out = run_chunks(257, 8, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn strip_thread_flags_accepts_all_four_spellings() {
        for form in [
            &["--threads", "3", "cmd"][..],
            &["-j", "3", "cmd"],
            &["--threads=3", "cmd"],
            &["-j3", "cmd"],
        ] {
            let rest = strip_thread_flags(&argv(form)).expect("valid spelling");
            assert_eq!(rest, argv(&["cmd"]), "form {form:?}");
            assert_eq!(thread_count(), 3, "form {form:?}");
        }
        // Later flags win; non-flag args pass through in order.
        let rest = strip_thread_flags(&argv(&["a", "-j2", "b", "--threads=5"])).unwrap();
        assert_eq!(rest, argv(&["a", "b"]));
        assert_eq!(thread_count(), 5);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn strip_thread_flags_rejects_bad_counts() {
        for bad in [
            &["--threads"][..],
            &["-j"],
            &["--threads", "0"],
            &["--threads=banana"],
            &["-j0"],
            &["-jx"],
        ] {
            assert!(strip_thread_flags(&argv(bad)).is_err(), "form {bad:?}");
        }
    }
}
