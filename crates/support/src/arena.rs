//! A process-wide pooled arena for `u64` bitset slabs.
//!
//! The serve daemon's batching scheduler and the chunked word-set algebra
//! both allocate the same shapes over and over: CYK chart slabs, per-chunk
//! block buffers, rectangle bitmaps. Each one is freed microseconds after
//! it is built, so under steady traffic the allocator is pure overhead.
//! This arena keeps those buffers alive across requests:
//!
//! * [`take_zeroed`] hands out a zeroed `Vec<u64>` — reusing a pooled
//!   buffer when one is big enough, allocating otherwise;
//! * [`recycle`] returns a buffer to the pool (bounded in buffer count
//!   and total words, so the pool can never grow without limit);
//! * [`reset`] marks a batch boundary: the serve scheduler calls it after
//!   every drained batch, which records the batch's memory high-water
//!   into the `arena.peak_bytes` histogram and bumps `arena.resets`.
//!
//! The pool is deliberately **global and lock-protected** rather than
//! thread-local: the deterministic parallel layer ([`crate::par`]) spawns
//! scoped worker threads per call, so thread-local pools would die with
//! every parallel call and nothing would ever be reused across requests.
//! The mutex is held only for a pop/push, never across allocation of new
//! memory or zeroing.
//!
//! Pooling never changes results — a buffer from the pool is
//! indistinguishable from a fresh allocation (same length, all zeros) —
//! so the byte-identical-across-`UCFG_THREADS` guarantee is unaffected.
//! All counters here live on the **volatile** metric stratum: pool hits
//! depend on scheduling order, and the deterministic stratum is
//! byte-compared across thread counts in CI.

use crate::obs;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Buffers shorter than this many words bypass the pool entirely: tiny
/// allocations are cheap and the mutex round-trip is not worth it.
pub const MIN_POOLED_WORDS: usize = 32;

/// The pool never holds more than this many buffers.
const MAX_POOLED_BUFS: usize = 64;

/// The pool never retains more than this many words total (128 MiB).
const MAX_POOLED_WORDS: usize = 1 << 24;

struct Pool {
    /// Recycled buffers, unordered; selection is best-fit by capacity.
    free: Vec<Vec<u64>>,
    /// Total capacity (in words) retained across `free`.
    retained_words: usize,
}

fn pool() -> &'static Mutex<Pool> {
    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            free: Vec::new(),
            retained_words: 0,
        })
    })
}

/// Words currently handed out and not yet recycled, and its high-water
/// mark since the last [`reset`]. Approximate: buffers that were created
/// outside the arena but recycled into it (e.g. a cloned bitset) are not
/// in the taken tally, so the live count saturates at zero from below.
static LIVE_WORDS: AtomicI64 = AtomicI64::new(0);
static PEAK_WORDS: AtomicI64 = AtomicI64::new(0);

fn lock() -> std::sync::MutexGuard<'static, Pool> {
    pool().lock().unwrap_or_else(PoisonError::into_inner)
}

fn track_take(words: usize) {
    let live = LIVE_WORDS.fetch_add(words as i64, Ordering::Relaxed) + words as i64;
    PEAK_WORDS.fetch_max(live, Ordering::Relaxed);
}

/// A zeroed `Vec<u64>` of exactly `words` elements, reusing a pooled
/// buffer when one with sufficient capacity is available.
pub fn take_zeroed(words: usize) -> Vec<u64> {
    if words < MIN_POOLED_WORDS {
        return vec![0u64; words];
    }
    let reused = {
        let mut p = lock();
        // Best fit: the smallest pooled buffer that is big enough, so a
        // huge retained slab is not burned on a small request.
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in p.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= words && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| {
            let buf = p.free.swap_remove(i);
            p.retained_words -= buf.capacity();
            buf
        })
    };
    match reused {
        Some(mut buf) => {
            obs::vcount!("arena.hits");
            track_take(buf.capacity());
            buf.clear();
            buf.resize(words, 0);
            buf
        }
        None => {
            obs::vcount!("arena.misses");
            track_take(words);
            vec![0u64; words]
        }
    }
}

/// Return a buffer to the pool. Buffers below [`MIN_POOLED_WORDS`], and
/// anything beyond the pool's retention caps, are simply dropped.
pub fn recycle(buf: Vec<u64>) {
    let cap = buf.capacity();
    LIVE_WORDS
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some((live - cap as i64).max(0))
        })
        .ok();
    if cap < MIN_POOLED_WORDS {
        return;
    }
    let mut p = lock();
    if p.free.len() >= MAX_POOLED_BUFS || p.retained_words + cap > MAX_POOLED_WORDS {
        obs::vcount!("arena.drops");
        return;
    }
    p.retained_words += cap;
    p.free.push(buf);
    obs::vcount!("arena.recycled");
}

/// Mark a batch boundary: records the high-water of live arena bytes
/// since the previous reset into the `arena.peak_bytes` histogram, bumps
/// the `arena.resets` counter, and restarts the high-water tracking from
/// the current live level. The pooled buffers themselves stay resident —
/// that is the point of the arena.
pub fn reset() {
    let live = LIVE_WORDS.load(Ordering::Relaxed);
    let peak = PEAK_WORDS.swap(live, Ordering::Relaxed);
    obs::vcount!("arena.resets");
    obs::record!("arena.peak_bytes", (peak.max(0) as u64).saturating_mul(8));
}

/// Drop every pooled buffer and return how many were dropped (memory
/// pressure relief, and test isolation).
pub fn clear() -> usize {
    let mut p = lock();
    let dropped = p.free.len();
    p.free.clear();
    p.retained_words = 0;
    dropped
}

/// Number of buffers currently retained in the pool.
pub fn pooled_buffers() -> usize {
    lock().free.len()
}

/// Total words currently retained in the pool.
pub fn pooled_words() -> usize {
    lock().retained_words
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The pool is process-global; tests that assert on its contents must
    /// not interleave under the parallel test runner.
    fn gate() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn take_is_zeroed_and_exact_length() {
        let _g = gate();
        for words in [0, 1, MIN_POOLED_WORDS, 100, 4096] {
            let buf = take_zeroed(words);
            assert_eq!(buf.len(), words);
            assert!(buf.iter().all(|&w| w == 0), "words={words}");
            recycle(buf);
        }
    }

    #[test]
    fn recycled_buffer_is_reused_and_rezeroed() {
        let _g = gate();
        clear();
        let mut buf = take_zeroed(1024);
        buf.iter_mut().for_each(|w| *w = u64::MAX);
        let ptr = buf.as_ptr();
        recycle(buf);
        assert_eq!(pooled_buffers(), 1);
        // Same request size gets the same allocation back, zeroed.
        let again = take_zeroed(1024);
        assert_eq!(again.as_ptr(), ptr);
        assert!(again.iter().all(|&w| w == 0));
        assert_eq!(pooled_buffers(), 0);
        recycle(again);
        clear();
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        let _g = gate();
        clear();
        recycle(take_zeroed(MIN_POOLED_WORDS - 1));
        assert_eq!(pooled_buffers(), 0);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let _g = gate();
        clear();
        let small = take_zeroed(64);
        let large = take_zeroed(4096);
        let small_ptr = small.as_ptr();
        recycle(large);
        recycle(small);
        let got = take_zeroed(48);
        assert_eq!(got.as_ptr(), small_ptr, "small buffer is the best fit");
        recycle(got);
        clear();
    }

    #[test]
    fn retention_caps_bound_the_pool() {
        let _g = gate();
        clear();
        for _ in 0..(MAX_POOLED_BUFS + 8) {
            recycle(vec![0u64; MIN_POOLED_WORDS]);
        }
        assert!(pooled_buffers() <= MAX_POOLED_BUFS);
        assert!(pooled_words() <= MAX_POOLED_WORDS);
        clear();
        assert_eq!(pooled_buffers(), 0);
        assert_eq!(pooled_words(), 0);
    }

    #[test]
    fn reset_restarts_peak_tracking() {
        let _g = gate();
        // Smoke: reset never panics and live tracking survives foreign
        // recycles (buffers the arena never handed out).
        recycle(vec![0u64; 2048]);
        reset();
        let buf = take_zeroed(2048);
        recycle(buf);
        reset();
        clear();
    }
}
