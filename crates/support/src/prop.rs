//! A lightweight property-testing harness (the workspace's in-tree
//! replacement for `proptest`).
//!
//! A property is a generator plus a predicate. The [`property!`](crate::property) macro
//! wires both into a `#[test]`:
//!
//! ```
//! use ucfg_support::{property, prop_assert, prop_assert_eq};
//! use ucfg_support::prop::Gen;
//!
//! property! {
//!     cases = 64;
//!     fn addition_commutes(
//!         a in |g: &mut Gen| g.int_in(0u64..1 << 32),
//!         b in |g: &mut Gen| g.int_in(0u64..1 << 32),
//!     ) {
//!         prop_assert_eq!(a + b, b + a);
//!         prop_assert!(a + b >= a, "no wraparound below 2^33");
//!     }
//! }
//! ```
//!
//! Every case is generated from a *case seed* derived deterministically
//! from the property's base seed, and a *size* in `(0, 1]` that scales
//! integer ranges and collection lengths. On failure the harness shrinks
//! by replaying the failing case seed at progressively smaller sizes
//! (bounded by [`Config::shrink_rounds`]) and reports the smallest size
//! that still fails, together with a `UCFG_PROP_REPLAY=<seed>:<size>`
//! incantation that regenerates exactly that case.

use crate::rng::{Rng, SeedableRng, SplitMix64, StdRng, UniformInt};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable that replays one exact case (`seed` in hex or
/// decimal, optionally `:size` as a float) instead of running the sweep.
pub const REPLAY_ENV: &str = "UCFG_PROP_REPLAY";

/// Harness configuration. `Default` gives 64 cases, a fixed base seed,
/// and 48 shrink rounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; per-case seeds are split from it. Fixed by default so
    /// test runs are reproducible end to end.
    pub seed: u64,
    /// Maximum number of shrink re-executions after a failure.
    pub shrink_rounds: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x5eed_1e55_u64,
            shrink_rounds: 48,
        }
    }
}

/// A failed test case: the message carried by `prop_assert!` and friends,
/// or a caught panic.
#[derive(Debug, Clone)]
pub struct CaseError {
    msg: String,
}

impl CaseError {
    /// Wrap a failure message.
    pub fn new(msg: impl Into<String>) -> Self {
        CaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The value source handed to generators: a seeded [`StdRng`] plus the
/// current size in `(0, 1]`.
pub struct Gen {
    rng: StdRng,
    size: f64,
}

impl Gen {
    /// A generator for one case, fully determined by `(seed, size)`.
    pub fn new(seed: u64, size: f64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            size: size.clamp(0.01, 1.0),
        }
    }

    /// The current size factor (use it to scale custom structures, e.g.
    /// recursion depth).
    pub fn size(&self) -> f64 {
        self.size
    }

    /// Direct access to the underlying RNG for custom draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A uniform integer in `range`, with the span scaled down toward the
    /// low bound as size shrinks (so shrunk cases are "smaller").
    pub fn int_in<T: UniformInt, B: crate::rng::IntRange<T>>(&mut self, range: B) -> T {
        let (lo, hi) = range.inclusive_bounds();
        let hi = if self.size >= 1.0 {
            hi
        } else {
            let span = hi - lo;
            let scaled = if span > (1u128 << 100) {
                // f64 cannot hold the span; scale via the bit width.
                let keep_bits = ((128 - span.leading_zeros()) as f64 * self.size).ceil() as u32;
                (1u128 << keep_bits.clamp(1, 127)) - 1
            } else {
                (span as f64 * self.size).ceil() as u128
            };
            lo + scaled.min(span)
        };
        let v = self.rng.random_range(lo..=hi);
        T::from_u128(v)
    }

    /// A uniform `u64` over the full width (unscaled — for seeds).
    pub fn any_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// A uniform `u128` over the full width (unscaled).
    pub fn any_u128(&mut self) -> u128 {
        self.rng.random()
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random()
    }

    /// A uniform element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choice from an empty slice");
        self.rng.choose(options).expect("non-empty")
    }

    /// A collection length in `range`, scaled by size.
    pub fn len_in(&mut self, range: Range<usize>) -> usize {
        self.int_in(range)
    }

    /// A string over `chars` with length drawn from `len` (inclusive
    /// bounds scale with size).
    pub fn string_of(&mut self, chars: &[char], len: RangeInclusive<usize>) -> String {
        let n = self.int_in(len);
        (0..n).map(|_| *self.choice(chars)).collect()
    }

    /// A vector whose length is drawn from `len`, elements from `f`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A `BTreeSet` with size drawn from `len` where possible (generators
    /// may collide; insertion is bounded, and the set is returned once the
    /// target or the attempt budget is reached). The low bound is honoured
    /// only as far as distinct values exist.
    pub fn btree_set_of<T: Ord>(
        &mut self,
        len: Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> BTreeSet<T> {
        let target = self.len_in(len);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 16 * (target + 1) {
            out.insert(f(self));
            attempts += 1;
        }
        out
    }
}

fn case_seed(base: u64, index: u64) -> u64 {
    SplitMix64::mix(base ^ SplitMix64::mix(index))
}

fn parse_replay(spec: &str) -> Option<(u64, f64)> {
    let (seed_s, size_s) = match spec.split_once(':') {
        Some((a, b)) => (a, Some(b)),
        None => (spec, None),
    };
    let seed_s = seed_s.trim();
    let seed = if let Some(hex) = seed_s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        seed_s.parse().ok()?
    };
    let size = match size_s {
        Some(s) => s.trim().parse().ok()?,
        None => 1.0,
    };
    Some((seed, size))
}

fn exec_case<T>(
    generate: &mut dyn FnMut(&mut Gen) -> T,
    check: &mut dyn FnMut(T) -> Result<(), CaseError>,
    seed: u64,
    size: f64,
) -> Result<(), CaseError> {
    let value = generate(&mut Gen::new(seed, size));
    match catch_unwind(AssertUnwindSafe(|| check(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            Err(CaseError::new(format!("panicked: {msg}")))
        }
    }
}

/// Run a property: `cfg.cases` generated cases, shrink on failure, panic
/// with a replayable report. This is what [`property!`](crate::property) expands to; call
/// it directly for programmatic use.
pub fn run<T: Debug>(
    name: &str,
    cfg: Config,
    mut generate: impl FnMut(&mut Gen) -> T,
    mut check: impl FnMut(T) -> Result<(), CaseError>,
) {
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (seed, size) =
            parse_replay(&spec).unwrap_or_else(|| panic!("bad {REPLAY_ENV} spec: {spec:?}"));
        if let Err(e) = exec_case(&mut generate, &mut check, seed, size) {
            let shown = generate(&mut Gen::new(seed, size));
            panic!(
                "property '{name}' replay failed (seed {seed:#x}, size {size}):\n  \
                 value: {shown:?}\n  error: {e}"
            );
        }
        eprintln!("property '{name}': replay (seed {seed:#x}, size {size}) passed");
        return;
    }

    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, u64::from(i));
        // Ramp sizes up so early cases are small and failures start simple.
        let size = (0.2 + 0.8 * f64::from(i + 1) / f64::from(cfg.cases)).min(1.0);
        let Err(first) = exec_case(&mut generate, &mut check, seed, size) else {
            continue;
        };

        // Shrink: same case seed, progressively smaller sizes; keep the
        // smallest size that still fails.
        let mut best = (size, first);
        for r in 1..=cfg.shrink_rounds {
            let s = size * (1.0 - f64::from(r) / f64::from(cfg.shrink_rounds + 1));
            if s < 0.01 {
                break;
            }
            if let Err(e) = exec_case(&mut generate, &mut check, seed, s) {
                best = (s, e);
            }
        }
        let (shrunk_size, err) = best;
        let value = generate(&mut Gen::new(seed, shrunk_size));
        panic!(
            "property '{name}' failed at case {i}/{}.\n  \
             value: {value:?}\n  error: {err}\n  \
             replay with: {REPLAY_ENV}={seed:#x}:{shrunk_size} cargo test {name}",
            cfg.cases
        );
    }
}

/// Declare property tests. Each `fn` becomes a `#[test]`; bindings take
/// the form `name in <generator>` where the generator is any
/// `FnMut(&mut Gen) -> T` (closure or named function) and `T: Debug`. An
/// optional leading `cases = N;` overrides the case count.
#[macro_export]
macro_rules! property {
    (
        $(cases = $cases:expr;)?
        $(#[$meta:meta])*
        fn $name:ident($($var:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut, unused_assignments)]
            let mut cfg = $crate::prop::Config::default();
            $(cfg.cases = $cases;)?
            $crate::prop::run(
                stringify!($name),
                cfg,
                |g: &mut $crate::prop::Gen| ($(($gen)(&mut *g),)+),
                |case| {
                    let ($($var,)+) = case;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::property! { $($rest)* }
    };
    () => {};
}

/// `assert!` for property bodies: fails the case (triggering shrinking)
/// instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::new(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::new(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::prop::CaseError::new(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::prop::CaseError::new(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                        stringify!($left), stringify!($right), l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::prop::CaseError::new(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        run(
            "always_ok",
            Config {
                cases: 17,
                ..Config::default()
            },
            |g| g.int_in(0u64..100),
            |_| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_panics_with_replay_line() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(
                "fails_on_big",
                Config::default(),
                |g| g.int_in(0u64..1000),
                |v| {
                    if v > 10 {
                        Err(CaseError::new(format!("{v} too big")))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("fails_on_big"), "{msg}");
        assert!(msg.contains(REPLAY_ENV), "{msg}");
        assert!(msg.contains("too big"), "{msg}");
    }

    #[test]
    fn shrinking_reduces_failing_sizes() {
        // The property fails for any v >= 8; with ~even just a mild shrink
        // the reported value should sit well below the unshrunk range top.
        let reported = catch_unwind(AssertUnwindSafe(|| {
            run(
                "shrinks",
                Config::default(),
                |g| g.int_in(0u64..1_000_000),
                |v| {
                    if v >= 8 {
                        Err(CaseError::new("ge 8"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = *reported.unwrap_err().downcast::<String>().unwrap();
        let value: u64 = msg
            .lines()
            .find_map(|l| l.trim().strip_prefix("value: "))
            .and_then(|v| v.parse().ok())
            .expect("value line");
        assert!(value < 500_000, "shrinking should reduce the case: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_size() {
        let draw = |seed, size| {
            let mut g = Gen::new(seed, size);
            (
                g.any_u64(),
                g.string_of(&['a', 'b'], 1..=6),
                g.int_in(0u32..50),
            )
        };
        assert_eq!(draw(7, 1.0), draw(7, 1.0));
        assert_eq!(draw(7, 0.5), draw(7, 0.5));
        assert_ne!(draw(7, 1.0).0, draw(8, 1.0).0);
    }

    #[test]
    fn size_scaling_shrinks_ranges_and_lengths() {
        let mut small = Gen::new(3, 0.05);
        for _ in 0..100 {
            assert!(small.int_in(0u64..1000) <= 50);
            assert!(small.string_of(&['a'], 0..=100).len() <= 5);
        }
        let mut full = Gen::new(3, 1.0);
        let max = (0..200).map(|_| full.int_in(0u64..1000)).max().unwrap();
        assert!(max > 500, "full size explores the range: {max}");
    }

    #[test]
    fn btree_set_of_hits_target_when_space_allows() {
        let mut g = Gen::new(11, 1.0);
        let s = g.btree_set_of(5..6, |g| g.int_in(0u64..1_000_000));
        assert_eq!(s.len(), 5);
        // Tiny value space: can't reach the target, must still terminate.
        let s = g.btree_set_of(5..6, |g| g.int_in(0u64..2));
        assert!(s.len() <= 2);
    }

    #[test]
    fn replay_spec_parsing() {
        assert_eq!(parse_replay("0xff"), Some((255, 1.0)));
        assert_eq!(parse_replay("42:0.5"), Some((42, 0.5)));
        assert_eq!(parse_replay("0x10:0.25"), Some((16, 0.25)));
        assert_eq!(parse_replay("bogus"), None);
    }

    // The macro itself, including multiple properties per invocation.
    crate::property! {
        cases = 8;
        fn macro_smoke(a in |g: &mut Gen| g.int_in(0u8..=9), b in |g: &mut Gen| g.bool()) {
            crate::prop_assert!(a <= 9);
            crate::prop_assert_eq!(b, b);
            crate::prop_assert_ne!(u32::from(a) + 1, 0u32);
        }

        fn macro_second_property(x in |g: &mut Gen| g.int_in(0u16..100)) {
            crate::prop_assert!(x < 100, "x was {x}");
        }
    }
}
