//! Thin nonblocking event-loop bindings: epoll via raw `libc` symbols.
//!
//! The serve daemon's accept/read path needs readiness notification for
//! tens of thousands of sockets, which `std::net` alone cannot provide.
//! Rather than pulling in `mio` (the workspace is dependency-free by
//! design), this module binds the four `epoll` syscalls plus `eventfd`
//! through `extern "C"` declarations against the libc `std` already
//! links. The surface is deliberately tiny:
//!
//! * [`Poller`] — an `epoll` instance. Registrations are
//!   **edge-triggered** (`EPOLLET`): an event fires on *transitions* to
//!   readiness, so consumers must drain reads/writes until
//!   `WouldBlock` before waiting again.
//! * [`Event`] — one readiness report: a caller-chosen `u64` token plus
//!   readable / writable / hangup / error bits.
//! * [`Waker`] — an `eventfd` registered with a poller so other threads
//!   (e.g. the batch schedulers completing a request) can interrupt a
//!   blocking [`Poller::wait`].
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` bump so a
//!   connection budget in the tens of thousands actually fits.
//!
//! Everything is Linux-only (epoll is a Linux API). On other targets the
//! same types exist but every constructor returns
//! [`std::io::ErrorKind::Unsupported`], so downstream code compiles
//! everywhere and fails loudly only when an event loop is actually
//! requested off-Linux.

use std::io;
use std::time::Duration;

/// A raw file descriptor (mirrors `std::os::unix::io::RawFd` so the
/// module's signatures exist on every target).
pub type RawFd = i32;

/// Which readiness transitions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hangs up).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — while a response is partially flushed.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer closed (EPOLLHUP / EPOLLRDHUP). Reads may still drain
    /// buffered bytes; treat EOF from `read` as the real close signal.
    pub hangup: bool,
    /// The fd is in an error state (EPOLLERR).
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    // epoll_event is packed on x86 so the 64-bit data field straddles
    // the usual alignment; other arches use natural layout.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
    pub const RLIMIT_NOFILE: i32 = 7;

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    pub fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLET | EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub fn decode(raw: &EpollEvent) -> Event {
        let bits = raw.events;
        Event {
            token: raw.data,
            readable: bits & EPOLLIN != 0,
            writable: bits & EPOLLOUT != 0,
            hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
            error: bits & EPOLLERR != 0,
        }
    }

    pub fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            // Round up so a 0 < t < 1 ms deadline does not busy-spin.
            Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX).max({
                if t.is_zero() {
                    0
                } else {
                    1
                }
            }),
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn unsupported() -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        "ucfg_support::evloop requires Linux (epoll)",
    )
}

/// An epoll instance. All registrations are edge-triggered; see the
/// module docs for the drain-until-`WouldBlock` contract.
#[derive(Debug)]
pub struct Poller {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    epfd: RawFd,
}

impl Poller {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    #[cfg(target_os = "linux")]
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn new() -> io::Result<Poller> {
        Err(unsupported())
    }

    #[cfg(target_os = "linux")]
    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::interest_bits(interest),
            data: token,
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `token`. Edge-triggered.
    #[cfg(target_os = "linux")]
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(unsupported())
    }

    /// Change the interest set (and/or token) of a registered fd.
    #[cfg(target_os = "linux")]
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        Err(unsupported())
    }

    /// Deregister `fd`. Harmless to call for an fd that was never (or is
    /// no longer) registered — `ENOENT` is swallowed, because closing an
    /// fd already deregisters it implicitly.
    #[cfg(target_os = "linux")]
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        match sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) }) {
            Ok(_) => Ok(()),
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            Err(e) => Err(e),
        }
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn remove(&self, _fd: RawFd) -> io::Result<()> {
        Err(unsupported())
    }

    /// Block until at least one event or the timeout (`None` = forever),
    /// appending decoded events to `out`. Returns the number appended.
    /// `EINTR` surfaces as `Ok(0)` so signal-interrupted waits retry
    /// naturally from the caller's loop.
    #[cfg(target_os = "linux")]
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        const CAP: usize = 1024;
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                raw.as_mut_ptr(),
                CAP as i32,
                sys::timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return if e.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(e)
            };
        }
        let n = n as usize;
        out.extend(raw[..n].iter().map(sys::decode));
        Ok(n)
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn wait(&self, _out: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        Err(unsupported())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// A cross-thread wakeup handle: an `eventfd` registered with a
/// [`Poller`]. Any thread may call [`Waker::wake`]; the poller's owner
/// sees an event carrying the waker's token and must call
/// [`Waker::drain`] before waiting again (edge-triggered).
#[derive(Debug)]
pub struct Waker {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    fd: RawFd,
}

// The waker only ever issues read(2)/write(2) on an eventfd, both of
// which are thread-safe; the fd itself is a plain integer.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create an eventfd and register it with `poller` under `token`.
    #[cfg(target_os = "linux")]
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let fd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        let w = Waker { fd };
        poller.add(fd, token, Interest::READABLE)?;
        Ok(w)
    }

    /// Unsupported off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn new(_poller: &Poller, _token: u64) -> io::Result<Waker> {
        Err(unsupported())
    }

    /// Make the next (or current) [`Poller::wait`] return promptly.
    /// Cheap, coalescing, and safe from any thread.
    #[cfg(target_os = "linux")]
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) already guarantees a pending
        // wake, so the result is deliberately ignored.
        unsafe { sys::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// No-op off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn wake(&self) {}

    /// Reset the eventfd counter so the edge can fire again.
    #[cfg(target_os = "linux")]
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(self.fd, buf.as_mut_ptr(), 8) };
    }

    /// No-op off Linux.
    #[cfg(not(target_os = "linux"))]
    pub fn drain(&self) {}
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Best-effort raise of `RLIMIT_NOFILE` so `want` descriptors fit: if
/// the soft limit is below `want`, lift it towards the hard limit.
/// Returns the resulting soft limit (or the error if the kernel refused
/// — callers treat that as advisory, not fatal).
#[cfg(target_os = "linux")]
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    sys::cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let new = sys::Rlimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    sys::cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) })?;
    Ok(new.cur)
}

/// Unsupported off Linux.
#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
    Err(unsupported())
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn listener_readiness_and_tokens() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .add(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        // Nothing pending: a zero timeout returns without events.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "{events:?}");

        // A connection attempt makes the listener readable.
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.remove(listener.as_raw_fd()).unwrap();
        // Removing twice is fine (ENOENT is swallowed).
        poller.remove(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn edge_triggered_stream_read_write() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::BOTH).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 1).expect("stream event");
        assert!(ev.readable);
        // A fresh socket is also writable on its first edge.
        assert!(ev.writable);

        let mut buf = [0u8; 16];
        let mut s = &server;
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Peer hangup surfaces as a hangup-flagged event.
        drop(client);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.hangup));
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 99).unwrap());
        let w2 = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            // Multiple wakes coalesce into (at least) one event.
            w2.wake();
            w2.wake();
            w2.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        t.join().unwrap();
        waker.drain();
        // Drained: no stale edge left behind.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "{events:?}");
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let before = raise_nofile_limit(0).unwrap();
        assert!(before > 0);
        // Asking for what we already have (or less) never lowers it.
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before);
    }
}
