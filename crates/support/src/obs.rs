//! A zero-dependency observability layer for the kernels.
//!
//! The bench harness ([`crate::bench`]) times whole suites from the
//! outside; this module watches the kernels from the *inside*: a
//! process-wide metrics registry of monotonic counters, gauges and
//! fixed-bucket duration histograms (all plain atomics), lightweight RAII
//! spans with wall-time capture, and a deterministic JSON/text exporter.
//!
//! Everything is **off by default and near-zero cost when off**: every
//! mutation first checks a single relaxed [`AtomicBool`], so an
//! uninstrumented run pays one predictable branch per probe. Tracing is
//! switched on by the `UCFG_TRACE=1` environment variable (read once) or
//! programmatically via [`set_enabled`] — the funnel behind the binaries'
//! `--trace` flag.
//!
//! Metrics live in two strata so CI can assert thread-count determinism:
//!
//! - **deterministic** counters ([`count!`]) and gauges ([`gauge_set!`],
//!   [`gauge_add!`]) — values that must be bit-identical for every
//!   `UCFG_THREADS`, e.g. chunks dispatched or cache misses;
//! - **volatile** counters ([`vcount!`]) and histograms / span timings
//!   ([`span!`]) — values that legitimately vary run to run (serial-path
//!   hits, per-worker load, wall time).
//!
//! [`export_json`] renders the registry with sorted keys and the whole
//! volatile stratum *last*, so `sed '/"volatile"/,$d'` cuts a
//! byte-comparable deterministic prefix; [`write_metrics`] lands it in
//! `out/METRICS_<bin>.json` (`$UCFG_OUT_DIR`-aware) and [`summary`]
//! renders a one-screen table for end-of-run stderr.
//!
//! ```
//! use ucfg_support::obs;
//!
//! obs::set_enabled(true);
//! obs::count!("doc.widgets", 3);
//! {
//!     let _t = obs::span!("doc.phase");
//!     // ... timed work ...
//! }
//! assert_eq!(obs::counter("doc.widgets").value(), 3);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

/// Environment variable that switches tracing on (`1` or `true`).
pub const TRACE_ENV: &str = "UCFG_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Read `UCFG_TRACE` exactly once; explicit [`set_enabled`] calls also
/// force the read first so the environment can never override them later.
fn init_from_env() {
    ENV_INIT.call_once(|| {
        let on = std::env::var(TRACE_ENV)
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false);
        if on {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether tracing is on. One relaxed atomic load (plus a one-time
/// environment read); this is the only cost instrumented code pays when
/// tracing is off.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Switch tracing on or off for this process (the `--trace` funnel).
/// Takes precedence over `UCFG_TRACE` regardless of call order.
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta` events (relaxed; callers already gate on [`enabled`]).
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins / additive signed gauge (e.g. bytes resident).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (commutative, so safe across threads).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` holds
/// samples whose value has bit length `i` (bucket 0: value 0), with the
/// top bucket absorbing everything wider.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram of `u64` samples (span durations in
/// nanoseconds, per-worker loads, ...). Power-of-two buckets keep the
/// record path to a handful of instructions.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The four namespaces of the process-wide registry. Instruments are
/// interned on first use (leaked, so handles are `&'static` and can be
/// cached in call-site statics) and exported in `BTreeMap` (= sorted
/// key) order.
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    vcounters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        vcounters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().expect("obs registry poisoned");
    if let Some(t) = map.get(name) {
        return t;
    }
    let t: &'static T = Box::leak(Box::default());
    map.insert(name.to_string(), t);
    t
}

/// Intern (or fetch) the **deterministic** counter `name`: its final
/// value must be identical for every thread count.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name)
}

/// Intern (or fetch) the **volatile** counter `name`: its value may
/// legitimately vary run to run (e.g. serial-path hits).
pub fn vcounter(name: &str) -> &'static Counter {
    intern(&registry().vcounters, name)
}

/// Intern (or fetch) the deterministic gauge `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name)
}

/// Intern (or fetch) the histogram `name` (exported in the volatile
/// stratum alongside the span timings).
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An RAII wall-time span: created by [`span!`] (or [`Span::start`] for
/// dynamic names), records its elapsed nanoseconds into a histogram on
/// drop. Inert (no clock read, no registry touch) when tracing is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    live: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// Start a span recording into the histogram `name`. Use this for
    /// dynamically built names (e.g. per-experiment ids); statically
    /// named call sites should prefer [`span!`], which caches the
    /// histogram handle.
    pub fn start(name: &str) -> Span {
        if enabled() {
            Span::from_histogram(histogram(name))
        } else {
            Span { live: None }
        }
    }

    /// Start a span on an already-interned histogram (the [`span!`]
    /// fast path). Callers gate on [`enabled`].
    pub fn from_histogram(hist: &'static Histogram) -> Span {
        Span {
            live: Some((hist, Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros (re-exported below as `obs::count!` etc.)
// ---------------------------------------------------------------------------

/// Bump the deterministic counter `$name` by `$delta` (default 1) when
/// tracing is on. The handle is interned once per call site.
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::obs_count!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::obs::enabled() {
            static __UCFG_OBS_C: ::std::sync::OnceLock<&'static $crate::obs::Counter> =
                ::std::sync::OnceLock::new();
            __UCFG_OBS_C
                .get_or_init(|| $crate::obs::counter($name))
                .add($delta as u64);
        }
    };
}

/// Bump the **volatile** counter `$name` by `$delta` (default 1) when
/// tracing is on.
#[macro_export]
macro_rules! obs_vcount {
    ($name:expr) => {
        $crate::obs_vcount!($name, 1u64)
    };
    ($name:expr, $delta:expr) => {
        if $crate::obs::enabled() {
            static __UCFG_OBS_VC: ::std::sync::OnceLock<&'static $crate::obs::Counter> =
                ::std::sync::OnceLock::new();
            __UCFG_OBS_VC
                .get_or_init(|| $crate::obs::vcounter($name))
                .add($delta as u64);
        }
    };
}

/// Overwrite the gauge `$name` with `$value` when tracing is on.
#[macro_export]
macro_rules! obs_gauge_set {
    ($name:expr, $value:expr) => {
        if $crate::obs::enabled() {
            static __UCFG_OBS_G: ::std::sync::OnceLock<&'static $crate::obs::Gauge> =
                ::std::sync::OnceLock::new();
            __UCFG_OBS_G
                .get_or_init(|| $crate::obs::gauge($name))
                .set($value as i64);
        }
    };
}

/// Adjust the gauge `$name` by `$delta` when tracing is on.
#[macro_export]
macro_rules! obs_gauge_add {
    ($name:expr, $delta:expr) => {
        if $crate::obs::enabled() {
            static __UCFG_OBS_GA: ::std::sync::OnceLock<&'static $crate::obs::Gauge> =
                ::std::sync::OnceLock::new();
            __UCFG_OBS_GA
                .get_or_init(|| $crate::obs::gauge($name))
                .add($delta as i64);
        }
    };
}

/// Record the sample `$value` into the histogram `$name` when tracing is
/// on.
#[macro_export]
macro_rules! obs_record {
    ($name:expr, $value:expr) => {
        if $crate::obs::enabled() {
            static __UCFG_OBS_H: ::std::sync::OnceLock<&'static $crate::obs::Histogram> =
                ::std::sync::OnceLock::new();
            __UCFG_OBS_H
                .get_or_init(|| $crate::obs::histogram($name))
                .record($value as u64);
        }
    };
}

/// Open an RAII wall-time span named `$name`; bind it (`let _t = ...`) so
/// it drops — and records — at end of scope. Inert when tracing is off.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {{
        if $crate::obs::enabled() {
            static __UCFG_OBS_S: ::std::sync::OnceLock<&'static $crate::obs::Histogram> =
                ::std::sync::OnceLock::new();
            $crate::obs::Span::from_histogram(
                __UCFG_OBS_S.get_or_init(|| $crate::obs::histogram($name)),
            )
        } else {
            $crate::obs::Span::start("")
        }
    }};
}

// `obs::count!(..)` reads better than `ucfg_support::obs_count!(..)`.
pub use crate::obs_count as count;
pub use crate::obs_gauge_add as gauge_add;
pub use crate::obs_gauge_set as gauge_set;
pub use crate::obs_record as record;
pub use crate::obs_span as span;
pub use crate::obs_vcount as vcount;

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Render the registry as pretty-printed JSON with **sorted keys** and
/// the volatile stratum strictly last:
///
/// ```json
/// {
///   "bin": "sweep",
///   "counters": { "cyk.charts": 7, ... },
///   "gauges": { "wordset.cache.bytes": 4096, ... },
///   "volatile": {
///     "counters": { "par.serial_hits": 2, ... },
///     "timings": { "cyk.fill": {"count":7,"total_ns":...}, ... }
///   }
/// }
/// ```
///
/// Everything before the `"volatile"` line is thread-count deterministic,
/// so CI byte-compares `sed '/"volatile"/,$d'` of two runs.
pub fn export_json(bin: &str) -> String {
    let reg = registry();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bin\": \"{}\",", crate::bench::json_escape(bin));

    let counters = snapshot(&reg.counters, Counter::value);
    write_map(&mut out, 1, "counters", &counters, u64_json, true);
    let gauges = snapshot(&reg.gauges, Gauge::value);
    write_map(&mut out, 1, "gauges", &gauges, i64_json, true);

    out.push_str("  \"volatile\": {\n");
    let vcounters = snapshot(&reg.vcounters, Counter::value);
    write_map(&mut out, 2, "counters", &vcounters, u64_json, true);
    let timings = snapshot(&reg.histograms, hist_json);
    write_map(&mut out, 2, "timings", &timings, String::clone, false);
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Render only the **deterministic stratum** of the registry — the
/// `bin` tag, counters and gauges, with sorted keys — omitting the
/// volatile section entirely. The output is byte-identical across
/// worker counts for the same logical workload, so callers (e.g. the
/// `ucfg-serve` `/metrics/deterministic` endpoint) can diff two live
/// processes without the `sed '/"volatile"/,$d'` dance.
pub fn export_deterministic(bin: &str) -> String {
    let reg = registry();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bin\": \"{}\",", crate::bench::json_escape(bin));
    let counters = snapshot(&reg.counters, Counter::value);
    write_map(&mut out, 1, "counters", &counters, u64_json, true);
    let gauges = snapshot(&reg.gauges, Gauge::value);
    write_map(&mut out, 1, "gauges", &gauges, i64_json, false);
    out.push_str("}\n");
    out
}

fn snapshot<T, V>(
    map: &Mutex<BTreeMap<String, &'static T>>,
    read: impl Fn(&T) -> V,
) -> Vec<(String, V)> {
    map.lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(k, t)| (k.clone(), read(t)))
        .collect()
}

fn u64_json(v: &u64) -> String {
    v.to_string()
}

fn i64_json(v: &i64) -> String {
    v.to_string()
}

fn hist_json(h: &Histogram) -> String {
    let buckets = h.buckets();
    let top = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let rendered: Vec<String> = buckets[..top].iter().map(u64::to_string).collect();
    format!(
        "{{\"count\":{},\"total_ns\":{},\"max_ns\":{},\"buckets\":[{}]}}",
        h.count(),
        h.total(),
        h.max(),
        rendered.join(",")
    )
}

fn write_map<V>(
    out: &mut String,
    depth: usize,
    key: &str,
    entries: &[(String, V)],
    render: impl Fn(&V) -> String,
    trailing_comma: bool,
) {
    let pad = "  ".repeat(depth);
    let comma = if trailing_comma { "," } else { "" };
    if entries.is_empty() {
        let _ = writeln!(out, "{pad}\"{key}\": {{}}{comma}");
        return;
    }
    let _ = writeln!(out, "{pad}\"{key}\": {{");
    for (i, (name, value)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{pad}  \"{}\": {}{sep}",
            crate::bench::json_escape(name),
            render(value)
        );
    }
    let _ = writeln!(out, "{pad}}}{comma}");
}

/// Write [`export_json`] to `out/METRICS_<bin>.json` (honouring
/// `$UCFG_OUT_DIR`) and return the path.
pub fn write_metrics(bin: &str) -> std::io::Result<PathBuf> {
    let dir = crate::bench::out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("METRICS_{bin}.json"));
    std::fs::write(&path, export_json(bin))?;
    Ok(path)
}

/// Render a one-screen text summary of every non-empty instrument, for
/// end-of-run stderr. Counters and gauges print raw values; histograms
/// print count / mean / max in a human unit (ns-scaled columns).
pub fn summary() -> String {
    let reg = registry();
    let mut out = String::new();
    out.push_str("── obs summary ──────────────────────────────────────\n");
    let counters = snapshot(&reg.counters, Counter::value);
    let vcounters = snapshot(&reg.vcounters, Counter::value);
    for (name, v) in counters.iter().chain(vcounters.iter()) {
        if *v > 0 {
            let _ = writeln!(out, "  {name:<40} {v:>12}");
        }
    }
    for (name, v) in snapshot(&reg.gauges, Gauge::value) {
        let _ = writeln!(out, "  {name:<40} {v:>12}");
    }
    let hists = snapshot(&reg.histograms, |h: &Histogram| {
        (h.count(), h.total(), h.max())
    });
    for (name, (count, total, max)) in hists {
        if count == 0 {
            continue;
        }
        let mean = total / count.max(1);
        let _ = writeln!(
            out,
            "  {name:<40} n={count:<8} mean={:<12} max={}",
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
    out.push_str("─────────────────────────────────────────────────────");
    out
}

/// Render nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}µs", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

/// Remove every `--trace` occurrence from `args`; the second component
/// reports whether any was present (callers then flip [`set_enabled`]).
pub fn strip_trace_flag(args: &[String]) -> (Vec<String>, bool) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            let hit = a.as_str() == "--trace";
            found |= hit;
            !hit
        })
        .cloned()
        .collect();
    (rest, found)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and the enabled flag are process-wide; serialize the
    /// tests that flip them so `cargo test`'s parallel runner can't
    /// interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_probes_are_inert() {
        let _g = lock();
        set_enabled(false);
        count!("test.obs.disabled", 5);
        vcount!("test.obs.disabled.v", 5);
        gauge_set!("test.obs.disabled.g", 5);
        record!("test.obs.disabled.h", 5);
        let _s = span!("test.obs.disabled.span");
        drop(_s);
        assert_eq!(counter("test.obs.disabled").value(), 0);
        assert_eq!(vcounter("test.obs.disabled.v").value(), 0);
        assert_eq!(gauge("test.obs.disabled.g").value(), 0);
        assert_eq!(histogram("test.obs.disabled.h").count(), 0);
        assert_eq!(histogram("test.obs.disabled.span").count(), 0);
    }

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        let _g = lock();
        set_enabled(true);
        count!("test.obs.c");
        count!("test.obs.c", 9);
        vcount!("test.obs.vc", 2);
        gauge_set!("test.obs.g", 40);
        gauge_add!("test.obs.g", 2);
        record!("test.obs.h", 1024);
        {
            let _t = span!("test.obs.span");
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        assert_eq!(counter("test.obs.c").value(), 10);
        assert_eq!(vcounter("test.obs.vc").value(), 2);
        assert_eq!(gauge("test.obs.g").value(), 42);
        let h = histogram("test.obs.h");
        assert_eq!((h.count(), h.total(), h.max()), (1, 1024, 1024));
        assert_eq!(h.buckets()[11], 1, "1024 has bit length 11");
        assert_eq!(histogram("test.obs.span").count(), 1);
    }

    #[test]
    fn dynamic_spans_record_under_their_name() {
        let _g = lock();
        set_enabled(true);
        let before = histogram("test.obs.dyn.T1").count();
        {
            let _t = Span::start(&format!("test.obs.dyn.{}", "T1"));
        }
        set_enabled(false);
        assert_eq!(histogram("test.obs.dyn.T1").count(), before + 1);
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn export_is_sorted_and_volatile_last() {
        let _g = lock();
        set_enabled(true);
        count!("test.export.b", 2);
        count!("test.export.a", 1);
        gauge_set!("test.export.g", -7);
        vcount!("test.export.v", 3);
        record!("test.export.t", 5);
        set_enabled(false);
        let json = export_json("unit");
        let a = json.find("\"test.export.a\"").expect("a exported");
        let b = json.find("\"test.export.b\"").expect("b exported");
        assert!(a < b, "counter keys sorted");
        let vol = json.find("\"volatile\"").expect("volatile section");
        assert!(vol > a && vol > json.find("\"test.export.g\": -7").expect("gauge exported"));
        assert!(json.find("\"test.export.v\"").expect("vcounter exported") > vol);
        assert!(json.find("\"test.export.t\"").expect("timing exported") > vol);
        assert!(json.trim_end().ends_with('}'));
        // The deterministic prefix is everything before the volatile line.
        let prefix: String = json
            .lines()
            .take_while(|l| !l.contains("\"volatile\""))
            .collect();
        assert!(prefix.contains("test.export.a"));
        assert!(!prefix.contains("test.export.v"));
    }

    #[test]
    fn summary_lists_active_instruments() {
        let _g = lock();
        set_enabled(true);
        count!("test.summary.hits", 4);
        set_enabled(false);
        let s = summary();
        assert!(s.contains("test.summary.hits"));
        assert!(s.contains('4'));
    }

    #[test]
    fn trace_flag_is_stripped() {
        let args: Vec<String> = ["run", "--trace", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, found) = strip_trace_flag(&args);
        assert!(found);
        assert_eq!(rest, vec!["run".to_string(), "x".to_string()]);
        let (rest, found) = strip_trace_flag(&rest);
        assert!(!found);
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn env_spellings() {
        // `init_from_env` may already have run; just pin the parser logic.
        for (v, want) in [
            ("1", true),
            ("true", true),
            ("TRUE", true),
            ("0", false),
            ("", false),
        ] {
            let v = v.trim();
            let got = v == "1" || v.eq_ignore_ascii_case("true");
            assert_eq!(got, want, "spelling {v:?}");
        }
    }
}
