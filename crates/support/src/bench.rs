//! A small benchmark harness (the workspace's in-tree replacement for
//! `criterion`), for `harness = false` bench targets.
//!
//! Each bench binary builds a [`Suite`], registers timed closures under
//! groups, and finishes by writing one JSON line per benchmark to
//! `out/BENCH_<suite>.json` (the `BENCH_*.json` convention used by the
//! repo's tooling). Measurement is warmup + `samples` timed batches;
//! reported statistics are per-iteration min / mean / median / p95 / max
//! in nanoseconds.
//!
//! Flags (after `cargo bench ... --`):
//! - `--smoke`       run every benchmark once, no statistics — the CI gate
//! - `--list`        print each benchmark's `group/id` without running it
//! - `--samples N`   timed batches per benchmark (default 20)
//! - `--warmup-ms N` warmup budget per benchmark (default 50)
//! - `--out-dir P`   where to write `BENCH_<suite>.json` (default `out/`,
//!   or `$UCFG_OUT_DIR`)
//! - any other non-flag argument filters benchmarks by substring
//!
//! ```no_run
//! use ucfg_support::bench::Suite;
//!
//! let mut suite = Suite::with_args("demo", ["--smoke"].iter().map(|s| s.to_string()));
//! let mut g = suite.group("fib");
//! g.bench("fib/20", || (0..20u64).product::<u64>());
//! suite.finish();
//! ```

use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Run each benchmark exactly once (CI smoke mode).
    pub smoke: bool,
    /// List benchmark ids without running anything.
    pub list: bool,
    /// Timed batches per benchmark.
    pub samples: usize,
    /// Warmup budget per benchmark, in milliseconds.
    pub warmup_ms: u64,
    /// Substring filter on `group/id` names.
    pub filter: Option<String>,
    /// Output directory for the JSON record.
    pub out_dir: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            smoke: false,
            list: false,
            samples: 20,
            warmup_ms: 50,
            filter: None,
            out_dir: out_dir(),
        }
    }
}

/// The workspace output directory: `$UCFG_OUT_DIR` when set, else `out/`
/// relative to the current directory. All generated artefacts
/// (`BENCH_*.json`, `report_output.txt`, `separation_sweep.csv`) land here.
pub fn out_dir() -> PathBuf {
    std::env::var_os("UCFG_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("out"))
}

impl Options {
    /// Parse harness options from an argument iterator. Unknown flags
    /// (e.g. the `--bench` cargo appends) are ignored; bare arguments
    /// become the name filter.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => opts.smoke = true,
                "--list" => opts.list = true,
                "--samples" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.samples = v;
                    }
                }
                "--warmup-ms" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.warmup_ms = v;
                    }
                }
                "--out-dir" => {
                    if let Some(v) = args.next() {
                        opts.out_dir = PathBuf::from(v);
                    }
                }
                flag if flag.starts_with('-') => {} // cargo's --bench etc.
                name => opts.filter = Some(name.to_string()),
            }
        }
        opts.samples = opts.samples.max(2);
        opts
    }
}

/// Per-iteration timing statistics, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean of samples.
    pub mean_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Compute [`Stats`] from per-iteration sample times. Panics on empty
/// input.
pub fn stats_of(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty(), "stats of zero samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    // Nearest-rank p95 (1-indexed rank ⌈0.95·n⌉).
    let p95 = sorted[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
    Stats {
        min_ns: sorted[0],
        mean_ns: sorted.iter().sum::<f64>() / n as f64,
        median_ns: median,
        p95_ns: p95,
        max_ns: sorted[n - 1],
    }
}

/// One finished benchmark, ready to serialise.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    iters_per_sample: u64,
    samples: usize,
    smoke: bool,
    stats: Stats,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Record {
    fn json_line(&self, suite: &str) -> String {
        format!(
            "{{\"suite\":\"{}\",\"group\":\"{}\",\"id\":\"{}\",\"samples\":{},\
             \"iters_per_sample\":{},\"smoke\":{},\"min_ns\":{:.1},\"mean_ns\":{:.1},\
             \"median_ns\":{:.1},\"p95_ns\":{:.1},\"max_ns\":{:.1}}}",
            json_escape(suite),
            json_escape(&self.group),
            json_escape(&self.id),
            self.samples,
            self.iters_per_sample,
            self.smoke,
            self.stats.min_ns,
            self.stats.mean_ns,
            self.stats.median_ns,
            self.stats.p95_ns,
            self.stats.max_ns,
        )
    }
}

/// One finished benchmark's public record: what the orchestrator (or any
/// other in-process consumer) reads instead of re-parsing the JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Group name within the suite.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Whether this was a single smoke iteration.
    pub smoke: bool,
    /// Per-iteration statistics in nanoseconds.
    pub stats: Stats,
}

/// A bench suite: the top-level object of a `harness = false` target.
pub struct Suite {
    name: String,
    opts: Options,
    records: Vec<Record>,
    listed: Vec<String>,
}

impl Suite {
    /// Build a suite, reading options from `std::env::args`.
    pub fn new(name: &str) -> Self {
        Self::with_options(name, Options::parse(std::env::args().skip(1)))
    }

    /// Build a suite from explicit argument strings (for tests).
    pub fn with_args(name: &str, args: impl Iterator<Item = String>) -> Self {
        Self::with_options(name, Options::parse(args))
    }

    /// Build a suite from parsed options.
    pub fn with_options(name: &str, opts: Options) -> Self {
        Suite {
            name: name.to_string(),
            opts,
            records: Vec::new(),
            listed: Vec::new(),
        }
    }

    /// Is this a smoke run?
    pub fn is_smoke(&self) -> bool {
        self.opts.smoke
    }

    /// Is this a `--list` run (benchmarks enumerated, nothing executed)?
    pub fn is_list(&self) -> bool {
        self.opts.list
    }

    /// The `group/id` names seen in `--list` mode, in registration order.
    pub fn listed_ids(&self) -> &[String] {
        &self.listed
    }

    /// Open a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            suite: self,
            name: name.to_string(),
        }
    }

    /// Number of benchmarks recorded so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (filters can cause this).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn record(&mut self, rec: Record) {
        let mode = if rec.smoke { " [smoke]" } else { "" };
        println!(
            "bench {}/{}: median {} p95 {} ({}×{} iters){}",
            rec.group,
            rec.id,
            fmt_ns(rec.stats.median_ns),
            fmt_ns(rec.stats.p95_ns),
            rec.samples,
            rec.iters_per_sample,
            mode
        );
        self.records.push(rec);
    }

    /// The finished benchmarks as public records, in execution order.
    pub fn results(&self) -> Vec<BenchEntry> {
        self.records
            .iter()
            .map(|r| BenchEntry {
                group: r.group.clone(),
                id: r.id.clone(),
                smoke: r.smoke,
                stats: r.stats,
            })
            .collect()
    }

    /// Render the JSON-lines payload (one line per benchmark).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.json_line(&self.name));
            out.push('\n');
        }
        out
    }

    /// Write `BENCH_<suite>.json` into the output directory and print a
    /// pointer to it. Call this last. A `--list` run writes nothing.
    pub fn finish(self) {
        if self.opts.list {
            return;
        }
        let path = self.opts.out_dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::create_dir_all(&self.opts.out_dir)
            .and_then(|()| std::fs::File::create(&path))
            .and_then(|mut f| f.write_all(self.json_lines().as_bytes()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("{} benchmarks → {}", self.records.len(), path.display());
        }
    }
}

/// A group of related benchmarks within a [`Suite`].
pub struct Group<'a> {
    suite: &'a mut Suite,
    name: String,
}

impl Group<'_> {
    /// Time `f`, recording per-iteration statistics (or a single smoke
    /// iteration). The closure's result is passed through
    /// [`std::hint::black_box`] so the work is not optimised away.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.suite.opts.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.suite.opts.list {
            println!("{full}");
            self.suite.listed.push(full);
            return;
        }
        if self.suite.opts.smoke {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos() as f64;
            self.suite.record(Record {
                group: self.name.clone(),
                id: id.to_string(),
                iters_per_sample: 1,
                samples: 1,
                smoke: true,
                stats: Stats {
                    min_ns: ns,
                    mean_ns: ns,
                    median_ns: ns,
                    p95_ns: ns,
                    max_ns: ns,
                },
            });
            return;
        }

        // Warmup: run until the budget is spent, estimating the
        // per-iteration cost as we go.
        let warmup_budget = std::time::Duration::from_millis(self.suite.opts.warmup_ms);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup_budget || warmup_iters < 3 {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= (1 << 22) {
                break; // per-iter cost is in single-digit nanoseconds
            }
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Aim for ~5 ms per sample, between 1 and 2^20 iterations.
        let iters_per_sample = ((5e6 / est_ns.max(1.0)) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.suite.opts.samples);
        for _ in 0..self.suite.opts.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.suite.record(Record {
            group: self.name.clone(),
            id: id.to_string(),
            iters_per_sample,
            samples: samples.len(),
            smoke: false,
            stats: stats_of(&samples),
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn option_parsing() {
        let o = Options::parse(args(&["--smoke", "--samples", "7", "cyk", "--bench"]));
        assert!(o.smoke);
        assert_eq!(o.samples, 7);
        assert_eq!(o.filter.as_deref(), Some("cyk"));

        let o = Options::parse(args(&["--warmup-ms", "5", "--out-dir", "/tmp/x"]));
        assert!(!o.smoke);
        assert_eq!(o.warmup_ms, 5);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));

        // --samples floor of 2 keeps statistics meaningful.
        assert_eq!(Options::parse(args(&["--samples", "0"])).samples, 2);
    }

    #[test]
    fn stats_median_and_p95() {
        let s = stats_of(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.max_ns, 5.0);
        assert_eq!(s.mean_ns, 3.0);
        assert_eq!(s.p95_ns, 5.0); // ⌈0.95·5⌉ = 5th of 5
        let s = stats_of(&[1.0, 2.0]);
        assert_eq!(s.median_ns, 1.5);
        let many: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(stats_of(&many).p95_ns, 95.0);
    }

    #[test]
    fn smoke_runs_each_bench_once() {
        let mut calls = 0u32;
        let mut suite = Suite::with_args("t", args(&["--smoke"]));
        let mut g = suite.group("grp");
        g.bench("one", || calls += 1);
        g.bench("two", || calls += 1);
        assert_eq!(calls, 2);
        assert_eq!(suite.len(), 2);
        let json = suite.json_lines();
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"suite\":\"t\""), "{json}");
        assert!(json.contains("\"group\":\"grp\""), "{json}");
        assert!(json.contains("\"smoke\":true"), "{json}");
    }

    #[test]
    fn list_mode_enumerates_without_running() {
        let mut calls = 0u32;
        let mut suite = Suite::with_args("t", args(&["--list"]));
        assert!(suite.is_list());
        let mut g = suite.group("grp");
        g.bench("one", || calls += 1);
        g.bench("two", || calls += 1);
        assert_eq!(calls, 0, "--list must not execute benchmark bodies");
        assert_eq!(suite.listed_ids(), ["grp/one", "grp/two"]);
        assert!(suite.is_empty(), "--list records no timings");
        suite.finish(); // must not write BENCH_t.json (no panic, no file)
    }

    #[test]
    fn list_mode_respects_filter() {
        let mut suite = Suite::with_args("t", args(&["--list", "keep"]));
        let mut g = suite.group("grp");
        g.bench("keep_me", || ());
        g.bench("drop_me", || ());
        assert_eq!(suite.listed_ids(), ["grp/keep_me"]);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut suite = Suite::with_args("t", args(&["--smoke", "keep"]));
        let mut g = suite.group("grp");
        g.bench("keep_me", || ());
        g.bench("drop_me", || ());
        assert_eq!(suite.len(), 1);
    }

    #[test]
    fn timed_mode_produces_ordered_stats() {
        let mut suite = Suite::with_args("t", args(&["--samples", "5", "--warmup-ms", "1"]));
        let mut g = suite.group("grp");
        g.bench("spin", || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(black_box(i));
            }
            x
        });
        assert_eq!(suite.len(), 1);
        let rec = &suite.records[0];
        assert!(!rec.smoke);
        assert!(rec.stats.min_ns <= rec.stats.median_ns);
        assert!(rec.stats.median_ns <= rec.stats.p95_ns);
        assert!(rec.stats.p95_ns <= rec.stats.max_ns);
        assert!(rec.stats.min_ns > 0.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn finish_writes_json_file() {
        let dir = std::env::temp_dir().join(format!("ucfg_bench_test_{}", std::process::id()));
        let mut opts = Options::parse(args(&["--smoke"]));
        opts.out_dir = dir.clone();
        let mut suite = Suite::with_options("filetest", opts);
        suite.group("g").bench("b", || 1 + 1);
        suite.finish();
        let path = dir.join("BENCH_filetest.json");
        let body = std::fs::read_to_string(&path).expect("json written");
        assert!(body.contains("\"id\":\"b\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert_eq!(fmt_ns(1500.0), "1.50µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
