//! FNV-1a 64-bit hashing.
//!
//! The workspace needs a *stable* content hash — one that never changes
//! across runs, platforms, or compiler versions — for content-addressed
//! artifact caching (`Grammar::content_hash` in `ucfg-grammar` and the
//! `ucfg-serve` artifact cache key their compiled `CykRuleIndex`es and
//! canonical bitmaps by it). `std::hash` deliberately randomises its
//! seed per process, so it cannot serve; FNV-1a is the canonical tiny,
//! dependency-free, well-distributed choice for short keys.
//!
//! Reference: Fowler–Noll–Vo hash, variant 1a, 64-bit parameters
//! (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`).

/// The FNV-1a 64-bit offset basis.
pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// All `write_*` methods return `&mut Self` so hashes over composite
/// structures chain naturally:
///
/// ```
/// use ucfg_support::fnv::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"rule").write_u32(3).write_u8(0);
/// let digest = h.finish();
/// assert_ne!(digest, Fnv1a::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
        self
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v])
    }

    /// Absorb a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a `usize`, widened to `u64` so 32- and 64-bit targets
    /// agree.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash a byte slice in one shot.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the published FNV-1a test suite.
    #[test]
    fn known_vectors() {
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn chained_writes_match_one_shot() {
        let mut chained = Fnv1a::new();
        chained.write(b"foo").write(b"bar");
        assert_eq!(chained.finish(), hash_bytes(b"foobar"));
    }

    #[test]
    fn integer_writes_are_little_endian() {
        let mut a = Fnv1a::new();
        a.write_u32(0x0403_0201);
        let mut b = Fnv1a::new();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());

        let mut c = Fnv1a::new();
        c.write_usize(7);
        let mut d = Fnv1a::new();
        d.write_u64(7);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn small_perturbations_change_the_digest() {
        let base = hash_bytes(b"S -> A A | a");
        assert_ne!(base, hash_bytes(b"S -> A A | b"));
        assert_ne!(base, hash_bytes(b"S -> A A | a "));
    }
}
