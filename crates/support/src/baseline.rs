//! Baseline diffing: the pure comparison logic behind the orchestrator's
//! `--check` regression gate.
//!
//! A committed baseline records, per job, either an exact digest (for
//! deterministic outputs — experiment tables, sweep CSVs) or a timing
//! median in nanoseconds (for bench records). A run is compared entry by
//! entry: exact entries must match bit-for-bit, timed entries must stay
//! within a configurable tolerance ratio, and timed entries below a
//! noise floor are reported but never gate (single-digit-microsecond
//! medians are scheduler noise on shared CI runners). Missing baselines
//! are surfaced as warnings so newly added jobs don't fail the gate
//! before their baseline is committed.

/// Tolerance policy for timed comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum allowed `measured / baseline` ratio before a timed entry
    /// counts as a regression (e.g. `2.0` = fail at >100% slower).
    pub max_ratio: f64,
    /// Baselines below this many nanoseconds never gate: they are too
    /// close to timer/scheduler noise to compare meaningfully.
    pub floor_ns: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            max_ratio: 2.0,
            floor_ns: 100_000.0,
        }
    }
}

/// The outcome of comparing one entry against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (timed) or bit-identical (exact).
    Ok,
    /// Timed entry got faster by more than the tolerance ratio — worth a
    /// look (and a baseline refresh), but never a failure.
    Improved,
    /// Timed entry regressed past the tolerance ratio, or an exact entry
    /// changed. Fails the `--check` gate.
    Regression,
    /// Baseline median is below the noise floor; not compared.
    BelowFloor,
    /// No baseline entry exists for this name; warned, not failed.
    MissingBaseline,
}

impl Verdict {
    /// Does this verdict fail a `--check` run?
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression)
    }
}

/// One comparison row: the entry name, what was expected and measured,
/// and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Entry name (e.g. `bench/parsing/cyk_recognize/example4_ucfg/3`).
    pub name: String,
    /// Baseline value rendered for display (`"—"` when missing).
    pub baseline: String,
    /// Measured value rendered for display.
    pub measured: String,
    /// `measured / baseline` for timed entries.
    pub ratio: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compare a timed median against its baseline under a tolerance policy.
pub fn compare_timed(
    name: &str,
    baseline_ns: Option<f64>,
    measured_ns: f64,
    tol: Tolerance,
) -> Comparison {
    let measured = format_ns(measured_ns);
    match baseline_ns {
        None => Comparison {
            name: name.to_string(),
            baseline: "—".to_string(),
            measured,
            ratio: None,
            verdict: Verdict::MissingBaseline,
        },
        Some(base) => {
            let ratio = if base > 0.0 {
                measured_ns / base
            } else {
                f64::INFINITY
            };
            let verdict = if base < tol.floor_ns {
                Verdict::BelowFloor
            } else if ratio > tol.max_ratio {
                Verdict::Regression
            } else if ratio < 1.0 / tol.max_ratio {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            Comparison {
                name: name.to_string(),
                baseline: format_ns(base),
                measured,
                ratio: Some(ratio),
                verdict,
            }
        }
    }
}

/// Compare a deterministic digest (or any exact string) against its
/// baseline. A mismatch is always a [`Verdict::Regression`]: the
/// deterministic stratum has no tolerance.
pub fn compare_exact(name: &str, baseline: Option<&str>, measured: &str) -> Comparison {
    match baseline {
        None => Comparison {
            name: name.to_string(),
            baseline: "—".to_string(),
            measured: measured.to_string(),
            ratio: None,
            verdict: Verdict::MissingBaseline,
        },
        Some(base) => Comparison {
            name: name.to_string(),
            baseline: base.to_string(),
            measured: measured.to_string(),
            ratio: None,
            verdict: if base == measured {
                Verdict::Ok
            } else {
                Verdict::Regression
            },
        },
    }
}

/// Summary counts over a set of comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiffSummary {
    /// Entries within tolerance / bit-identical.
    pub ok: usize,
    /// Entries faster than the tolerance band.
    pub improved: usize,
    /// Entries that fail the gate.
    pub regressions: usize,
    /// Entries skipped as below the noise floor.
    pub below_floor: usize,
    /// Entries with no baseline.
    pub missing: usize,
}

impl DiffSummary {
    /// Tally a slice of comparisons.
    pub fn of(comparisons: &[Comparison]) -> DiffSummary {
        let mut s = DiffSummary::default();
        for c in comparisons {
            match c.verdict {
                Verdict::Ok => s.ok += 1,
                Verdict::Improved => s.improved += 1,
                Verdict::Regression => s.regressions += 1,
                Verdict::BelowFloor => s.below_floor += 1,
                Verdict::MissingBaseline => s.missing += 1,
            }
        }
        s
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "{} ok, {} improved, {} regression{}, {} below floor, {} missing baseline",
            self.ok,
            self.improved,
            self.regressions,
            if self.regressions == 1 { "" } else { "s" },
            self.below_floor,
            self.missing
        )
    }
}

/// Render nanoseconds human-readably (used in comparison rows).
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: Tolerance = Tolerance {
        max_ratio: 2.0,
        floor_ns: 100_000.0,
    };

    #[test]
    fn timed_regression_detected() {
        let c = compare_timed("bench/x", Some(1_000_000.0), 2_500_000.0, TOL);
        assert_eq!(c.verdict, Verdict::Regression);
        assert!((c.ratio.unwrap() - 2.5).abs() < 1e-9);
        assert!(c.verdict.is_regression());
    }

    #[test]
    fn timed_within_tolerance() {
        let c = compare_timed("bench/x", Some(1_000_000.0), 1_900_000.0, TOL);
        assert_eq!(c.verdict, Verdict::Ok);
        // Exactly at the boundary is still ok (gate is strict `>`).
        let c = compare_timed("bench/x", Some(1_000_000.0), 2_000_000.0, TOL);
        assert_eq!(c.verdict, Verdict::Ok);
    }

    #[test]
    fn timed_improvement_flagged_not_failed() {
        let c = compare_timed("bench/x", Some(1_000_000.0), 300_000.0, TOL);
        assert_eq!(c.verdict, Verdict::Improved);
        assert!(!c.verdict.is_regression());
    }

    #[test]
    fn missing_baseline_is_a_warning() {
        let c = compare_timed("bench/new", None, 5_000_000.0, TOL);
        assert_eq!(c.verdict, Verdict::MissingBaseline);
        assert_eq!(c.baseline, "—");
        let c = compare_exact("exp/T9", None, "fnv:abc");
        assert_eq!(c.verdict, Verdict::MissingBaseline);
    }

    #[test]
    fn below_floor_never_gates() {
        // A 10× blowup on a 2µs baseline is noise, not a regression.
        let c = compare_timed("bench/tiny", Some(2_000.0), 20_000.0, TOL);
        assert_eq!(c.verdict, Verdict::BelowFloor);
        assert!(!c.verdict.is_regression());
    }

    #[test]
    fn zero_baseline_regresses_instead_of_dividing_by_zero() {
        let c = compare_timed(
            "bench/zero",
            Some(0.0),
            1.0,
            Tolerance {
                max_ratio: 2.0,
                floor_ns: 0.0,
            },
        );
        assert_eq!(c.verdict, Verdict::Regression);
    }

    #[test]
    fn exact_compare() {
        assert_eq!(
            compare_exact("exp/T1", Some("fnv:1"), "fnv:1").verdict,
            Verdict::Ok
        );
        assert_eq!(
            compare_exact("exp/T1", Some("fnv:1"), "fnv:2").verdict,
            Verdict::Regression
        );
    }

    #[test]
    fn summary_tallies_and_renders() {
        let cs = vec![
            compare_exact("a", Some("x"), "x"),
            compare_exact("b", Some("x"), "y"),
            compare_timed("c", None, 1.0, TOL),
            compare_timed("d", Some(1_000.0), 1_000.0, TOL),
            compare_timed("e", Some(1_000_000.0), 200_000.0, TOL),
        ];
        let s = DiffSummary::of(&cs);
        assert_eq!(
            s,
            DiffSummary {
                ok: 1,
                improved: 1,
                regressions: 1,
                below_floor: 1,
                missing: 1,
            }
        );
        assert!(s.render().contains("1 regression,"), "{}", s.render());
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(950.0), "950ns");
        assert_eq!(format_ns(1_500.0), "1.50µs");
        assert_eq!(format_ns(2_500_000.0), "2.50ms");
        assert_eq!(format_ns(3.1e9), "3.10s");
    }
}
