//! A minimal static-HTML document builder for experiment reports.
//!
//! The orchestrator renders its run report as a single self-contained
//! HTML file — inline CSS, no scripts, no external references — in the
//! style of borealis' `report.html.jinja`: a green "setup" table, a blue
//! "summary" table, and per-experiment sections with striped rows. The
//! builder is deliberately tiny: escaped text cells, tables, `<pre>`
//! blocks, and collapsible `<details>` sections are all a report needs,
//! and a pure `String → String` pipeline keeps the renderer
//! golden-file-testable.

use std::fmt::Write as _;

/// Escape a string for HTML text and attribute positions.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// A table: a header row plus data rows, rendered with a CSS class that
/// selects the header colour (`setup`, `summary`, or `data`).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// CSS class on the `<table>` element.
    pub class: String,
    /// Header cells.
    pub header: Vec<String>,
    /// Data rows; each row should have `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given class and header cells.
    pub fn new(class: &str, header: &[&str]) -> Table {
        Table {
            class: class.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one data row (cells are escaped at render time).
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Render the `<table>` element.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "<table class=\"{}\">", escape(&self.class));
        out.push_str("<thead><tr>");
        for h in &self.header {
            let _ = write!(out, "<th>{}</th>", escape(h));
        }
        out.push_str("</tr></thead>\n<tbody>\n");
        for row in &self.rows {
            out.push_str("<tr>");
            for cell in row {
                let _ = write!(out, "<td>{}</td>", escape(cell));
            }
            out.push_str("</tr>\n");
        }
        out.push_str("</tbody></table>\n");
        out
    }
}

/// A preformatted block (monospace, scrollable).
pub fn pre(text: &str) -> String {
    format!("<pre>{}</pre>\n", escape(text))
}

/// A collapsible `<details>` block with an escaped summary line and a
/// pre-rendered HTML body.
pub fn details(summary: &str, body_html: &str) -> String {
    format!(
        "<details><summary>{}</summary>\n{}</details>\n",
        escape(summary),
        body_html
    )
}

/// A status badge: a `<span>` whose class (`ok`, `warn`, `fail`) colours
/// the text.
pub fn badge(class: &str, text: &str) -> String {
    format!(
        "<span class=\"badge {}\">{}</span>",
        escape(class),
        escape(text)
    )
}

/// A whole document: a title plus a list of `<section>`s, rendered with
/// the report stylesheet inlined so the file is self-contained.
#[derive(Debug, Clone)]
pub struct Document {
    title: String,
    sections: Vec<(String, String)>,
}

const STYLE: &str = "\
body { margin: 1em auto; max-width: 72em; padding: 0 1em;\n\
       font-family: Arial, Helvetica, sans-serif; color: #222; }\n\
h1 { border-bottom: 2px solid #ddd; padding-bottom: 0.2em; }\n\
table { border-collapse: collapse; width: 100%; margin: 0.5em 0 1.5em; }\n\
table td, table th { border: 1px solid #ddd; padding: 6px 8px;\n\
                     text-align: left; font-size: 0.95em; }\n\
table tr:nth-child(even) { background-color: #f2f2f2; }\n\
table tr:hover { background-color: #e8e8e8; }\n\
table.setup thead tr { background-color: #04aa6d; color: white; }\n\
table.summary thead tr { background-color: #46a2bc; color: white; }\n\
table.data thead tr { background-color: #666; color: white; }\n\
pre { background: #f6f6f6; border: 1px solid #ddd; padding: 0.8em;\n\
      overflow-x: auto; font-size: 0.9em; }\n\
details { margin: 0.5em 0; }\n\
details summary { cursor: pointer; font-weight: bold; }\n\
.badge { padding: 1px 7px; border-radius: 8px; color: white;\n\
         font-size: 0.85em; }\n\
.badge.ok { background: #04aa6d; }\n\
.badge.warn { background: #d98e00; }\n\
.badge.fail { background: #cc3333; }\n";

impl Document {
    /// A new document with the given (escaped) title.
    pub fn new(title: &str) -> Document {
        Document {
            title: title.to_string(),
            sections: Vec::new(),
        }
    }

    /// Append a `<section>` with an `<h1>` heading and pre-rendered HTML
    /// body.
    pub fn section(&mut self, heading: &str, body_html: &str) -> &mut Document {
        self.sections
            .push((heading.to_string(), body_html.to_string()));
        self
    }

    /// Render the complete, self-contained HTML document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"UTF-8\" />\n");
        let _ = writeln!(out, "<title>{}</title>", escape(&self.title));
        let _ = write!(out, "<style>\n{STYLE}</style>\n</head>\n<body>\n");
        for (heading, body) in &self.sections {
            let _ = writeln!(out, "<section>\n<h1>{}</h1>", escape(heading));
            out.push_str(body);
            out.push_str("</section>\n");
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&#39;c");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn table_renders_escaped_cells() {
        let mut t = Table::new("summary", &["Job", "Status"]);
        t.row(&["sweep<1>", "ok"]);
        let html = t.render();
        assert!(html.contains("<table class=\"summary\">"), "{html}");
        assert!(html.contains("<th>Job</th>"), "{html}");
        assert!(html.contains("<td>sweep&lt;1&gt;</td>"), "{html}");
        assert!(!html.contains("sweep<1>"), "{html}");
    }

    #[test]
    fn document_is_self_contained() {
        let mut d = Document::new("Run & Report");
        d.section("Setup", &pre("threads: 4"));
        d.section("Detail", &details("T1", &pre("table")));
        let html = d.render();
        assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
        assert!(html.contains("<title>Run &amp; Report</title>"), "{html}");
        assert!(html.contains("<style>"), "{html}");
        // Self-contained: no external references of any kind.
        assert!(!html.contains("href="), "{html}");
        assert!(!html.contains("src="), "{html}");
        assert!(!html.contains("<script"), "{html}");
        assert!(html.contains("<details><summary>T1</summary>"), "{html}");
        assert!(html.ends_with("</html>\n"), "{html}");
    }

    #[test]
    fn badges() {
        assert_eq!(badge("ok", "pass"), "<span class=\"badge ok\">pass</span>");
        assert!(badge("fail", "<x>").contains("&lt;x&gt;"));
    }
}
