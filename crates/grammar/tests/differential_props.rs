//! Differential property tests across the crate's independent parsers.
//!
//! Three recognisers/counters exist with no shared kernel code: the
//! bitset CYK fill, the scalar reference CYK fill, and the Earley
//! recogniser (which works on arbitrary grammars, not just CNF). On
//! random CNF grammars and random words they must agree bit for bit —
//! membership, per-span chart contents, and exact parse-tree counts —
//! and on random *general* grammars Earley must agree with CYK through
//! the CNF conversion. Any divergence is a real bug in one of the
//! kernels, which is exactly what the serve daemon's `"check": true`
//! cross-check relies on.

use ucfg_grammar::count::TreeCounter;
use ucfg_grammar::cyk::CykChart;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::language::language_up_to;
use ucfg_grammar::{BigUint, CnfGrammar, Grammar, GrammarBuilder, NonTerminal, Symbol, Terminal};
use ucfg_support::prop::Gen;
use ucfg_support::rng::Rng;
use ucfg_support::{prop_assert, prop_assert_eq, property};

const ALPHABET: [char; 2] = ['a', 'b'];

/// A random CNF grammar: up to 5 non-terminals over {a, b}, random
/// terminal and binary rules (deduplicated so rule multiplicity never
/// muddies tree counts), random ε acceptance. Sparse enough that empty
/// and infinite languages both occur.
fn rand_cnf(g: &mut Gen) -> CnfGrammar {
    let nts = g.int_in(1usize..=5);
    let names = (0..nts).map(|i| format!("N{i}")).collect();
    let nt = |g: &mut Gen, nts: usize| NonTerminal(g.rng().random_range(0..nts as u32));
    let mut term_rules: Vec<(NonTerminal, Terminal)> = g.vec_of(0..(2 * nts + 2), |g| {
        (nt(g, nts), Terminal(g.rng().random_range(0..2u16)))
    });
    term_rules.sort();
    term_rules.dedup();
    let mut bin_rules: Vec<(NonTerminal, NonTerminal, NonTerminal)> =
        g.vec_of(0..(3 * nts + 2), |g| (nt(g, nts), nt(g, nts), nt(g, nts)));
    bin_rules.sort();
    bin_rules.dedup();
    CnfGrammar::from_rules(
        ALPHABET.to_vec(),
        names,
        NonTerminal(0),
        g.bool(),
        term_rules,
        bin_rules,
    )
}

/// A random word over {a, b} as terminal ids, length 0..=7.
fn rand_word(g: &mut Gen) -> Vec<Terminal> {
    g.vec_of(0..8, |g| Terminal(g.rng().random_range(0..2u16)))
}

/// A random *general* grammar: bodies of length 0..=3 mixing terminals
/// and non-terminals freely, so ε-rules, unit rules, and useless
/// non-terminals all occur and the CNF conversion is genuinely
/// exercised.
fn rand_general(g: &mut Gen) -> Grammar {
    let nts = g.int_in(1usize..=4);
    let mut b = GrammarBuilder::new(&ALPHABET);
    let ids: Vec<NonTerminal> = (0..nts).map(|i| b.nonterminal(&format!("N{i}"))).collect();
    let rules = g.int_in(1usize..=(2 * nts + 3));
    for _ in 0..rules {
        let lhs = *g.choice(&ids);
        let body_len = g.int_in(0usize..=3);
        let rhs: Vec<Symbol> = (0..body_len)
            .map(|_| {
                if g.bool() {
                    Symbol::T(Terminal(g.rng().random_range(0..2u16)))
                } else {
                    Symbol::N(*g.choice(&ids))
                }
            })
            .collect();
        b.raw_rule(lhs, rhs);
    }
    b.build(ids[0])
}

property! {
    cases = 128;
    /// Bitset CYK, scalar CYK, and Earley agree on membership — and the
    /// two CYK fills agree on every chart cell, not just acceptance.
    fn membership_kernels_agree(
        cnf in rand_cnf,
        word in rand_word,
    ) {
        let bitset = CykChart::build(&cnf, &word);
        let scalar = CykChart::build_scalar(&cnf, &word);
        prop_assert_eq!(bitset.accepted(), scalar.accepted());
        for len in 1..=word.len() {
            for i in 0..=word.len() - len {
                prop_assert_eq!(
                    bitset.nonterminals_at(i, len),
                    scalar.nonterminals_at(i, len),
                    "cell ({i}, {len}) diverges on {}",
                    cnf.decode(&word)
                );
            }
        }
        // `to_grammar` documents that the ε-flag is dropped, so Earley
        // sees the ε-free language; ε itself is answered by the flag.
        if word.is_empty() {
            prop_assert_eq!(bitset.accepted(), cnf.accepts_epsilon());
        } else {
            let g = cnf.to_grammar();
            prop_assert_eq!(
                Earley::new(&g).recognize(&word),
                bitset.accepted(),
                "Earley vs CYK on {:?}",
                cnf.decode(&word)
            );
        }
    }

    cases = 128;
    /// Exact parse-tree counts agree between the two CYK fills, match
    /// acceptance, and — when the language is finite — match the
    /// independent `TreeCounter` recurrence on the un-converted grammar.
    fn parse_counts_agree(
        cnf in rand_cnf,
        word in rand_word,
    ) {
        let n_bitset = CykChart::build(&cnf, &word).count_trees();
        let n_scalar = CykChart::build_scalar(&cnf, &word).count_trees();
        prop_assert_eq!(&n_bitset, &n_scalar);
        prop_assert_eq!(
            n_bitset.is_zero(),
            !CykChart::build(&cnf, &word).accepted(),
            "count {} vs membership on {:?}",
            n_bitset,
            cnf.decode(&word)
        );
        // CNF ⊂ general grammars, so the CNF rules *are* a grammar the
        // length-indexed TreeCounter recurrence runs on directly — an
        // algorithmically unrelated count. (ε is represented as a flag in
        // CNF but a rule in the grammar view, so compare nonempty words.)
        if !word.is_empty() {
            if let Ok(counter) = TreeCounter::new(&cnf.to_grammar()) {
                prop_assert_eq!(
                    counter.count(&word),
                    n_bitset,
                    "TreeCounter vs CYK on {:?}",
                    cnf.decode(&word)
                );
            }
        }
    }

    cases = 96;
    /// Membership survives the CNF conversion: Earley on a random
    /// general grammar (ε-rules, unit rules and all) agrees with CYK on
    /// `CnfGrammar::from_grammar` for every word — including ε, where
    /// CYK answers via the `accepts_epsilon` flag.
    fn conversion_preserves_membership(
        g in rand_general,
        word in rand_word,
    ) {
        let earley = Earley::new(&g);
        let cnf = CnfGrammar::from_grammar(&g);
        prop_assert_eq!(
            earley.recognize(&word),
            CykChart::build(&cnf, &word).accepted(),
            "Earley on the original vs CYK on the CNF of\n{}on {:?}",
            g.pretty(),
            g.decode(&word)
        );
    }

    cases = 48;
    /// Positive coverage: every enumerated language word up to length 4
    /// is accepted by all kernels with a nonzero count. (Random words
    /// alone under-sample sparse languages.)
    fn enumerated_words_are_members(cnf in rand_cnf) {
        for word in language_up_to(&cnf, 4) {
            let chart = CykChart::build(&cnf, &word);
            prop_assert!(
                chart.accepted(),
                "enumerated word {:?} rejected by the bitset kernel",
                cnf.decode(&word)
            );
            prop_assert!(!chart.count_trees().is_zero());
            prop_assert!(CykChart::build_scalar(&cnf, &word).accepted());
            if !word.is_empty() {
                // ε lives in the CNF flag, which `to_grammar` drops.
                let g = cnf.to_grammar();
                prop_assert!(Earley::new(&g).recognize(&word));
            }
        }
    }
}

/// Counts are exercised above only when random draws hit the language;
/// pin one deterministic ambiguous case end to end so the property
/// suite can never silently degrade to vacuous agreement on zeros.
#[test]
fn pinned_ambiguous_counts() {
    let cnf = CnfGrammar::from_rules(
        ALPHABET.to_vec(),
        vec!["S".into()],
        NonTerminal(0),
        false,
        vec![(NonTerminal(0), Terminal(0))],
        vec![(NonTerminal(0), NonTerminal(0), NonTerminal(0))],
    );
    // Catalan numbers: 1, 1, 2, 5, 14 trees for a^1 .. a^5.
    for (len, expect) in [(1u64, 1u64), (2, 1), (3, 2), (4, 5), (5, 14)] {
        let word = vec![Terminal(0); len as usize];
        let n = CykChart::build(&cnf, &word).count_trees();
        assert_eq!(n, BigUint::from_u64(expect), "a^{len}");
        assert_eq!(CykChart::build_scalar(&cnf, &word).count_trees(), n);
    }
}
