//! Context-free grammars with the paper's size measure.
//!
//! A [`Grammar`] is the four-tuple `(Σ, N, R, S)` of Definition 2. The size
//! measure is the one the paper (and factorised representations) use:
//! `|G| = Σ_{A→W ∈ R} |W|`, the sum of the lengths of all rule bodies —
//! *not* the number of rules (the measure of Bucher et al., which the
//! related-work section contrasts).

use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::HashMap;
use std::fmt;

/// A single rule `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// The non-terminal on the left.
    pub lhs: NonTerminal,
    /// The body; may be empty (an ε-rule).
    pub rhs: Vec<Symbol>,
}

impl Rule {
    /// The rule's contribution to `|G|`.
    pub fn size(&self) -> usize {
        self.rhs.len()
    }
}

/// A context-free grammar `(Σ, N, R, S)`.
///
/// Terminals are `char`s interned in `alphabet`; non-terminals are named in
/// `nonterminal_names`. Construction goes through
/// [`GrammarBuilder`](crate::builder::GrammarBuilder) in typical use.
#[derive(Debug, Clone)]
pub struct Grammar {
    pub(crate) alphabet: Vec<char>,
    pub(crate) nonterminal_names: Vec<String>,
    pub(crate) rules: Vec<Rule>,
    pub(crate) start: NonTerminal,
    /// `rules_by_lhs[A] = indices into rules with lhs A`.
    pub(crate) rules_by_lhs: Vec<Vec<usize>>,
}

/// Errors detected by [`Grammar::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// A rule references a terminal id outside the alphabet table.
    UnknownTerminal(Terminal),
    /// A rule references a non-terminal id outside the non-terminal table.
    UnknownNonTerminal(NonTerminal),
    /// The start symbol is not in the non-terminal table.
    BadStart(NonTerminal),
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::UnknownTerminal(t) => write!(f, "unknown terminal id {}", t.0),
            GrammarError::UnknownNonTerminal(n) => write!(f, "unknown non-terminal id {}", n.0),
            GrammarError::BadStart(n) => write!(f, "start symbol id {} out of range", n.0),
        }
    }
}

impl std::error::Error for GrammarError {}

impl Grammar {
    /// Assemble a grammar from parts, indexing rules by left-hand side.
    ///
    /// Prefer [`GrammarBuilder`](crate::builder::GrammarBuilder); this is the
    /// low-level constructor used by transformations.
    pub fn from_parts(
        alphabet: Vec<char>,
        nonterminal_names: Vec<String>,
        rules: Vec<Rule>,
        start: NonTerminal,
    ) -> Self {
        let mut rules_by_lhs = vec![Vec::new(); nonterminal_names.len()];
        for (i, r) in rules.iter().enumerate() {
            rules_by_lhs[r.lhs.index()].push(i);
        }
        Grammar {
            alphabet,
            nonterminal_names,
            rules,
            start,
            rules_by_lhs,
        }
    }

    /// The paper's size measure `|G| = Σ |rhs|`.
    pub fn size(&self) -> usize {
        self.rules.iter().map(Rule::size).sum()
    }

    /// Number of rules (the Bucher-et-al. measure, for comparison tables).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of non-terminals.
    pub fn nonterminal_count(&self) -> usize {
        self.nonterminal_names.len()
    }

    /// The alphabet Σ.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// The start symbol S.
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// All rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rules whose left-hand side is `a`.
    pub fn rules_for(&self, a: NonTerminal) -> impl Iterator<Item = &Rule> + '_ {
        self.rules_by_lhs[a.index()].iter().map(|&i| &self.rules[i])
    }

    /// The display name of a non-terminal.
    pub fn name(&self, n: NonTerminal) -> &str {
        &self.nonterminal_names[n.index()]
    }

    /// The character a terminal id stands for.
    pub fn letter(&self, t: Terminal) -> char {
        self.alphabet[t.index()]
    }

    /// Look up the terminal id of a character, if in the alphabet.
    pub fn terminal_of(&self, c: char) -> Option<Terminal> {
        self.alphabet
            .iter()
            .position(|&x| x == c)
            .map(|i| Terminal(i as u16))
    }

    /// Encode a `&str` into terminal ids; `None` if any char is foreign.
    pub fn encode(&self, word: &str) -> Option<Vec<Terminal>> {
        word.chars().map(|c| self.terminal_of(c)).collect()
    }

    /// Decode terminal ids back to a `String`.
    pub fn decode(&self, word: &[Terminal]) -> String {
        word.iter().map(|&t| self.letter(t)).collect()
    }

    /// Check internal consistency of all symbol ids.
    pub fn validate(&self) -> Result<(), GrammarError> {
        if self.start.index() >= self.nonterminal_names.len() {
            return Err(GrammarError::BadStart(self.start));
        }
        for r in &self.rules {
            if r.lhs.index() >= self.nonterminal_names.len() {
                return Err(GrammarError::UnknownNonTerminal(r.lhs));
            }
            for &s in &r.rhs {
                match s {
                    Symbol::T(t) if t.index() >= self.alphabet.len() => {
                        return Err(GrammarError::UnknownTerminal(t))
                    }
                    Symbol::N(n) if n.index() >= self.nonterminal_names.len() => {
                        return Err(GrammarError::UnknownNonTerminal(n))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// A stable 64-bit content hash (FNV-1a over a canonical rule
    /// serialisation), suitable as a content-addressed cache key for
    /// compiled artifacts (CNF conversions, CYK rule indexes, Earley
    /// tables).
    ///
    /// Canonicalisation guarantees two invariances, covered by unit
    /// tests:
    ///
    /// - **renaming-insensitive** — non-terminal *names* never enter the
    ///   hash, only their ids, so `S → A A` and `Start → Left Left`
    ///   (same ids, different spellings) hash equal;
    /// - **rule-order-insensitive** — rule encodings are sorted before
    ///   hashing, so permuting `rules` leaves the digest unchanged.
    ///   Rules are hashed as a *multiset*: a duplicated rule changes the
    ///   digest, because duplicates change parse counts.
    ///
    /// The hash is *not* isomorphism-invariant: relabelling non-terminal
    /// ids (or reordering the alphabet, which renumbers terminals)
    /// produces a different digest. That is the right contract for
    /// content addressing — equal hash means the compiled artifacts are
    /// interchangeable byte for byte.
    pub fn content_hash(&self) -> u64 {
        use ucfg_support::fnv::Fnv1a;
        let mut encoded: Vec<Vec<u8>> = self
            .rules
            .iter()
            .map(|r| {
                let mut e = Vec::with_capacity(4 + 5 * r.rhs.len());
                e.extend_from_slice(&(r.lhs.0).to_le_bytes());
                for &s in &r.rhs {
                    match s {
                        Symbol::T(t) => {
                            e.push(0);
                            e.extend_from_slice(&t.0.to_le_bytes());
                        }
                        Symbol::N(n) => {
                            e.push(1);
                            e.extend_from_slice(&n.0.to_le_bytes());
                        }
                    }
                }
                e
            })
            .collect();
        encoded.sort_unstable();

        let mut h = Fnv1a::new();
        h.write(b"ucfg-cfg-v1");
        h.write_usize(self.alphabet.len());
        for &c in &self.alphabet {
            h.write_u32(c as u32);
        }
        h.write_usize(self.nonterminal_names.len());
        h.write_u32(self.start.0);
        h.write_usize(encoded.len());
        for e in &encoded {
            // Length-prefix each rule so concatenations can't collide.
            h.write_usize(e.len());
            h.write(e);
        }
        h.finish()
    }

    /// Render a symbol for display.
    pub fn symbol_str(&self, s: Symbol) -> String {
        match s {
            Symbol::T(t) => self.letter(t).to_string(),
            Symbol::N(n) => self.name(n).to_string(),
        }
    }

    /// Group rules by lhs and render in the `A → W | W'` notation of the
    /// paper (still meaning one rule per alternative).
    pub fn pretty(&self) -> String {
        let mut by_lhs: HashMap<NonTerminal, Vec<String>> = HashMap::new();
        for r in &self.rules {
            let body = if r.rhs.is_empty() {
                "ε".to_string()
            } else {
                r.rhs
                    .iter()
                    .map(|&s| self.symbol_str(s))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            by_lhs.entry(r.lhs).or_default().push(body);
        }
        let mut order: Vec<NonTerminal> = by_lhs.keys().copied().collect();
        order.sort_by_key(|n| (*n != self.start, n.index()));
        let mut out = String::new();
        for n in order {
            out.push_str(&format!("{} → {}\n", self.name(n), by_lhs[&n].join(" | ")));
        }
        out
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn tiny() -> Grammar {
        // S → a S | b
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn size_is_sum_of_rhs_lengths() {
        let g = tiny();
        assert_eq!(g.size(), 3); // |aS| + |b| = 2 + 1
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.nonterminal_count(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = tiny();
        let w = g.encode("abba").unwrap();
        assert_eq!(g.decode(&w), "abba");
        assert!(g.encode("abc").is_none());
    }

    #[test]
    fn rules_for_groups_by_lhs() {
        let g = tiny();
        assert_eq!(g.rules_for(g.start()).count(), 2);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_ids() {
        let g = Grammar::from_parts(
            vec!['a'],
            vec!["S".into()],
            vec![Rule {
                lhs: NonTerminal(0),
                rhs: vec![Symbol::T(Terminal(5))],
            }],
            NonTerminal(0),
        );
        assert_eq!(
            g.validate(),
            Err(GrammarError::UnknownTerminal(Terminal(5)))
        );

        let g = Grammar::from_parts(vec!['a'], vec!["S".into()], vec![], NonTerminal(3));
        assert_eq!(g.validate(), Err(GrammarError::BadStart(NonTerminal(3))));
    }

    #[test]
    fn content_hash_is_renaming_insensitive() {
        // Same structure under ids, different non-terminal spellings.
        let build = |names: [&str; 2]| {
            let mut b = GrammarBuilder::new(&['a', 'b']);
            let s = b.nonterminal(names[0]);
            let a = b.nonterminal(names[1]);
            b.rule(s, |r| r.n(a).n(a));
            b.rule(a, |r| r.t('a'));
            b.rule(a, |r| r.t('b'));
            b.build(s)
        };
        let g = build(["S", "A"]);
        let renamed = build(["Start", "Leaf"]);
        assert_eq!(g.content_hash(), renamed.content_hash());
    }

    #[test]
    fn content_hash_is_rule_order_insensitive() {
        let g = tiny();
        let mut rules = g.rules().to_vec();
        rules.reverse();
        let permuted =
            Grammar::from_parts(g.alphabet().to_vec(), vec!["S".into()], rules, g.start());
        assert_eq!(g.content_hash(), permuted.content_hash());
    }

    #[test]
    fn content_hash_separates_different_grammars() {
        let g = tiny();
        // S → a S | a   differs from   S → a S | b
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        let other = b.build(s);
        assert_ne!(g.content_hash(), other.content_hash());
    }

    #[test]
    fn content_hash_counts_duplicate_rules() {
        // Duplicated rules double parse counts, so they must change the
        // digest even though the generated language is unchanged.
        let g = tiny();
        let mut rules = g.rules().to_vec();
        rules.push(rules[1].clone());
        let doubled =
            Grammar::from_parts(g.alphabet().to_vec(), vec!["S".into()], rules, g.start());
        assert_ne!(g.content_hash(), doubled.content_hash());
    }

    #[test]
    fn content_hash_depends_on_start_symbol() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let t = b.nonterminal("T");
        b.rule(s, |r| r.t('a'));
        b.rule(t, |r| r.t('a').t('a'));
        let from_s = b.build(s);
        let from_t = Grammar::from_parts(
            from_s.alphabet().to_vec(),
            vec!["S".into(), "T".into()],
            from_s.rules().to_vec(),
            t,
        );
        assert_ne!(from_s.content_hash(), from_t.content_hash());
    }

    #[test]
    fn content_hash_is_stable_across_calls() {
        let g = tiny();
        assert_eq!(g.content_hash(), g.content_hash());
        assert_eq!(g.content_hash(), g.clone().content_hash());
    }

    #[test]
    fn pretty_prints_alternatives() {
        let g = tiny();
        let p = g.pretty();
        assert!(p.contains("S → "), "got: {p}");
        assert!(p.contains('|'), "got: {p}");
    }
}
