//! Arbitrary-precision unsigned integers.
//!
//! Parse-tree counts and the combinatorial identities of the paper
//! (`12^m`, `2^{3m}`, `|𝓛| = 2^{4m}`, …) overflow `u128` long before the
//! interesting range of `n`, so all counting in this workspace goes through
//! [`BigUint`]. The implementation is a classic little-endian limb vector in
//! base 2^32 with schoolbook multiplication; the sizes that arise here
//! (thousands of bits) make asymptotically faster multiplication pointless.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: u32 = 32;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` has no trailing zero limbs; zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_u128(v as u128)
    }

    /// Construct from a `u128`.
    pub fn from_u128(mut v: u128) -> Self {
        let mut limbs = Vec::new();
        while v != 0 {
            limbs.push((v & 0xffff_ffff) as u32);
            v >>= LIMB_BITS;
        }
        BigUint { limbs }
    }

    /// The value as a `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        self.to_u128().and_then(|v| u64::try_from(v).ok())
    }

    /// The value as a `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            v = (v << LIMB_BITS) | limb as u128;
        }
        Some(v)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64 + (32 - top.leading_zeros()) as u64
            }
        }
    }

    /// 2^k.
    pub fn pow2(k: u64) -> Self {
        let mut limbs = vec![0u32; (k / LIMB_BITS as u64) as usize];
        limbs.push(1u32 << (k % LIMB_BITS as u64));
        BigUint { limbs }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// `base^exp` for small base.
    pub fn small_pow(base: u64, exp: u64) -> Self {
        BigUint::from_u64(base).pow(exp)
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Saturating subtraction: `max(self - rhs, 0)` paired with whether the
    /// subtraction underflowed.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let r = *rhs.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = self.limbs[i] as i64 - r - borrow;
            if d < 0 {
                d += 1i64 << LIMB_BITS;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut v = BigUint { limbs: out };
        v.trim();
        Some(v)
    }

    /// Absolute difference `|self - rhs|`.
    pub fn abs_diff(&self, rhs: &BigUint) -> BigUint {
        if self >= rhs {
            self.checked_sub(rhs).expect("self >= rhs")
        } else {
            rhs.checked_sub(self).expect("rhs > self")
        }
    }

    /// Divide by a small divisor, returning `(quotient, remainder)`.
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_small(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        let mut q = BigUint { limbs: q };
        q.trim();
        (q, rem as u32)
    }

    /// Full division: `(quotient, remainder)` by shift-and-subtract.
    ///
    /// O(bits of self × limbs) — entirely adequate for this workspace's
    /// sizes. Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigUint) -> (BigUint, BigUint) {
        assert!(!rhs.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            return (BigUint::from_u128(a / b), BigUint::from_u128(a % b));
        }
        if self < rhs {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - rhs.bits();
        let mut divisor = rhs.shl_bits(shift);
        let mut rem = self.clone();
        let mut quot = BigUint::zero();
        for i in (0..=shift).rev() {
            if let Some(r) = rem.checked_sub(&divisor) {
                rem = r;
                quot = &quot + &BigUint::pow2(i);
            }
            divisor = divisor.shr1();
        }
        (quot, rem)
    }

    /// Left shift by `k` bits.
    pub fn shl_bits(&self, k: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (k / LIMB_BITS as u64) as usize;
        let bit_shift = (k % LIMB_BITS as u64) as u32;
        let mut limbs = vec![0u32; limb_shift];
        let mut carry: u32 = 0;
        for &l in &self.limbs {
            if bit_shift == 0 {
                limbs.push(l);
            } else {
                limbs.push((l << bit_shift) | carry);
                carry = (l as u64 >> (LIMB_BITS - bit_shift)) as u32;
            }
        }
        if carry != 0 {
            limbs.push(carry);
        }
        let mut v = BigUint { limbs };
        v.trim();
        v
    }

    fn shr1(&self) -> BigUint {
        let mut out = vec![0u32; self.limbs.len()];
        let mut carry: u32 = 0;
        for i in (0..self.limbs.len()).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 31);
            carry = self.limbs[i] & 1;
        }
        let mut v = BigUint { limbs: out };
        v.trim();
        v
    }

    /// Approximate base-2 logarithm as a float (for report tables).
    pub fn log2_approx(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        let bits = self.bits();
        // Take the top 53 significant bits for the mantissa.
        let take = bits.min(53);
        let (top, _) = self.div_rem(&BigUint::pow2(bits - take));
        let top = top.to_u64().expect("<= 53 bits") as f64;
        top.log2() + (bits - take) as f64
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.limbs.len() {
            let s = long.limbs[i] as u64 + *short.limbs.get(i).unwrap_or(&0) as u64 + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> LIMB_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl AddAssign for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = &*self + &rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> LIMB_BITS;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> LIMB_BITS;
                k += 1;
            }
        }
        let mut v = BigUint { limbs: out };
        v.trim();
        v
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, k: u64) -> BigUint {
        self.shl_bits(k)
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        let mut acc = BigUint::zero();
        for v in iter {
            acc += &v;
        }
        acc
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel off 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.pop().expect("nonzero has chunks").to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:09}"));
        }
        // Respect width/alignment flags.
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

/// Error from [`BigUint::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal digit in BigUint literal")
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError)?;
            acc = &(&acc * &ten) + &BigUint::from_u64(d as u64);
        }
        Ok(acc)
    }
}

/// An arbitrary-precision **signed** integer in sign-magnitude form.
///
/// The Lemma 18/19 accounting at `n ≥ 32` works with *signed* exact
/// quantities — per-rectangle discrepancies `|R∩A| − |R∩B|` and the gap
/// `|A∩L_n| − |B∩L_n|` — whose magnitudes overflow `i128` long before the
/// interesting `m`, so the signed layer sits on top of [`BigUint`].
///
/// Invariant: zero is always non-negative (`negative` is false), so
/// `Eq`/`Ord` derive from the normal form directly.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    negative: bool,
    magnitude: BigUint,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt::default()
    }

    /// Construct from a sign and magnitude (normalising `-0` to `+0`).
    pub fn from_sign_magnitude(negative: bool, magnitude: BigUint) -> Self {
        BigInt {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Self::from_sign_magnitude(v < 0, BigUint::from_u64(v.unsigned_abs()))
    }

    /// The exact difference `a − b` of two unsigned values.
    pub fn sub_unsigned(a: &BigUint, b: &BigUint) -> Self {
        Self::from_sign_magnitude(a < b, a.abs_diff(b))
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// True iff the value is < 0.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// The value as an `i128`, if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        if self.negative {
            (m <= 1u128 << 127).then(|| (m as i128).wrapping_neg())
        } else {
            i128::try_from(m).ok()
        }
    }

    /// The negation.
    pub fn neg(&self) -> Self {
        Self::from_sign_magnitude(!self.negative, self.magnitude.clone())
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        Self::from_sign_magnitude(false, v)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        Self::from_i64(v)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.negative == rhs.negative {
            BigInt::from_sign_magnitude(self.negative, &self.magnitude + &rhs.magnitude)
        } else if self.magnitude >= rhs.magnitude {
            BigInt::from_sign_magnitude(self.negative, self.magnitude.abs_diff(&rhs.magnitude))
        } else {
            BigInt::from_sign_magnitude(rhs.negative, rhs.magnitude.abs_diff(&self.magnitude))
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    // Subtraction in sign-magnitude form really is addition of the
    // negation; the signed-add cases above do the magnitude work.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &rhs.neg()
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(
            self.negative != rhs.negative,
            &self.magnitude * &rhs.magnitude,
        )
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        let mut acc = BigInt::zero();
        for v in iter {
            acc = &acc + &v;
        }
        acc
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        self.magnitude.fmt(f)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_u64(), Some(0));
        assert_eq!(BigUint::one().to_u64(), Some(1));
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn roundtrip_u128() {
        for v in [0u128, 1, 2, u32::MAX as u128, u64::MAX as u128, u128::MAX] {
            assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn add_matches_u128() {
        let cases = [
            0u128,
            1,
            7,
            1 << 31,
            1 << 32,
            u64::MAX as u128,
            (1 << 100) + 12345,
        ];
        for &a in &cases {
            for &b in &cases {
                let big = &BigUint::from_u128(a) + &BigUint::from_u128(b);
                assert_eq!(big.to_u128(), a.checked_add(b));
            }
        }
    }

    #[test]
    fn sub_matches_u128() {
        let cases = [0u128, 1, 7, 1 << 31, 1 << 32, u64::MAX as u128, 1 << 100];
        for &a in &cases {
            for &b in &cases {
                let got = BigUint::from_u128(a).checked_sub(&BigUint::from_u128(b));
                assert_eq!(got.map(|g| g.to_u128().unwrap()), a.checked_sub(b));
            }
        }
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            0u128,
            1,
            3,
            1 << 31,
            (1 << 32) + 5,
            u32::MAX as u128,
            u64::MAX as u128,
        ];
        for &a in &cases {
            for &b in &cases {
                let big = &BigUint::from_u128(a) * &BigUint::from_u128(b);
                assert_eq!(big.to_u128(), a.checked_mul(b));
            }
        }
    }

    #[test]
    fn pow2_and_bits() {
        for k in [0u64, 1, 31, 32, 33, 64, 100] {
            let v = BigUint::pow2(k);
            assert_eq!(v.bits(), k + 1);
            if k < 128 {
                assert_eq!(v.to_u128(), Some(1u128 << k));
            }
        }
    }

    #[test]
    fn pow_small_values() {
        assert_eq!(BigUint::small_pow(12, 0).to_u64(), Some(1));
        assert_eq!(BigUint::small_pow(12, 5).to_u64(), Some(248832));
        assert_eq!(BigUint::small_pow(2, 64).to_u128(), Some(1 << 64));
        // 12^40 ≈ 2^{143} needs > 128 bits; value checked against an
        // independent computation.
        let v = BigUint::small_pow(12, 40);
        assert_eq!(
            v.to_string(),
            "14697715679690864505827555550150426126974976"
        );
        // Cross-check multiplicatively: 12^40 = 12^25 · 12^15.
        assert_eq!(v, &BigUint::small_pow(12, 25) * &BigUint::small_pow(12, 15));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let v: BigUint = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert!("12x".parse::<BigUint>().is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn div_rem_small_matches() {
        let v = BigUint::from_u128(123456789012345678901234567890);
        let (q, r) = v.div_rem_small(97);
        assert_eq!(q.to_u128(), Some(123456789012345678901234567890 / 97));
        assert_eq!(r as u128, 123456789012345678901234567890 % 97);
    }

    #[test]
    fn div_rem_full_matches() {
        let pairs = [
            (123456789012345678901234567890u128, 97u128),
            (1 << 100, (1 << 50) + 3),
            (17, 99),
            (99, 99),
            (0, 5),
        ];
        for &(a, b) in &pairs {
            let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
            assert_eq!(q.to_u128(), Some(a / b), "quot for {a}/{b}");
            assert_eq!(r.to_u128(), Some(a % b), "rem for {a}/{b}");
        }
        // A genuinely multi-limb case checked against pow identities.
        let a = BigUint::small_pow(7, 100);
        let b = BigUint::small_pow(7, 60);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, BigUint::small_pow(7, 40));
        assert!(r.is_zero());
    }

    #[test]
    fn shl_matches() {
        let v = BigUint::from_u64(0xdead_beef);
        assert_eq!(v.shl_bits(0), v);
        assert_eq!(v.shl_bits(4).to_u128(), Some(0xdead_beef_u128 << 4));
        assert_eq!(v.shl_bits(40).to_u128(), Some(0xdead_beef_u128 << 40));
    }

    #[test]
    fn ordering() {
        let a = BigUint::small_pow(2, 100);
        let b = &a + &BigUint::one();
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn abs_diff_both_directions() {
        let a = BigUint::from_u64(10);
        let b = BigUint::from_u64(4);
        assert_eq!(a.abs_diff(&b).to_u64(), Some(6));
        assert_eq!(b.abs_diff(&a).to_u64(), Some(6));
        assert!(a.abs_diff(&a).is_zero());
    }

    #[test]
    fn log2_approx_sane() {
        assert!((BigUint::pow2(100).log2_approx() - 100.0).abs() < 1e-9);
        let v = BigUint::small_pow(12, 50); // log2 = 50*log2(12)
        assert!((v.log2_approx() - 50.0 * 12f64.log2()).abs() < 1e-6);
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1u64..=100).map(BigUint::from_u64).sum();
        assert_eq!(total.to_u64(), Some(5050));
    }

    #[test]
    fn bigint_matches_i128_model() {
        let cases: Vec<i128> = vec![
            0,
            1,
            -1,
            7,
            -7,
            i64::MAX as i128,
            i64::MIN as i128,
            (1i128 << 100) + 17,
            -((1i128 << 100) + 17),
        ];
        let to_big =
            |v: i128| BigInt::from_sign_magnitude(v < 0, BigUint::from_u128(v.unsigned_abs()));
        for &a in &cases {
            assert_eq!(to_big(a).to_i128(), Some(a), "roundtrip {a}");
            for &b in &cases {
                assert_eq!(
                    (&to_big(a) + &to_big(b)).to_i128(),
                    a.checked_add(b),
                    "{a}+{b}"
                );
                assert_eq!(
                    (&to_big(a) - &to_big(b)).to_i128(),
                    a.checked_sub(b),
                    "{a}-{b}"
                );
                if let Some(p) = a.checked_mul(b) {
                    assert_eq!((&to_big(a) * &to_big(b)).to_i128(), Some(p), "{a}*{b}");
                }
                assert_eq!(to_big(a).cmp(&to_big(b)), a.cmp(&b), "cmp {a} {b}");
            }
        }
    }

    #[test]
    fn bigint_normalises_negative_zero() {
        let z = BigInt::from_sign_magnitude(true, BigUint::zero());
        assert!(!z.is_negative());
        assert_eq!(z, BigInt::zero());
        assert_eq!(z.to_string(), "0");
        assert_eq!(BigInt::from_i64(-5).to_string(), "-5");
        assert_eq!(BigInt::from_i64(-5).neg().to_string(), "5");
    }

    #[test]
    fn bigint_sub_unsigned_signs() {
        let a = BigUint::small_pow(12, 8);
        let b = BigUint::pow2(24);
        let d = BigInt::sub_unsigned(&a, &b);
        assert!(!d.is_negative(), "12^8 > 2^24");
        assert_eq!(BigInt::sub_unsigned(&b, &a), d.neg());
        let total: BigInt = [d.clone(), d.neg()].into_iter().sum();
        assert!(total.is_zero());
    }

    #[test]
    fn lemma18_identity_shape() {
        // 12^m - 2^{3m} > 2^{7m/2} for m >= 8 (the "n sufficiently big" in
        // Lemma 18); the exact threshold is checked in ucfg-core, here we
        // just exercise the arithmetic.
        let m = 20u64;
        let gap = BigUint::small_pow(12, m)
            .checked_sub(&BigUint::pow2(3 * m))
            .unwrap();
        assert!(gap > BigUint::pow2(7 * m / 2));
    }
}
