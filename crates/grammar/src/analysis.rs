//! Static grammar analyses.
//!
//! * productive / reachable symbols and trimming (the paper's standing
//!   assumption that "every non-terminal appears in at least one parse
//!   tree"),
//! * language-finiteness (the paper only deals with finite languages),
//! * the Observation 9 analysis: in a grammar whose language has a single
//!   word length, every useful non-terminal generates words of exactly one
//!   length.

use crate::cfg::{Grammar, Rule};
use crate::symbol::{NonTerminal, Symbol};

/// Which non-terminals can derive some terminal word.
pub fn productive(g: &Grammar) -> Vec<bool> {
    let mut prod = vec![false; g.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for r in g.rules() {
            if prod[r.lhs.index()] {
                continue;
            }
            let ok = r.rhs.iter().all(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(n) => prod[n.index()],
            });
            if ok {
                prod[r.lhs.index()] = true;
                changed = true;
            }
        }
    }
    prod
}

/// Which non-terminals are reachable from the start symbol.
pub fn reachable(g: &Grammar) -> Vec<bool> {
    let mut reach = vec![false; g.nonterminal_count()];
    let mut stack = vec![g.start()];
    reach[g.start().index()] = true;
    while let Some(a) = stack.pop() {
        for r in g.rules_for(a) {
            for s in &r.rhs {
                if let Symbol::N(n) = s {
                    if !reach[n.index()] {
                        reach[n.index()] = true;
                        stack.push(*n);
                    }
                }
            }
        }
    }
    reach
}

/// Which non-terminals are *useful*: they appear in at least one parse tree
/// of the grammar (reachable via productive context and productive
/// themselves).
pub fn useful(g: &Grammar) -> Vec<bool> {
    let prod = productive(g);
    // Reachability restricted to rules whose body is entirely productive —
    // a non-terminal only appears in a parse tree if the whole rule that
    // introduces it can complete.
    let mut reach = vec![false; g.nonterminal_count()];
    if prod[g.start().index()] {
        reach[g.start().index()] = true;
        let mut stack = vec![g.start()];
        while let Some(a) = stack.pop() {
            for r in g.rules_for(a) {
                let body_prod = r.rhs.iter().all(|s| match s {
                    Symbol::T(_) => true,
                    Symbol::N(n) => prod[n.index()],
                });
                if !body_prod {
                    continue;
                }
                for s in &r.rhs {
                    if let Symbol::N(n) = s {
                        if !reach[n.index()] {
                            reach[n.index()] = true;
                            stack.push(*n);
                        }
                    }
                }
            }
        }
    }
    (0..g.nonterminal_count())
        .map(|i| prod[i] && reach[i])
        .collect()
}

/// Remove useless non-terminals and the rules mentioning them, remapping
/// ids densely. The start symbol is always kept (if the language is empty
/// the result has a start with no rules).
pub fn trim(g: &Grammar) -> Grammar {
    let keep = useful(g);
    let mut remap: Vec<Option<NonTerminal>> = vec![None; g.nonterminal_count()];
    let mut names = Vec::new();
    for i in 0..g.nonterminal_count() {
        if keep[i] || NonTerminal(i as u32) == g.start() {
            remap[i] = Some(NonTerminal(names.len() as u32));
            names.push(g.name(NonTerminal(i as u32)).to_string());
        }
    }
    let mut rules = Vec::new();
    'rules: for r in g.rules() {
        let Some(lhs) = remap[r.lhs.index()] else {
            continue;
        };
        if !keep[r.lhs.index()] {
            continue; // start kept only as a placeholder when useless
        }
        let mut rhs = Vec::with_capacity(r.rhs.len());
        for &s in &r.rhs {
            match s {
                Symbol::T(t) => rhs.push(Symbol::T(t)),
                Symbol::N(n) => match remap[n.index()] {
                    Some(m) if keep[n.index()] => rhs.push(Symbol::N(m)),
                    _ => continue 'rules,
                },
            }
        }
        rules.push(Rule { lhs, rhs });
    }
    let start = remap[g.start().index()].expect("start is always kept");
    Grammar::from_parts(g.alphabet().to_vec(), names, rules, start)
}

/// Which non-terminals can derive ε.
pub fn nullable(g: &Grammar) -> Vec<bool> {
    let mut null = vec![false; g.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for r in g.rules() {
            if null[r.lhs.index()] {
                continue;
            }
            let ok = r.rhs.iter().all(|s| match s {
                Symbol::T(_) => false,
                Symbol::N(n) => null[n.index()],
            });
            if ok {
                null[r.lhs.index()] = true;
                changed = true;
            }
        }
    }
    null
}

/// Is `L(G)` a finite language?
///
/// For a trimmed grammar, the language is infinite iff some strongly
/// connected component of the non-terminal graph contains a *growing* edge:
/// a rule `A → α B β` with `A, B` in the same SCC and `αβ` able to derive a
/// non-empty word. (Pure unit cycles keep the language finite — they only
/// make ambiguity infinite.)
pub fn is_language_finite(g: &Grammar) -> bool {
    let g = trim(g);
    let n = g.nonterminal_count();
    // can_derive_nonempty[A]: some word derived from A has length >= 1.
    let mut nonempty = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for r in g.rules() {
            if nonempty[r.lhs.index()] {
                continue;
            }
            let ok = r.rhs.iter().any(|s| match s {
                Symbol::T(_) => true,
                Symbol::N(m) => nonempty[m.index()],
            });
            if ok {
                nonempty[r.lhs.index()] = true;
                changed = true;
            }
        }
    }
    let scc = scc_ids(&g);
    for r in g.rules() {
        for (i, s) in r.rhs.iter().enumerate() {
            let Symbol::N(b) = s else { continue };
            if scc[r.lhs.index()] != scc[b.index()] {
                continue;
            }
            // Is there growth alongside b in this rule?
            let grows = r.rhs.iter().enumerate().any(|(j, s2)| {
                j != i
                    && match s2 {
                        Symbol::T(_) => true,
                        Symbol::N(m) => nonempty[m.index()],
                    }
            });
            if grows {
                return false;
            }
        }
    }
    true
}

/// Does some non-terminal admit infinitely many parse trees for a single
/// word (equivalently after trimming: is there any cycle at all in the
/// non-terminal graph, including pure unit/ε cycles)?
pub fn has_derivation_cycle(g: &Grammar) -> bool {
    let g = trim(g);
    let scc = scc_ids(&g);
    let n = g.nonterminal_count();
    let mut comp_size = vec![0usize; n];
    for &c in &scc {
        comp_size[c] += 1;
    }
    for r in g.rules() {
        for s in &r.rhs {
            if let Symbol::N(b) = s {
                let c = scc[r.lhs.index()];
                if c == scc[b.index()] && (comp_size[c] > 1 || r.lhs == *b) {
                    return true;
                }
            }
        }
    }
    // Self-loops within singleton SCCs: A → …A… was caught above via lhs==b.
    false
}

/// Tarjan SCC over the non-terminal graph (edge A→B for each occurrence of
/// B in a body of an A-rule). Returns a component id per non-terminal.
fn scc_ids(g: &Grammar) -> Vec<usize> {
    let n = g.nonterminal_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in g.rules() {
        for s in &r.rhs {
            if let Symbol::N(b) = s {
                adj[r.lhs.index()].push(b.index());
            }
        }
    }
    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // call stack: (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Observation 9: in a grammar accepting a language in which all words have
/// the same length, every useful non-terminal generates words of exactly
/// one length. Computes that length per non-terminal.
///
/// Returns `None` if some useful non-terminal generates words of two
/// different lengths (i.e. the grammar cannot accept a fixed-length
/// language), otherwise `Some(lengths)` where `lengths[A]` is the unique
/// generated length (`None` for useless non-terminals of the input).
pub fn uniform_lengths(g: &Grammar) -> Option<Vec<Option<usize>>> {
    let keep = useful(g);
    let mut len: Vec<Option<usize>> = vec![None; g.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for r in g.rules() {
            if !keep[r.lhs.index()] {
                continue;
            }
            let mut total = 0usize;
            let mut known = true;
            for s in &r.rhs {
                match s {
                    Symbol::T(_) => total += 1,
                    Symbol::N(m) => match len[m.index()] {
                        Some(l) => total += l,
                        None => {
                            known = false;
                            break;
                        }
                    },
                }
            }
            if !known {
                continue;
            }
            match len[r.lhs.index()] {
                None => {
                    len[r.lhs.index()] = Some(total);
                    changed = true;
                }
                Some(existing) if existing != total => return None,
                Some(_) => {}
            }
        }
    }
    // Cross-check: every rule with a known body must agree (a rule may have
    // been skipped above after its lhs was fixed by another rule, and then
    // become fully known in a later sweep that made no other change).
    for r in g.rules() {
        if !keep[r.lhs.index()] {
            continue;
        }
        let mut total = 0usize;
        let mut known = true;
        for s in &r.rhs {
            match s {
                Symbol::T(_) => total += 1,
                Symbol::N(m) => match len[m.index()] {
                    Some(l) => total += l,
                    None => known = false,
                },
            }
        }
        if known && len[r.lhs.index()] != Some(total) {
            return None;
        }
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    /// S → A B | a ;  A → a ;  C → c  (C unreachable, B unproductive)
    fn with_useless() -> Grammar {
        let mut b = GrammarBuilder::new(&['a', 'c']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        let c = b.nonterminal("C");
        b.rule(s, |r| r.n(a).n(bb));
        b.rule(s, |r| r.t('a'));
        b.rule(a, |r| r.t('a'));
        b.rule(c, |r| r.t('c'));
        b.build(s)
    }

    #[test]
    fn productive_detects_dead_nonterminal() {
        let g = with_useless();
        let p = productive(&g);
        assert_eq!(p, vec![true, true, false, true]); // S A B C
    }

    #[test]
    fn reachable_from_start() {
        let g = with_useless();
        let r = reachable(&g);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn useful_requires_whole_rule_productive() {
        let g = with_useless();
        let u = useful(&g);
        // A is only introduced by S → A B whose body is unproductive, so A
        // never appears in a complete parse tree.
        assert_eq!(u, vec![true, false, false, false]);
    }

    #[test]
    fn trim_removes_useless() {
        let g = trim(&with_useless());
        assert_eq!(g.nonterminal_count(), 1);
        assert_eq!(g.rule_count(), 1); // S → a
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn trim_empty_language_keeps_start() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).t('a')); // S only derives via itself: empty language
        let g = trim(&b.build(s));
        assert_eq!(g.nonterminal_count(), 1);
        assert_eq!(g.rule_count(), 0);
    }

    #[test]
    fn nullable_closure() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.epsilon_rule(a);
        b.rule(a, |r| r.t('a'));
        let g = b.build(s);
        assert_eq!(nullable(&g), vec![true, true]);
    }

    #[test]
    fn finite_language_detected() {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.ts("ab"));
        b.rule(s, |r| r.ts("ba"));
        assert!(is_language_finite(&b.build(s)));
    }

    #[test]
    fn infinite_language_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        assert!(!is_language_finite(&b.build(s)));
    }

    #[test]
    fn unit_cycle_is_finite_language_but_cyclic_derivations() {
        // S → A, A → S | a : language {a} but infinitely many trees.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(s));
        b.rule(a, |r| r.t('a'));
        let g = b.build(s);
        assert!(is_language_finite(&g));
        assert!(has_derivation_cycle(&g));
    }

    #[test]
    fn acyclic_grammar_has_no_derivation_cycle() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        assert!(!has_derivation_cycle(&b.build(s)));
    }

    #[test]
    fn uniform_lengths_of_fixed_length_grammar() {
        // S → A A, A → a | b : all words have length 2.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        let lens = uniform_lengths(&b.build(s)).expect("fixed length");
        assert_eq!(lens, vec![Some(2), Some(1)]);
    }

    #[test]
    fn uniform_lengths_rejects_mixed_lengths() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.ts("aa"));
        assert!(uniform_lengths(&b.build(s)).is_none());
    }

    #[test]
    fn uniform_lengths_ignores_useless_mixed_nonterminal() {
        // B generates length 1 and 2, but B is unreachable.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.t('a'));
        b.rule(bb, |r| r.t('a'));
        b.rule(bb, |r| r.ts("aa"));
        let lens = uniform_lengths(&b.build(s)).expect("useless B ignored");
        assert_eq!(lens[0], Some(1));
        assert_eq!(lens[1], None);
    }
}
