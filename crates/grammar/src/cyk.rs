//! CYK parsing over Chomsky normal form.
//!
//! The chart stores, for every span `(i, len)`, the bitset of non-terminals
//! deriving that span. Chart filling uses a rule-indexed **bitset kernel**
//! ([`CykRuleIndex`]): binary rules are grouped by left child, and cells
//! combine with word-level AND/OR over 64-non-terminal blocks instead of
//! per-rule scalar bit probes. The classic per-rule loop is kept as
//! [`CykChart::build_scalar`], the differential reference.
//!
//! On top of the boolean chart we provide exact parse-tree **counting**
//! (the ambiguity degree of a word — the quantity whose `= 1` everywhere
//! defines a uCFG) and bounded tree enumeration.

use crate::bignum::BigUint;
use crate::normal_form::CnfGrammar;
use crate::parse_tree::{Child, ParseTree};
use crate::symbol::{NonTerminal, Terminal};
use std::collections::HashMap;
use ucfg_support::{arena, obs, simd};

/// Binary rules re-indexed for the bitset CYK kernel.
///
/// For each left child `B`, the index stores the bitset of right children
/// `C` occurring in rules `A → B C` (`c_mask`) and, per such `C`, the
/// bitset of heads `A` (`a_masks[C]`). The chart kernel then walks the set
/// bits of the left cell, ANDs `c_mask` against the right cell one
/// 64-non-terminal block at a time, and ORs whole `a_masks` into the
/// target cell — `O(words)` per surviving `(B, C)` pair instead of one
/// scalar probe per rule.
///
/// Build it once per grammar ([`CykRuleIndex::new`]) and reuse it across
/// words via [`CykChart::build_with_index`]; [`CykChart::build`] creates a
/// throwaway index internally.
#[derive(Debug)]
pub struct CykRuleIndex {
    nts: usize,
    words_per_set: usize,
    /// Per left child `B`: bitset of right children, `words_per_set` words
    /// starting at `B * words_per_set`.
    c_masks: Vec<u64>,
    /// Dense `(B, C) → a_slab` offset (`B * nts + C`); [`NO_RULE`] when no
    /// rule `A → B C` exists. Three flat slabs instead of per-group
    /// `Vec<Vec<u64>>` keep index construction to O(1) allocations, so
    /// [`CykChart::build`]'s throwaway index stays cheap for short words.
    a_offset: Vec<u32>,
    /// Head bitsets, one `words_per_set` block per distinct `(B, C)` pair.
    a_slab: Vec<u64>,
    /// Bitset of left children that head at least one binary rule
    /// (`words_per_set` words): ANDed into each left cell before the bit
    /// walk, so non-terminals that never combine rightward — terminal-only
    /// producers, most of a CNF conversion's chain symbols — cost nothing
    /// per split.
    left_live: Vec<u64>,
}

const NO_RULE: u32 = u32::MAX;

impl CykRuleIndex {
    /// Index the binary rules of `g` by left child.
    pub fn new(g: &CnfGrammar) -> Self {
        obs::count!("cyk.index_builds");
        let nts = g.nonterminal_count();
        let words_per_set = nts.div_ceil(64);
        let mut c_masks = vec![0u64; nts * words_per_set];
        let mut a_offset = vec![NO_RULE; nts * nts];
        let mut a_slab = Vec::new();
        let mut left_live = vec![0u64; words_per_set];
        for &(a, b, c) in g.bin_rules() {
            left_live[b.index() / 64] |= 1u64 << (b.index() % 64);
            c_masks[b.index() * words_per_set + c.index() / 64] |= 1u64 << (c.index() % 64);
            let slot = &mut a_offset[b.index() * nts + c.index()];
            if *slot == NO_RULE {
                *slot = u32::try_from(a_slab.len()).expect("a_slab offset fits u32");
                a_slab.resize(a_slab.len() + words_per_set, 0);
            }
            a_slab[*slot as usize + a.index() / 64] |= 1u64 << (a.index() % 64);
        }
        CykRuleIndex {
            nts,
            words_per_set,
            c_masks,
            a_offset,
            a_slab,
            left_live,
        }
    }
}

/// A filled CYK chart for one word.
///
/// The chart is one flat slab — span `(i, len)` owns the `words_per_set`
/// words at `((len-1) * n + i) * words_per_set` — so filling a chart costs
/// one allocation instead of one per cell, span rows are contiguous in
/// memory (the fill streams them L1/L2-resident), and the slab is pooled
/// through [`ucfg_support::arena`] across charts: the serve daemon's
/// batch path parses request after request without touching the
/// allocator.
pub struct CykChart<'g> {
    g: &'g CnfGrammar,
    word: Vec<Terminal>,
    words_per_set: usize,
    cells: Vec<u64>,
}

impl Drop for CykChart<'_> {
    fn drop(&mut self) {
        arena::recycle(std::mem::take(&mut self.cells));
    }
}

impl<'g> CykChart<'g> {
    /// Parse `word` with the bitset kernel (throwaway rule index). For
    /// batches of words over one grammar, build a [`CykRuleIndex`] once
    /// and use [`CykChart::build_with_index`].
    pub fn build(g: &'g CnfGrammar, word: &[Terminal]) -> Self {
        obs::count!("cyk.charts.throwaway_index");
        Self::chart(g, &CykRuleIndex::new(g), word)
    }

    /// Parse `word` with the rule-indexed bitset kernel: for every span
    /// and split, walk the set bits `B` of the left cell and combine the
    /// right cell with `B`'s rule group block-wise (word-level AND to find
    /// live right children, word-level OR to deposit heads).
    pub fn build_with_index(g: &'g CnfGrammar, index: &CykRuleIndex, word: &[Terminal]) -> Self {
        obs::count!("cyk.charts.reused_index");
        Self::chart(g, index, word)
    }

    /// Shared entry of [`CykChart::build`] / [`CykChart::build_with_index`]:
    /// dispatch on the trace flag once per chart, so the untraced fill is
    /// monomorphised without any counting code in its hot loops.
    fn chart(g: &'g CnfGrammar, index: &CykRuleIndex, word: &[Terminal]) -> Self {
        if obs::enabled() {
            obs::count!("cyk.charts");
            Self::fill::<true>(g, index, word)
        } else {
            Self::fill::<false>(g, index, word)
        }
    }

    /// The bitset fill. With `TRACE`, rule-slab AND/OR word ops accumulate
    /// in locals and flush to the `cyk.and_ops` / `cyk.or_ops` counters
    /// once per chart; with `TRACE = false` the accumulation compiles out.
    ///
    /// The span loop is **cache-blocked**: for a fixed `(len, split)` the
    /// inner loop walks `i`, so the three rows it touches — the length-
    /// `split` row (left cells), the length-`(len-split)` row (right
    /// cells) and the output row — are each streamed contiguously through
    /// the flat slab instead of jumping rows per split. Heads OR directly
    /// into the output cell (it starts zeroed), which also drops the old
    /// per-cell accumulator copy. Grammars with ≤ 64 non-terminals (one
    /// word per cell — the common case here) take a scalar-register fast
    /// path; wider grammars combine cells block-wise, dispatching through
    /// [`ucfg_support::simd`] once cells are wide enough for 256-bit
    /// lanes.
    fn fill<const TRACE: bool>(g: &'g CnfGrammar, index: &CykRuleIndex, word: &[Terminal]) -> Self {
        let n = word.len();
        let wps = index.words_per_set;
        let mut cells = arena::take_zeroed(n * n * wps);
        let mut and_ops: u64 = 0;
        let mut or_ops: u64 = 0;
        // Length 1: terminal rules.
        for (i, &t) in word.iter().enumerate() {
            for &(a, tt) in g.term_rules() {
                if tt == t {
                    cells[i * wps + a.index() / 64] |= 1u64 << (a.index() % 64);
                }
            }
        }
        // Longer spans. Rows below `len` are complete, so the slab splits
        // into a read-only prefix and the output row without aliasing.
        for len in 2..=n {
            let (done, out_row) = cells.split_at_mut((len - 1) * n * wps);
            for split in 1..len {
                let lrow = &done[(split - 1) * n * wps..];
                let rrow = &done[(len - split - 1) * n * wps..];
                if wps == 1 {
                    let live = index.left_live[0];
                    for i in 0..=n - len {
                        let mut lbits = lrow[i] & live;
                        let rw = rrow[i + split];
                        if lbits == 0 || rw == 0 {
                            continue;
                        }
                        let mut out = out_row[i];
                        while lbits != 0 {
                            let b = lbits.trailing_zeros() as usize;
                            lbits &= lbits - 1;
                            let mut hits = index.c_masks[b] & rw;
                            if TRACE {
                                and_ops += 1;
                            }
                            while hits != 0 {
                                let c = hits.trailing_zeros() as usize;
                                hits &= hits - 1;
                                let off = index.a_offset[b * index.nts + c] as usize;
                                out |= index.a_slab[off];
                                if TRACE {
                                    or_ops += 1;
                                }
                            }
                        }
                        out_row[i] = out;
                    }
                } else {
                    for i in 0..=n - len {
                        let left = &lrow[i * wps..][..wps];
                        let right = &rrow[(i + split) * wps..][..wps];
                        if right.iter().all(|&rw| rw == 0) {
                            continue;
                        }
                        let out = &mut out_row[i * wps..][..wps];
                        for (bw, &lword) in left.iter().enumerate() {
                            let mut lbits = lword & index.left_live[bw];
                            while lbits != 0 {
                                let b = bw * 64 + lbits.trailing_zeros() as usize;
                                lbits &= lbits - 1;
                                let c_mask = &index.c_masks[b * wps..][..wps];
                                if TRACE {
                                    and_ops += wps as u64;
                                }
                                for (cw, (&cm, &rw)) in c_mask.iter().zip(right.iter()).enumerate()
                                {
                                    let mut hits = cm & rw;
                                    while hits != 0 {
                                        let c = cw * 64 + hits.trailing_zeros() as usize;
                                        hits &= hits - 1;
                                        let off = index.a_offset[b * index.nts + c] as usize;
                                        let mask = &index.a_slab[off..][..wps];
                                        if TRACE {
                                            or_ops += wps as u64;
                                        }
                                        if wps >= 4 {
                                            simd::or_assign(out, mask);
                                        } else {
                                            for (t, &m) in out.iter_mut().zip(mask) {
                                                *t |= m;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if TRACE {
            obs::count!("cyk.and_ops", and_ops);
            obs::count!("cyk.or_ops", or_ops);
        }
        CykChart {
            g,
            word: word.to_vec(),
            words_per_set: wps,
            cells,
        }
    }

    /// Parse `word` with the classic O(n³·|R|) per-rule scalar loop. This
    /// is the reference kernel the bitset path is differentially tested
    /// (and benchmarked) against; prefer [`CykChart::build`].
    pub fn build_scalar(g: &'g CnfGrammar, word: &[Terminal]) -> Self {
        let n = word.len();
        let nts = g.nonterminal_count();
        let words_per_set = nts.div_ceil(64);
        let mut cells = vec![0u64; n * n * words_per_set];
        let idx = |i: usize, len: usize| ((len - 1) * n + i) * words_per_set;
        // Length 1: terminal rules.
        for (i, &t) in word.iter().enumerate() {
            for &(a, tt) in g.term_rules() {
                if tt == t {
                    cells[idx(i, 1) + a.index() / 64] |= 1u64 << (a.index() % 64);
                }
            }
        }
        // Longer spans.
        for len in 2..=n {
            for i in 0..=n - len {
                for split in 1..len {
                    let (li, ri) = (idx(i, split), idx(i + split, len - split));
                    for &(a, b, c) in g.bin_rules() {
                        let bset = cells[li + b.index() / 64] >> (b.index() % 64) & 1;
                        let cset = cells[ri + c.index() / 64] >> (c.index() % 64) & 1;
                        if bset & cset == 1 {
                            cells[idx(i, len) + a.index() / 64] |= 1u64 << (a.index() % 64);
                        }
                    }
                }
            }
        }
        CykChart {
            g,
            word: word.to_vec(),
            words_per_set,
            cells,
        }
    }

    fn cell(&self, i: usize, len: usize) -> &[u64] {
        let at = ((len - 1) * self.word.len() + i) * self.words_per_set;
        &self.cells[at..at + self.words_per_set]
    }

    /// Does non-terminal `a` derive `word[i .. i+len]`?
    pub fn derives(&self, a: NonTerminal, i: usize, len: usize) -> bool {
        if len == 0 || i + len > self.word.len() {
            return false;
        }
        self.cell(i, len)[a.index() / 64] >> (a.index() % 64) & 1 == 1
    }

    /// All non-terminals deriving `word[i .. i+len]`.
    ///
    /// Contract: spans that do not lie inside the word (`len == 0` or
    /// `i + len > word.len()`) have no deriving non-terminals and return
    /// an empty `Vec` — mirroring [`CykChart::derives`], which answers
    /// `false` for the same spans. This is deliberate Option-style
    /// behavior, not an error.
    pub fn nonterminals_at(&self, i: usize, len: usize) -> Vec<NonTerminal> {
        let mut out = Vec::new();
        if len == 0 || i + len > self.word.len() {
            return out;
        }
        for (w, &set) in self.cell(i, len).iter().enumerate() {
            let mut bits = set;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(NonTerminal((w * 64 + b) as u32));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Is the whole word accepted?
    pub fn accepted(&self) -> bool {
        if self.word.is_empty() {
            return self.g.accepts_epsilon();
        }
        self.derives(self.g.start(), 0, self.word.len())
    }

    /// Exact number of parse trees of the whole word from the start symbol.
    pub fn count_trees(&self) -> BigUint {
        if self.word.is_empty() {
            return if self.g.accepts_epsilon() {
                BigUint::one()
            } else {
                BigUint::zero()
            };
        }
        let mut memo: HashMap<(u32, usize, usize), BigUint> = HashMap::new();
        self.count_at(self.g.start(), 0, self.word.len(), &mut memo)
    }

    fn count_at(
        &self,
        a: NonTerminal,
        i: usize,
        len: usize,
        memo: &mut HashMap<(u32, usize, usize), BigUint>,
    ) -> BigUint {
        if !self.derives(a, i, len) {
            return BigUint::zero();
        }
        if len == 1 {
            let hits = self
                .g
                .terms_of(a)
                .iter()
                .filter(|&&t| t == self.word[i])
                .count();
            return BigUint::from_u64(hits as u64);
        }
        if let Some(c) = memo.get(&(a.0, i, len)) {
            return c.clone();
        }
        let mut total = BigUint::zero();
        for &(b, c) in self.g.bins_of(a) {
            for split in 1..len {
                if self.derives(b, i, split) && self.derives(c, i + split, len - split) {
                    let lb = self.count_at(b, i, split, memo);
                    if lb.is_zero() {
                        continue;
                    }
                    let rc = self.count_at(c, i + split, len - split, memo);
                    total += &(&lb * &rc);
                }
            }
        }
        memo.insert((a.0, i, len), total.clone());
        total
    }

    /// Enumerate up to `limit` parse trees of the whole word.
    pub fn trees(&self, limit: usize) -> Vec<ParseTree> {
        if self.word.is_empty() || limit == 0 {
            return Vec::new();
        }
        self.trees_at(self.g.start(), 0, self.word.len(), limit)
    }

    fn trees_at(&self, a: NonTerminal, i: usize, len: usize, limit: usize) -> Vec<ParseTree> {
        let mut out = Vec::new();
        if !self.derives(a, i, len) {
            return out;
        }
        if len == 1 {
            for &t in self.g.terms_of(a) {
                if t == self.word[i] {
                    out.push(ParseTree {
                        nt: a,
                        children: vec![Child::Leaf(t)],
                    });
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            return out;
        }
        'rules: for &(b, c) in self.g.bins_of(a) {
            for split in 1..len {
                if !(self.derives(b, i, split) && self.derives(c, i + split, len - split)) {
                    continue;
                }
                let lefts = self.trees_at(b, i, split, limit);
                for lt in &lefts {
                    let rights = self.trees_at(c, i + split, len - split, limit);
                    for rt in rights {
                        out.push(ParseTree {
                            nt: a,
                            children: vec![Child::Tree(lt.clone()), Child::Tree(rt)],
                        });
                        if out.len() >= limit {
                            break 'rules;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Convenience: is `word ∈ L(G)`?
pub fn recognize(g: &CnfGrammar, word: &[Terminal]) -> bool {
    CykChart::build(g, word).accepted()
}

/// Convenience: the ambiguity degree (number of parse trees) of `word`.
pub fn ambiguity_of(g: &CnfGrammar, word: &[Terminal]) -> BigUint {
    CykChart::build(g, word).count_trees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::cfg::Grammar;
    use crate::normal_form::CnfGrammar;

    /// Balanced parentheses-ish: S → S S | a  (Catalan ambiguity).
    fn catalan() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).n(s));
        b.rule(s, |r| r.t('a'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    fn pairs() -> (Grammar, CnfGrammar) {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        let g = b.build(s);
        let cnf = CnfGrammar::from_grammar(&g);
        (g, cnf)
    }

    #[test]
    fn recognizes_fixed_length_words() {
        let (_, cnf) = pairs();
        for w in ["aa", "ab", "ba", "bb"] {
            assert!(recognize(&cnf, &cnf.encode(w).unwrap()), "{w}");
        }
        assert!(!recognize(&cnf, &cnf.encode("a").unwrap()));
        assert!(!recognize(&cnf, &cnf.encode("aba").unwrap()));
    }

    #[test]
    fn empty_word_follows_epsilon_flag() {
        let (_, cnf) = pairs();
        assert!(!recognize(&cnf, &[]));
    }

    #[test]
    fn catalan_tree_counts() {
        // #trees of a^k under S→SS|a is the Catalan number C_{k-1}:
        // 1, 1, 2, 5, 14, 42, ...
        let g = catalan();
        let expected = [1u64, 1, 2, 5, 14, 42, 132];
        for (k, &e) in (1..=7).zip(expected.iter()) {
            let w = vec![Terminal(0); k];
            assert_eq!(ambiguity_of(&g, &w).to_u64(), Some(e), "k={k}");
        }
    }

    #[test]
    fn tree_enumeration_matches_count_for_small_words() {
        let g = catalan();
        let w = vec![Terminal(0); 4];
        let trees = CykChart::build(&g, &w).trees(100);
        assert_eq!(trees.len(), 5);
        // All distinct and all valid with the right yield.
        let gg = g.to_grammar();
        for (i, t) in trees.iter().enumerate() {
            assert!(t.is_valid(&gg));
            assert_eq!(t.yield_terminals(), w);
            for u in &trees[i + 1..] {
                assert_ne!(t, u);
            }
        }
    }

    #[test]
    fn tree_limit_respected() {
        let g = catalan();
        let w = vec![Terminal(0); 5];
        assert_eq!(CykChart::build(&g, &w).trees(3).len(), 3);
    }

    #[test]
    fn chart_introspection() {
        let (_, cnf) = pairs();
        let w = cnf.encode("ab").unwrap();
        let chart = CykChart::build(&cnf, &w);
        assert!(chart.accepted());
        assert!(chart.derives(cnf.start(), 0, 2));
        assert!(!chart.derives(cnf.start(), 0, 1));
        let at0 = chart.nonterminals_at(0, 1);
        assert!(!at0.is_empty());
        assert!(chart.nonterminals_at(0, 3).is_empty()); // out of range
    }

    /// The bitset and scalar kernels must fill identical charts.
    fn assert_charts_equal(g: &CnfGrammar, word: &[Terminal]) {
        let index = CykRuleIndex::new(g);
        let bitset = CykChart::build_with_index(g, &index, word);
        let via_build = CykChart::build(g, word);
        let scalar = CykChart::build_scalar(g, word);
        assert_eq!(bitset.cells, scalar.cells, "word {word:?}");
        assert_eq!(via_build.cells, scalar.cells, "word {word:?}");
        assert_eq!(bitset.accepted(), scalar.accepted());
        assert_eq!(bitset.count_trees(), scalar.count_trees());
        for len in 1..=word.len() {
            for i in 0..=word.len() - len {
                assert_eq!(
                    bitset.nonterminals_at(i, len),
                    scalar.nonterminals_at(i, len),
                    "span ({i}, {len})"
                );
            }
        }
    }

    #[test]
    fn bitset_kernel_matches_scalar_reference() {
        let g = catalan();
        for k in 1..=7 {
            assert_charts_equal(&g, &vec![Terminal(0); k]);
        }
        let (_, cnf) = pairs();
        for w in ["aa", "ab", "ba", "bb", "a", "abab", "bbbb"] {
            assert_charts_equal(&cnf, &cnf.encode(w).unwrap());
        }
        // A grammar with > 64 non-terminals exercises multi-block masks.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let mut prev = s;
        for i in 0..80 {
            let nt = b.nonterminal(&format!("N{i}"));
            // prev → nt nt; leaves alternate over {a, b}.
            b.rule(prev, |r| r.n(nt).n(nt));
            if i % 3 == 0 {
                b.rule(nt, |r| r.t('a'));
            } else {
                b.rule(nt, |r| r.t('b'));
            }
            prev = nt;
        }
        let wide = CnfGrammar::from_grammar(&b.build(s));
        assert!(wide.nonterminal_count() > 64);
        for w in ["aa", "bb", "ab", "aabb", "bbbbbbbb"] {
            assert_charts_equal(&wide, &wide.encode(w).unwrap());
        }
    }

    #[test]
    fn rule_index_reuse_across_words() {
        let (_, cnf) = pairs();
        let index = CykRuleIndex::new(&cnf);
        for w in ["aa", "ab", "ba", "bb"] {
            let word = cnf.encode(w).unwrap();
            assert!(CykChart::build_with_index(&cnf, &index, &word).accepted());
        }
        assert!(!CykChart::build_with_index(&cnf, &index, &cnf.encode("aba").unwrap()).accepted());
    }

    #[test]
    fn traced_fill_matches_untraced_and_counts_work() {
        let g = catalan();
        let w = vec![Terminal(0); 6];
        let untraced = CykChart::build(&g, &w);
        obs::set_enabled(true);
        let charts0 = obs::counter("cyk.charts").value();
        let and0 = obs::counter("cyk.and_ops").value();
        let or0 = obs::counter("cyk.or_ops").value();
        let reused0 = obs::counter("cyk.charts.reused_index").value();
        let traced = CykChart::build(&g, &w);
        let index = CykRuleIndex::new(&g);
        let traced_reuse = CykChart::build_with_index(&g, &index, &w);
        obs::set_enabled(false);
        // Same chart bytes on every path, traced or not.
        assert_eq!(traced.cells, untraced.cells);
        assert_eq!(traced_reuse.cells, untraced.cells);
        assert_eq!(traced.cells, CykChart::build_scalar(&g, &w).cells);
        assert!(obs::counter("cyk.charts").value() >= charts0 + 2);
        assert!(obs::counter("cyk.charts.reused_index").value() > reused0);
        assert!(
            obs::counter("cyk.and_ops").value() > and0,
            "AND ops counted"
        );
        assert!(obs::counter("cyk.or_ops").value() > or0, "OR ops counted");
    }

    #[test]
    fn cyk_agrees_with_fixed_len_parser() {
        use crate::parse_tree::FixedLenParser;
        let (g, cnf) = pairs();
        let p = FixedLenParser::new(&g).unwrap();
        for w in ["aa", "ab", "ba", "bb"] {
            let wg = g.encode(w).unwrap();
            assert_eq!(
                p.count_trees(&wg),
                ambiguity_of(&cnf, &cnf.encode(w).unwrap()),
                "{w}"
            );
        }
    }
}
