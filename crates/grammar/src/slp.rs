//! Straight-line programs (SLPs): grammars generating a single word.
//!
//! The related-work section of the paper contrasts its setting with
//! grammar-based compression, where a CFG represents *one* word. This module
//! provides that substrate: SLP construction, expansion without
//! materialising intermediate strings where possible, and the classic
//! exponential-compression witness `a^{2^k}` with an SLP of size `O(k)` —
//! the same doubling trick the paper's grammars use for their `B_i`
//! non-terminals.

use crate::bignum::BigUint;
use crate::builder::GrammarBuilder;
use crate::cfg::Grammar;
use crate::symbol::{NonTerminal, Symbol};
use std::collections::HashMap;

/// A straight-line program: every non-terminal has exactly one rule and the
/// rule graph is acyclic, so the grammar derives exactly one word.
pub struct Slp {
    g: Grammar,
}

/// Errors from [`Slp::from_grammar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlpError {
    /// Some non-terminal has zero or multiple rules.
    NotSingleRule(NonTerminal),
    /// The rule graph has a cycle.
    Cyclic,
}

impl Slp {
    /// Validate that a grammar is an SLP.
    pub fn from_grammar(g: Grammar) -> Result<Self, SlpError> {
        for i in 0..g.nonterminal_count() {
            let nt = NonTerminal(i as u32);
            if g.rules_for(nt).count() != 1 {
                return Err(SlpError::NotSingleRule(nt));
            }
        }
        // Acyclicity of the raw rule graph (an SLP with a cycle has no
        // finite derivation at all, so trimming-based analyses can't see it).
        // Colours: 0 unvisited, 1 on stack, 2 done.
        let mut colour = vec![0u8; g.nonterminal_count()];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for root in 0..g.nonterminal_count() as u32 {
            if colour[root as usize] != 0 {
                continue;
            }
            colour[root as usize] = 1;
            stack.push((root, 0));
            while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
                let rule = g.rules_for(NonTerminal(v)).next().expect("single rule");
                let next = rule.rhs[*ci..].iter().find_map(|s| s.nonterminal());
                // Advance the cursor past what we just inspected.
                let consumed = rule.rhs[*ci..]
                    .iter()
                    .position(|s| s.nonterminal().is_some())
                    .map(|p| p + 1)
                    .unwrap_or(rule.rhs.len() - *ci);
                *ci += consumed;
                match next {
                    Some(w) => match colour[w.index()] {
                        0 => {
                            colour[w.index()] = 1;
                            stack.push((w.0, 0));
                        }
                        1 => return Err(SlpError::Cyclic),
                        _ => {}
                    },
                    None => {
                        colour[v as usize] = 2;
                        stack.pop();
                    }
                }
            }
        }
        Ok(Slp { g })
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.g
    }

    /// The paper's size measure of the SLP.
    pub fn size(&self) -> usize {
        self.g.size()
    }

    /// Length of the represented word, without expanding it.
    pub fn word_length(&self) -> BigUint {
        let mut memo: HashMap<u32, BigUint> = HashMap::new();
        self.len_of(self.g.start(), &mut memo)
    }

    fn len_of(&self, a: NonTerminal, memo: &mut HashMap<u32, BigUint>) -> BigUint {
        if let Some(v) = memo.get(&a.0) {
            return v.clone();
        }
        let rule = self.g.rules_for(a).next().expect("validated single rule");
        let mut total = BigUint::zero();
        for &s in &rule.rhs {
            match s {
                Symbol::T(_) => total += &BigUint::one(),
                Symbol::N(b) => total += &self.len_of(b, memo),
            }
        }
        memo.insert(a.0, total.clone());
        total
    }

    /// Expand to the represented word. Panics if it does not fit in memory
    /// practically; check [`Slp::word_length`] first.
    pub fn expand(&self) -> String {
        let mut memo: HashMap<u32, String> = HashMap::new();
        self.expand_nt(self.g.start(), &mut memo)
    }

    fn expand_nt(&self, a: NonTerminal, memo: &mut HashMap<u32, String>) -> String {
        if let Some(v) = memo.get(&a.0) {
            return v.clone();
        }
        let rule = self
            .g
            .rules_for(a)
            .next()
            .expect("validated single rule")
            .clone();
        let mut out = String::new();
        for &s in &rule.rhs {
            match s {
                Symbol::T(t) => out.push(self.g.letter(t)),
                Symbol::N(b) => out.push_str(&self.expand_nt(b, memo)),
            }
        }
        memo.insert(a.0, out.clone());
        out
    }

    /// Random access: the character at 0-based position `i` of the word,
    /// in time proportional to the SLP depth — the standard SLP query.
    pub fn char_at(&self, i: u64) -> Option<char> {
        let mut lens: HashMap<u32, BigUint> = HashMap::new();
        let total = self.len_of(self.g.start(), &mut lens);
        if BigUint::from_u64(i) >= total {
            return None;
        }
        let mut cur = self.g.start();
        let mut offset = BigUint::from_u64(i);
        'descend: loop {
            let rule = self.g.rules_for(cur).next().expect("single rule");
            for &s in &rule.rhs {
                let l = match s {
                    Symbol::T(_) => BigUint::one(),
                    Symbol::N(b) => self.len_of(b, &mut lens),
                };
                if offset < l {
                    match s {
                        Symbol::T(t) => return Some(self.g.letter(t)),
                        Symbol::N(b) => {
                            cur = b;
                            continue 'descend;
                        }
                    }
                }
                offset = offset.checked_sub(&l).expect("offset >= l");
            }
            unreachable!("offset within word length");
        }
    }

    /// The trivial SLP `S → w` of size `|w|`.
    pub fn literal(alphabet: &[char], w: &str) -> Self {
        let mut b = GrammarBuilder::new(alphabet);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.ts(w));
        Slp { g: b.build(s) }
    }

    /// An SLP of size `O(k)` for the word `c^(2^k)` — the doubling trick of
    /// the paper's `B_i → B_{i-1} B_{i-1}` rules.
    pub fn power_of_two(c: char, k: u32) -> Self {
        let mut b = GrammarBuilder::new(&[c]);
        let b0 = b.nonterminal("B0");
        b.rule(b0, |r| r.t(c));
        let mut prev = b0;
        for i in 1..=k {
            let bi = b.nonterminal(&format!("B{i}"));
            b.rule(bi, |r| r.n(prev).n(prev));
            prev = bi;
        }
        Slp { g: b.build(prev) }
    }

    /// An SLP for `c^m` of size `O(log m)` via binary decomposition — the
    /// Appendix A idea of assembling a length from powers of two.
    pub fn unary(c: char, m: u64) -> Self {
        assert!(m >= 1, "empty word not representable without ε");
        let mut b = GrammarBuilder::new(&[c]);
        let bits = 64 - m.leading_zeros();
        let mut pow = Vec::new();
        let b0 = b.nonterminal("B0");
        b.rule(b0, |r| r.t(c));
        pow.push(b0);
        for i in 1..bits {
            let bi = b.nonterminal(&format!("B{i}"));
            let p = pow[(i - 1) as usize];
            b.rule(bi, |r| r.n(p).n(p));
            pow.push(bi);
        }
        let s = b.nonterminal("S");
        let picks: Vec<NonTerminal> = (0..bits)
            .filter(|i| m >> i & 1 == 1)
            .map(|i| pow[i as usize])
            .collect();
        b.raw_rule(s, picks.into_iter().map(Symbol::N).collect());
        Slp { g: b.build(s) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let s = Slp::literal(&['a', 'b'], "abba");
        assert_eq!(s.expand(), "abba");
        assert_eq!(s.word_length().to_u64(), Some(4));
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn power_of_two_is_logarithmic() {
        let s = Slp::power_of_two('a', 10);
        assert_eq!(s.word_length().to_u64(), Some(1024));
        assert!(s.size() <= 2 * 10 + 1, "size {}", s.size());
        assert_eq!(s.expand().len(), 1024);
        assert!(s.expand().chars().all(|c| c == 'a'));
    }

    #[test]
    fn huge_word_length_without_expansion() {
        let s = Slp::power_of_two('a', 200);
        assert_eq!(s.word_length(), BigUint::pow2(200));
    }

    #[test]
    fn unary_binary_decomposition() {
        for m in [1u64, 2, 3, 5, 13, 100, 255, 256] {
            let s = Slp::unary('a', m);
            assert_eq!(s.word_length().to_u64(), Some(m), "m={m}");
            assert_eq!(s.expand().len() as u64, m);
            let bits = 64 - m.leading_zeros() as usize;
            assert!(s.size() <= 3 * bits + 2, "m={m} size={}", s.size());
        }
    }

    #[test]
    fn char_at_random_access() {
        let s = Slp::literal(&['a', 'b'], "abbab");
        let expanded: Vec<char> = s.expand().chars().collect();
        for i in 0..5u64 {
            assert_eq!(s.char_at(i), Some(expanded[i as usize]));
        }
        assert_eq!(s.char_at(5), None);

        let p = Slp::power_of_two('a', 30);
        assert_eq!(p.char_at(0), Some('a'));
        assert_eq!(p.char_at((1 << 30) - 1), Some('a'));
        assert_eq!(p.char_at(1 << 30), None);
    }

    #[test]
    fn rejects_non_slp() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.ts("aa"));
        assert!(matches!(
            Slp::from_grammar(b.build(s)),
            Err(SlpError::NotSingleRule(_))
        ));
    }

    #[test]
    fn rejects_cyclic() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        assert!(matches!(
            Slp::from_grammar(b.build(s)),
            Err(SlpError::Cyclic)
        ));
    }

    #[test]
    fn from_grammar_accepts_valid() {
        let s = Slp::power_of_two('a', 3);
        let g = s.grammar().clone();
        let s2 = Slp::from_grammar(g).unwrap();
        assert_eq!(s2.expand(), "a".repeat(8));
    }
}
