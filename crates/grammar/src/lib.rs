//! # ucfg-grammar — context-free grammar substrate
//!
//! The CFG machinery underlying the reproduction of *“A Lower Bound on
//! Unambiguous Context Free Grammars via Communication Complexity”*
//! (Mengel & Vinall-Smeeth, PODS 2025):
//!
//! * [`mod@cfg`] / [`builder`] — grammars `(Σ, N, R, S)` with the paper's size
//!   measure `|G| = Σ|rhs|`;
//! * [`analysis`] — trimming, finiteness, and the Observation 9 uniform
//!   length analysis;
//! * [`normal_form`] — Chomsky normal form with the `≤ |G|²` conversion the
//!   paper assumes w.l.o.g.;
//! * [`cyk`] / [`earley`] / [`parse_tree`] — parsing, parse-tree counting
//!   and enumeration (the notions behind unambiguity);
//! * [`language`] / [`count`] — finite-language materialisation and the
//!   *decision procedure for unambiguity* used to machine-check every
//!   "uCFG" claim in the experiments;
//! * [`annotated`] — the Lemma 10 position-annotation `G → G'` with
//!   `|G'| ≤ n|G|`;
//! * [`sample`] — uniform parse-tree/word sampling (an algorithmic benefit
//!   of unambiguity);
//! * [`slp`] — straight-line programs (grammar-based compression, the
//!   related-work contrast);
//! * [`bignum`] — the arbitrary-precision arithmetic all counting rests on.
//!
//! # Example
//!
//! ```
//! use ucfg_grammar::GrammarBuilder;
//! use ucfg_grammar::count::decide_unambiguous;
//! use ucfg_grammar::language::finite_language;
//!
//! // S → A A ; A → a | b  — all words of length 2, unambiguously.
//! let mut b = GrammarBuilder::new(&['a', 'b']);
//! let s = b.nonterminal("S");
//! let a = b.nonterminal("A");
//! b.rule(s, |r| r.n(a).n(a));
//! b.rule(a, |r| r.t('a'));
//! b.rule(a, |r| r.t('b'));
//! let g = b.build(s);
//!
//! assert_eq!(g.size(), 4);                       // the paper's Σ|rhs| measure
//! assert_eq!(finite_language(&g).unwrap().len(), 4);
//! assert!(decide_unambiguous(&g).is_unambiguous());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod annotated;
pub mod bignum;
pub mod builder;
pub mod cfg;
pub mod count;
pub mod cyk;
pub mod derivation;
pub mod earley;
pub mod enumerate;
pub mod language;
pub mod lint;
pub mod metrics;
pub mod normal_form;
pub mod ops;
pub mod parse_tree;
pub mod sample;
pub mod slp;
pub mod symbol;
pub mod text;
pub mod weighted;

pub use bignum::BigUint;
pub use builder::GrammarBuilder;
pub use cfg::{Grammar, Rule};
pub use normal_form::CnfGrammar;
pub use symbol::{NonTerminal, Symbol, Terminal};
