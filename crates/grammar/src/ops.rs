//! Grammar combinators: union, concatenation, reversal.
//!
//! Closure operations under which sizes add up (plus O(1)) — the building
//! blocks used implicitly throughout the paper's constructions (Example 3
//! assembles `L_n` grammars by concatenation and 2-way union; the CSV
//! grammar of the intro is a union over columns and letters). The tests
//! record the ambiguity facts: disjoint unions of uCFGs stay unambiguous,
//! fixed-length concatenations of uCFGs stay unambiguous, reversal
//! preserves ambiguity degrees exactly.

use crate::cfg::{Grammar, Rule};
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// Merge two alphabets; returns the merged alphabet plus terminal remaps.
fn merge_alphabets(a1: &[char], a2: &[char]) -> (Vec<char>, Vec<Terminal>, Vec<Terminal>) {
    let mut merged: Vec<char> = a1.to_vec();
    for &c in a2 {
        if !merged.contains(&c) {
            merged.push(c);
        }
    }
    let map = |alpha: &[char]| {
        alpha
            .iter()
            .map(|c| Terminal(merged.iter().position(|x| x == c).unwrap() as u16))
            .collect::<Vec<_>>()
    };
    let m1 = map(a1);
    let m2 = map(a2);
    (merged, m1, m2)
}

fn remap_rules(g: &Grammar, term_map: &[Terminal], nt_offset: u32, out: &mut Vec<Rule>) {
    for r in g.rules() {
        let rhs = r
            .rhs
            .iter()
            .map(|&s| match s {
                Symbol::T(t) => Symbol::T(term_map[t.index()]),
                Symbol::N(n) => Symbol::N(NonTerminal(n.0 + nt_offset)),
            })
            .collect();
        out.push(Rule {
            lhs: NonTerminal(r.lhs.0 + nt_offset),
            rhs,
        });
    }
}

/// `L(g1) ∪ L(g2)`, via a fresh start with two unit rules; size
/// `|g1| + |g2| + 2`.
pub fn union(g1: &Grammar, g2: &Grammar) -> Grammar {
    let (alphabet, m1, m2) = merge_alphabets(g1.alphabet(), g2.alphabet());
    let mut names = vec!["S∪".to_string()];
    let off1 = names.len() as u32;
    names.extend(
        (0..g1.nonterminal_count()).map(|i| format!("L.{}", g1.name(NonTerminal(i as u32)))),
    );
    let off2 = names.len() as u32;
    names.extend(
        (0..g2.nonterminal_count()).map(|i| format!("R.{}", g2.name(NonTerminal(i as u32)))),
    );
    let mut rules = Vec::with_capacity(g1.rule_count() + g2.rule_count() + 2);
    rules.push(Rule {
        lhs: NonTerminal(0),
        rhs: vec![Symbol::N(NonTerminal(g1.start().0 + off1))],
    });
    rules.push(Rule {
        lhs: NonTerminal(0),
        rhs: vec![Symbol::N(NonTerminal(g2.start().0 + off2))],
    });
    remap_rules(g1, &m1, off1, &mut rules);
    remap_rules(g2, &m2, off2, &mut rules);
    Grammar::from_parts(alphabet, names, rules, NonTerminal(0))
}

/// `L(g1) · L(g2)`, via a fresh start `S → S₁ S₂`; size `|g1| + |g2| + 2`.
pub fn concat(g1: &Grammar, g2: &Grammar) -> Grammar {
    let (alphabet, m1, m2) = merge_alphabets(g1.alphabet(), g2.alphabet());
    let mut names = vec!["S·".to_string()];
    let off1 = names.len() as u32;
    names.extend(
        (0..g1.nonterminal_count()).map(|i| format!("L.{}", g1.name(NonTerminal(i as u32)))),
    );
    let off2 = names.len() as u32;
    names.extend(
        (0..g2.nonterminal_count()).map(|i| format!("R.{}", g2.name(NonTerminal(i as u32)))),
    );
    let mut rules = Vec::with_capacity(g1.rule_count() + g2.rule_count() + 1);
    rules.push(Rule {
        lhs: NonTerminal(0),
        rhs: vec![
            Symbol::N(NonTerminal(g1.start().0 + off1)),
            Symbol::N(NonTerminal(g2.start().0 + off2)),
        ],
    });
    remap_rules(g1, &m1, off1, &mut rules);
    remap_rules(g2, &m2, off2, &mut rules);
    Grammar::from_parts(alphabet, names, rules, NonTerminal(0))
}

/// The mirror language: every rule body reversed; size unchanged, and
/// parse trees biject (mirror), so ambiguity degrees are preserved.
pub fn reverse(g: &Grammar) -> Grammar {
    let rules = g
        .rules()
        .iter()
        .map(|r| Rule {
            lhs: r.lhs,
            rhs: r.rhs.iter().rev().copied().collect(),
        })
        .collect();
    let names = (0..g.nonterminal_count())
        .map(|i| g.name(NonTerminal(i as u32)).to_string())
        .collect();
    Grammar::from_parts(g.alphabet().to_vec(), names, rules, g.start())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::count::{decide_unambiguous, TreeCounter};
    use crate::language::finite_language;
    use std::collections::BTreeSet;

    fn literal(words: &[&str], alphabet: &[char]) -> Grammar {
        let mut b = GrammarBuilder::new(alphabet);
        let s = b.nonterminal("S");
        for w in words {
            b.rule(s, |r| r.ts(w));
        }
        b.build(s)
    }

    #[test]
    fn union_language() {
        let g1 = literal(&["aa", "ab"], &['a', 'b']);
        let g2 = literal(&["bc"], &['b', 'c']);
        let u = union(&g1, &g2);
        let lang = finite_language(&u).unwrap();
        let expect: BTreeSet<String> = ["aa", "ab", "bc"].iter().map(|s| s.to_string()).collect();
        assert_eq!(lang, expect);
        assert_eq!(u.size(), g1.size() + g2.size() + 2);
    }

    #[test]
    fn union_of_disjoint_ucfgs_is_unambiguous() {
        let g1 = literal(&["aa"], &['a', 'b']);
        let g2 = literal(&["bb"], &['a', 'b']);
        assert!(decide_unambiguous(&union(&g1, &g2)).is_unambiguous());
    }

    #[test]
    fn union_of_overlapping_ucfgs_is_ambiguous() {
        // The paper's central difficulty: non-disjoint unions break
        // unambiguity.
        let g1 = literal(&["aa", "ab"], &['a', 'b']);
        let g2 = literal(&["aa", "bb"], &['a', 'b']);
        match decide_unambiguous(&union(&g1, &g2)) {
            crate::count::UnambiguityVerdict::Ambiguous { witness, .. } => {
                assert_eq!(witness, "aa");
            }
            v => panic!("expected ambiguity, got {v:?}"),
        }
    }

    #[test]
    fn concat_language_and_ambiguity() {
        let g1 = literal(&["a", "b"], &['a', 'b']);
        let g2 = literal(&["c"], &['c']);
        let c = concat(&g1, &g2);
        let lang = finite_language(&c).unwrap();
        let expect: BTreeSet<String> = ["ac", "bc"].iter().map(|s| s.to_string()).collect();
        assert_eq!(lang, expect);
        // Fixed-length factors → unambiguous concatenation.
        assert!(decide_unambiguous(&c).is_unambiguous());
    }

    #[test]
    fn concat_with_ambiguous_split_is_ambiguous() {
        // {ε-free} L1 = {a, aa}, L2 = {a, aa}: "aaa" splits two ways.
        let g1 = literal(&["a", "aa"], &['a']);
        let c = concat(&g1, &g1);
        let counter = TreeCounter::new(&c).unwrap();
        assert_eq!(counter.count_str("aaa").to_u64(), Some(2));
    }

    #[test]
    fn reverse_mirrors_language_and_preserves_degrees() {
        let g = literal(&["ab", "abb"], &['a', 'b']);
        let r = reverse(&g);
        let lang = finite_language(&r).unwrap();
        let expect: BTreeSet<String> = ["ba", "bba"].iter().map(|s| s.to_string()).collect();
        assert_eq!(lang, expect);
        assert_eq!(r.size(), g.size());
        assert!(decide_unambiguous(&r).is_unambiguous());

        // Degrees preserved on an ambiguous grammar.
        let amb = {
            let mut b = GrammarBuilder::new(&['a', 'b']);
            let s = b.nonterminal("S");
            let x = b.nonterminal("X");
            b.rule(s, |r| r.n(x).t('b'));
            b.rule(s, |r| r.t('a').t('b'));
            b.rule(x, |r| r.t('a'));
            b.build(s)
        };
        let rev = reverse(&amb);
        let c1 = TreeCounter::new(&amb).unwrap();
        let c2 = TreeCounter::new(&rev).unwrap();
        assert_eq!(c1.count_str("ab"), c2.count_str("ba"));
        assert_eq!(c1.count_str("ab").to_u64(), Some(2));
    }

    #[test]
    fn double_reverse_is_identity_language() {
        let g = literal(&["abc", "cba", "aaa"], &['a', 'b', 'c']);
        let rr = reverse(&reverse(&g));
        assert_eq!(finite_language(&rr), finite_language(&g));
    }

    #[test]
    fn alphabet_merging() {
        let g1 = literal(&["a"], &['a']);
        let g2 = literal(&["z"], &['z']);
        let u = union(&g1, &g2);
        assert_eq!(u.alphabet().len(), 2);
        let lang = finite_language(&u).unwrap();
        assert!(lang.contains("a") && lang.contains("z"));
    }
}
