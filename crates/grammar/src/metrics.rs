//! Grammar metrics and structural statistics.
//!
//! Size is the paper's headline measure, but comparing representations
//! fairly needs the rest of the profile: rule counts (the Bucher et al.
//! measure the related-work section contrasts), fan-outs, parse-tree depth
//! ranges, and per-non-terminal usage. These power the report tables and
//! give library users one-call introspection.

use crate::analysis::{trim, uniform_lengths};
use crate::cfg::Grammar;
use crate::symbol::{NonTerminal, Symbol};

/// A structural profile of a grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct GrammarMetrics {
    /// The paper's size measure `Σ |rhs|`.
    pub size: usize,
    /// Number of rules (the Bucher–Maurer–Culík–Wotschke measure).
    pub rule_count: usize,
    /// Number of non-terminals.
    pub nonterminal_count: usize,
    /// Number of non-terminals that survive trimming.
    pub useful_nonterminals: usize,
    /// Longest rule body.
    pub max_rule_len: usize,
    /// Mean rule body length (`size / rule_count`).
    pub mean_rule_len: f64,
    /// Maximum number of alternative rules of one non-terminal.
    pub max_fanout: usize,
    /// Minimum parse-tree depth of any word (`None` if the language is
    /// empty).
    pub min_tree_depth: Option<usize>,
    /// Whether the (useful part of the) grammar generates a single word
    /// length per non-terminal (fixed-length language shape).
    pub fixed_length: bool,
}

/// Compute the profile.
pub fn metrics(g: &Grammar) -> GrammarMetrics {
    let trimmed = trim(g);
    let size = g.size();
    let rule_count = g.rule_count();
    let max_rule_len = g.rules().iter().map(|r| r.rhs.len()).max().unwrap_or(0);
    let mean_rule_len = if rule_count == 0 {
        0.0
    } else {
        size as f64 / rule_count as f64
    };
    let max_fanout = (0..g.nonterminal_count() as u32)
        .map(|i| g.rules_for(NonTerminal(i)).count())
        .max()
        .unwrap_or(0);
    GrammarMetrics {
        size,
        rule_count,
        nonterminal_count: g.nonterminal_count(),
        useful_nonterminals: if trimmed.rule_count() == 0 {
            0
        } else {
            trimmed.nonterminal_count()
        },
        max_rule_len,
        mean_rule_len,
        max_fanout,
        min_tree_depth: min_tree_depth(&trimmed),
        fixed_length: uniform_lengths(g).is_some(),
    }
}

/// Minimum parse-tree depth over all derivable words: fixpoint
/// `depth(A) = 1 + min over rules of max over body non-terminals`.
fn min_tree_depth(g: &Grammar) -> Option<usize> {
    let n = g.nonterminal_count();
    let mut depth: Vec<Option<usize>> = vec![None; n];
    loop {
        let mut changed = false;
        for r in g.rules() {
            let mut worst = 0usize;
            let mut known = true;
            for s in &r.rhs {
                if let Symbol::N(m) = s {
                    match depth[m.index()] {
                        Some(d) => worst = worst.max(d),
                        None => {
                            known = false;
                            break;
                        }
                    }
                }
            }
            if known {
                let cand = 1 + worst;
                if depth[r.lhs.index()].is_none_or(|cur| cand < cur) {
                    depth[r.lhs.index()] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            return depth[g.start().index()];
        }
    }
}

/// Per-non-terminal rule counts, sorted descending — the "who dominates
/// the size" histogram used in the report.
pub fn fanout_histogram(g: &Grammar) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = (0..g.nonterminal_count() as u32)
        .map(|i| {
            let nt = NonTerminal(i);
            (g.name(nt).to_string(), g.rules_for(nt).count())
        })
        .filter(|(_, c)| *c > 0)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn pairs() -> Grammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn basic_metrics() {
        let m = metrics(&pairs());
        assert_eq!(m.size, 4);
        assert_eq!(m.rule_count, 3);
        assert_eq!(m.nonterminal_count, 2);
        assert_eq!(m.useful_nonterminals, 2);
        assert_eq!(m.max_rule_len, 2);
        assert!((m.mean_rule_len - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max_fanout, 2);
        assert_eq!(m.min_tree_depth, Some(2));
        assert!(m.fixed_length);
    }

    #[test]
    fn min_depth_with_recursion() {
        // S → S S | a: shallowest tree is the single-leaf one.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).n(s));
        b.rule(s, |r| r.t('a'));
        let m = metrics(&b.build(s));
        assert_eq!(m.min_tree_depth, Some(1));
        assert!(!m.fixed_length);
    }

    #[test]
    fn empty_language_has_no_depth() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).t('a'));
        let m = metrics(&b.build(s));
        assert_eq!(m.min_tree_depth, None);
        assert_eq!(m.useful_nonterminals, 0);
    }

    #[test]
    fn useless_nonterminals_counted() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let dead = b.nonterminal("Dead");
        b.rule(s, |r| r.t('a'));
        b.rule(dead, |r| r.t('a'));
        let m = metrics(&b.build(s));
        assert_eq!(m.nonterminal_count, 2);
        assert_eq!(m.useful_nonterminals, 1);
    }

    #[test]
    fn fanout_histogram_orders() {
        let h = fanout_histogram(&pairs());
        assert_eq!(h[0], ("A".to_string(), 2));
        assert_eq!(h[1], ("S".to_string(), 1));
    }

    #[test]
    fn paper_grammar_profiles() {
        // Sanity: the Example 3 grammar's fan-out is 2 everywhere.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let a1 = b.nonterminal("A1");
        let a0 = b.nonterminal("A0");
        let b1 = b.nonterminal("B1");
        let b0 = b.nonterminal("B0");
        b.rule(a1, |r| r.n(b0).n(a0));
        b.rule(a1, |r| r.n(a0).n(b0));
        b.rule(a0, |r| r.n(b0).t('a').n(b1).t('a'));
        b.rule(a0, |r| r.t('a').n(b1).t('a').n(b0));
        b.rule(b1, |r| r.n(b0).n(b0));
        b.rule(b0, |r| r.t('a'));
        b.rule(b0, |r| r.t('b'));
        let m = metrics(&b.build(a1));
        assert_eq!(m.max_fanout, 2);
        assert_eq!(m.max_rule_len, 4);
        assert!(m.fixed_length);
    }
}
