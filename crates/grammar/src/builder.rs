//! Ergonomic, name-based grammar construction.
//!
//! The paper's grammars are all defined by families of named non-terminals
//! (`A_i`, `B_i`, `C_v`, …); [`GrammarBuilder`] lets construction code read
//! like the paper: intern a name once, then add rules with a small
//! rhs-building closure.

use crate::cfg::{Grammar, Rule};
use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::HashMap;

/// Incremental builder for [`Grammar`].
pub struct GrammarBuilder {
    alphabet: Vec<char>,
    terminal_ids: HashMap<char, Terminal>,
    names: Vec<String>,
    ids: HashMap<String, NonTerminal>,
    rules: Vec<Rule>,
}

/// Builds one rule body; obtained from [`GrammarBuilder::rule`].
pub struct RhsBuilder<'a> {
    builder: &'a GrammarBuilder,
    symbols: Vec<Symbol>,
}

impl<'a> RhsBuilder<'a> {
    /// Append a terminal by character. Panics if not in the alphabet.
    pub fn t(mut self, c: char) -> Self {
        let t = *self
            .builder
            .terminal_ids
            .get(&c)
            .unwrap_or_else(|| panic!("terminal {c:?} not in alphabet"));
        self.symbols.push(Symbol::T(t));
        self
    }

    /// Append every character of `s` as a terminal.
    pub fn ts(mut self, s: &str) -> Self {
        for c in s.chars() {
            self = self.t(c);
        }
        self
    }

    /// Append a non-terminal.
    pub fn n(mut self, nt: NonTerminal) -> Self {
        self.symbols.push(Symbol::N(nt));
        self
    }

    /// Append an arbitrary symbol.
    pub fn sym(mut self, s: Symbol) -> Self {
        self.symbols.push(s);
        self
    }

    /// Append a sequence of symbols.
    pub fn syms(mut self, ss: &[Symbol]) -> Self {
        self.symbols.extend_from_slice(ss);
        self
    }
}

impl GrammarBuilder {
    /// Start a builder over the given alphabet (order defines terminal ids).
    pub fn new(alphabet: &[char]) -> Self {
        let terminal_ids = alphabet
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, Terminal(i as u16)))
            .collect();
        GrammarBuilder {
            alphabet: alphabet.to_vec(),
            terminal_ids,
            names: Vec::new(),
            ids: HashMap::new(),
            rules: Vec::new(),
        }
    }

    /// Intern a non-terminal by name (idempotent).
    pub fn nonterminal(&mut self, name: &str) -> NonTerminal {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = NonTerminal(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The terminal id of a character. Panics if not in the alphabet.
    pub fn terminal(&self, c: char) -> Terminal {
        *self
            .terminal_ids
            .get(&c)
            .unwrap_or_else(|| panic!("terminal {c:?} not in alphabet"))
    }

    /// Add the rule `lhs → <body built by f>`.
    pub fn rule(&mut self, lhs: NonTerminal, f: impl FnOnce(RhsBuilder) -> RhsBuilder) {
        let rhs = f(RhsBuilder {
            builder: self,
            symbols: Vec::new(),
        })
        .symbols;
        self.rules.push(Rule { lhs, rhs });
    }

    /// Add the ε-rule `lhs → ε`.
    pub fn epsilon_rule(&mut self, lhs: NonTerminal) {
        self.rules.push(Rule {
            lhs,
            rhs: Vec::new(),
        });
    }

    /// Add a rule with a pre-built body.
    pub fn raw_rule(&mut self, lhs: NonTerminal, rhs: Vec<Symbol>) {
        self.rules.push(Rule { lhs, rhs });
    }

    /// Number of rules added so far.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Finish, designating `start`.
    pub fn build(self, start: NonTerminal) -> Grammar {
        let g = Grammar::from_parts(self.alphabet, self.names, self.rules, start);
        debug_assert!(g.validate().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_example3_shape() {
        // The Example 3 grammar for n = 1: start A_1.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let a1 = b.nonterminal("A1");
        let a0 = b.nonterminal("A0");
        let b1 = b.nonterminal("B1");
        let b0 = b.nonterminal("B0");
        b.rule(a1, |r| r.n(b0).n(a0));
        b.rule(a1, |r| r.n(a0).n(b0));
        b.rule(a0, |r| r.n(b0).t('a').n(b1).t('a'));
        b.rule(a0, |r| r.t('a').n(b1).t('a').n(b0));
        b.rule(b1, |r| r.n(b0).n(b0));
        b.rule(b0, |r| r.t('a'));
        b.rule(b0, |r| r.t('b'));
        let g = b.build(a1);
        assert_eq!(g.size(), 2 + 2 + 4 + 4 + 2 + 1 + 1);
        assert_eq!(g.nonterminal_count(), 4);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut b = GrammarBuilder::new(&['a']);
        let x = b.nonterminal("X");
        let y = b.nonterminal("X");
        assert_eq!(x, y);
        assert_eq!(b.nonterminal("Y"), NonTerminal(1));
    }

    #[test]
    fn ts_appends_each_char() {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.ts("abba"));
        let g = b.build(s);
        assert_eq!(g.rules()[0].rhs.len(), 4);
        assert_eq!(g.size(), 4);
    }

    #[test]
    fn epsilon_rule_has_size_zero() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.epsilon_rule(s);
        let g = b.build(s);
        assert_eq!(g.size(), 0);
        assert_eq!(g.rule_count(), 1);
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn unknown_terminal_panics() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('z'));
    }
}
