//! Counting derivations and deciding unambiguity.
//!
//! A CFG is *unambiguous* when every word of its language has exactly one
//! parse tree. For the finite languages of the paper this is decidable, and
//! everything the experiments claim about "uCFGs" is machine-checked through
//! this module rather than trusted.
//!
//! Two routes are provided:
//! * [`TreeCounter`] — exact per-word parse-tree counts on an arbitrary
//!   grammar with acyclic derivations (which every grammar of a finite
//!   language has, unless it has non-growing cycles — those are detected and
//!   reported as infinite ambiguity);
//! * length-indexed aggregate counting on CNF
//!   ([`derivation_counts_by_length`]), which decides unambiguity without
//!   per-word work via `Σ_w #trees(w) = #words ⇔ unambiguous`.

use crate::analysis::{has_derivation_cycle, is_language_finite, trim};
use crate::bignum::BigUint;
use crate::cfg::Grammar;
use crate::language::{finite_language, max_word_length, word_counts_by_length};
use crate::normal_form::CnfGrammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::HashMap;

/// Outcome of [`decide_unambiguous`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnambiguityVerdict {
    /// Every word has exactly one parse tree.
    Unambiguous,
    /// Some word has ≥ 2 parse trees; a witness and its degree.
    Ambiguous {
        /// A word with more than one parse tree.
        witness: String,
        /// Its exact number of parse trees.
        degree: BigUint,
    },
    /// A non-growing derivation cycle gives some word infinitely many trees.
    InfinitelyAmbiguous,
    /// The language is infinite; this decision procedure does not apply.
    InfiniteLanguage,
}

impl UnambiguityVerdict {
    /// True only for the clean `Unambiguous` verdict.
    pub fn is_unambiguous(&self) -> bool {
        matches!(self, UnambiguityVerdict::Unambiguous)
    }
}

/// Exact parse-tree counting on a general grammar.
///
/// Requires acyclic derivations (no non-terminal can appear properly nested
/// below itself with the same yield); construction fails otherwise.
pub struct TreeCounter {
    g: Grammar,
    /// `possible_lens[A]` — the set of word lengths derivable from A.
    possible_lens: Vec<Vec<bool>>,
    max_len: usize,
}

/// Error from [`TreeCounter::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterError {
    /// The grammar has a derivation cycle (infinite ambiguity).
    DerivationCycle,
    /// The language is infinite.
    InfiniteLanguage,
}

impl TreeCounter {
    /// Build a counter for a finite-language, derivation-acyclic grammar.
    pub fn new(g: &Grammar) -> Result<Self, CounterError> {
        let g = trim(g);
        if !is_language_finite(&g) {
            return Err(CounterError::InfiniteLanguage);
        }
        if has_derivation_cycle(&g) {
            return Err(CounterError::DerivationCycle);
        }
        let max_len = max_word_length(&g).expect("finite language has a max length");
        // Possible length sets per non-terminal, by fixpoint.
        let n = g.nonterminal_count();
        let mut lens = vec![vec![false; max_len + 1]; n];
        let mut changed = true;
        while changed {
            changed = false;
            for r in g.rules() {
                // Convolve the length sets of the body.
                let mut acc = vec![false; max_len + 1];
                acc[0] = true;
                for s in &r.rhs {
                    let mut next = vec![false; max_len + 1];
                    match s {
                        Symbol::T(_) => {
                            for l in 0..max_len {
                                if acc[l] {
                                    next[l + 1] = true;
                                }
                            }
                        }
                        Symbol::N(m) => {
                            for l in 0..=max_len {
                                if !acc[l] {
                                    continue;
                                }
                                for (bl, &ok) in lens[m.index()].iter().enumerate() {
                                    if ok && l + bl <= max_len {
                                        next[l + bl] = true;
                                    }
                                }
                            }
                        }
                    }
                    acc = next;
                }
                for (l, &ok) in acc.iter().enumerate() {
                    if ok && !lens[r.lhs.index()][l] {
                        lens[r.lhs.index()][l] = true;
                        changed = true;
                    }
                }
            }
        }
        Ok(TreeCounter {
            g,
            possible_lens: lens,
            max_len,
        })
    }

    /// The trimmed grammar the counter operates on.
    pub fn grammar(&self) -> &Grammar {
        &self.g
    }

    /// Number of parse trees of `word` from the start symbol.
    pub fn count(&self, word: &[Terminal]) -> BigUint {
        if word.len() > self.max_len {
            return BigUint::zero();
        }
        let mut memo = HashMap::new();
        self.count_nt(self.g.start(), word, 0, word.len(), &mut memo)
    }

    /// Count for a `&str` word.
    pub fn count_str(&self, w: &str) -> BigUint {
        match self.g.encode(w) {
            Some(word) => self.count(&word),
            None => BigUint::zero(),
        }
    }

    fn count_nt(
        &self,
        a: NonTerminal,
        word: &[Terminal],
        pos: usize,
        len: usize,
        memo: &mut HashMap<(u32, usize, usize), BigUint>,
    ) -> BigUint {
        if len > self.max_len || !self.possible_lens[a.index()][len] {
            return BigUint::zero();
        }
        if let Some(c) = memo.get(&(a.0, pos, len)) {
            return c.clone();
        }
        let mut total = BigUint::zero();
        for r in self.g.rules_for(a) {
            total += &self.count_body(&r.rhs, 0, word, pos, len, memo);
        }
        memo.insert((a.0, pos, len), total.clone());
        total
    }

    /// Count derivations of `word[pos .. pos+len]` from `rhs[idx..]`.
    fn count_body(
        &self,
        rhs: &[Symbol],
        idx: usize,
        word: &[Terminal],
        pos: usize,
        len: usize,
        memo: &mut HashMap<(u32, usize, usize), BigUint>,
    ) -> BigUint {
        if idx == rhs.len() {
            return if len == 0 {
                BigUint::one()
            } else {
                BigUint::zero()
            };
        }
        match rhs[idx] {
            Symbol::T(t) => {
                if len >= 1 && word[pos] == t {
                    self.count_body(rhs, idx + 1, word, pos + 1, len - 1, memo)
                } else {
                    BigUint::zero()
                }
            }
            Symbol::N(b) => {
                let mut total = BigUint::zero();
                for bl in 0..=len {
                    if !self.possible_lens[b.index()][bl] {
                        continue;
                    }
                    let head = self.count_nt(b, word, pos, bl, memo);
                    if head.is_zero() {
                        continue;
                    }
                    let tail = self.count_body(rhs, idx + 1, word, pos + bl, len - bl, memo);
                    total += &(&head * &tail);
                }
                total
            }
        }
    }
}

/// Decide unambiguity of an arbitrary grammar with a finite language by
/// exhaustive per-word tree counting.
pub fn decide_unambiguous(g: &Grammar) -> UnambiguityVerdict {
    let counter = match TreeCounter::new(g) {
        Ok(c) => c,
        Err(CounterError::InfiniteLanguage) => return UnambiguityVerdict::InfiniteLanguage,
        Err(CounterError::DerivationCycle) => return UnambiguityVerdict::InfinitelyAmbiguous,
    };
    let lang = finite_language(counter.grammar()).expect("finite by construction");
    for w in lang {
        let degree = counter.count_str(&w);
        debug_assert!(!degree.is_zero(), "{w} is in L(G) but has no tree");
        if !degree.is_one() {
            return UnambiguityVerdict::Ambiguous { witness: w, degree };
        }
    }
    UnambiguityVerdict::Unambiguous
}

/// Per-word ambiguity degrees of the whole (finite) language, sorted by
/// word.
pub fn ambiguity_profile(g: &Grammar) -> Result<Vec<(String, BigUint)>, CounterError> {
    let counter = TreeCounter::new(g)?;
    let lang = finite_language(counter.grammar()).expect("finite by construction");
    Ok(lang
        .into_iter()
        .map(|w| {
            let c = counter.count_str(&w);
            (w, c)
        })
        .collect())
}

/// `table[A][l-1]` = number of parse trees deriving some word of length
/// `l ∈ 1..=max_len` from non-terminal `A` (the DP behind
/// [`derivation_counts_by_length`] and the tree sampler).
pub fn tree_count_table(g: &CnfGrammar, max_len: usize) -> Vec<Vec<BigUint>> {
    let nts = g.nonterminal_count();
    let mut t: Vec<Vec<BigUint>> = vec![vec![BigUint::zero(); max_len]; nts];
    if max_len >= 1 {
        for &(a, _) in g.term_rules() {
            t[a.index()][0] += &BigUint::one();
        }
        for l in 2..=max_len {
            for &(a, b, c) in g.bin_rules() {
                let mut acc = BigUint::zero();
                for k in 1..l {
                    let lb = &t[b.index()][k - 1];
                    let rc = &t[c.index()][l - k - 1];
                    if !lb.is_zero() && !rc.is_zero() {
                        acc += &(lb * rc);
                    }
                }
                if !acc.is_zero() {
                    let cell = &mut t[a.index()][l - 1];
                    *cell += &acc;
                }
            }
        }
    }
    t
}

/// `counts[l]` = total number of parse trees of words of length `l` from the
/// start symbol of a CNF grammar (ε contributes 1 iff accepted).
pub fn derivation_counts_by_length(g: &CnfGrammar, max_len: usize) -> Vec<BigUint> {
    let t = tree_count_table(g, max_len);
    let mut out = Vec::with_capacity(max_len + 1);
    out.push(if g.accepts_epsilon() {
        BigUint::one()
    } else {
        BigUint::zero()
    });
    for l in 1..=max_len {
        out.push(t[g.start().index()][l - 1].clone());
    }
    out
}

/// Fast aggregate unambiguity check for a CNF grammar of a finite language:
/// unambiguous ⇔ for every length, Σ_w #trees(w) equals the number of
/// distinct words.
pub fn is_unambiguous_cnf(g: &CnfGrammar, max_len: usize) -> bool {
    let trees = derivation_counts_by_length(g, max_len);
    let words = word_counts_by_length(g, max_len);
    trees
        .iter()
        .zip(words.iter())
        .all(|(t, &w)| *t == BigUint::from_u64(w as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn ambiguous_aa() -> Grammar {
        // S → A B | B A ; A → a ; B → a : "aa" has 2 trees.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.n(a).n(bb));
        b.rule(s, |r| r.n(bb).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(bb, |r| r.t('a'));
        b.build(s)
    }

    fn unambiguous_pairs() -> Grammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn counts_on_general_grammar() {
        let g = ambiguous_aa();
        let c = TreeCounter::new(&g).unwrap();
        assert_eq!(c.count_str("aa").to_u64(), Some(2));
        assert_eq!(c.count_str("a").to_u64(), Some(0));
        assert_eq!(c.count_str("zz").to_u64(), Some(0));
    }

    #[test]
    fn counts_with_epsilon_and_units() {
        // S → A S' | a ; S' → ε ; mixed-length: L = {a}. One tree per route.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let sp = b.nonterminal("Sp");
        b.rule(s, |r| r.n(a).n(sp));
        b.rule(s, |r| r.t('a'));
        b.rule(a, |r| r.t('a'));
        b.epsilon_rule(sp);
        let g = b.build(s);
        let c = TreeCounter::new(&g).unwrap();
        // "a" derives via S → a and via S → A Sp: 2 trees.
        assert_eq!(c.count_str("a").to_u64(), Some(2));
    }

    #[test]
    fn verdicts() {
        assert!(decide_unambiguous(&unambiguous_pairs()).is_unambiguous());
        match decide_unambiguous(&ambiguous_aa()) {
            UnambiguityVerdict::Ambiguous { witness, degree } => {
                assert_eq!(witness, "aa");
                assert_eq!(degree.to_u64(), Some(2));
            }
            v => panic!("expected ambiguous, got {v:?}"),
        }
    }

    #[test]
    fn infinite_ambiguity_detected() {
        // S → A, A → S | a: unit cycle.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(s));
        b.rule(a, |r| r.t('a'));
        assert_eq!(
            decide_unambiguous(&b.build(s)),
            UnambiguityVerdict::InfinitelyAmbiguous
        );
    }

    #[test]
    fn infinite_language_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        assert_eq!(
            decide_unambiguous(&b.build(s)),
            UnambiguityVerdict::InfiniteLanguage
        );
    }

    #[test]
    fn ambiguity_profile_lists_degrees() {
        let profile = ambiguity_profile(&ambiguous_aa()).unwrap();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, "aa");
        assert_eq!(profile[0].1.to_u64(), Some(2));
    }

    #[test]
    fn aggregate_cnf_check_agrees() {
        let amb = CnfGrammar::from_grammar(&ambiguous_aa());
        let unamb = CnfGrammar::from_grammar(&unambiguous_pairs());
        assert!(!is_unambiguous_cnf(&amb, 2));
        assert!(is_unambiguous_cnf(&unamb, 2));
    }

    #[test]
    fn derivation_counts_match_catalan() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).n(s));
        b.rule(s, |r| r.t('a'));
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        let counts = derivation_counts_by_length(&cnf, 6);
        let expect = [0u64, 1, 1, 2, 5, 14, 42];
        for (l, &e) in expect.iter().enumerate() {
            assert_eq!(counts[l].to_u64(), Some(e), "length {l}");
        }
    }

    #[test]
    fn counter_agrees_with_cyk_on_cnf() {
        use crate::cyk::ambiguity_of;
        let g = ambiguous_aa();
        let cnf = CnfGrammar::from_grammar(&g);
        let c = TreeCounter::new(&g).unwrap();
        let w = cnf.encode("aa").unwrap();
        assert_eq!(c.count_str("aa"), ambiguity_of(&cnf, &w));
    }
}
