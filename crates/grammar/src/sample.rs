//! Uniform random sampling of parse trees from a CNF grammar.
//!
//! The sampler draws a parse tree of a given length uniformly at random
//! among all parse trees of that length, by descending the counting DP of
//! [`tree_count_table`] with
//! weight-proportional choices. For an *unambiguous* grammar parse trees
//! biject with words, so this is uniform sampling of words — one of the
//! algorithmic advantages of uCFGs the paper's introduction highlights.

use crate::bignum::BigUint;
use crate::count::tree_count_table;
use crate::normal_form::CnfGrammar;
use crate::parse_tree::{Child, ParseTree};
use crate::symbol::NonTerminal;
use ucfg_support::rng::Rng;

/// A prepared sampler over a CNF grammar.
pub struct TreeSampler<'g> {
    g: &'g CnfGrammar,
    /// `counts[A][l-1]` = #trees of length `l` from `A`.
    counts: Vec<Vec<BigUint>>,
    max_len: usize,
}

impl<'g> TreeSampler<'g> {
    /// Precompute counts up to `max_len`.
    pub fn new(g: &'g CnfGrammar, max_len: usize) -> Self {
        TreeSampler {
            g,
            counts: tree_count_table(g, max_len),
            max_len,
        }
    }

    /// Number of parse trees of length `len` from the start symbol.
    pub fn tree_count(&self, len: usize) -> BigUint {
        if len == 0 || len > self.max_len {
            return BigUint::zero();
        }
        self.counts[self.g.start().index()][len - 1].clone()
    }

    /// Sample a uniform parse tree of the given length, or `None` if there
    /// is none.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Option<ParseTree> {
        if len == 0 || len > self.max_len {
            return None;
        }
        if self.counts[self.g.start().index()][len - 1].is_zero() {
            return None;
        }
        Some(self.sample_at(self.g.start(), len, rng))
    }

    /// Sample a uniform word of the given length (uniform over parse trees;
    /// uniform over words exactly when the grammar is unambiguous).
    pub fn sample_word<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Option<String> {
        self.sample(len, rng).map(|t| {
            let term = t.yield_terminals();
            term.iter().map(|&x| self.g.letter(x)).collect()
        })
    }

    fn sample_at<R: Rng + ?Sized>(&self, a: NonTerminal, len: usize, rng: &mut R) -> ParseTree {
        if len == 1 {
            // Uniform over matching terminal rules (each counts 1).
            let opts = self.g.terms_of(a);
            debug_assert!(!opts.is_empty());
            let pick = rng.random_range(0..opts.len());
            return ParseTree {
                nt: a,
                children: vec![Child::Leaf(opts[pick])],
            };
        }
        let total = &self.counts[a.index()][len - 1];
        let mut target = rand_below(total, rng);
        for &(b, c) in self.g.bins_of(a) {
            for k in 1..len {
                let w = &self.counts[b.index()][k - 1] * &self.counts[c.index()][len - k - 1];
                if w.is_zero() {
                    continue;
                }
                if target < w {
                    let left = self.sample_at(b, k, rng);
                    let right = self.sample_at(c, len - k, rng);
                    return ParseTree {
                        nt: a,
                        children: vec![Child::Tree(left), Child::Tree(right)],
                    };
                }
                target = target.checked_sub(&w).expect("target >= w");
            }
        }
        unreachable!("weights sum to the total count");
    }
}

/// Uniform random `BigUint` in `[0, bound)` by rejection sampling on the
/// bit width. Panics if `bound` is zero.
pub fn rand_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    if let Some(b) = bound.to_u64() {
        return BigUint::from_u64(rng.random_range(0..b));
    }
    let bits = bound.bits();
    loop {
        // Draw `bits` random bits.
        let mut v = BigUint::zero();
        let mut remaining = bits;
        while remaining > 0 {
            let take = remaining.min(64);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let chunk = rng.random::<u64>() & mask;
            v = &v.shl_bits(take) + &BigUint::from_u64(chunk);
            remaining -= take;
        }
        if &v < bound {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::normal_form::CnfGrammar;
    use std::collections::HashMap;
    use ucfg_support::rng::{SeedableRng, StdRng};

    fn pairs() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    #[test]
    fn sample_lengths_and_validity() {
        let g = pairs();
        let s = TreeSampler::new(&g, 4);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let t = s.sample(2, &mut rng).unwrap();
            assert_eq!(t.yield_terminals().len(), 2);
            assert!(t.is_valid(&g.to_grammar()));
        }
        assert!(s.sample(3, &mut rng).is_none());
        assert!(s.sample(0, &mut rng).is_none());
    }

    #[test]
    fn uniform_over_unambiguous_words() {
        let g = pairs();
        let s = TreeSampler::new(&g, 2);
        assert_eq!(s.tree_count(2).to_u64(), Some(4));
        let mut rng = StdRng::seed_from_u64(42);
        let mut freq: HashMap<String, usize> = HashMap::new();
        let n = 4000;
        for _ in 0..n {
            *freq.entry(s.sample_word(2, &mut rng).unwrap()).or_default() += 1;
        }
        assert_eq!(freq.len(), 4);
        for (w, c) in freq {
            // Each of the 4 words should get ~1000 draws; allow wide slack.
            assert!((700..1300).contains(&c), "{w}: {c}");
        }
    }

    #[test]
    fn rand_below_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = BigUint::pow2(100);
        for _ in 0..100 {
            assert!(rand_below(&bound, &mut rng) < bound);
        }
        let small = BigUint::from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rand_below(&small, &mut rng).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn weighted_choice_respects_counts() {
        // S → A A | B B ; A → a ; B → a | b.
        // Trees of length 2: AA gives 1 (aa), BB gives 4 → 5 trees.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(s, |r| r.n(bb).n(bb));
        b.rule(a, |r| r.t('a'));
        b.rule(bb, |r| r.t('a'));
        b.rule(bb, |r| r.t('b'));
        let g = CnfGrammar::from_grammar(&b.build(s));
        let samp = TreeSampler::new(&g, 2);
        assert_eq!(samp.tree_count(2).to_u64(), Some(5));
        let mut rng = StdRng::seed_from_u64(9);
        let mut aa = 0;
        let n = 5000;
        for _ in 0..n {
            if samp.sample_word(2, &mut rng).unwrap() == "aa" {
                aa += 1;
            }
        }
        // "aa" has 2 of the 5 trees → expect ~2000.
        assert!((1700..2300).contains(&aa), "aa: {aa}");
    }
}
