//! Ranked access to parse trees and words: `rank`/`unrank`.
//!
//! For a CNF grammar the counting DP of
//! [`tree_count_table`] induces a canonical
//! total order on the parse trees of each length (by terminal rule, then by
//! binary rule, then by split point, then recursively left-then-right).
//! [`Unranker`] realises the bijection `[0, #trees) ↔ trees` in both
//! directions.
//!
//! For an *unambiguous* grammar parse trees biject with words, so this is
//! random access into the represented language — the factorised-database
//! operation (e.g. \[4\] in the paper) that motivates deterministic
//! representations. On an ambiguous grammar `unrank` still works but
//! several indices may map to the same word.

use crate::bignum::BigUint;
use crate::count::tree_count_table;
use crate::normal_form::CnfGrammar;
use crate::parse_tree::{Child, ParseTree};
use crate::symbol::NonTerminal;

/// Precomputed ranking structure over a CNF grammar.
pub struct Unranker<'g> {
    g: &'g CnfGrammar,
    counts: Vec<Vec<BigUint>>,
    max_len: usize,
}

impl<'g> Unranker<'g> {
    /// Precompute counts up to `max_len`.
    pub fn new(g: &'g CnfGrammar, max_len: usize) -> Self {
        Unranker {
            g,
            counts: tree_count_table(g, max_len),
            max_len,
        }
    }

    fn count(&self, a: NonTerminal, len: usize) -> &BigUint {
        &self.counts[a.index()][len - 1]
    }

    /// Total number of parse trees of the given length from the start
    /// symbol.
    pub fn total(&self, len: usize) -> BigUint {
        if len == 0 || len > self.max_len {
            return BigUint::zero();
        }
        self.count(self.g.start(), len).clone()
    }

    /// The `idx`-th parse tree of the given length (0-based), or `None` if
    /// out of range.
    pub fn unrank(&self, len: usize, idx: &BigUint) -> Option<ParseTree> {
        if len == 0 || len > self.max_len || idx >= &self.total(len) {
            return None;
        }
        Some(self.unrank_at(self.g.start(), len, idx.clone()))
    }

    fn unrank_at(&self, a: NonTerminal, len: usize, mut idx: BigUint) -> ParseTree {
        if len == 1 {
            let pos = idx.to_u64().expect("few terminal rules") as usize;
            let t = self.g.terms_of(a)[pos];
            return ParseTree {
                nt: a,
                children: vec![Child::Leaf(t)],
            };
        }
        for &(b, c) in self.g.bins_of(a) {
            for k in 1..len {
                let lc = self.count(b, k);
                let rc = self.count(c, len - k);
                if lc.is_zero() || rc.is_zero() {
                    continue;
                }
                let block = lc * rc;
                if idx < block {
                    // idx = left_idx * rc + right_idx.
                    let (left_idx, right_idx) = idx.div_rem(rc);
                    let left = self.unrank_at(b, k, left_idx);
                    let right = self.unrank_at(c, len - k, right_idx);
                    return ParseTree {
                        nt: a,
                        children: vec![Child::Tree(left), Child::Tree(right)],
                    };
                }
                idx = idx.checked_sub(&block).expect("idx >= block");
            }
        }
        unreachable!("idx < total count");
    }

    /// The rank of a parse tree (the inverse of [`Unranker::unrank`]).
    /// Returns `None` if the tree is not a valid tree of this grammar of a
    /// supported length.
    pub fn rank(&self, tree: &ParseTree) -> Option<BigUint> {
        let len = tree.yield_terminals().len();
        if len == 0 || len > self.max_len {
            return None;
        }
        self.rank_at(tree, len)
    }

    fn rank_at(&self, tree: &ParseTree, len: usize) -> Option<BigUint> {
        let a = tree.nt;
        match tree.children.as_slice() {
            [Child::Leaf(t)] => {
                let pos = self.g.terms_of(a).iter().position(|x| x == t)?;
                Some(BigUint::from_u64(pos as u64))
            }
            [Child::Tree(l), Child::Tree(r)] => {
                let lb = l.yield_terminals().len();
                let rb = len - lb;
                let mut offset = BigUint::zero();
                for &(b, c) in self.g.bins_of(a) {
                    for k in 1..len {
                        let lc = self.count(b, k);
                        let rc = self.count(c, len - k);
                        if lc.is_zero() || rc.is_zero() {
                            continue;
                        }
                        if b == l.nt && c == r.nt && k == lb {
                            let li = self.rank_at(l, lb)?;
                            let ri = self.rank_at(r, rb)?;
                            return Some(&offset + &(&(&li * rc) + &ri));
                        }
                        offset += &(lc * rc);
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Iterate all words of a given length in tree-rank order (with
    /// repetitions exactly when the grammar is ambiguous).
    pub fn words(&self, len: usize) -> impl Iterator<Item = String> + '_ {
        let total = self.total(len);
        let mut idx = BigUint::zero();
        std::iter::from_fn(move || {
            if idx >= total {
                return None;
            }
            let t = self.unrank(len, &idx).expect("idx in range");
            idx += &BigUint::one();
            let term = t.yield_terminals();
            Some(term.iter().map(|&x| self.g.letter(x)).collect())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::language::words_of_length;
    use std::collections::BTreeSet;

    fn pairs() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    fn catalan() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).n(s));
        b.rule(s, |r| r.t('a'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    #[test]
    fn unrank_covers_all_trees_distinctly() {
        let g = catalan();
        let u = Unranker::new(&g, 6);
        for len in 1..=6usize {
            let total = u.total(len).to_u64().unwrap();
            let mut seen = BTreeSet::new();
            for i in 0..total {
                let t = u.unrank(len, &BigUint::from_u64(i)).unwrap();
                assert!(t.is_valid(&g.to_grammar()), "len={len} i={i}");
                assert_eq!(t.yield_terminals().len(), len);
                assert!(seen.insert(format!("{t:?}")), "duplicate tree at {i}");
            }
            assert!(u.unrank(len, &BigUint::from_u64(total)).is_none());
        }
    }

    #[test]
    fn rank_is_inverse_of_unrank() {
        for g in [pairs(), catalan()] {
            let u = Unranker::new(&g, 5);
            for len in 1..=5usize {
                let total = u.total(len).to_u64().unwrap_or(0);
                for i in 0..total {
                    let idx = BigUint::from_u64(i);
                    let t = u.unrank(len, &idx).unwrap();
                    assert_eq!(u.rank(&t), Some(idx), "len={len} i={i}");
                }
            }
        }
    }

    #[test]
    fn unambiguous_words_are_distinct_and_complete() {
        let g = pairs();
        let u = Unranker::new(&g, 2);
        let words: Vec<String> = u.words(2).collect();
        assert_eq!(words.len(), 4);
        let set: BTreeSet<&str> = words.iter().map(|s| s.as_str()).collect();
        assert_eq!(set.len(), 4, "uCFG unranking hits each word once");
        let lang: BTreeSet<String> = words_of_length(&g, 2).iter().map(|w| g.decode(w)).collect();
        assert_eq!(lang, words.into_iter().collect());
    }

    #[test]
    fn ambiguous_words_repeat() {
        let g = catalan();
        let u = Unranker::new(&g, 3);
        let words: Vec<String> = u.words(3).collect();
        assert_eq!(words.len(), 2); // Catalan(2) trees, 1 word
        assert!(words.iter().all(|w| w == "aaa"));
    }

    #[test]
    fn out_of_range_is_none() {
        let g = pairs();
        let u = Unranker::new(&g, 2);
        assert!(u.unrank(0, &BigUint::zero()).is_none());
        assert!(u.unrank(3, &BigUint::zero()).is_none());
        assert!(u.unrank(2, &BigUint::from_u64(4)).is_none());
        assert!(u.total(9).is_zero());
    }

    #[test]
    fn foreign_tree_has_no_rank() {
        let g = pairs();
        let u = Unranker::new(&g, 2);
        // A tree whose root label exists but whose rule does not.
        let bogus = ParseTree {
            nt: g.start(),
            children: vec![Child::Leaf(crate::symbol::Terminal(0))],
        };
        assert_eq!(u.rank(&bogus), None);
    }
}
