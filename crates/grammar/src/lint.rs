//! Grammar diagnostics: a lint pass collecting the structural issues the
//! paper's preliminaries assume away (redundant non-terminals, duplicate
//! rules, unit/ε cycles), with human-readable findings. Used by the
//! `ucfg check` command and handy when authoring grammars in the text
//! format.

use crate::analysis::{has_derivation_cycle, is_language_finite, nullable, productive, useful};
use crate::cfg::Grammar;
use crate::symbol::{NonTerminal, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or size-related.
    Note,
    /// Affects counting/unambiguity semantics.
    Warning,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious.
    pub severity: Severity,
    /// Short machine-readable kind.
    pub kind: FindingKind,
    /// Human-readable message.
    pub message: String,
}

/// The kinds of findings the linter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A non-terminal that cannot derive any terminal word.
    Unproductive,
    /// A non-terminal unreachable from the start symbol.
    Unreachable,
    /// Reachable and productive, but never in a complete parse tree.
    Useless,
    /// Two syntactically identical rules (ambiguity by duplication).
    DuplicateRule,
    /// A unit or ε cycle: infinitely many parse trees for some word.
    DerivationCycle,
    /// The language is infinite (outside the paper's finite setting).
    InfiniteLanguage,
    /// A nullable non-terminal (ε-rules complicate the CNF bijection).
    Nullable,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Note => "note",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// Run all lints.
pub fn lint(g: &Grammar) -> Vec<Finding> {
    let mut out = Vec::new();
    let prod = productive(g);
    let used = useful(g);
    let null = nullable(g);
    for i in 0..g.nonterminal_count() {
        let nt = NonTerminal(i as u32);
        let name = g.name(nt);
        let referenced = nt == g.start()
            || g.rules().iter().any(|r| r.rhs.contains(&Symbol::N(nt)))
            || g.rules_for(nt).next().is_some();
        if !referenced {
            continue;
        }
        if !prod[i] {
            out.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::Unproductive,
                message: format!("non-terminal {name} cannot derive any terminal word"),
            });
        } else if !used[i] {
            out.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::Useless,
                message: format!(
                    "non-terminal {name} never occurs in a complete parse tree \
                     (unreachable or only in unproductive contexts)"
                ),
            });
        }
        if null[i] && prod[i] {
            out.push(Finding {
                severity: Severity::Note,
                kind: FindingKind::Nullable,
                message: format!("non-terminal {name} can derive ε"),
            });
        }
    }
    // Duplicate rules.
    let mut seen: HashMap<(NonTerminal, &[Symbol]), usize> = HashMap::new();
    for r in g.rules() {
        *seen.entry((r.lhs, r.rhs.as_slice())).or_insert(0) += 1;
    }
    for ((lhs, rhs), count) in seen {
        if count > 1 {
            let body: Vec<String> = rhs.iter().map(|&s| g.symbol_str(s)).collect();
            out.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::DuplicateRule,
                message: format!(
                    "rule {} → {} appears {count} times (each copy is a distinct \
                     derivation: the grammar is ambiguous)",
                    g.name(lhs),
                    if body.is_empty() {
                        "ε".into()
                    } else {
                        body.join(" ")
                    }
                ),
            });
        }
    }
    if is_language_finite(g) {
        // For finite languages, any (necessarily non-growing) cycle means
        // some word has infinitely many parse trees. For infinite
        // languages cycles are just recursion, so no finding.
        if has_derivation_cycle(g) {
            out.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::DerivationCycle,
                message: "derivation cycle: some word has infinitely many parse trees".into(),
            });
        }
    } else {
        out.push(Finding {
            severity: Severity::Note,
            kind: FindingKind::InfiniteLanguage,
            message: "the language is infinite (the paper's results concern finite ones)".into(),
        });
    }
    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.message.cmp(&b.message)));
    out
}

/// Do any warnings (not just notes) fire?
pub fn has_warnings(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Warning)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn kinds(fs: &[Finding]) -> Vec<FindingKind> {
        fs.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_grammar_has_no_findings() {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        assert!(lint(&b.build(s)).is_empty());
    }

    #[test]
    fn unproductive_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let dead = b.nonterminal("Dead");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.n(dead));
        b.rule(dead, |r| r.n(dead).t('a'));
        let fs = lint(&b.build(s));
        assert!(kinds(&fs).contains(&FindingKind::Unproductive), "{fs:?}");
        assert!(has_warnings(&fs));
    }

    #[test]
    fn useless_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let orphan = b.nonterminal("Orphan");
        b.rule(s, |r| r.t('a'));
        b.rule(orphan, |r| r.t('a'));
        let fs = lint(&b.build(s));
        assert!(kinds(&fs).contains(&FindingKind::Useless), "{fs:?}");
    }

    #[test]
    fn duplicate_rules_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.t('a'));
        let fs = lint(&b.build(s));
        assert!(kinds(&fs).contains(&FindingKind::DuplicateRule), "{fs:?}");
    }

    #[test]
    fn cycles_and_infinite_language_detected() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(s));
        b.rule(a, |r| r.t('a'));
        let fs = lint(&b.build(s));
        assert!(kinds(&fs).contains(&FindingKind::DerivationCycle), "{fs:?}");

        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        let fs = lint(&b.build(s));
        assert!(
            kinds(&fs).contains(&FindingKind::InfiniteLanguage),
            "{fs:?}"
        );
        assert!(!has_warnings(&fs), "infinite language alone is a note");
    }

    #[test]
    fn nullable_noted() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).t('a'));
        b.epsilon_rule(a);
        b.rule(a, |r| r.t('a'));
        let fs = lint(&b.build(s));
        assert!(kinds(&fs).contains(&FindingKind::Nullable), "{fs:?}");
    }

    #[test]
    fn findings_render() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.t('a'));
        let fs = lint(&b.build(s));
        let rendered = fs
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(rendered.contains("warning:"), "{rendered}");
        assert!(rendered.contains("appears 2 times"), "{rendered}");
    }
}
