//! Derivations as first-class objects (Definition 2's `⇒` and `⇒*`).
//!
//! A [`Derivation`] is the sequence of sentential forms of a *leftmost*
//! derivation. Leftmost derivations biject with parse trees, so the
//! paper's "unique parse tree" and "unique derivation" formulations of
//! unambiguity coincide — this module makes that bijection executable in
//! both directions.

use crate::cfg::Grammar;
use crate::parse_tree::{Child, ParseTree};
use crate::symbol::{Symbol, Terminal};

/// One step of a leftmost derivation: which rule was applied (index into a
/// canonical rule list of the expanded non-terminal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The sentential form *before* the step.
    pub form: Vec<Symbol>,
    /// Position (in `form`) of the expanded non-terminal — always the
    /// leftmost non-terminal.
    pub at: usize,
    /// Index of the applied rule in `Grammar::rules()`.
    pub rule: usize,
}

/// A complete leftmost derivation `S ⇒ … ⇒ w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// The steps, in order; the final sentential form (all terminals) is
    /// [`Derivation::result`].
    pub steps: Vec<Step>,
    /// The derived terminal word.
    pub result: Vec<Terminal>,
}

impl Derivation {
    /// All sentential forms, from `[S]` to the terminal word.
    pub fn forms(&self) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = self.steps.iter().map(|s| s.form.clone()).collect();
        out.push(self.result.iter().map(|&t| Symbol::T(t)).collect());
        out
    }

    /// Render as `S ⇒ … ⇒ w` (one form per line).
    pub fn render(&self, g: &Grammar) -> String {
        self.forms()
            .iter()
            .map(|form| {
                form.iter()
                    .map(|&s| g.symbol_str(s))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n⇒ ")
    }

    /// Length (number of rule applications).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff no steps (impossible for a produced derivation — kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Extract the leftmost derivation encoded by a parse tree.
pub fn leftmost_derivation(g: &Grammar, tree: &ParseTree) -> Derivation {
    // Pre-order walk: expanding the leftmost non-terminal of the current
    // sentential form corresponds exactly to visiting nodes pre-order.
    let mut steps = Vec::new();
    let mut form: Vec<Symbol> = vec![Symbol::N(tree.nt)];
    expand(g, tree, &mut form, &mut steps);
    let result = tree.yield_terminals();
    debug_assert_eq!(
        form,
        result.iter().map(|&t| Symbol::T(t)).collect::<Vec<_>>(),
        "derivation must end in the yield"
    );
    Derivation { steps, result }
}

fn expand(g: &Grammar, tree: &ParseTree, form: &mut Vec<Symbol>, steps: &mut Vec<Step>) {
    // The leftmost non-terminal of `form` is this tree's root.
    let at = form
        .iter()
        .position(|s| matches!(s, Symbol::N(_)))
        .expect("tree root present in form");
    debug_assert_eq!(form[at], Symbol::N(tree.nt));
    let body: Vec<Symbol> = tree
        .children
        .iter()
        .map(|c| match c {
            Child::Leaf(t) => Symbol::T(*t),
            Child::Tree(t) => Symbol::N(t.nt),
        })
        .collect();
    let rule = g
        .rules()
        .iter()
        .position(|r| r.lhs == tree.nt && r.rhs == body)
        .expect("tree applies a grammar rule");
    steps.push(Step {
        form: form.clone(),
        at,
        rule,
    });
    form.splice(at..=at, body);
    for c in &tree.children {
        if let Child::Tree(t) = c {
            expand(g, t, form, steps);
        }
    }
}

/// Rebuild the parse tree from a leftmost derivation (the inverse of
/// [`leftmost_derivation`]). Returns `None` if the steps are inconsistent.
pub fn tree_of_derivation(g: &Grammar, d: &Derivation) -> Option<ParseTree> {
    // Replay the rule sequence against a recursive builder.
    let mut rules = d.steps.iter().map(|s| s.rule);
    let first = d.steps.first()?;
    let Symbol::N(root) = *first.form.first()? else {
        return None;
    };
    let tree = build(g, root, &mut rules)?;
    if rules.next().is_some() {
        return None; // too many steps
    }
    Some(tree)
}

fn build(
    g: &Grammar,
    nt: crate::symbol::NonTerminal,
    rules: &mut impl Iterator<Item = usize>,
) -> Option<ParseTree> {
    let ri = rules.next()?;
    let rule = g.rules().get(ri)?;
    if rule.lhs != nt {
        return None;
    }
    let mut children = Vec::with_capacity(rule.rhs.len());
    for &s in &rule.rhs {
        match s {
            Symbol::T(t) => children.push(Child::Leaf(t)),
            Symbol::N(m) => children.push(Child::Tree(build(g, m, rules)?)),
        }
    }
    Some(ParseTree { nt, children })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::parse_tree::FixedLenParser;

    fn pairs() -> Grammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn derivation_roundtrip() {
        let g = pairs();
        let p = FixedLenParser::new(&g).unwrap();
        for w in ["aa", "ab", "ba", "bb"] {
            let word = g.encode(w).unwrap();
            let tree = p.trees(&word, 1).pop().unwrap();
            let d = leftmost_derivation(&g, &tree);
            assert_eq!(g.decode(&d.result), w);
            assert_eq!(d.len(), 3); // S, then two A's
            let back = tree_of_derivation(&g, &d).unwrap();
            assert_eq!(back, tree);
        }
    }

    #[test]
    fn forms_shrink_to_word() {
        let g = pairs();
        let p = FixedLenParser::new(&g).unwrap();
        let word = g.encode("ab").unwrap();
        let tree = p.trees(&word, 1).pop().unwrap();
        let d = leftmost_derivation(&g, &tree);
        let forms = d.forms();
        assert_eq!(forms.first().unwrap().len(), 1); // [S]
        assert_eq!(forms.last().unwrap().len(), 2); // a b
                                                    // Leftmost: each step expands the leftmost non-terminal.
        for s in &d.steps {
            assert!(s.form[..s.at].iter().all(|x| x.is_terminal()));
        }
    }

    #[test]
    fn render_contains_arrow_chain() {
        let g = pairs();
        let p = FixedLenParser::new(&g).unwrap();
        let word = g.encode("ba").unwrap();
        let tree = p.trees(&word, 1).pop().unwrap();
        let d = leftmost_derivation(&g, &tree);
        let r = d.render(&g);
        assert!(r.contains('⇒'), "{r}");
        assert!(r.contains('S'), "{r}");
    }

    #[test]
    fn distinct_trees_give_distinct_derivations() {
        // Ambiguous: S → A B | B A ; A → a ; B → a.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.n(a).n(bb));
        b.rule(s, |r| r.n(bb).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(bb, |r| r.t('a'));
        let g = b.build(s);
        let p = FixedLenParser::new(&g).unwrap();
        let word = g.encode("aa").unwrap();
        let trees = p.trees(&word, 4);
        assert_eq!(trees.len(), 2);
        let d0 = leftmost_derivation(&g, &trees[0]);
        let d1 = leftmost_derivation(&g, &trees[1]);
        assert_ne!(d0, d1, "parse trees ↔ leftmost derivations is injective");
    }

    #[test]
    fn bad_derivation_rejected() {
        let g = pairs();
        let p = FixedLenParser::new(&g).unwrap();
        let word = g.encode("aa").unwrap();
        let tree = p.trees(&word, 1).pop().unwrap();
        let mut d = leftmost_derivation(&g, &tree);
        d.steps.pop(); // truncate
        assert!(tree_of_derivation(&g, &d).is_none());
    }
}
