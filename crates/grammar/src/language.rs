//! Materialising the (finite) language of a grammar.
//!
//! The paper is exclusively about finite languages, where `L(G)` can be
//! computed outright. We do this with a length-indexed bottom-up DP over the
//! CNF form; the maximum word length of a finite language is obtained by a
//! monotone fixpoint which converges exactly when the language is finite.

use crate::analysis::{is_language_finite, trim};
use crate::cfg::Grammar;
use crate::normal_form::CnfGrammar;
use crate::symbol::{Symbol, Terminal};
use std::collections::BTreeSet;

/// All words of exactly `len` in `L(G)` (ids). `len == 0` honours the
/// ε-flag.
pub fn words_of_length(g: &CnfGrammar, len: usize) -> BTreeSet<Vec<Terminal>> {
    if len == 0 {
        let mut s = BTreeSet::new();
        if g.accepts_epsilon() {
            s.insert(Vec::new());
        }
        return s;
    }
    per_nonterminal_words(g, len)
        .into_iter()
        .nth(g.start().index())
        .map(|table| table.into_iter().nth(len - 1).unwrap_or_default())
        .unwrap_or_default()
}

/// `table[A][l-1]` = set of words of length `l` derivable from `A`,
/// for `l ∈ 1..=len`.
fn per_nonterminal_words(g: &CnfGrammar, len: usize) -> Vec<Vec<BTreeSet<Vec<Terminal>>>> {
    let nts = g.nonterminal_count();
    let mut table: Vec<Vec<BTreeSet<Vec<Terminal>>>> = vec![vec![BTreeSet::new(); len]; nts];
    for &(a, t) in g.term_rules() {
        table[a.index()][0].insert(vec![t]);
    }
    for l in 2..=len {
        for &(a, b, c) in g.bin_rules() {
            for k in 1..l {
                // Split borrows: collect the cross-concatenation first.
                let mut products = Vec::new();
                for wb in &table[b.index()][k - 1] {
                    for wc in &table[c.index()][l - k - 1] {
                        let mut w = wb.clone();
                        w.extend_from_slice(wc);
                        products.push(w);
                    }
                }
                table[a.index()][l - 1].extend(products);
            }
        }
    }
    table
}

/// All words of length ≤ `max_len` in `L(G)`.
pub fn language_up_to(g: &CnfGrammar, max_len: usize) -> BTreeSet<Vec<Terminal>> {
    let mut out = BTreeSet::new();
    if g.accepts_epsilon() {
        out.insert(Vec::new());
    }
    if max_len == 0 {
        return out;
    }
    let table = per_nonterminal_words(g, max_len);
    for set in &table[g.start().index()] {
        out.extend(set.iter().cloned());
    }
    out
}

/// Length of the longest word in `L(G)`, or `None` if the language is
/// infinite (or empty — an empty language reports `Some(0)` only when ε is
/// not accepted either; callers should check emptiness separately).
pub fn max_word_length(g: &Grammar) -> Option<usize> {
    if !is_language_finite(g) {
        return None;
    }
    let g = trim(&g.clone());
    let n = g.nonterminal_count();
    // max_len[A] = length of longest word from A; monotone fixpoint. The
    // language being finite guarantees convergence.
    let mut max_len: Vec<Option<usize>> = vec![None; n];
    loop {
        let mut changed = false;
        for r in g.rules() {
            let mut total = 0usize;
            let mut known = true;
            for s in &r.rhs {
                match s {
                    Symbol::T(_) => total += 1,
                    Symbol::N(m) => match max_len[m.index()] {
                        Some(l) => total += l,
                        None => {
                            known = false;
                            break;
                        }
                    },
                }
            }
            if known && max_len[r.lhs.index()].is_none_or(|cur| total > cur) {
                max_len[r.lhs.index()] = Some(total);
                changed = true;
            }
        }
        if !changed {
            return max_len[g.start().index()].or(Some(0));
        }
    }
}

/// Materialise a finite language as strings; `None` if infinite.
pub fn finite_language(g: &Grammar) -> Option<BTreeSet<String>> {
    let max = max_word_length(g)?;
    let cnf = CnfGrammar::from_grammar(g);
    Some(
        language_up_to(&cnf, max)
            .into_iter()
            .map(|w| cnf.decode(&w))
            .collect(),
    )
}

/// Do two grammars accept the same (finite) language? `None` if either is
/// infinite.
pub fn languages_equal(g1: &Grammar, g2: &Grammar) -> Option<bool> {
    Some(finite_language(g1)? == finite_language(g2)?)
}

/// Number of words of each length `0..=max_len` in `L(G)`.
pub fn word_counts_by_length(g: &CnfGrammar, max_len: usize) -> Vec<usize> {
    let mut counts = vec![0usize; max_len + 1];
    counts[0] = usize::from(g.accepts_epsilon());
    if max_len >= 1 {
        let table = per_nonterminal_words(g, max_len);
        for (l, set) in table[g.start().index()].iter().enumerate() {
            counts[l + 1] = set.len();
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn pairs() -> Grammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn materializes_all_length2_words() {
        let g = pairs();
        let lang = finite_language(&g).unwrap();
        let expect: BTreeSet<String> = ["aa", "ab", "ba", "bb"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(lang, expect);
    }

    #[test]
    fn max_word_length_fixed() {
        assert_eq!(max_word_length(&pairs()), Some(2));
    }

    #[test]
    fn max_word_length_mixed() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.ts("aaaa"));
        assert_eq!(max_word_length(&b.build(s)), Some(4));
    }

    #[test]
    fn infinite_language_returns_none() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('a'));
        let g = b.build(s);
        assert_eq!(max_word_length(&g), None);
        assert!(finite_language(&g).is_none());
        assert_eq!(languages_equal(&g, &g), None);
    }

    #[test]
    fn words_of_length_selects_exact_length() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a'));
        b.rule(s, |r| r.ts("aaa"));
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        assert_eq!(words_of_length(&cnf, 1).len(), 1);
        assert_eq!(words_of_length(&cnf, 2).len(), 0);
        assert_eq!(words_of_length(&cnf, 3).len(), 1);
        assert_eq!(word_counts_by_length(&cnf, 3), vec![0, 1, 0, 1]);
    }

    #[test]
    fn epsilon_in_language() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.epsilon_rule(s);
        b.rule(s, |r| r.t('a'));
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        let lang = language_up_to(&cnf, 1);
        assert_eq!(lang.len(), 2);
        assert!(lang.contains(&Vec::new()));
        assert_eq!(words_of_length(&cnf, 0).len(), 1);
    }

    #[test]
    fn languages_equal_positive_and_negative() {
        let g1 = pairs();
        // Same language, different grammar: S → a A | b A ; A → a | b.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.t('a').n(a));
        b.rule(s, |r| r.t('b').n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        let g2 = b.build(s);
        assert_eq!(languages_equal(&g1, &g2), Some(true));

        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.ts("aa"));
        let g3 = b.build(s);
        assert_eq!(languages_equal(&g1, &g3), Some(false));
    }
}
