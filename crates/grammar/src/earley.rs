//! Earley recognition for arbitrary grammars.
//!
//! Used as an independent membership oracle: it works directly on non-CNF
//! grammars (e.g. the Appendix A grammar with its long rule bodies), so it
//! cross-checks both the CNF conversion and the CYK chart.

use crate::analysis::nullable;
use crate::cfg::Grammar;
use crate::symbol::{Symbol, Terminal};
use std::collections::HashSet;

/// An Earley item: rule `rule` with the dot before position `dot`, started
/// at input position `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    rule: u32,
    dot: u32,
    origin: u32,
}

/// Earley recogniser.
pub struct Earley<'g> {
    g: &'g Grammar,
    nullable: Vec<bool>,
}

impl<'g> Earley<'g> {
    /// Wrap a grammar for recognition.
    pub fn new(g: &'g Grammar) -> Self {
        Self::with_nullable(g, nullable(g))
    }

    /// Wrap a grammar with a precomputed nullable table (the "Earley
    /// table" an artifact cache stores alongside the grammar), skipping
    /// the per-construction [`nullable`] fixpoint.
    ///
    /// `precomputed` must be `nullable(g)` for this exact grammar; a
    /// mismatched table gives wrong answers, so this is checked by a
    /// debug assertion.
    pub fn with_nullable(g: &'g Grammar, precomputed: Vec<bool>) -> Self {
        debug_assert_eq!(precomputed, nullable(g), "nullable table mismatch");
        Earley {
            g,
            nullable: precomputed,
        }
    }

    /// Is `word ∈ L(G)`?
    pub fn recognize(&self, word: &[Terminal]) -> bool {
        let g = self.g;
        let n = word.len();
        let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
        let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];

        let push =
            |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, k: usize, it: Item| {
                if seen[k].insert(it) {
                    sets[k].push(it);
                }
            };

        for (ri, r) in g.rules().iter().enumerate() {
            if r.lhs == g.start() {
                push(
                    &mut sets,
                    &mut seen,
                    0,
                    Item {
                        rule: ri as u32,
                        dot: 0,
                        origin: 0,
                    },
                );
            }
        }

        for k in 0..=n {
            let mut i = 0;
            while i < sets[k].len() {
                let it = sets[k][i];
                i += 1;
                let rule = &g.rules()[it.rule as usize];
                if (it.dot as usize) < rule.rhs.len() {
                    match rule.rhs[it.dot as usize] {
                        Symbol::N(b) => {
                            // Predict.
                            for (ri, r) in g.rules().iter().enumerate() {
                                if r.lhs == b {
                                    push(
                                        &mut sets,
                                        &mut seen,
                                        k,
                                        Item {
                                            rule: ri as u32,
                                            dot: 0,
                                            origin: k as u32,
                                        },
                                    );
                                }
                            }
                            // Aycock–Horspool nullable fix: if b is
                            // nullable, advance over it immediately so
                            // late-predicted items are not missed by an
                            // already-processed completion.
                            if self.nullable[b.index()] {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    k,
                                    Item {
                                        rule: it.rule,
                                        dot: it.dot + 1,
                                        origin: it.origin,
                                    },
                                );
                            }
                        }
                        Symbol::T(t) => {
                            // Scan.
                            if k < n && word[k] == t {
                                push(
                                    &mut sets,
                                    &mut seen,
                                    k + 1,
                                    Item {
                                        rule: it.rule,
                                        dot: it.dot + 1,
                                        origin: it.origin,
                                    },
                                );
                            }
                        }
                    }
                } else {
                    // Complete.
                    let lhs = rule.lhs;
                    let origin = it.origin as usize;
                    // Collect first to appease the borrow checker.
                    let to_advance: Vec<Item> = sets[origin]
                        .iter()
                        .filter(|p| {
                            let pr = &g.rules()[p.rule as usize];
                            (p.dot as usize) < pr.rhs.len()
                                && pr.rhs[p.dot as usize] == Symbol::N(lhs)
                        })
                        .copied()
                        .collect();
                    for p in to_advance {
                        push(
                            &mut sets,
                            &mut seen,
                            k,
                            Item {
                                rule: p.rule,
                                dot: p.dot + 1,
                                origin: p.origin,
                            },
                        );
                    }
                }
            }
        }

        sets[n].iter().any(|it| {
            let r = &g.rules()[it.rule as usize];
            r.lhs == g.start() && it.origin == 0 && it.dot as usize == r.rhs.len()
        })
    }

    /// Recognise a `&str` (must be over the grammar's alphabet).
    pub fn recognize_str(&self, w: &str) -> bool {
        match self.g.encode(w) {
            Some(word) => self.recognize(&word),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    #[test]
    fn recognizes_regular_language() {
        // S → a S | b : a*b
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s));
        b.rule(s, |r| r.t('b'));
        let g = b.build(s);
        let e = Earley::new(&g);
        assert!(e.recognize_str("b"));
        assert!(e.recognize_str("aaab"));
        assert!(!e.recognize_str("ba"));
        assert!(!e.recognize_str(""));
        assert!(!e.recognize_str("abc")); // foreign letter
    }

    #[test]
    fn recognizes_dyck_like() {
        // S → a S b S | ε  over {a,b} = balanced with a=( and b=).
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s).t('b').n(s));
        b.epsilon_rule(s);
        let g = b.build(s);
        let e = Earley::new(&g);
        for w in ["", "ab", "aabb", "abab", "aababb"] {
            assert!(e.recognize_str(w), "{w}");
        }
        for w in ["a", "ba", "abb", "aab"] {
            assert!(!e.recognize_str(w), "{w}");
        }
    }

    #[test]
    fn handles_long_bodies_without_cnf() {
        // S → a B b a ; B → b | a a
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.t('a').n(bb).t('b').t('a'));
        b.rule(bb, |r| r.t('b'));
        b.rule(bb, |r| r.ts("aa"));
        let g = b.build(s);
        let e = Earley::new(&g);
        assert!(e.recognize_str("abba"));
        assert!(e.recognize_str("aaaba"));
        assert!(!e.recognize_str("abab"));
    }

    #[test]
    fn nullable_chains() {
        // S → A A a ; A → ε : language {a}
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a).t('a'));
        b.epsilon_rule(a);
        let g = b.build(s);
        let e = Earley::new(&g);
        assert!(e.recognize_str("a"));
        assert!(!e.recognize_str(""));
        assert!(!e.recognize_str("aa"));
    }

    #[test]
    fn with_nullable_matches_new() {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.t('a').n(s).t('b').n(s));
        b.epsilon_rule(s);
        let g = b.build(s);
        let table = crate::analysis::nullable(&g);
        let e = Earley::with_nullable(&g, table);
        assert!(e.recognize_str("aabb"));
        assert!(!e.recognize_str("ba"));
    }

    #[test]
    fn unit_cycles_terminate() {
        // S → A, A → S | a.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(s));
        b.rule(a, |r| r.t('a'));
        let g = b.build(s);
        let e = Earley::new(&g);
        assert!(e.recognize_str("a"));
        assert!(!e.recognize_str("aa"));
    }
}
