//! Interned grammar symbols.
//!
//! Terminals and non-terminals are small integer ids (newtypes) indexing
//! side tables owned by the [`Grammar`](crate::cfg::Grammar); rules store
//! flat `Vec<Symbol>` right-hand sides. This keeps the hot parsing and
//! counting loops free of string handling and hashing.

use std::fmt;

/// A terminal symbol, an index into the grammar's alphabet table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Terminal(pub u16);

/// A non-terminal symbol, an index into the grammar's non-terminal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NonTerminal(pub u32);

impl Terminal {
    /// The id as a usize, for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NonTerminal {
    /// The id as a usize, for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Either side of a grammar rule body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// A terminal occurrence.
    T(Terminal),
    /// A non-terminal occurrence.
    N(NonTerminal),
}

impl Symbol {
    /// The terminal inside, if any.
    #[inline]
    pub fn terminal(self) -> Option<Terminal> {
        match self {
            Symbol::T(t) => Some(t),
            Symbol::N(_) => None,
        }
    }

    /// The non-terminal inside, if any.
    #[inline]
    pub fn nonterminal(self) -> Option<NonTerminal> {
        match self {
            Symbol::N(n) => Some(n),
            Symbol::T(_) => None,
        }
    }

    /// True iff this is a terminal occurrence.
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, Symbol::T(_))
    }
}

impl From<Terminal> for Symbol {
    fn from(t: Terminal) -> Self {
        Symbol::T(t)
    }
}

impl From<NonTerminal> for Symbol {
    fn from(n: NonTerminal) -> Self {
        Symbol::N(n)
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for NonTerminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_accessors() {
        let t = Terminal(3);
        let n = NonTerminal(7);
        assert_eq!(Symbol::T(t).terminal(), Some(t));
        assert_eq!(Symbol::T(t).nonterminal(), None);
        assert_eq!(Symbol::N(n).nonterminal(), Some(n));
        assert_eq!(Symbol::N(n).terminal(), None);
        assert!(Symbol::T(t).is_terminal());
        assert!(!Symbol::N(n).is_terminal());
    }

    #[test]
    fn conversions() {
        let s: Symbol = Terminal(1).into();
        assert!(s.is_terminal());
        let s: Symbol = NonTerminal(2).into();
        assert!(!s.is_terminal());
    }

    #[test]
    fn indices() {
        assert_eq!(Terminal(9).index(), 9);
        assert_eq!(NonTerminal(11).index(), 11);
    }
}
