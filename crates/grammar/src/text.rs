//! A text format for grammars: parse and pretty-print.
//!
//! The notation of the paper's Definition 2:
//!
//! ```text
//! # comments and blank lines are ignored; the first lhs is the start
//! S  -> A A | a
//! A  -> a | b | ()
//! ```
//!
//! Upper-case-initial identifiers are non-terminals, single lower-case
//! letters/digits are terminals, `()` (or `eps`) is ε, `|` separates
//! alternatives (still one rule each, as the paper insists), `->` or `→`
//! introduces bodies. Tokens are whitespace-separated except that a bare
//! word of terminals like `abba` is a sequence of terminal letters.
//!
//! ```
//! use ucfg_grammar::text::{parse_grammar, print_grammar};
//! use ucfg_grammar::language::finite_language;
//!
//! let g = parse_grammar("S -> A A\nA -> a | b\n").unwrap();
//! assert_eq!(finite_language(&g).unwrap().len(), 4);
//! let round = parse_grammar(&print_grammar(&g)).unwrap();
//! assert_eq!(finite_language(&round), finite_language(&g));
//! ```

use crate::builder::GrammarBuilder;
use crate::cfg::Grammar;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TextError {}

fn is_nonterminal_token(tok: &str) -> bool {
    tok.chars().next().is_some_and(|c| c.is_uppercase())
        || (tok.len() > 1 && tok.chars().next().is_some_and(|c| c == '⟨' || c == '('))
}

/// Parse a grammar from the text format.
pub fn parse_grammar(src: &str) -> Result<Grammar, TextError> {
    // First pass: collect the alphabet (terminal letters) and rule lines.
    struct Line {
        no: usize,
        lhs: String,
        alts: Vec<Vec<String>>,
    }
    let mut lines: Vec<Line> = Vec::new();
    let mut alphabet: BTreeSet<char> = BTreeSet::new();
    for (no, raw) in src.lines().enumerate() {
        let no = no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rest) = line
            .split_once("->")
            .or_else(|| line.split_once('→'))
            .ok_or_else(|| TextError {
                line: no,
                msg: "missing '->'".into(),
            })?;
        let lhs = lhs.trim().to_string();
        if lhs.is_empty() || !is_nonterminal_token(&lhs) {
            return Err(TextError {
                line: no,
                msg: format!("left-hand side {lhs:?} must be a non-terminal (Upper-case)"),
            });
        }
        let mut alts = Vec::new();
        for alt in rest.split('|') {
            let toks: Vec<String> = alt.split_whitespace().map(str::to_string).collect();
            if toks.is_empty() {
                return Err(TextError {
                    line: no,
                    msg: "empty alternative (use () for ε)".into(),
                });
            }
            for t in &toks {
                if !is_nonterminal_token(t) && t != "()" && t != "eps" {
                    for c in t.chars() {
                        if c.is_uppercase() {
                            return Err(TextError {
                                line: no,
                                msg: format!("mixed-case token {t:?}"),
                            });
                        }
                        alphabet.insert(c);
                    }
                }
            }
            alts.push(toks);
        }
        lines.push(Line { no, lhs, alts });
    }
    let first = lines.first().ok_or(TextError {
        line: 0,
        msg: "no rules".into(),
    })?;
    let alphabet: Vec<char> = alphabet.into_iter().collect();
    let mut b = GrammarBuilder::new(&alphabet);
    let start = b.nonterminal(&first.lhs);
    // Pre-intern all lhs so rules can forward-reference.
    for l in &lines {
        b.nonterminal(&l.lhs);
    }
    for l in &lines {
        let lhs = b.nonterminal(&l.lhs);
        for alt in &l.alts {
            if alt.len() == 1 && (alt[0] == "()" || alt[0] == "eps") {
                b.epsilon_rule(lhs);
                continue;
            }
            let mut rhs: Vec<Symbol> = Vec::new();
            for tok in alt {
                if tok == "()" || tok == "eps" {
                    return Err(TextError {
                        line: l.no,
                        msg: "ε may only stand alone in an alternative".into(),
                    });
                }
                if is_nonterminal_token(tok) {
                    rhs.push(Symbol::N(b.nonterminal(tok)));
                } else {
                    for c in tok.chars() {
                        rhs.push(Symbol::T(b.terminal(c)));
                    }
                }
            }
            b.raw_rule(lhs, rhs);
        }
    }
    Ok(b.build(start))
}

/// Print in the text format (round-trips through [`parse_grammar`] up to
/// rule order, provided the names follow the conventions).
pub fn print_grammar(g: &Grammar) -> String {
    let mut out = String::new();
    // Start's rules first, then the rest grouped by lhs in id order.
    let mut order: Vec<u32> = (0..g.nonterminal_count() as u32).collect();
    order.sort_by_key(|&i| (crate::symbol::NonTerminal(i) != g.start(), i));
    for i in order {
        let nt = crate::symbol::NonTerminal(i);
        let alts: Vec<String> = g
            .rules_for(nt)
            .map(|r| {
                if r.rhs.is_empty() {
                    "()".to_string()
                } else {
                    r.rhs
                        .iter()
                        .map(|&s| g.symbol_str(s))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            })
            .collect();
        if !alts.is_empty() {
            out.push_str(&format!("{} -> {}\n", g.name(nt), alts.join(" | ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::decide_unambiguous;
    use crate::language::{finite_language, languages_equal};

    #[test]
    fn parse_simple_grammar() {
        let g = parse_grammar(
            "# all words of length 2\n\
             S -> A A\n\
             A -> a | b\n",
        )
        .unwrap();
        let lang = finite_language(&g).unwrap();
        assert_eq!(lang.len(), 4);
        assert!(decide_unambiguous(&g).is_unambiguous());
    }

    #[test]
    fn terminal_words_expand_to_letters() {
        let g = parse_grammar("S -> abba | ab").unwrap();
        let lang = finite_language(&g).unwrap();
        assert!(lang.contains("abba") && lang.contains("ab"));
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn epsilon_rules() {
        let g = parse_grammar("S -> a S | ()").unwrap();
        // a* — infinite; just check ε and membership via Earley.
        let e = crate::earley::Earley::new(&g);
        assert!(e.recognize_str(""));
        assert!(e.recognize_str("aaa"));
        assert!(!e.recognize_str("b"));
    }

    #[test]
    fn roundtrip_print_parse() {
        let g = parse_grammar(
            "S -> A B | b\n\
             A -> a a | b\n\
             B -> a | ()\n",
        )
        .unwrap();
        let printed = print_grammar(&g);
        let g2 = parse_grammar(&printed).unwrap();
        assert_eq!(languages_equal(&g, &g2), Some(true));
        assert_eq!(g.size(), g2.size());
    }

    #[test]
    fn example3_in_text_form() {
        // The paper's Example 3 for n = 1, written as text.
        let g = parse_grammar(
            "A1 -> B0 A0 | A0 B0\n\
             A0 -> B0 a B1 a | a B1 a B0\n\
             B1 -> B0 B0\n\
             B0 -> a | b\n",
        )
        .unwrap();
        let reference = {
            // Compare with the programmatic construction via language.
            use crate::builder::GrammarBuilder;
            let mut b = GrammarBuilder::new(&['a', 'b']);
            let a1 = b.nonterminal("A1");
            let a0 = b.nonterminal("A0");
            let b1 = b.nonterminal("B1");
            let b0 = b.nonterminal("B0");
            b.rule(a1, |r| r.n(b0).n(a0));
            b.rule(a1, |r| r.n(a0).n(b0));
            b.rule(a0, |r| r.n(b0).t('a').n(b1).t('a'));
            b.rule(a0, |r| r.t('a').n(b1).t('a').n(b0));
            b.rule(b1, |r| r.n(b0).n(b0));
            b.rule(b0, |r| r.t('a'));
            b.rule(b0, |r| r.t('b'));
            b.build(a1)
        };
        assert_eq!(languages_equal(&g, &reference), Some(true));
    }

    #[test]
    fn error_reporting() {
        assert!(parse_grammar("S a b").unwrap_err().msg.contains("->"));
        assert!(parse_grammar("s -> a")
            .unwrap_err()
            .msg
            .contains("non-terminal"));
        assert!(parse_grammar("S -> a | ")
            .unwrap_err()
            .msg
            .contains("empty"));
        assert!(parse_grammar("S -> aB")
            .unwrap_err()
            .msg
            .contains("mixed-case"));
        assert!(parse_grammar("").unwrap_err().msg.contains("no rules"));
        assert!(parse_grammar("S -> a () b")
            .unwrap_err()
            .msg
            .contains("stand alone"));
    }

    #[test]
    fn first_lhs_is_start() {
        let g = parse_grammar("X -> Y\nY -> a").unwrap();
        assert_eq!(g.name(g.start()), "X");
    }
}
