//! Chomsky normal form.
//!
//! The paper assumes w.l.o.g. that grammars are in CNF (rules `A → BC` or
//! `A → a`), citing the classical conversion with `|G'| ≤ |G|²`. This module
//! implements the conversion (TERM → BIN → DEL → UNIT, then trimming) and a
//! dedicated [`CnfGrammar`] representation optimised for CYK parsing and
//! counting.
//!
//! For ε-free grammars without unit cycles — which covers every grammar in
//! the paper — the conversion is a parse-tree bijection, so it preserves
//! unambiguity; this is verified by the counting tests in `count.rs`.

use crate::analysis::{nullable, trim};
use crate::cfg::{Grammar, Rule};
use crate::symbol::{NonTerminal, Symbol, Terminal};
use std::collections::{HashMap, HashSet};

/// A grammar in Chomsky normal form.
///
/// All rules are `A → B C` (`bin_rules`) or `A → a` (`term_rules`); the
/// empty word, if accepted, is flagged separately (`accepts_epsilon`) rather
/// than materialised as a rule, matching the usual CNF convention.
#[derive(Debug, Clone)]
pub struct CnfGrammar {
    alphabet: Vec<char>,
    names: Vec<String>,
    start: NonTerminal,
    accepts_epsilon: bool,
    term_rules: Vec<(NonTerminal, Terminal)>,
    bin_rules: Vec<(NonTerminal, NonTerminal, NonTerminal)>,
    term_by_lhs: Vec<Vec<Terminal>>,
    bin_by_lhs: Vec<Vec<(NonTerminal, NonTerminal)>>,
}

impl CnfGrammar {
    /// Assemble from explicit rule lists (used by transformations).
    pub fn from_rules(
        alphabet: Vec<char>,
        names: Vec<String>,
        start: NonTerminal,
        accepts_epsilon: bool,
        term_rules: Vec<(NonTerminal, Terminal)>,
        bin_rules: Vec<(NonTerminal, NonTerminal, NonTerminal)>,
    ) -> Self {
        let n = names.len();
        let mut term_by_lhs = vec![Vec::new(); n];
        for &(a, t) in &term_rules {
            term_by_lhs[a.index()].push(t);
        }
        let mut bin_by_lhs = vec![Vec::new(); n];
        for &(a, b, c) in &bin_rules {
            bin_by_lhs[a.index()].push((b, c));
        }
        CnfGrammar {
            alphabet,
            names,
            start,
            accepts_epsilon,
            term_rules,
            bin_rules,
            term_by_lhs,
            bin_by_lhs,
        }
    }

    /// Convert an arbitrary grammar to CNF.
    ///
    /// The input is trimmed first (the paper's "no redundant non-terminals"
    /// assumption); duplicate rules arising during conversion are merged.
    pub fn from_grammar(g: &Grammar) -> Self {
        let g = trim(g);
        let alphabet = g.alphabet().to_vec();
        let mut names: Vec<String> = (0..g.nonterminal_count())
            .map(|i| g.name(NonTerminal(i as u32)).to_string())
            .collect();
        // Fresh names carry their id so they stay globally unique — the
        // annotation machinery (Lemma 10) re-identifies non-terminals by
        // name after trimming.
        let fresh = |names: &mut Vec<String>, base: String| -> NonTerminal {
            let id = NonTerminal(names.len() as u32);
            names.push(format!("{base}·{}", id.0));
            id
        };

        // ---- TERM: terminals only occur alone in bodies of length 1. ----
        let mut term_proxy: HashMap<Terminal, NonTerminal> = HashMap::new();
        let mut rules: Vec<Rule> = Vec::new();
        let mut extra_rules: Vec<Rule> = Vec::new();
        for r in g.rules() {
            if r.rhs.len() >= 2 {
                let rhs = r
                    .rhs
                    .iter()
                    .map(|&s| match s {
                        Symbol::T(t) => {
                            let p = *term_proxy.entry(t).or_insert_with(|| {
                                let nt = fresh(&mut names, format!("⟨{}⟩", g.letter(t)));
                                extra_rules.push(Rule {
                                    lhs: nt,
                                    rhs: vec![Symbol::T(t)],
                                });
                                nt
                            });
                            Symbol::N(p)
                        }
                        n => n,
                    })
                    .collect();
                rules.push(Rule { lhs: r.lhs, rhs });
            } else {
                rules.push(r.clone());
            }
        }
        rules.extend(extra_rules);

        // ---- BIN: bodies of length ≥ 3 are chained. ----
        let mut bin_rules_acc: Vec<Rule> = Vec::new();
        for r in rules {
            if r.rhs.len() <= 2 {
                bin_rules_acc.push(r);
                continue;
            }
            let mut prev = r.lhs;
            let k = r.rhs.len();
            for i in 0..k - 2 {
                let cont = fresh(&mut names, format!("⟨{}#{}⟩", g.name(r.lhs), i + 1));
                bin_rules_acc.push(Rule {
                    lhs: prev,
                    rhs: vec![r.rhs[i], Symbol::N(cont)],
                });
                prev = cont;
            }
            bin_rules_acc.push(Rule {
                lhs: prev,
                rhs: vec![r.rhs[k - 2], r.rhs[k - 1]],
            });
        }
        let rules = bin_rules_acc;

        // ---- DEL: ε-elimination. Bodies now have length ≤ 2. ----
        let tmp = Grammar::from_parts(alphabet.clone(), names.clone(), rules.clone(), g.start());
        let null = nullable(&tmp);
        let mut no_eps: HashSet<(NonTerminal, Vec<Symbol>)> = HashSet::new();
        for r in &rules {
            match r.rhs.len() {
                0 => {}
                1 => {
                    no_eps.insert((r.lhs, r.rhs.clone()));
                }
                2 => {
                    no_eps.insert((r.lhs, r.rhs.clone()));
                    for keep in 0..2usize {
                        let drop = 1 - keep;
                        if let Symbol::N(n) = r.rhs[drop] {
                            if null[n.index()] {
                                no_eps.insert((r.lhs, vec![r.rhs[keep]]));
                            }
                        }
                    }
                }
                _ => unreachable!("BIN bounded bodies by 2"),
            }
        }
        let accepts_epsilon = null[g.start().index()];

        // ---- UNIT: eliminate A → B via transitive closure. ----
        let n_now = names.len();
        // unit[a] = set of b with a →* b via unit rules (including a itself).
        let mut unit: Vec<HashSet<usize>> = (0..n_now).map(|i| HashSet::from([i])).collect();
        let mut changed = true;
        let unit_edges: Vec<(usize, usize)> = no_eps
            .iter()
            .filter_map(|(a, rhs)| match rhs.as_slice() {
                [Symbol::N(b)] => Some((a.index(), b.index())),
                _ => None,
            })
            .collect();
        while changed {
            changed = false;
            for &(a, b) in &unit_edges {
                let bs: Vec<usize> = unit[b].iter().copied().collect();
                for x in bs {
                    if unit[a].insert(x) {
                        changed = true;
                    }
                }
            }
        }

        let mut term_rules: HashSet<(NonTerminal, Terminal)> = HashSet::new();
        let mut bin_rules: HashSet<(NonTerminal, NonTerminal, NonTerminal)> = HashSet::new();
        for (a, unit_a) in unit.iter().enumerate().take(n_now) {
            for &b in unit_a {
                for (lhs, rhs) in &no_eps {
                    if lhs.index() != b {
                        continue;
                    }
                    match rhs.as_slice() {
                        [Symbol::T(t)] => {
                            term_rules.insert((NonTerminal(a as u32), *t));
                        }
                        [x, y] => {
                            // After TERM, length-2 bodies contain only
                            // non-terminals.
                            let (Symbol::N(x), Symbol::N(y)) = (x, y) else {
                                unreachable!("TERM removed terminals from long bodies")
                            };
                            bin_rules.insert((NonTerminal(a as u32), *x, *y));
                        }
                        [Symbol::N(_)] => {} // unit rule, dropped
                        _ => unreachable!(),
                    }
                }
            }
        }

        let mut term_rules: Vec<_> = term_rules.into_iter().collect();
        term_rules.sort();
        let mut bin_rules: Vec<_> = bin_rules.into_iter().collect();
        bin_rules.sort();
        let cnf = CnfGrammar::from_rules(
            alphabet,
            names,
            g.start(),
            accepts_epsilon,
            term_rules,
            bin_rules,
        );
        cnf.trimmed()
    }

    /// Remove non-terminals that are unproductive or unreachable.
    pub fn trimmed(&self) -> CnfGrammar {
        let g = self.to_grammar();
        let g = trim(&g);
        // `to_grammar`/`trim` roundtrip preserves CNF shape.
        let mut term_rules = Vec::new();
        let mut bin_rules = Vec::new();
        for r in g.rules() {
            match r.rhs.as_slice() {
                [Symbol::T(t)] => term_rules.push((r.lhs, *t)),
                [Symbol::N(b), Symbol::N(c)] => bin_rules.push((r.lhs, *b, *c)),
                _ => unreachable!("trim preserves CNF rule shapes"),
            }
        }
        let names = (0..g.nonterminal_count())
            .map(|i| g.name(NonTerminal(i as u32)).to_string())
            .collect();
        CnfGrammar::from_rules(
            g.alphabet().to_vec(),
            names,
            g.start(),
            self.accepts_epsilon,
            term_rules,
            bin_rules,
        )
    }

    /// View as a generic [`Grammar`] (for printing and shared analyses).
    /// The ε-flag is not representable and is dropped.
    pub fn to_grammar(&self) -> Grammar {
        let mut rules = Vec::with_capacity(self.term_rules.len() + self.bin_rules.len());
        for &(a, t) in &self.term_rules {
            rules.push(Rule {
                lhs: a,
                rhs: vec![Symbol::T(t)],
            });
        }
        for &(a, b, c) in &self.bin_rules {
            rules.push(Rule {
                lhs: a,
                rhs: vec![Symbol::N(b), Symbol::N(c)],
            });
        }
        Grammar::from_parts(self.alphabet.clone(), self.names.clone(), rules, self.start)
    }

    /// The paper's size measure: 1 per terminal rule, 2 per binary rule.
    pub fn size(&self) -> usize {
        self.term_rules.len() + 2 * self.bin_rules.len()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.term_rules.len() + self.bin_rules.len()
    }

    /// Number of non-terminals.
    pub fn nonterminal_count(&self) -> usize {
        self.names.len()
    }

    /// The start symbol.
    pub fn start(&self) -> NonTerminal {
        self.start
    }

    /// Whether ε ∈ L(G).
    pub fn accepts_epsilon(&self) -> bool {
        self.accepts_epsilon
    }

    /// The alphabet Σ.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    /// All terminal rules `A → a`.
    pub fn term_rules(&self) -> &[(NonTerminal, Terminal)] {
        &self.term_rules
    }

    /// All binary rules `A → B C`.
    pub fn bin_rules(&self) -> &[(NonTerminal, NonTerminal, NonTerminal)] {
        &self.bin_rules
    }

    /// Terminal rules of a given non-terminal.
    pub fn terms_of(&self, a: NonTerminal) -> &[Terminal] {
        &self.term_by_lhs[a.index()]
    }

    /// Binary rules of a given non-terminal.
    pub fn bins_of(&self, a: NonTerminal) -> &[(NonTerminal, NonTerminal)] {
        &self.bin_by_lhs[a.index()]
    }

    /// Display name of a non-terminal.
    pub fn name(&self, a: NonTerminal) -> &str {
        &self.names[a.index()]
    }

    /// The character a terminal stands for.
    pub fn letter(&self, t: Terminal) -> char {
        self.alphabet[t.index()]
    }

    /// Encode a `&str` into terminal ids; `None` if any char is foreign.
    pub fn encode(&self, word: &str) -> Option<Vec<Terminal>> {
        word.chars()
            .map(|c| {
                self.alphabet
                    .iter()
                    .position(|&x| x == c)
                    .map(|i| Terminal(i as u16))
            })
            .collect()
    }

    /// Decode terminal ids back to a `String`.
    pub fn decode(&self, word: &[Terminal]) -> String {
        word.iter().map(|&t| self.letter(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;

    fn abba_grammar() -> Grammar {
        // S → a B b a | ε-free long body exercising TERM+BIN.
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.t('a').n(bb).t('b').t('a'));
        b.rule(bb, |r| r.t('b'));
        b.build(s)
    }

    #[test]
    fn cnf_shapes_only() {
        let cnf = CnfGrammar::from_grammar(&abba_grammar());
        assert!(!cnf.accepts_epsilon());
        for &(_, _b, _c) in cnf.bin_rules() {}
        // Every non-terminal has only CNF-shaped rules by construction;
        // validate via the generic view.
        let g = cnf.to_grammar();
        for r in g.rules() {
            match r.rhs.as_slice() {
                [Symbol::T(_)] => {}
                [Symbol::N(_), Symbol::N(_)] => {}
                other => panic!("non-CNF rule shape: {other:?}"),
            }
        }
    }

    #[test]
    fn cnf_size_quadratic_bound() {
        let g = abba_grammar();
        let cnf = CnfGrammar::from_grammar(&g);
        assert!(
            cnf.size() <= g.size() * g.size().max(1),
            "CNF size {} exceeds |G|^2 = {}",
            cnf.size(),
            g.size() * g.size()
        );
    }

    #[test]
    fn epsilon_elimination_sets_flag() {
        // S → A A, A → a | ε : language {ε, a, aa}.
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.epsilon_rule(a);
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        assert!(cnf.accepts_epsilon());
        // S must still derive "a" and "aa": S → a (via DEL+UNIT) and S → A A.
        assert!(cnf.terms_of(cnf.start()).len() == 1);
        assert!(!cnf.bins_of(cnf.start()).is_empty());
    }

    #[test]
    fn unit_rules_are_eliminated() {
        // S → A, A → B, B → a b
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        let bb = b.nonterminal("B");
        b.rule(s, |r| r.n(a));
        b.rule(a, |r| r.n(bb));
        b.rule(bb, |r| r.t('a').t('b'));
        let cnf = CnfGrammar::from_grammar(&b.build(s));
        let g = cnf.to_grammar();
        for r in g.rules() {
            if r.rhs.len() == 1 {
                assert!(r.rhs[0].is_terminal()); // no unit N bodies
            }
        }
        // S itself derives "ab" via a binary rule after unit elimination.
        assert!(!cnf.bins_of(cnf.start()).is_empty());
    }

    #[test]
    fn already_cnf_grammar_is_stable() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        let g = b.build(s);
        let cnf = CnfGrammar::from_grammar(&g);
        assert_eq!(cnf.size(), g.size());
        assert_eq!(cnf.rule_count(), g.rule_count());
    }

    #[test]
    fn roundtrip_to_grammar_preserves_size() {
        let cnf = CnfGrammar::from_grammar(&abba_grammar());
        assert_eq!(cnf.size(), cnf.to_grammar().size());
        assert_eq!(cnf.rule_count(), cnf.to_grammar().rule_count());
    }

    #[test]
    fn indexes_are_consistent() {
        let cnf = CnfGrammar::from_grammar(&abba_grammar());
        let by_lhs_total: usize = (0..cnf.nonterminal_count())
            .map(|i| {
                cnf.terms_of(NonTerminal(i as u32)).len() + cnf.bins_of(NonTerminal(i as u32)).len()
            })
            .sum();
        assert_eq!(by_lhs_total, cnf.rule_count());
    }
}
